//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The build environment has no registry access, so this crate implements a
//! small wall-clock benchmarking harness behind `criterion`'s API surface:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark is
//! warmed up, then timed over enough iterations to fill a short measurement
//! window, and the mean time per iteration is printed in criterion's
//! `name ... time: [..]` style. Passing `--json <path>` (as in
//! `cargo bench --bench foo -- --json out.jsonl`) additionally appends one
//! JSON object per benchmark — `{"name", "mean_ns", "iters", "mode"}` — so
//! drivers can collect machine-readable trajectories without scraping
//! stdout. Statistical analysis (outlier detection, regressions, HTML
//! reports) is out of scope; swap in the real crate when a registry is
//! reachable.

use std::fmt;
use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value. Re-exported for parity with
/// `criterion::black_box`; forwards to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark, `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
    measurement_time: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Run `routine` repeatedly, recording mean wall-clock time per call.
    /// In `--test` mode ([`Criterion::test_mode`]) the routine runs exactly
    /// once, untimed — the benchmark is smoke-checked, not measured.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.iters = 1;
            self.total = Duration::ZERO;
            return;
        }
        // Warm-up and calibration: find an iteration count that fills the
        // measurement window without timing each call individually.
        let mut n: u64 = 1;
        let calibration_floor = self.measurement_time / 20;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= calibration_floor || n >= (1 << 30) {
                let target_iters = if elapsed.as_nanos() == 0 {
                    n * 8
                } else {
                    let scale = self.measurement_time.as_nanos() as f64 / elapsed.as_nanos() as f64;
                    ((n as f64 * scale).ceil() as u64).max(1)
                };
                let start = Instant::now();
                for _ in 0..target_iters {
                    black_box(routine());
                }
                self.total = start.elapsed();
                self.iters = target_iters;
                return;
            }
            n = n.saturating_mul(2);
        }
    }

    fn report(&self, name: &str) {
        if self.test_mode {
            println!("{name:<40} ok (test mode, 1 iteration)");
            return;
        }
        if self.iters == 0 {
            println!("{name:<40} (no measurement)");
            return;
        }
        let per_iter = self.total.as_nanos() as f64 / self.iters as f64;
        println!(
            "{name:<40} time: [{} {} {}]  ({} iterations)",
            format_ns(per_iter * 0.98),
            format_ns(per_iter),
            format_ns(per_iter * 1.02),
            self.iters
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    // Group-scoped override, like real criterion: it must not leak into
    // groups created after this one finishes.
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the shim's fixed measurement window ignores
    /// the requested sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = Some(time);
        self
    }

    pub fn bench_function<S: fmt::Display, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let window = self.window();
        self.criterion.run_one(&full, window, f);
        self
    }

    pub fn bench_with_input<S: fmt::Display, I: ?Sized, F>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let window = self.window();
        self.criterion.run_one(&full, window, |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn window(&self) -> Duration {
        self.measurement_time
            .unwrap_or(self.criterion.measurement_time)
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    measurement_time: Duration,
    test_mode: bool,
    json_path: Option<PathBuf>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut args = std::env::args();
        let mut test_mode = false;
        let mut json_path = None;
        while let Some(a) = args.next() {
            match a.as_str() {
                // Mirror of real criterion's `--test` flag (as in
                // `cargo bench --bench foo -- --test`): run each benchmark
                // body exactly once so CI can prove benches still compile
                // and execute without paying for measurements.
                "--test" => test_mode = true,
                "--json" => json_path = args.next().map(PathBuf::from),
                _ => {}
            }
        }
        Criterion {
            // Short window: these benches run in CI smoke mode, not for
            // statistically rigorous comparisons.
            measurement_time: Duration::from_millis(200),
            test_mode,
            json_path,
        }
    }
}

impl Criterion {
    /// Whether `--test` was passed: benchmarks run once, untimed.
    pub fn test_mode(&self) -> bool {
        self.test_mode
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            measurement_time: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let window = self.measurement_time;
        self.run_one(name, window, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, window: Duration, mut f: F) {
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
            measurement_time: window,
            test_mode: self.test_mode,
        };
        f(&mut bencher);
        bencher.report(name);
        if let Some(path) = &self.json_path {
            let mean_ns = if bencher.iters == 0 {
                0.0
            } else {
                bencher.total.as_nanos() as f64 / bencher.iters as f64
            };
            let line = format!(
                "{{\"name\":\"{}\",\"mean_ns\":{:.3},\"iters\":{},\"mode\":\"{}\"}}\n",
                escape_json(name),
                mean_ns,
                bencher.iters,
                if self.test_mode { "test" } else { "measured" },
            );
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| f.write_all(line.as_bytes()))
                .unwrap_or_else(|e| panic!("--json {}: {e}", path.display()));
        }
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Mirror of `criterion::criterion_group!`: bundle benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion::criterion_main!`: generate `main` running the groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_cheap_closures() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            test_mode: false,
            json_path: None,
        };
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_measurement_time_does_not_leak() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            test_mode: false,
            json_path: None,
        };
        let mut group = c.benchmark_group("g");
        group.measurement_time(Duration::from_millis(40));
        group.bench_function("x", |b| b.iter(|| 1 + 1));
        group.finish();
        assert_eq!(c.measurement_time, Duration::from_millis(5));
    }

    #[test]
    fn test_mode_runs_exactly_once() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            test_mode: true,
            json_path: None,
        };
        let mut ran = 0u64;
        c.bench_function("once", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1, "--test mode must run the body exactly once");
        assert!(c.test_mode());
    }

    #[test]
    fn json_output_appends_one_line_per_benchmark() {
        let path =
            std::env::temp_dir().join(format!("criterion-shim-json-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            test_mode: true,
            json_path: Some(path.clone()),
        };
        c.bench_function("grp/na\"me", |b| b.iter(|| 1 + 1));
        c.bench_function("plain", |b| b.iter(|| 2 + 2));
        let body = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"name\":\"grp/na\\\"me\",\"mean_ns\":0.000,\"iters\":1,\"mode\":\"test\"}"
        );
        assert!(lines[1].contains("\"name\":\"plain\""));
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            test_mode: false,
            json_path: None,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
