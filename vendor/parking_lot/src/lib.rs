//! Offline shim for the subset of the `parking_lot` API this workspace uses.
//!
//! The build environment has no registry access, so this crate adapts
//! `std::sync` primitives to `parking_lot`'s ergonomics: [`Mutex::lock`]
//! returns a guard directly (poisoning is swallowed, as upstream never
//! poisons), and [`Condvar::wait_for`] re-acquires through an `&mut` guard
//! rather than consuming it. Performance characteristics are std's, not
//! parking_lot's; swap in the real crate when a registry is reachable.

use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// Mutex whose `lock` returns the guard directly, like `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            // Recover from poisoning: upstream parking_lot has no poisoning,
            // so a panicking holder must not wedge every other thread.
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// Guard for [`Mutex`]; the inner `Option` lets [`Condvar::wait_for`] move
/// the std guard out and back while the caller keeps a single `&mut` borrow.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Result of a timed wait; mirrors `parking_lot::WaitTimeoutResult`.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable operating on [`MutexGuard`] via `&mut`, like
/// `parking_lot::Condvar`.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken during wait");
        let (g, result) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult(result.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn wait_for_times_out() {
        let pair = (Mutex::new(false), Condvar::new());
        let mut g = pair.0.lock();
        let res = pair.1.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        assert!(!*g);
    }

    #[test]
    fn wait_for_wakes_on_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut done = lock.lock();
        while !*done {
            if cv.wait_for(&mut done, Duration::from_secs(5)).timed_out() {
                panic!("missed wakeup");
            }
        }
        handle.join().unwrap();
    }
}
