//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no registry access, so this crate provides the
//! handful of items the workspace needs — [`Rng::gen_range`], [`SeedableRng`],
//! [`rngs::StdRng`], and [`thread_rng`] — backed by the public-domain
//! xoshiro256++ generator seeded via SplitMix64. Deterministic streams for a
//! given seed are all the simulator and workload generators require; swap in
//! the real `rand` crate when a registry is reachable.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (`a..b` or `a..=b`). Panics on an empty
    /// range, like the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Sample a value of `T` from the standard distribution (uniform over
    /// the type's range; `[0, 1)` for floats), mirroring `rand::Rng::gen`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`] (the shim's stand-in for `Standard:
/// Distribution<T>`).
pub trait StandardSample {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, exactly one
    /// `next_u64` per draw (the real crate's `Standard` float recipe).
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range that knows how to draw a uniform sample of `T` from an RNG.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == 0 && hi as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                lo + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// Unbiased uniform draw from `[0, span)` by rejection sampling.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// RNGs constructible from a seed, mirroring `rand::SeedableRng` at the
/// `seed_from_u64` granularity the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`;
    /// the stream differs from upstream's ChaCha12, but is stable per seed).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(mut seed: u64) -> Self {
            let mut next = || {
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_splitmix(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Per-thread generator returned by [`super::thread_rng`].
    #[derive(Clone, Debug)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Return a generator seeded from ambient entropy (time + thread identity),
/// mirroring `rand::thread_rng`. Unlike upstream this returns a fresh,
/// independently seeded generator per call rather than a shared handle; the
/// workspace only uses it for non-reproducible jitter.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    let tid = {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        h.finish()
    };
    rngs::ThreadRng(<rngs::StdRng as SeedableRng>::seed_from_u64(
        nanos ^ tid.rotate_left(32) ^ count.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    ))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&w));
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(4u32..=4), 4);
    }

    #[test]
    fn thread_rng_produces_values() {
        let mut rng = super::thread_rng();
        let _ = rng.gen_range(0u64..=10);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}
