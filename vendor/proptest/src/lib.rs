//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no registry access, so this crate provides a
//! deterministic random-testing harness behind `proptest`'s API surface: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), integer-range and
//! [`any`](arbitrary::any) strategies, and the `prop_assert*` macros. Inputs for case `i` of
//! test `t` are derived from a hash of `(t, i)`, so failures are reproducible
//! across runs without persisted seeds. Shrinking (minimising failing inputs)
//! is not implemented — a failing case reports the exact inputs drawn instead;
//! swap in the real crate when a registry is reachable.

pub mod strategy {
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value: Debug;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_strategy_for_uint_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_strategy_for_uint_ranges!(u8, u16, u32, u64, usize);

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Marker strategy returned by [`crate::arbitrary::any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        pub fn new() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.rng.gen_range(0u32..2) == 1
        }
    }

    macro_rules! impl_any_for_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(0..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_any_for_uint!(u8, u16, u32, u64, usize);
}

pub mod arbitrary {
    use crate::strategy::Any;

    /// Types with a canonical [`crate::strategy::Strategy`]; `any::<T>()`
    /// resolves through the `Strategy for Any<T>` impls.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy,
    {
        Any::new()
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Per-case deterministic RNG handed to strategies.
    pub struct TestRng {
        pub rng: StdRng,
    }

    impl TestRng {
        /// Derive the RNG for case `case` of test `test_name`; the stream
        /// depends only on those two values, so runs are reproducible.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            test_name.hash(&mut h);
            case.hash(&mut h);
            TestRng {
                rng: StdRng::seed_from_u64(h.finish()),
            }
        }
    }

    /// Failure raised by a `prop_assert*` macro inside a test case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail<S: Into<String>>(message: S) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }

        /// Mirror of `TestCaseError::Reject`: the shim treats rejected cases
        /// as failures since no strategy here filters inputs.
        pub fn reject<S: Into<String>>(message: S) -> Self {
            Self::fail(message)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Runner configuration; only `cases` is interpreted.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Mirror of `proptest::proptest!`: expand each `fn name(arg in strategy, ..)`
/// item into a `#[test]` that runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                )+
                let inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {}: case {}/{} failed: {}\ninputs:\n{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Mirror of `proptest::prop_assert!`: fail the current case without
/// panicking (the runner reports the drawn inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Mirror of `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Mirror of `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            left,
            format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0usize..=4, flip in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            if flip {
                return Ok(());
            }
            prop_assert_eq!(x, x, "identity must hold for {}", x);
            prop_assert_ne!(x + 1, x);
        }
    }

    #[test]
    fn cases_are_reproducible() {
        let strat = 0u64..1000;
        let a: Vec<u64> = (0..5)
            .map(|i| strat.sample(&mut TestRng::for_case("t", i)))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|i| strat.sample(&mut TestRng::for_case("t", i)))
            .collect();
        assert_eq!(a, b);
        // Different cases draw different inputs (overwhelmingly likely).
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u64..2) {
                prop_assert!(false, "boom {}", x);
            }
        }
        always_fails();
    }
}
