//! Drive the distributed lock-manager simulator on a mixed workload and
//! compare locking strategies dynamically; then run the same system on real
//! OS threads.
//!
//! Run with: `cargo run --example lock_manager_sim`

use kplock::core::policy::LockStrategy;
use kplock::sim::{run, run_threaded, LatencyModel, SimConfig, ThreadedConfig, VictimPolicy};
use kplock::workload::{random_system, WorkloadParams};

fn main() {
    for strategy in [
        LockStrategy::Minimal,
        LockStrategy::TwoPhaseLoose,
        LockStrategy::TwoPhaseSync,
    ] {
        let params = WorkloadParams {
            sites: 3,
            entities_per_site: 2,
            transactions: 4,
            steps_per_txn: 6,
            cross_edge_percent: 30,
            read_percent: 0,
            hot_site_percent: 0,
            strategy,
            seed: 42,
        };
        let sys = random_system(&params);
        println!("=== {strategy:?}: 4 transactions, 3 sites ===");

        let mut anomalies = 0;
        let mut commits = 0;
        let mut aborts = 0;
        let mut messages = 0u64;
        let mut wait = 0u64;
        let mut deadlocks = 0;
        let runs = 50;
        for seed in 0..runs {
            let cfg = SimConfig {
                seed,
                latency: LatencyModel::Uniform(1, 30),
                victim_policy: VictimPolicy::Youngest,
                ..Default::default()
            };
            let r = run(&sys, &cfg).expect("valid config");
            assert!(r.finished(), "run must finish");
            r.audit.legal.as_ref().expect("history must be legal");
            if !r.audit.serializable {
                anomalies += 1;
            }
            commits += r.metrics.committed;
            aborts += r.metrics.aborts;
            messages += r.metrics.messages;
            wait += r.metrics.lock_wait_ticks;
            deadlocks += r.metrics.deadlocks_resolved;
        }
        println!(
            "  {runs} seeded runs: commits={commits} aborts={aborts} deadlocks={deadlocks} \
             msgs/run={} wait/run={} non-serializable={anomalies}",
            messages / runs,
            wait / runs
        );

        // The same system under genuine concurrency.
        let threaded = run_threaded(&sys, &ThreadedConfig::default()).expect("valid config");
        println!(
            "  threaded run: finished={} aborts={} serializable={}",
            threaded.finished, threaded.aborts, threaded.audit.serializable
        );
        println!();
    }
}
