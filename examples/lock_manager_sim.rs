//! Drive the distributed lock-manager simulator on a mixed workload and
//! compare locking strategies dynamically; run the same system on real OS
//! threads; then take one strategy onto a faulty network — lossy channels
//! and a mid-run site crash — and watch the recovery machinery pay for it.
//!
//! Run with: `cargo run --example lock_manager_sim`

use kplock::core::policy::LockStrategy;
use kplock::sim::{
    run, run_threaded, DeadlockResolution, FaultPlan, LatencyModel, RunOutcome, SimConfig,
    SiteCrash, ThreadedConfig, VictimPolicy,
};
use kplock::workload::{random_system, WorkloadParams};

fn main() {
    let params = |strategy| WorkloadParams {
        sites: 3,
        entities_per_site: 2,
        transactions: 4,
        steps_per_txn: 6,
        cross_edge_percent: 30,
        read_percent: 0,
        hot_site_percent: 0,
        zipf_theta: 0.0,
        strategy,
        seed: 42,
    };

    for strategy in [
        LockStrategy::Minimal,
        LockStrategy::TwoPhaseLoose,
        LockStrategy::TwoPhaseSync,
    ] {
        let sys = random_system(&params(strategy));
        println!("=== {strategy:?}: 4 transactions, 3 sites ===");

        let mut anomalies = 0;
        let mut commits = 0;
        let mut aborts = 0;
        let mut messages = 0u64;
        let mut wait = 0u64;
        let mut deadlocks = 0;
        let runs = 50;
        for seed in 0..runs {
            let cfg = SimConfig {
                seed,
                latency: LatencyModel::Uniform(1, 30),
                resolution: DeadlockResolution::default(),
                faults: FaultPlan::none(),
                victim_policy: VictimPolicy::Youngest,
                ..Default::default()
            };
            let r = run(&sys, &cfg).expect("valid config");
            assert_eq!(
                r.outcome,
                RunOutcome::Completed,
                "clean runs complete within the budget"
            );
            r.audit.legal.as_ref().expect("history must be legal");
            if !r.audit.serializable {
                anomalies += 1;
            }
            commits += r.metrics.committed;
            aborts += r.metrics.aborts;
            messages += r.metrics.messages;
            wait += r.metrics.lock_wait_ticks;
            deadlocks += r.metrics.deadlocks_resolved;
        }
        println!(
            "  {runs} seeded runs: commits={commits} aborts={aborts} deadlocks={deadlocks} \
             msgs/run={} wait/run={} non-serializable={anomalies}",
            messages / runs,
            wait / runs
        );

        // The same system under genuine concurrency.
        let threaded = run_threaded(&sys, &ThreadedConfig::default()).expect("valid config");
        println!(
            "  threaded run: finished={} aborts={} serializable={}",
            threaded.finished, threaded.aborts, threaded.audit.serializable
        );
        println!();
    }

    // The safe strategy again, now on a hostile network: 15% loss, 10%
    // duplication and reordering with retransmission, plus site 0 crashing
    // at tick 100 for 200 ticks against a 150-tick lease — some holders
    // lose their locks and restart. Safety holds; the metrics show who
    // paid.
    let sys = random_system(&params(LockStrategy::TwoPhaseSync));
    println!("=== TwoPhaseSync on a faulty network ===");
    let mut faults = FaultPlan::lossy(7, 0.15, 0.10, 0.10);
    faults.lease_ttl = 150;
    faults.crashes = vec![SiteCrash {
        site: 0,
        at: 100,
        down_for: 200,
    }];
    let cfg = SimConfig {
        latency: LatencyModel::Uniform(1, 30),
        invariant_audit: true,
        faults,
        max_time: 1_000_000,
        ..Default::default()
    };
    let r = run(&sys, &cfg).expect("valid config");
    assert_ne!(
        r.outcome,
        RunOutcome::Stalled,
        "retransmission must keep a lossy run live"
    );
    r.audit.legal.as_ref().expect("history must be legal");
    if r.outcome == RunOutcome::Completed {
        assert!(
            r.audit.serializable,
            "2PL-sync commits stay serializable under faults"
        );
    }
    println!(
        "  outcome={:?} commits={} aborts={} dropped={} duplicated={} \
         recoveries={} leases_expired={} makespan={}",
        r.outcome,
        r.metrics.committed,
        r.metrics.aborts,
        r.metrics.messages_dropped,
        r.metrics.messages_duplicated,
        r.metrics.recoveries,
        r.metrics.leases_expired,
        r.metrics.makespan
    );
}
