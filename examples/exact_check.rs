//! Exact decision via SAT, end to end: encode a transaction system's
//! unsafety as CNF, decide it with DPLL, and replay every witness the
//! decoder produces through the real per-site lock tables.
//!
//! Three acts:
//!
//! 1. an early-unlock pair is **unsafe** — the SAT checker returns a
//!    complete witness schedule that replays to a legal,
//!    non-serializable committed history;
//! 2. the opposed family is safe but **deadlock-prone** — the deadlock
//!    encoding returns a stalled prefix that replays to a waits-for
//!    cycle in the lock tables;
//! 3. on that same family the greedy avoidance plan certifies exactly
//!    one transaction, while iterated-SAT `synthesize_optimal` proves
//!    every descender can be certified together.
//!
//! Run with: `cargo run --example exact_check`

use kplock::core::{check_deadlock, check_safety, synthesize_optimal, SatSafety};
use kplock::model::{Database, TxnBuilder, TxnSystem};
use kplock::sim::{replay_deadlock, replay_violation};
use kplock::workload::opposed_mix;

fn main() {
    // Act 1: non-two-phase (early unlock) pair across two sites.
    let db = Database::from_spec(&[("x", 0), ("y", 1)]);
    let txns = (0..2)
        .map(|i| {
            let mut b = TxnBuilder::new(&db, format!("E{i}"));
            b.script("Lx x Ux Ly y Uy").unwrap();
            b.build().unwrap()
        })
        .collect();
    let sys = TxnSystem::new(db, txns);

    let report = check_safety(&sys).expect("exclusive-only system encodes");
    println!(
        "early-unlock pair: CNF with {} vars / {} clauses, {} decisions",
        report.stats.vars, report.stats.clauses, report.stats.decisions
    );
    match &report.verdict {
        SatSafety::Safe => unreachable!("early unlock must be unsafe"),
        SatSafety::Unsafe(witness) => {
            let audit = replay_violation(&sys, witness).expect("witness replays");
            assert!(audit.legal.is_ok() && !audit.serializable);
            println!(
                "  UNSAFE — witness of {} steps replays to a legal, non-serializable history\n",
                witness.len()
            );
        }
    }

    // Act 2: opposed lock orders — safe, but deadlock is reachable.
    let sys = opposed_mix(2, 2);
    let safety = check_safety(&sys).expect("encodes");
    assert!(safety.verdict.is_safe());
    let dl = check_deadlock(&sys).expect("encodes");
    let prefix = dl.deadlock.as_ref().expect("deadlock reachable");
    let evidence = replay_deadlock(&sys, prefix).expect("prefix replays");
    println!(
        "opposed(1+2): safe, but a {}-step prefix stalls txns {:?} on cycle {:?}\n",
        prefix.len(),
        evidence.stalled,
        evidence.cycle
    );

    // Act 3: greedy conservatism, quantified.
    let opt = synthesize_optimal(&sys);
    println!(
        "  greedy certifies {} txn(s); synthesize_optimal certifies {} ({} SAT calls)",
        opt.greedy_count, opt.optimal_count, opt.sat_calls
    );
    assert!(opt.optimal_count > opt.greedy_count);
    opt.plan.verify(&sys).expect("optimal plan verifies");
    println!("  optimal plan passes AvoidPlan::verify");
}
