//! Select a lock-table implementation per run and watch the knob propagate
//! through both runners: the discrete-event simulator must produce an
//! *identical* report for `TableSpec::Fifo` and a neutral
//! `TableSpec::queue()` (the queue table is a drop-in replacement), and the
//! threaded runner sweeps every spec — including the reader/writer-bias and
//! cohort-handoff variants — over real OS threads.
//!
//! For measured numbers, run the dedicated driver instead:
//! `cargo run --release -p kplock-bench --bin kplock-bench -- --smoke`
//! (see README for the BENCH_*.json schema).
//!
//! Run with: `cargo run --example table_bench`

use kplock::core::policy::LockStrategy;
use kplock::sim::{run, run_threaded, LatencyModel, SimConfig, TableSpec, ThreadedConfig};
use kplock::workload::{random_system, WorkloadParams};

fn main() {
    let sys = random_system(&WorkloadParams {
        seed: 23,
        sites: 2,
        entities_per_site: 2,
        transactions: 4,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    });

    // --- Simulator: the table is one field on SimConfig. -----------------
    println!("=== simulator: FIFO vs neutral queue table ===");
    let report_for = |table: TableSpec| {
        let cfg = SimConfig {
            seed: 7,
            latency: LatencyModel::Uniform(1, 20),
            table,
            ..Default::default()
        };
        run(&sys, &cfg).expect("valid config")
    };
    let fifo = report_for(TableSpec::Fifo);
    let queue = report_for(TableSpec::queue());
    for (label, r) in [("fifo", &fifo), ("queue", &queue)] {
        println!(
            "  {label:<6} committed={} aborts={} makespan={}",
            r.metrics.committed, r.metrics.aborts, r.metrics.makespan
        );
    }
    assert_eq!(
        fifo.metrics, queue.metrics,
        "a neutral queue table must be indistinguishable from FIFO"
    );
    println!("  reports identical — the queue table is a drop-in.\n");

    // --- Threaded runner: same knob, monomorphized per spec. -------------
    println!("=== threaded runner: sweeping table specs on OS threads ===");
    for spec in [
        TableSpec::Fifo,
        TableSpec::queue(),
        TableSpec::Queue {
            bias: kplock::dlm::Bias::ReaderBatch,
            cohorts: 0,
        },
        TableSpec::Queue {
            bias: kplock::dlm::Bias::WriterPreference,
            cohorts: 2,
        },
    ] {
        let cfg = ThreadedConfig {
            shards: 4,
            table: spec,
            ..Default::default()
        };
        let r = run_threaded(&sys, &cfg).expect("valid config");
        assert!(r.finished, "{spec:?} run must finish");
        r.audit.legal.as_ref().expect("history must be legal");
        assert!(r.audit.serializable, "2PL-sync histories are serializable");
        println!(
            "  {:<13} finished={} aborts={} (audit: serializable)",
            spec.label(),
            r.finished,
            r.aborts
        );
    }
}
