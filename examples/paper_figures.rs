//! Regenerates the paper's figures: the transactions of Figs. 1, 3 and 5,
//! the geometric picture of Fig. 2 (with the separating curve drawn), and
//! the dominator structure of Fig. 8.
//!
//! Run with: `cargo run --example paper_figures`

use kplock::core::{analyze_pair, SafetyVerdict};
use kplock::geometry::{find_separation, render, PlanePicture};
use kplock::model::display::render_columns;
use kplock::model::TxnId;
use kplock::workload::{fig1, fig2, fig3, fig5};

fn describe(sys: &kplock::model::TxnSystem, title: &str) {
    println!("==== {title} ====");
    for t in sys.txn_ids() {
        println!("{}", render_columns(sys.db(), sys.txn(t)));
    }
    let analysis = analyze_pair(sys);
    println!(
        "D(T1,T2): vertices {:?}, {} arcs, strongly connected: {}",
        analysis
            .d
            .entities
            .iter()
            .map(|&e| sys.db().name_of(e))
            .collect::<Vec<_>>(),
        analysis.d.graph.edge_count(),
        analysis.strongly_connected,
    );
    match &analysis.verdict {
        SafetyVerdict::Safe(p) => println!("verdict: SAFE ({p:?})"),
        SafetyVerdict::Unsafe(cert) => {
            println!("verdict: UNSAFE");
            println!(
                "  dominator X = {:?}",
                cert.dominator
                    .iter()
                    .map(|&e| sys.db().name_of(e))
                    .collect::<Vec<_>>()
            );
            println!("  witness: {}", cert.schedule.display(sys));
        }
        SafetyVerdict::Unknown => println!("verdict: UNKNOWN"),
    }
    println!();
}

fn main() {
    describe(&fig1(), "Fig. 1 — unsafe two-site system");

    // Fig. 2: geometric picture with the separating curve.
    let sys = fig2();
    println!("==== Fig. 2 — coordinated plane of two total orders ====");
    let plane = PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
    let w = find_separation(&plane).expect("unsafe");
    println!("{}", render(&sys, &plane, Some(&w.path)));
    println!(
        "curve passes above {} and below {} — schedule:\n  {}\n",
        sys.db().name_of(w.above),
        sys.db().name_of(w.below),
        w.schedule.display(&sys)
    );

    describe(&fig3(), "Fig. 3 — unsafe despite a safe extension plane");
    describe(
        &fig5(),
        "Fig. 5 — four sites: D not strongly connected, yet SAFE",
    );
}
