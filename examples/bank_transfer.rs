//! A classic motivation scenario: cross-branch bank transfers.
//!
//! Two branches (sites) each store account balances. A transfer transaction
//! debits an account at one branch and credits an account at the other.
//! How the transfers lock decides everything:
//!
//! * minimal (tight) locking maximizes concurrency but is **unsafe** — the
//!   audit exhibits a committed non-serializable history (lost update);
//! * per-site two-phase locking without cross-site synchronization
//!   ("loose 2PL") is still unsafe — the paper's headline phenomenon;
//! * synchronized two-phase locking (a global lock point) is safe, at the
//!   cost of longer lock-hold times.
//!
//! Run with: `cargo run --example bank_transfer`

use kplock::core::policy::{insert_locks, LockStrategy};
use kplock::core::{analyze_pair, SafetyVerdict};
use kplock::model::{Database, TxnBuilder, TxnSystem};
use kplock::sim::{run, LatencyModel, SimConfig};

fn build_system(strategy: LockStrategy) -> TxnSystem {
    // Branch 0 holds alice, bob; branch 1 holds carol, dave.
    let db = Database::from_spec(&[("alice", 0), ("bob", 0), ("carol", 1), ("dave", 1)]);

    // T1: transfer alice -> carol (debit at branch 0, credit at branch 1),
    // then bob -> dave.
    let mut b = TxnBuilder::new(&db, "transfer-1");
    let debit1 = b.update("alice").unwrap();
    let credit1 = b.update("carol").unwrap();
    b.edge(debit1, credit1);
    let debit2 = b.update("bob").unwrap();
    let credit2 = b.update("dave").unwrap();
    b.edge(debit2, credit2);
    let t1 = b.build().unwrap();

    // T2: audit sweep in the opposite order: carol -> alice, dave -> bob.
    let mut b = TxnBuilder::new(&db, "transfer-2");
    let debit1 = b.update("carol").unwrap();
    let credit1 = b.update("alice").unwrap();
    b.edge(debit1, credit1);
    let debit2 = b.update("dave").unwrap();
    let credit2 = b.update("bob").unwrap();
    b.edge(debit2, credit2);
    let t2 = b.build().unwrap();

    let locked = vec![
        insert_locks(&db, &t1, strategy).unwrap(),
        insert_locks(&db, &t2, strategy).unwrap(),
    ];
    TxnSystem::new(db, locked)
}

fn main() {
    for strategy in [
        LockStrategy::Minimal,
        LockStrategy::TwoPhaseLoose,
        LockStrategy::TwoPhaseSync,
    ] {
        let sys = build_system(strategy);
        let analysis = analyze_pair(&sys);
        println!("=== {strategy:?} ===");
        println!(
            "  D strongly connected: {}  =>  {}",
            analysis.strongly_connected,
            match &analysis.verdict {
                SafetyVerdict::Safe(p) => format!("SAFE ({p:?})"),
                SafetyVerdict::Unsafe(_) => "UNSAFE".to_string(),
                SafetyVerdict::Unknown => "UNKNOWN".to_string(),
            }
        );
        if let SafetyVerdict::Unsafe(cert) = &analysis.verdict {
            println!("  anomaly schedule: {}", cert.schedule.display(&sys));
        }

        // Dynamic check: sweep seeds in the simulator and report anomalies.
        let mut anomalies = 0;
        let mut total_wait = 0u64;
        let runs = 100;
        for seed in 0..runs {
            let cfg = SimConfig {
                seed,
                latency: LatencyModel::Uniform(1, 40),
                ..Default::default()
            };
            let report = run(&sys, &cfg).expect("valid config");
            assert!(report.finished());
            report.audit.legal.as_ref().expect("legal history");
            if !report.audit.serializable {
                anomalies += 1;
            }
            total_wait += report.metrics.lock_wait_ticks;
        }
        println!(
            "  simulator: {anomalies}/{runs} runs committed a non-serializable history; \
             avg lock wait {} ticks",
            total_wait / runs
        );
        println!();
    }
}
