//! Theorem 3 end-to-end: CNF satisfiability ↔ unsafety of a two-transaction
//! multisite system, on the paper's Fig. 8 example.
//!
//! Run with: `cargo run --example sat_reduction`

use kplock::core::closure::try_unsafety_via_dominator;
use kplock::core::reduction::NodeKind;
use kplock::graph::enumerate_dominators;
use kplock::model::{EntityId, TxnId};
use kplock::sat::SatResult;
use kplock::workload::{fig8_formula, fig8_reduction};

fn main() {
    let f = fig8_formula();
    println!("F = (x1 v x2 v x3) & (~x1 v x2 v ~x3)");
    println!("clauses: {:?}\n", f.clauses);

    let r = fig8_reduction();
    println!(
        "reduction: {} entities (one site each), T1/T2 with {} steps each",
        r.sys.db().entity_count(),
        r.sys.txn(TxnId(0)).len()
    );
    assert!(r.verify_intended());
    println!("constructed D(T1(F), T2(F)) matches the intended digraph\n");

    // Enumerate dominators of D and print the Fig. 8 table:
    // dominator -> assignment -> desirable?
    let d = r.d_graph();
    let (doms, exhaustive) = enumerate_dominators(&d.graph, 10_000);
    assert!(exhaustive);
    println!(
        "{} dominators; the assignment table (middle row only):",
        doms.len()
    );
    println!(
        "{:<30} {:>4} {:>4} {:>4}  desirable  closure",
        "dominator (middle part)", "x1", "x2", "x3"
    );
    let mut certificates = 0;
    for dom_bits in &doms {
        let dom: Vec<EntityId> = dom_bits.iter().map(|i| d.entities[i]).collect();
        let middle: Vec<String> = dom
            .iter()
            .filter(|e| {
                matches!(
                    r.kinds[e.idx()],
                    NodeKind::WPos { .. } | NodeKind::WNeg { .. }
                )
            })
            .map(|&e| r.label(e))
            .collect();
        let assignment = r.assignment_of_dominator(&dom);
        let fmt = |v: Option<bool>| match v {
            Some(true) => "1",
            Some(false) => "0",
            None => "-",
        };
        let (a1, a2, a3) = match &assignment {
            Ok(a) => (fmt(a[0]), fmt(a[1]), fmt(a[2])),
            Err(_) => ("!", "!", "!"),
        };
        let desirable = r.is_desirable(&dom);
        let cert = try_unsafety_via_dominator(&r.sys, TxnId(0), TxnId(1), &dom);
        if cert.is_some() {
            certificates += 1;
        }
        println!(
            "{:<30} {a1:>4} {a2:>4} {a3:>4}  {desirable:<9}  {}",
            format!("{{{}}}", middle.join(",")),
            if cert.is_some() {
                "certificate"
            } else {
                "fails"
            }
        );
        // Soundness: a closure certificate exists exactly for desirable
        // dominators (paper, proof of Theorem 3).
        assert_eq!(desirable, cert.is_some());
    }

    println!();
    match r.solve_formula() {
        SatResult::Sat(model) => {
            println!("DPLL: satisfiable, model = {model:?}");
            println!(
                "=> {} desirable dominators produced verified unsafety certificates",
                certificates
            );
            assert!(certificates > 0);
        }
        SatResult::Unsat => {
            println!("DPLL: unsatisfiable => no certificate should exist");
            assert_eq!(certificates, 0);
        }
    }
}
