//! Quickstart: build a distributed transaction pair, decide safety, and
//! inspect the counterexample schedule.
//!
//! Run with: `cargo run --example quickstart`

use kplock::core::analyze_pair;
use kplock::model::{Database, TxnBuilder, TxnSystem};

fn main() {
    // A two-site database: x, y at site 0; w, z at site 1.
    let db = Database::from_spec(&[("x", 0), ("y", 0), ("w", 1), ("z", 1)]);

    // T1 updates x then y at site 0 and w at site 1, locking minimally.
    // The site-1 program runs concurrently with site 0 (no cross edges):
    // this is a genuinely *distributed* transaction — a partial order.
    let mut b = TxnBuilder::new(&db, "T1");
    b.script("Lx x Ux Ly y Uy").unwrap();
    b.script("Lw w Uw").unwrap();
    let t1 = b.build().unwrap();

    let mut b = TxnBuilder::new(&db, "T2");
    b.script("Ly y Uy Lx x Ux").unwrap();
    b.script("Lw w Uw").unwrap();
    let t2 = b.build().unwrap();

    let sys = TxnSystem::new(db, vec![t1, t2]);
    println!(
        "{}",
        kplock::model::display::render_columns(sys.db(), sys.txn(kplock::model::TxnId(0)))
    );
    println!(
        "{}",
        kplock::model::display::render_columns(sys.db(), sys.txn(kplock::model::TxnId(1)))
    );

    // Theorem 2: for two sites, safety <=> strong connectivity of D(T1,T2).
    let analysis = analyze_pair(&sys);
    println!(
        "D(T1,T2): {} shared entities, {} arcs, strongly connected: {}",
        analysis.d.entities.len(),
        analysis.d.graph.edge_count(),
        analysis.strongly_connected
    );

    match &analysis.verdict {
        kplock::core::SafetyVerdict::Safe(proof) => {
            println!("SAFE ({proof:?}): every schedule is serializable");
        }
        kplock::core::SafetyVerdict::Unsafe(cert) => {
            println!("UNSAFE — non-serializable schedule (Theorem 2 certificate):");
            println!("  dominator X = {:?}", cert.dominator);
            println!("  schedule: {}", cert.schedule.display(&sys));
            cert.verify(&sys).expect("certificate verifies");
            println!("  certificate verified: legal, complete, not serializable");
        }
        kplock::core::SafetyVerdict::Unknown => println!("UNKNOWN"),
    }
}
