//! Static policy comparison: how often is each locking strategy safe, and
//! how much concurrency does it preserve?
//!
//! For random distributed workloads, this example decides safety with the
//! paper's machinery, and quantifies concurrency as the number of legal
//! schedules (counted exactly on the product state space for small
//! systems) — the tension the paper opens with: correctness vs parallelism.
//!
//! Run with: `cargo run --example policy_comparison`

use kplock::core::policy::LockStrategy;
use kplock::core::{analyze_pair, SafetyVerdict};
use kplock::workload::{random_pair, WorkloadParams};

use kplock::core::count_schedules;

fn main() {
    let strategies = [
        LockStrategy::Minimal,
        LockStrategy::TwoPhaseLoose,
        LockStrategy::TwoPhaseSync,
    ];
    println!(
        "{:<16} {:>6} {:>8} {:>10} {:>22} {:>24}",
        "strategy", "safe", "unsafe", "unknown", "avg legal schedules", "avg serializable"
    );
    for strategy in strategies {
        let mut safe = 0;
        let mut unsafe_ = 0;
        let mut unknown = 0;
        let mut schedules: u128 = 0;
        let mut serializable: u128 = 0;
        let trials = 30;
        for seed in 0..trials {
            let sys = random_pair(&WorkloadParams {
                sites: 2,
                entities_per_site: 2,
                steps_per_txn: 4,
                strategy,
                seed,
                ..Default::default()
            });
            match analyze_pair(&sys).verdict {
                SafetyVerdict::Safe(_) => safe += 1,
                SafetyVerdict::Unsafe(_) => unsafe_ += 1,
                SafetyVerdict::Unknown => unknown += 1,
            }
            let counts = count_schedules(&sys, 5_000_000).expect("small system");
            schedules += counts.legal;
            serializable += counts.serializable;
        }
        println!(
            "{:<16} {:>6} {:>8} {:>10} {:>22} {:>24}",
            format!("{strategy:?}"),
            safe,
            unsafe_,
            unknown,
            schedules / trials as u128,
            serializable / trials as u128
        );
    }
    println!(
        "\nSynchronized 2PL is always safe (Theorem 1: complete D) but allows the fewest \
         interleavings; minimal locking allows the most and is frequently unsafe — the \
         distributed-locking trade-off the paper formalizes."
    );
}
