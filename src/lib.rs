//! # kplock
//!
//! A reproduction of Paris C. Kanellakis and Christos H. Papadimitriou,
//! *Is Distributed Locking Harder?* (PODS 1982 / JCSS 28, 1984).
//!
//! The paper asks whether deciding **safety** — "does this set of locked
//! transactions admit only serializable schedules?" — stays easy when the
//! database is distributed. Its answers, all implemented here:
//!
//! * strong connectivity of the conflict digraph `D(T1,T2)` is *sufficient*
//!   for safety at any number of sites (Theorem 1),
//! * for **two sites** it is also *necessary*, giving an `O(n²)` decision
//!   procedure with explicit counterexample schedules (Theorem 2,
//!   Corollary 1),
//! * for arbitrarily many sites the problem becomes **coNP-complete**
//!   (Theorem 3, by reduction from CNF satisfiability),
//! * safety of many-transaction systems reduces to pairs plus a cycle
//!   condition (Proposition 2).
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`model`] — entities/sites, distributed transactions (partial orders),
//!   schedules, serializability;
//! * [`graph`] — SCCs, dominators, topological sorts, cycles;
//! * [`geometry`] — the coordinated-plane method for pairs of total orders;
//! * [`core`] — the paper's decision procedures and certificates;
//! * [`sat`] — CNF + DPLL (substrate for Theorem 3);
//! * [`dlm`] — the sharded reader–writer lock-manager service layer with
//!   incremental wait-for-graph deadlock detection;
//! * [`sim`] — a discrete-event distributed lock-manager simulator;
//! * [`workload`] — generators and the paper's figure instances.
//!
//! ## Quickstart
//!
//! ```
//! use kplock::model::{Database, TxnBuilder, TxnSystem};
//! use kplock::core::analyze_pair;
//!
//! // Entities x,y at site 0; w,z at site 1.
//! let db = Database::from_spec(&[("x", 0), ("y", 0), ("w", 1), ("z", 1)]);
//!
//! let mut b = TxnBuilder::new(&db, "T1");
//! b.script("Lx x Ux Ly y Uy").unwrap(); // runs at site 0
//! let t1 = b.build().unwrap();
//!
//! let mut b = TxnBuilder::new(&db, "T2");
//! b.script("Ly y Uy Lx x Ux").unwrap();
//! let t2 = b.build().unwrap();
//!
//! let sys = TxnSystem::new(db, vec![t1, t2]);
//! let analysis = analyze_pair(&sys);
//! assert!(!analysis.verdict.is_safe()); // classic non-two-phase anomaly
//! ```

pub use kplock_core as core;
pub use kplock_dlm as dlm;
pub use kplock_geometry as geometry;
pub use kplock_graph as graph;
pub use kplock_model as model;
pub use kplock_sat as sat;
pub use kplock_sim as sim;
pub use kplock_workload as workload;
