//! ASCII rendering of coordinated-plane pictures (regenerates the paper's
//! Fig. 2-style drawings).

use crate::plane::PlanePicture;
use kplock_model::TxnSystem;

/// Renders the plane: `#` marks forbidden states, `*` the given curve,
/// `.` free states. Axis labels show each step (t1 along the bottom, t2
/// along the left, bottom-up).
pub fn render(sys: &TxnSystem, plane: &PlanePicture, curve: Option<&[(usize, usize)]>) -> String {
    let (w, h) = (plane.width(), plane.height());
    let t1 = sys.txn(plane.txn_x);
    let t2 = sys.txn(plane.txn_y);
    let label_x: Vec<String> = plane
        .order_x
        .iter()
        .map(|&s| {
            let st = t1.step(s);
            st.label(sys.db().name_of(st.entity))
        })
        .collect();
    let label_y: Vec<String> = plane
        .order_y
        .iter()
        .map(|&s| {
            let st = t2.step(s);
            st.label(sys.db().name_of(st.entity))
        })
        .collect();
    let ylab_w = label_y.iter().map(|l| l.len()).max().unwrap_or(1).max(2);
    let cell_w = label_x.iter().map(|l| l.len()).max().unwrap_or(1).max(2) + 1;

    let on_curve = |i: usize, j: usize| curve.is_some_and(|c| c.contains(&(i, j)));

    let mut out = String::new();
    out.push_str(&format!(
        "t2 = {} (vertical, bottom-up) vs t1 = {} (horizontal)\n",
        t2.name(),
        t1.name()
    ));
    for j in (0..=h).rev() {
        let ylab = if j >= 1 { label_y[j - 1].as_str() } else { "" };
        out.push_str(&format!("{ylab:>ylab_w$} |"));
        for i in 0..=w {
            let ch = if on_curve(i, j) {
                '*'
            } else if plane.forbidden(i, j) {
                '#'
            } else {
                '.'
            };
            out.push_str(&format!("{ch:^cell_w$}"));
        }
        out.push('\n');
    }
    // X axis.
    out.push_str(&format!("{:>ylab_w$} +", ""));
    out.push_str(&"-".repeat(cell_w * (w + 1)));
    out.push('\n');
    out.push_str(&format!("{:>ylab_w$}  ", ""));
    out.push_str(&format!("{:^cell_w$}", "0"));
    for l in &label_x {
        out.push_str(&format!("{l:^cell_w$}"));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::PlanePicture;
    use crate::separation::find_separation;
    use kplock_model::{Database, TxnBuilder, TxnId, TxnSystem};

    #[test]
    fn renders_forbidden_regions_and_curve() {
        let db = Database::centralized(&["x", "y"]);
        let mut b1 = TxnBuilder::new(&db, "t1");
        b1.script("Lx x Ux Ly y Uy").unwrap();
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "t2");
        b2.script("Ly y Uy Lx x Ux").unwrap();
        let t2 = b2.build().unwrap();
        let sys = TxnSystem::new(db, vec![t1, t2]);
        let plane = PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
        let w = find_separation(&plane).unwrap();
        let art = render(&sys, &plane, Some(&w.path));
        assert!(art.contains('#'));
        assert!(art.contains('*'));
        assert!(art.contains("Lx"));
        // Every row of the grid is present.
        assert_eq!(art.lines().count(), 1 + 7 + 2);
    }
}
