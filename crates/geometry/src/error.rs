//! Errors for the geometry crate.

use kplock_model::TxnId;
use std::fmt;

/// Errors raised by the geometric method.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GeometryError {
    /// The transaction is not a total order, so it has no single geometric
    /// picture (enumerate its linear extensions instead — Lemma 1).
    NotTotalOrder(TxnId),
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::NotTotalOrder(t) => {
                write!(f, "transaction {t} is not a total order")
            }
        }
    }
}

impl std::error::Error for GeometryError {}
