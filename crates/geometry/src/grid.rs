//! Monotone lattice paths through the coordinated plane.
//!
//! A legal schedule of `{t1, t2}` corresponds to a monotone path of states
//! from `(0, 0)` to `(m1, m2)` avoiding all forbidden rectangles; this
//! module finds such paths under additional state constraints (used to force
//! a curve above one rectangle and below another — the separation test of
//! Proposition 1).

use crate::plane::PlanePicture;
use kplock_model::{Schedule, ScheduledStep};

/// Finds a monotone path from `(0,0)` to `(m1,m2)` avoiding forbidden
/// rectangles and any state where `extra_forbidden(i, j)` holds.
/// Returns the sequence of states (including both endpoints).
pub fn find_path(
    plane: &PlanePicture,
    mut extra_forbidden: impl FnMut(usize, usize) -> bool,
) -> Option<Vec<(usize, usize)>> {
    let (w, h) = (plane.width(), plane.height());
    let cols = w + 1;
    let ok = |i: usize, j: usize, f: &mut dyn FnMut(usize, usize) -> bool| {
        !plane.forbidden(i, j) && !f(i, j)
    };
    if !ok(0, 0, &mut extra_forbidden) {
        return None;
    }
    // DP over states in lexicographic order; parent[state] = 0 (from left),
    // 1 (from below), 2 (start), u8::MAX (unreachable).
    let mut parent = vec![u8::MAX; cols * (h + 1)];
    parent[0] = 2;
    for i in 0..=w {
        for j in 0..=h {
            if parent[i * (h + 1) + j] == u8::MAX {
                continue;
            }
            if i < w
                && parent[(i + 1) * (h + 1) + j] == u8::MAX
                && ok(i + 1, j, &mut extra_forbidden)
            {
                parent[(i + 1) * (h + 1) + j] = 0;
            }
            if j < h && parent[i * (h + 1) + j + 1] == u8::MAX && ok(i, j + 1, &mut extra_forbidden)
            {
                parent[i * (h + 1) + j + 1] = 1;
            }
        }
    }
    if parent[w * (h + 1) + h] == u8::MAX {
        return None;
    }
    // Reconstruct.
    let mut path = vec![(w, h)];
    let (mut i, mut j) = (w, h);
    while (i, j) != (0, 0) {
        match parent[i * (h + 1) + j] {
            0 => i -= 1,
            1 => j -= 1,
            _ => unreachable!("path reconstruction"),
        }
        path.push((i, j));
    }
    path.reverse();
    Some(path)
}

/// Converts a path of states into the corresponding schedule.
pub fn schedule_from_path(plane: &PlanePicture, path: &[(usize, usize)]) -> Schedule {
    let mut steps = Vec::with_capacity(path.len().saturating_sub(1));
    for pair in path.windows(2) {
        let ((i0, j0), (i1, j1)) = (pair[0], pair[1]);
        if i1 == i0 + 1 && j1 == j0 {
            steps.push(ScheduledStep {
                txn: plane.txn_x,
                step: plane.order_x[i0],
            });
        } else if j1 == j0 + 1 && i1 == i0 {
            steps.push(ScheduledStep {
                txn: plane.txn_y,
                step: plane.order_y[j0],
            });
        } else {
            panic!("non-monotone path");
        }
    }
    Schedule::new(steps)
}

/// The orientation of a path with respect to a rectangle: `true` if the path
/// passes **above** it (t2's lock section completes before t1's begins),
/// `false` if below. `None` if the path crosses the rectangle (illegal).
pub fn passes_above(path: &[(usize, usize)], rect: &crate::plane::Rectangle) -> Option<bool> {
    // At the first state with i == x_lo, either j >= y_hi (above) or
    // j < y_lo (below); j in [y_lo, y_hi) would be a forbidden state.
    let &(_, j) = path.iter().find(|&&(i, _)| i == rect.x_lo)?;
    if j >= rect.y_hi {
        Some(true)
    } else if j < rect.y_lo {
        Some(false)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_model::{Database, TxnBuilder, TxnId, TxnSystem};

    fn sys(script1: &str, script2: &str) -> TxnSystem {
        let db = Database::centralized(&["x", "y", "z"]);
        let mut b1 = TxnBuilder::new(&db, "t1");
        b1.script(script1).unwrap();
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "t2");
        b2.script(script2).unwrap();
        let t2 = b2.build().unwrap();
        TxnSystem::new(db, vec![t1, t2])
    }

    #[test]
    fn straight_path_without_rectangles() {
        let sys = sys("Lx x Ux", "Ly y Uy");
        let plane = crate::plane::PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
        assert!(plane.rects.is_empty());
        let path = find_path(&plane, |_, _| false).unwrap();
        assert_eq!(*path.first().unwrap(), (0, 0));
        assert_eq!(*path.last().unwrap(), (3, 3));
        let sched = schedule_from_path(&plane, &path);
        assert_eq!(sched.len(), 6);
        sched.validate_complete(&sys).unwrap();
    }

    #[test]
    fn path_avoids_rectangles_and_is_legal() {
        let sys = sys("Lx x Ux", "Lx x Ux");
        let plane = crate::plane::PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
        assert_eq!(plane.rects.len(), 1);
        let path = find_path(&plane, |_, _| false).unwrap();
        let sched = schedule_from_path(&plane, &path);
        sched.validate_complete(&sys).unwrap();
        // Orientation must be defined (not crossing).
        assert!(passes_above(&path, &plane.rects[0]).is_some());
    }

    #[test]
    fn extra_constraints_can_make_it_infeasible() {
        let sys = sys("Lx x Ux", "Ly y Uy");
        let plane = crate::plane::PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
        // Forbid the entire middle column.
        assert!(find_path(&plane, |i, _| i == 1).is_none());
    }

    #[test]
    fn orientation_above_and_below() {
        let sys = sys("Lx x Ux", "Lx x Ux");
        let plane = crate::plane::PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
        let r = plane.rects[0];
        // Force above: t1 may not start until t2 done.
        let above = find_path(&plane, |i, j| i >= r.x_lo && j < r.y_hi).unwrap();
        assert_eq!(passes_above(&above, &r), Some(true));
        // Force below: t2 may not start until t1 done.
        let below = find_path(&plane, |i, j| j >= r.y_lo && i < r.x_hi).unwrap();
        assert_eq!(passes_above(&below, &r), Some(false));
    }
}
