//! The geometric method for pairs of totally ordered transactions
//! (Section 3 of the paper, after Yannakakis, Papadimitriou & Kung \[17\] and
//! Papadimitriou \[7\]).
//!
//! Two totally ordered transactions span a *coordinated plane*; entities
//! locked by both contribute forbidden rectangles; schedules are monotone
//! curves; and (Proposition 1) a schedule is non-serializable iff its curve
//! separates two rectangles. This crate implements the picture, the
//! separation test (an independent implementation used to cross-validate the
//! graph-theoretic method of `kplock-core`), geometric deadlock detection,
//! and ASCII rendering of the paper's figures.

pub mod deadlock;
pub mod error;
pub mod grid;
pub mod plane;
pub mod render;
pub mod separation;

pub use deadlock::{deadlock_states, has_deadlock};
pub use error::GeometryError;
pub use grid::{find_path, passes_above, schedule_from_path};
pub use plane::{PlanePicture, Rectangle};
pub use render::render;
pub use separation::{find_separation, plane_is_safe, separate, SeparationWitness};
