//! The geometric method for pairs of totally ordered transactions
//! (Section 3 of the paper, after Yannakakis, Papadimitriou & Kung \[17\] and
//! Papadimitriou \[7\]).
//!
//! Two totally ordered transactions span a *coordinated plane*; entities
//! locked by both contribute forbidden rectangles; schedules are monotone
//! curves; and (Proposition 1) a schedule is non-serializable iff its curve
//! separates two rectangles. This crate implements the picture, the
//! separation test (an independent implementation used to cross-validate the
//! graph-theoretic method of `kplock-core`), geometric deadlock detection,
//! and ASCII rendering of the paper's figures.
//!
//! # Example
//!
//! The classic opposed pair: each transaction locks x then y in opposite
//! orders. Geometrically the two forbidden rectangles overlap into a
//! region whose south-west corner is a deadlock state.
//!
//! ```
//! use kplock_geometry::{has_deadlock, plane_is_safe, PlanePicture};
//! use kplock_model::{Database, TxnBuilder, TxnId, TxnSystem};
//!
//! let db = Database::centralized(&["x", "y"]);
//! let mut b1 = TxnBuilder::new(&db, "t1");
//! b1.script("Lx Ly x y Ux Uy").unwrap();
//! let t1 = b1.build().unwrap();
//! let mut b2 = TxnBuilder::new(&db, "t2");
//! b2.script("Ly Lx y x Uy Ux").unwrap();
//! let t2 = b2.build().unwrap();
//! let sys = TxnSystem::new(db, vec![t1, t2]);
//!
//! let pic = PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
//! assert_eq!(pic.rects.len(), 2);           // one rectangle per shared entity
//! assert!(plane_is_safe(&pic));             // 2PL: no separating curve exists
//! assert!(has_deadlock(&pic));              // but opposed orders can deadlock
//! ```

pub mod deadlock;
pub mod error;
pub mod grid;
pub mod plane;
pub mod render;
pub mod separation;

pub use deadlock::{deadlock_states, has_deadlock};
pub use error::GeometryError;
pub use grid::{find_path, passes_above, schedule_from_path};
pub use plane::{PlanePicture, Rectangle};
pub use render::render;
pub use separation::{find_separation, plane_is_safe, separate, SeparationWitness};
