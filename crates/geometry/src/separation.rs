//! Proposition 1: a schedule is non-serializable iff its curve separates two
//! rectangles.
//!
//! The separation test asks, for an ordered pair of rectangles `(A, B)`,
//! whether some legal monotone curve passes **above** `A` and **below** `B`.
//! If such a curve exists the corresponding schedule orders t2-before-t1 on
//! `A`'s entity but t1-before-t2 on `B`'s — a cycle in the serialization
//! graph.

use crate::grid::{find_path, schedule_from_path};
use crate::plane::{PlanePicture, Rectangle};
use kplock_model::{EntityId, Schedule};

/// A witness that a pair of total orders is unsafe.
#[derive(Clone, Debug)]
pub struct SeparationWitness {
    /// Entity whose rectangle the curve passes above (t2 first).
    pub above: EntityId,
    /// Entity whose rectangle the curve passes below (t1 first).
    pub below: EntityId,
    /// The separating curve as a state path.
    pub path: Vec<(usize, usize)>,
    /// The non-serializable schedule read off the curve.
    pub schedule: Schedule,
}

/// Searches for a curve passing above `a` and below `b`.
pub fn separate(plane: &PlanePicture, a: &Rectangle, b: &Rectangle) -> Option<SeparationWitness> {
    // Above a: forbid states where t1 started a's section (i >= a.x_lo)
    // while t2 has not finished it (j < a.y_hi).
    // Below b: forbid states where t2 started b's section (j >= b.y_lo)
    // while t1 has not finished it (i < b.x_hi).
    let path = find_path(plane, |i, j| {
        (i >= a.x_lo && j < a.y_hi) || (j >= b.y_lo && i < b.x_hi)
    })?;
    let schedule = schedule_from_path(plane, &path);
    Some(SeparationWitness {
        above: a.entity,
        below: b.entity,
        path,
        schedule,
    })
}

/// Finds any separation witness for the plane (Proposition 1: the pair of
/// total orders is unsafe iff such a witness exists).
pub fn find_separation(plane: &PlanePicture) -> Option<SeparationWitness> {
    for (ia, a) in plane.rects.iter().enumerate() {
        for (ib, b) in plane.rects.iter().enumerate() {
            if ia == ib {
                continue;
            }
            if let Some(w) = separate(plane, a, b) {
                return Some(w);
            }
        }
    }
    None
}

/// Proposition-1 safety for a pair of total orders: safe iff no curve
/// separates two rectangles.
pub fn plane_is_safe(plane: &PlanePicture) -> bool {
    find_separation(plane).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_model::{is_serializable, Database, TxnBuilder, TxnId, TxnSystem};

    fn sys(script1: &str, script2: &str) -> TxnSystem {
        let db = Database::centralized(&["x", "y", "z"]);
        let mut b1 = TxnBuilder::new(&db, "t1");
        b1.script(script1).unwrap();
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "t2");
        b2.script(script2).unwrap();
        let t2 = b2.build().unwrap();
        TxnSystem::new(db, vec![t1, t2])
    }

    #[test]
    fn two_phase_totals_are_safe() {
        // Both two-phase: all locks precede all unlocks.
        let sys = sys("Lx Ly x y Ux Uy", "Lx Ly x y Uy Ux");
        let plane = PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
        assert!(plane_is_safe(&plane));
    }

    #[test]
    fn non_two_phase_pair_is_unsafe_with_valid_witness() {
        let sys = sys("Lx x Ux Ly y Uy", "Ly y Uy Lx x Ux");
        let plane = PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
        let w = find_separation(&plane).expect("unsafe");
        // The witness schedule must be legal, complete and non-serializable.
        w.schedule.validate_complete(&sys).unwrap();
        assert!(!is_serializable(&sys, &w.schedule));
    }

    #[test]
    fn single_shared_entity_is_safe() {
        let sys = sys("Lx x Ux Ly y Uy", "Lx x Ux Lz z Uz");
        let plane = PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
        assert_eq!(plane.rects.len(), 1);
        assert!(plane_is_safe(&plane));
    }

    #[test]
    fn separation_orientation_matches_claim() {
        let sys = sys("Lx x Ux Ly y Uy", "Ly y Uy Lx x Ux");
        let plane = PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
        let w = find_separation(&plane).unwrap();
        let ra = plane.rect_of(w.above).unwrap();
        let rb = plane.rect_of(w.below).unwrap();
        assert_eq!(crate::grid::passes_above(&w.path, ra), Some(true));
        assert_eq!(crate::grid::passes_above(&w.path, rb), Some(false));
    }
}
