//! The coordinated plane of a pair of totally ordered transactions.
//!
//! Following \[7, 17\] and Section 3 of the paper: the horizontal axis lists
//! the steps of `t1` (positions `1..=m1`), the vertical axis the steps of
//! `t2`. A *state* `(i, j)` means `i` steps of `t1` and `j` steps of `t2`
//! have executed. Every entity locked by both transactions contributes a
//! **forbidden rectangle**: the states in which both transactions would hold
//! its lock.

use crate::error::GeometryError;
use kplock_model::{EntityId, StepId, TxnId, TxnSystem};

/// A forbidden rectangle for one entity locked by both transactions.
///
/// State `(i, j)` is inside iff `x_lo <= i < x_hi` and `y_lo <= j < y_hi`,
/// where positions are 1-based step counts: `x_lo` is the position of
/// `lock e` in `t1` and `x_hi` the position of `unlock e` in `t1` (likewise
/// `y_*` in `t2`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rectangle {
    /// The shared entity.
    pub entity: EntityId,
    /// Position of `lock e` in `t1`.
    pub x_lo: usize,
    /// Position of `unlock e` in `t1`.
    pub x_hi: usize,
    /// Position of `lock e` in `t2`.
    pub y_lo: usize,
    /// Position of `unlock e` in `t2`.
    pub y_hi: usize,
}

impl Rectangle {
    /// True iff state `(i, j)` lies inside the forbidden region.
    #[inline]
    pub fn contains_state(&self, i: usize, j: usize) -> bool {
        self.x_lo <= i && i < self.x_hi && self.y_lo <= j && j < self.y_hi
    }
}

/// The geometric picture of a pair of totally ordered transactions.
#[derive(Clone, Debug)]
pub struct PlanePicture {
    /// Transaction on the horizontal axis.
    pub txn_x: TxnId,
    /// Transaction on the vertical axis.
    pub txn_y: TxnId,
    /// `t1`'s steps in execution order (position `p` ↔ `order_x[p-1]`).
    pub order_x: Vec<StepId>,
    /// `t2`'s steps in execution order.
    pub order_y: Vec<StepId>,
    /// One forbidden rectangle per entity locked by both transactions,
    /// in ascending entity order.
    pub rects: Vec<Rectangle>,
}

impl PlanePicture {
    /// Builds the picture for transactions `a` (horizontal) and `b`
    /// (vertical) of `sys`. Both must be total orders.
    pub fn new(sys: &TxnSystem, a: TxnId, b: TxnId) -> Result<Self, GeometryError> {
        let ta = sys.txn(a);
        let tb = sys.txn(b);
        let order_x = ta.total_order().ok_or(GeometryError::NotTotalOrder(a))?;
        let order_y = tb.total_order().ok_or(GeometryError::NotTotalOrder(b))?;

        // 1-based positions of each step.
        let pos = |order: &[StepId], s: StepId| -> usize {
            order.iter().position(|&t| t == s).expect("step in order") + 1
        };

        let mut rects = Vec::new();
        for e in sys.shared_locked_entities(a, b) {
            let (lx, ux) = (ta.lock_step(e).unwrap(), ta.unlock_step(e).unwrap());
            let (ly, uy) = (tb.lock_step(e).unwrap(), tb.unlock_step(e).unwrap());
            rects.push(Rectangle {
                entity: e,
                x_lo: pos(&order_x, lx),
                x_hi: pos(&order_x, ux),
                y_lo: pos(&order_y, ly),
                y_hi: pos(&order_y, uy),
            });
        }
        Ok(PlanePicture {
            txn_x: a,
            txn_y: b,
            order_x,
            order_y,
            rects,
        })
    }

    /// Horizontal extent (`m1`).
    pub fn width(&self) -> usize {
        self.order_x.len()
    }

    /// Vertical extent (`m2`).
    pub fn height(&self) -> usize {
        self.order_y.len()
    }

    /// True iff state `(i, j)` is forbidden (inside some rectangle).
    pub fn forbidden(&self, i: usize, j: usize) -> bool {
        self.rects.iter().any(|r| r.contains_state(i, j))
    }

    /// The rectangle of entity `e`, if the entity is shared.
    pub fn rect_of(&self, e: EntityId) -> Option<&Rectangle> {
        self.rects.iter().find(|r| r.entity == e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_model::{Database, TxnBuilder};

    fn sys() -> TxnSystem {
        let db = Database::centralized(&["x", "y"]);
        let mut b1 = TxnBuilder::new(&db, "t1");
        b1.script("Lx x Ux Ly y Uy").unwrap();
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "t2");
        b2.script("Ly y Uy Lx x Ux").unwrap();
        let t2 = b2.build().unwrap();
        TxnSystem::new(db, vec![t1, t2])
    }

    #[test]
    fn builds_rectangles() {
        let sys = sys();
        let p = PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
        assert_eq!(p.width(), 6);
        assert_eq!(p.height(), 6);
        assert_eq!(p.rects.len(), 2);
        let x = sys.db().entity("x").unwrap();
        let rx = p.rect_of(x).unwrap();
        // In t1, Lx at position 1, Ux at position 3; in t2, Lx at 4, Ux at 6.
        assert_eq!((rx.x_lo, rx.x_hi, rx.y_lo, rx.y_hi), (1, 3, 4, 6));
        assert!(rx.contains_state(1, 4));
        assert!(rx.contains_state(2, 5));
        assert!(!rx.contains_state(3, 4));
        assert!(!rx.contains_state(1, 6));
    }

    #[test]
    fn forbidden_union() {
        let sys = sys();
        let p = PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
        // y-rectangle: t1 positions (4,6), t2 positions (1,3).
        assert!(p.forbidden(4, 1));
        assert!(p.forbidden(1, 4));
        assert!(!p.forbidden(0, 0));
        assert!(!p.forbidden(6, 6));
        assert!(!p.forbidden(3, 3));
    }

    #[test]
    fn rejects_partial_orders() {
        let db = Database::from_spec(&[("x", 0), ("z", 1)]);
        let mut b = TxnBuilder::new(&db, "T");
        b.lock("x").unwrap();
        b.lock("z").unwrap(); // concurrent with Lx (different sites)
        b.unlock("x").unwrap();
        b.unlock("z").unwrap();
        let t = b.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "t2");
        b2.script("Lx Ux").unwrap();
        let t2 = b2.build().unwrap();
        let sys = TxnSystem::new(db, vec![t, t2]);
        assert!(matches!(
            PlanePicture::new(&sys, TxnId(0), TxnId(1)),
            Err(GeometryError::NotTotalOrder(_))
        ));
    }
}
