//! Geometric deadlock detection for pairs of total orders.
//!
//! A reachable state from which the goal `(m1, m2)` cannot be reached is a
//! *deadlock state*: both transactions are blocked forever. In the
//! coordinated plane these are the states trapped in the "concave corners"
//! of the forbidden region (cf. Lipski & Papadimitriou \[5\] and
//! Soisalon-Soininen & Wood \[14\], which test safety *and* deadlock-freedom).

use crate::plane::PlanePicture;

/// All deadlock states: reachable from `(0,0)` by legal monotone moves but
/// unable to reach `(m1, m2)`.
pub fn deadlock_states(plane: &PlanePicture) -> Vec<(usize, usize)> {
    let (w, h) = (plane.width(), plane.height());
    let idx = |i: usize, j: usize| i * (h + 1) + j;
    let free: Vec<bool> = (0..=w)
        .flat_map(|i| (0..=h).map(move |j| (i, j)))
        .map(|(i, j)| !plane.forbidden(i, j))
        .collect();

    // Forward reachability from (0,0).
    let mut reach = vec![false; (w + 1) * (h + 1)];
    if free[idx(0, 0)] {
        reach[idx(0, 0)] = true;
        for i in 0..=w {
            for j in 0..=h {
                if !reach[idx(i, j)] {
                    continue;
                }
                if i < w && free[idx(i + 1, j)] {
                    reach[idx(i + 1, j)] = true;
                }
                if j < h && free[idx(i, j + 1)] {
                    reach[idx(i, j + 1)] = true;
                }
            }
        }
    }

    // Backward reachability to (w,h).
    let mut coreach = vec![false; (w + 1) * (h + 1)];
    if free[idx(w, h)] {
        coreach[idx(w, h)] = true;
        for i in (0..=w).rev() {
            for j in (0..=h).rev() {
                if !coreach[idx(i, j)] || !free[idx(i, j)] {
                    continue;
                }
                if i > 0 && free[idx(i - 1, j)] {
                    coreach[idx(i - 1, j)] = true;
                }
                if j > 0 && free[idx(i, j - 1)] {
                    coreach[idx(i, j - 1)] = true;
                }
            }
        }
    }

    let mut out = Vec::new();
    for i in 0..=w {
        for j in 0..=h {
            if reach[idx(i, j)] && !coreach[idx(i, j)] {
                out.push((i, j));
            }
        }
    }
    out
}

/// True iff some legal execution of the pair can deadlock.
pub fn has_deadlock(plane: &PlanePicture) -> bool {
    !deadlock_states(plane).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::PlanePicture;
    use kplock_model::{Database, TxnBuilder, TxnId, TxnSystem};

    fn sys(script1: &str, script2: &str) -> TxnSystem {
        let db = Database::centralized(&["x", "y"]);
        let mut b1 = TxnBuilder::new(&db, "t1");
        b1.script(script1).unwrap();
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "t2");
        b2.script(script2).unwrap();
        let t2 = b2.build().unwrap();
        TxnSystem::new(db, vec![t1, t2])
    }

    #[test]
    fn opposite_order_two_phase_can_deadlock() {
        // Classic: t1 locks x then y; t2 locks y then x.
        let sys = sys("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux");
        let plane = PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
        assert!(has_deadlock(&plane));
        // The deadlock state: t1 holds x waiting for y, t2 holds y waiting
        // for x — i.e. state (1,1) (each executed its first lock).
        assert!(deadlock_states(&plane).contains(&(1, 1)));
    }

    #[test]
    fn same_order_locking_is_deadlock_free() {
        let sys = sys("Lx Ly x y Ux Uy", "Lx Ly x y Ux Uy");
        let plane = PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
        assert!(!has_deadlock(&plane));
    }

    #[test]
    fn disjoint_transactions_no_deadlock() {
        let sys = sys("Lx x Ux", "Ly y Uy");
        let plane = PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
        assert!(!has_deadlock(&plane));
    }
}
