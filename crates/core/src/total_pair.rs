//! Safety of a pair of **totally ordered** transactions.
//!
//! For total orders the coordinated plane is unique, and safety is
//! equivalent to strong connectivity of `D(t1, t2)` (the single-site case of
//! Theorem 2, which the paper notes gives "an interesting insight into
//! centralized locking"). The unsafe direction is constructive: any
//! dominator `X` of `D(t1, t2)` yields a non-serializable schedule by
//! running `t1`'s lock sections first on `X` and `t2`'s first elsewhere.

use crate::certificate::{SafeProof, SafetyVerdict, UnsafetyCertificate};
use crate::conflict_graph::ConflictDigraph;
use kplock_graph::{find_dominator, topo_sort_by_key, DiGraph};
use kplock_model::{EntityId, Schedule, ScheduledStep, StepId, TxnId, TxnSystem};

/// Builds a legal complete schedule of `{Ta, Tb}` in which, for every shared
/// locked entity, the lock section of `Ta` comes first iff the entity is in
/// `x_first`; other entities run `Tb`'s section first. Returns `None` if the
/// orientation is infeasible (the combined precedence graph has a cycle).
///
/// `t1_order` and `t2_order` must be linear extensions of the transactions.
pub fn schedule_from_orientation(
    sys: &TxnSystem,
    a: TxnId,
    b: TxnId,
    t1_order: &[StepId],
    t2_order: &[StepId],
    x_first: &[EntityId],
) -> Option<Schedule> {
    let ta = sys.txn(a);
    let tb = sys.txn(b);
    let (m1, m2) = (t1_order.len(), t2_order.len());
    debug_assert_eq!(m1, ta.len());
    debug_assert_eq!(m2, tb.len());

    // Combined graph: nodes 0..m1 = positions of t1, m1..m1+m2 = positions
    // of t2 (using *positions* in the total orders, so the chains are just
    // consecutive edges).
    let mut g = DiGraph::new(m1 + m2);
    for i in 0..m1.saturating_sub(1) {
        g.add_edge(i, i + 1);
    }
    for j in 0..m2.saturating_sub(1) {
        g.add_edge(m1 + j, m1 + j + 1);
    }
    let pos1 = |s: StepId| t1_order.iter().position(|&t| t == s).expect("in order");
    let pos2 = |s: StepId| t2_order.iter().position(|&t| t == s).expect("in order");

    for e in sys.shared_locked_entities(a, b) {
        let (la, ua) = (ta.lock_step(e).unwrap(), ta.unlock_step(e).unwrap());
        let (lb, ub) = (tb.lock_step(e).unwrap(), tb.unlock_step(e).unwrap());
        if x_first.contains(&e) {
            // Ta's section before Tb's: Ua before Lb.
            g.add_edge(pos1(ua), m1 + pos2(lb));
        } else {
            g.add_edge(m1 + pos2(ub), pos1(la));
        }
    }

    let order = topo_sort_by_key(&g, |v| v)?;
    let mut steps = Vec::with_capacity(m1 + m2);
    for v in order {
        if v < m1 {
            steps.push(ScheduledStep {
                txn: a,
                step: t1_order[v],
            });
        } else {
            steps.push(ScheduledStep {
                txn: b,
                step: t2_order[v - m1],
            });
        }
    }
    Some(Schedule::new(steps))
}

/// Decides safety of a pair of total orders: safe iff `D(t1, t2)` is
/// strongly connected; otherwise returns a verified-shape certificate built
/// from a dominator orientation.
///
/// # Panics
/// Panics if either transaction is not a total order (callers should
/// enumerate linear extensions first — Lemma 1).
pub fn decide_total_pair(sys: &TxnSystem, a: TxnId, b: TxnId) -> SafetyVerdict {
    let t1_order = sys
        .txn(a)
        .total_order()
        .expect("decide_total_pair requires total orders");
    let t2_order = sys
        .txn(b)
        .total_order()
        .expect("decide_total_pair requires total orders");

    let d = ConflictDigraph::build(sys, a, b);
    if d.entities.len() < 2 {
        return SafetyVerdict::Safe(SafeProof::TrivialOverlap);
    }
    if d.is_strongly_connected() {
        return SafetyVerdict::Safe(SafeProof::StronglyConnected);
    }

    // Unsafe: orient around a dominator. For total orders the paper shows
    // {t1,t2} is closed with respect to *any* dominator, so the source-SCC
    // dominator always yields a feasible orientation.
    let dom = find_dominator(&d.graph).expect("not strongly connected");
    let x_first: Vec<EntityId> = dom.iter().map(|i| d.entities[i]).collect();
    let schedule = schedule_from_orientation(sys, a, b, &t1_order, &t2_order, &x_first)
        .expect("total orders are closed w.r.t. any dominator (paper, Section 4)");

    SafetyVerdict::Unsafe(Box::new(UnsafetyCertificate {
        txn_a: a,
        txn_b: b,
        t1_order,
        t2_order,
        dominator: x_first,
        schedule,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_geometry::{plane_is_safe, PlanePicture};
    use kplock_model::{Database, TxnBuilder};

    fn pair(script1: &str, script2: &str, names: &[&str]) -> TxnSystem {
        let db = Database::centralized(names);
        let mut b1 = TxnBuilder::new(&db, "t1");
        b1.script(script1).unwrap();
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "t2");
        b2.script(script2).unwrap();
        let t2 = b2.build().unwrap();
        TxnSystem::new(db, vec![t1, t2])
    }

    #[test]
    fn unsafe_pair_has_verifiable_certificate() {
        let sys = pair("Lx x Ux Ly y Uy", "Ly y Uy Lx x Ux", &["x", "y"]);
        let v = decide_total_pair(&sys, TxnId(0), TxnId(1));
        let cert = v.certificate().expect("unsafe");
        cert.verify(&sys).unwrap();
    }

    #[test]
    fn safe_pair_two_phase() {
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &["x", "y"]);
        let v = decide_total_pair(&sys, TxnId(0), TxnId(1));
        assert!(matches!(
            v,
            SafetyVerdict::Safe(SafeProof::StronglyConnected)
        ));
    }

    #[test]
    fn agrees_with_geometric_method() {
        // Several hand-made pairs, cross-checked against Proposition 1.
        let cases = [
            ("Lx x Ux Ly y Uy", "Ly y Uy Lx x Ux"),
            ("Lx Ly x y Ux Uy", "Lx Ly y x Uy Ux"),
            ("Lx x Ux Ly y Uy", "Lx x Ux Ly y Uy"),
            ("Lx x Lz z Uz Ux Ly y Uy", "Lz z Uz Ly y Uy Lx x Ux"),
            ("Lx x Ux Lz z Uz Ly y Uy", "Ly y Uy Lz z Uz Lx x Ux"),
        ];
        for (s1, s2) in cases {
            let sys = pair(s1, s2, &["x", "y", "z"]);
            let graph_safe = decide_total_pair(&sys, TxnId(0), TxnId(1)).is_safe();
            let plane = PlanePicture::new(&sys, TxnId(0), TxnId(1)).unwrap();
            assert_eq!(
                graph_safe,
                plane_is_safe(&plane),
                "methods disagree on ({s1}, {s2})"
            );
        }
    }

    #[test]
    fn single_shared_entity_is_trivially_safe() {
        let sys = pair("Lx x Ux Ly y Uy", "Lx x Ux Lz z Uz", &["x", "y", "z"]);
        let v = decide_total_pair(&sys, TxnId(0), TxnId(1));
        assert!(matches!(v, SafetyVerdict::Safe(SafeProof::TrivialOverlap)));
    }

    #[test]
    fn orientation_schedule_is_legal_for_feasible_assignments() {
        let sys = pair("Lx Ly x y Ux Uy", "Lx Ly y x Uy Ux", &["x", "y"]);
        let t1 = sys.txn(TxnId(0)).total_order().unwrap();
        let t2 = sys.txn(TxnId(1)).total_order().unwrap();
        let x = sys.db().entity("x").unwrap();
        let y = sys.db().entity("y").unwrap();
        // Uniform orientations are always feasible (serial-ish schedules).
        for x_first in [vec![], vec![x, y]] {
            let s =
                schedule_from_orientation(&sys, TxnId(0), TxnId(1), &t1, &t2, &x_first).unwrap();
            s.validate_complete(&sys).unwrap();
            assert!(kplock_model::is_serializable(&sys, &s));
        }
    }
}
