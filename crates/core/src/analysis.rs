//! High-level entry point: analyze a two-transaction system.

use crate::certificate::SafetyVerdict;
use crate::conflict_graph::ConflictDigraph;
use crate::multisite::{decide_multisite, MultisiteOptions};
use crate::two_site::decide_two_site;
use kplock_model::{TxnId, TxnSystem};

/// Everything the paper's machinery can say about a pair.
#[derive(Clone, Debug)]
pub struct PairAnalysis {
    /// The conflict digraph `D(T1, T2)`.
    pub d: ConflictDigraph,
    /// Whether `D` is strongly connected (Theorem 1's condition).
    pub strongly_connected: bool,
    /// The safety verdict. Exact for ≤ 2 sites (Theorem 2); for more sites
    /// the multisite procedure is used (Theorem 1 + Corollary 2 + oracle).
    pub verdict: SafetyVerdict,
    /// Number of sites in the database.
    pub sites: usize,
}

/// Analyzes a system of exactly two transactions with default options.
pub fn analyze_pair(sys: &TxnSystem) -> PairAnalysis {
    assert_eq!(
        sys.len(),
        2,
        "analyze_pair expects exactly two transactions"
    );
    let (a, b) = (TxnId(0), TxnId(1));
    let d = ConflictDigraph::build(sys, a, b);
    let strongly_connected = d.is_strongly_connected();
    let sites = sys.db().site_count();
    let verdict = if sites <= 2 {
        decide_two_site(sys, a, b).expect("≤ 2 sites")
    } else {
        decide_multisite(sys, a, b, &MultisiteOptions::default())
    };
    PairAnalysis {
        d,
        strongly_connected,
        verdict,
        sites,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_model::{Database, TxnBuilder};

    #[test]
    fn analyze_routes_by_site_count() {
        let db = Database::from_spec(&[("x", 0), ("y", 1), ("z", 2)]);
        let mk = |n: &str| {
            let mut b = TxnBuilder::new(&db, n);
            b.script("Lx x Ux").unwrap();
            b.script("Ly y Uy").unwrap();
            b.script("Lz z Uz").unwrap();
            b.build().unwrap()
        };
        let (t1, t2) = (mk("T1"), mk("T2"));
        let sys = TxnSystem::new(db.clone(), vec![t1, t2]);
        let analysis = analyze_pair(&sys);
        assert_eq!(analysis.sites, 3);
        assert!(!analysis.strongly_connected);
        assert!(analysis.verdict.is_unsafe());
    }
}
