//! Exact schedule counting: quantifying concurrency.
//!
//! The paper's opening concern is that locking should "not unnecessarily
//! restrict the parallelism of the system". This module makes the
//! restriction measurable: it counts, exactly, the legal complete schedules
//! of a system and how many of them are serializable, by dynamic
//! programming over the product state space (progress vectors +
//! serialization-graph edges), memoized.
//!
//! `serializable == legal` is yet another (exhaustive) characterization of
//! safety, cross-checked against the decision procedures in tests.

use kplock_model::{ActionKind, StepId, TxnId, TxnSystem};
use std::collections::HashMap;

/// Exact counts for a system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleCounts {
    /// Number of legal complete schedules.
    pub legal: u128,
    /// How many of them are serializable.
    pub serializable: u128,
    /// Whether some reachable state is a deadlock (no step can move, yet
    /// the system is incomplete).
    pub deadlock_reachable: bool,
}

impl ScheduleCounts {
    /// The fraction of legal schedules that are serializable (1.0 for an
    /// empty schedule space).
    pub fn serializable_fraction(&self) -> f64 {
        if self.legal == 0 {
            1.0
        } else {
            self.serializable as f64 / self.legal as f64
        }
    }

    /// Safety, the exhaustive way.
    pub fn is_safe(&self) -> bool {
        self.legal == self.serializable
    }
}

/// Counts schedules exactly. Returns `None` if more than `max_states`
/// distinct memo states are visited.
///
/// # Panics
/// Panics if the system has more than 8 transactions or a transaction has
/// more than 64 steps (state encoding limits).
pub fn count_schedules(sys: &TxnSystem, max_states: usize) -> Option<ScheduleCounts> {
    let k = sys.len();
    assert!(k <= 8, "counting limited to 8 transactions");
    for t in sys.txns() {
        assert!(
            t.len() <= 64,
            "counting limited to 64 steps per transaction"
        );
    }

    let full: Vec<u64> = sys
        .txns()
        .iter()
        .map(|t| {
            if t.len() == 64 {
                u64::MAX
            } else {
                (1u64 << t.len()) - 1
            }
        })
        .collect();

    let sg_cyclic = |sg: u64| -> bool {
        let mut rows = [0u64; 8];
        for (i, row) in rows.iter_mut().enumerate().take(k) {
            *row = (sg >> (i * 8)) & 0xFF;
        }
        for _ in 0..k {
            for i in 0..k {
                let mut r = rows[i];
                let mut bits = r;
                while bits != 0 {
                    let j = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    r |= rows[j];
                }
                rows[i] = r;
            }
        }
        (0..k).any(|i| rows[i] & (1 << i) != 0)
    };

    struct Ctx<'a> {
        sys: &'a TxnSystem,
        full: Vec<u64>,
        memo: HashMap<(Vec<u64>, u64), (u128, u128)>,
        deadlock: bool,
        max_states: usize,
    }

    fn holds(sys: &TxnSystem, done: &[u64], i: usize, e: kplock_model::EntityId) -> bool {
        let t = sys.txn(TxnId::from_idx(i));
        match (t.lock_step(e), t.unlock_step(e)) {
            (Some(l), Some(u)) => done[i] & (1 << l.idx()) != 0 && done[i] & (1 << u.idx()) == 0,
            _ => false,
        }
    }

    fn rec(
        ctx: &mut Ctx<'_>,
        done: &[u64],
        sg: u64,
        cyclic: &impl Fn(u64) -> bool,
    ) -> Option<(u128, u128)> {
        let k = ctx.sys.len();
        if (0..k).all(|i| done[i] == ctx.full[i]) {
            let ser = u128::from(!cyclic(sg));
            return Some((1, ser));
        }
        let key = (done.to_vec(), sg);
        if let Some(&v) = ctx.memo.get(&key) {
            return Some(v);
        }
        if ctx.memo.len() >= ctx.max_states {
            return None;
        }
        let mut legal = 0u128;
        let mut serializable = 0u128;
        let mut moved = false;
        for i in 0..k {
            let t = ctx.sys.txn(TxnId::from_idx(i));
            let remaining = ctx.full[i] & !done[i];
            let mut bits = remaining;
            while bits != 0 {
                let v = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let preds_ok = t
                    .edge_graph()
                    .predecessors(v)
                    .iter()
                    .all(|&p| done[i] & (1 << p) != 0);
                if !preds_ok {
                    continue;
                }
                let step = t.step(StepId::from_idx(v));
                if step.kind == ActionKind::Lock
                    && (0..k).any(|j| j != i && holds(ctx.sys, done, j, step.entity))
                {
                    continue;
                }
                moved = true;
                let mut next = done.to_vec();
                next[i] |= 1 << v;
                // Serialization-graph update for access steps.
                let is_access = match step.kind {
                    ActionKind::Update => true,
                    ActionKind::Lock => t.update_steps(step.entity).is_empty(),
                    ActionKind::Unlock => false,
                };
                let mut next_sg = sg;
                if is_access {
                    #[allow(clippy::needless_range_loop)]
                    for j in 0..k {
                        if j == i {
                            continue;
                        }
                        let tj = ctx.sys.txn(TxnId::from_idx(j));
                        let accessed = tj.step_ids().any(|s| {
                            let st = tj.step(s);
                            st.entity == step.entity
                                && (st.kind == ActionKind::Update
                                    || (st.kind == ActionKind::Lock
                                        && tj.update_steps(st.entity).is_empty()))
                                && done[j] & (1 << s.idx()) != 0
                        });
                        if accessed {
                            next_sg |= 1 << (j * 8 + i);
                        }
                    }
                }
                let (l, s) = rec(ctx, &next, next_sg, cyclic)?;
                legal += l;
                serializable += s;
            }
        }
        if !moved {
            ctx.deadlock = true;
        }
        ctx.memo.insert(key, (legal, serializable));
        Some((legal, serializable))
    }

    let mut ctx = Ctx {
        sys,
        full,
        memo: HashMap::new(),
        deadlock: false,
        max_states,
    };
    let done = vec![0u64; k];
    let (legal, serializable) = rec(&mut ctx, &done, 0, &sg_cyclic)?;
    Some(ScheduleCounts {
        legal,
        serializable,
        deadlock_reachable: ctx.deadlock,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_model::{Database, TxnBuilder};

    fn pair(s1: &str, s2: &str, spec: &[(&str, usize)]) -> TxnSystem {
        let db = Database::from_spec(spec);
        let mut b1 = TxnBuilder::new(&db, "T1");
        b1.script(s1).unwrap();
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "T2");
        b2.script(s2).unwrap();
        let t2 = b2.build().unwrap();
        TxnSystem::new(db, vec![t1, t2])
    }

    #[test]
    fn disjoint_pairs_count_binomials() {
        // Two 3-step chains with no conflicts: C(6,3) = 20 interleavings,
        // all serializable.
        let sys = pair("Lx x Ux", "Ly y Uy", &[("x", 0), ("y", 0)]);
        let c = count_schedules(&sys, 1_000_000).unwrap();
        assert_eq!(c.legal, 20);
        assert_eq!(c.serializable, 20);
        assert!(c.is_safe());
        assert!(!c.deadlock_reachable);
    }

    #[test]
    fn fully_conflicting_pair_counts_two() {
        // Both transactions need the same lock for their whole body: only
        // the two serial orders are legal.
        let sys = pair("Lx x Ux", "Lx x Ux", &[("x", 0)]);
        let c = count_schedules(&sys, 1_000_000).unwrap();
        assert_eq!(c.legal, 2);
        assert_eq!(c.serializable, 2);
    }

    #[test]
    fn unsafe_pair_has_nonserializable_schedules() {
        let sys = pair("Lx x Ux Ly y Uy", "Ly y Uy Lx x Ux", &[("x", 0), ("y", 0)]);
        let c = count_schedules(&sys, 1_000_000).unwrap();
        assert!(c.legal > c.serializable, "{c:?}");
        assert!(!c.is_safe());
        // Agreement with the decision procedure.
        let verdict = crate::two_site::decide_two_site_system(&sys).unwrap();
        assert!(verdict.is_unsafe());
    }

    #[test]
    fn deadlock_detected_in_counts() {
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 0)]);
        let c = count_schedules(&sys, 1_000_000).unwrap();
        assert!(c.deadlock_reachable);
        assert!(c.is_safe(), "two-phase: every completion serializable");
    }

    #[test]
    fn cap_returns_none() {
        let sys = pair("Lx x Ux Ly y Uy", "Ly y Uy Lx x Ux", &[("x", 0), ("y", 0)]);
        assert!(count_schedules(&sys, 1).is_none());
    }

    #[test]
    fn counting_agrees_with_oracle_on_safety() {
        use crate::oracle::{decide_exhaustive, OracleOptions, OracleOutcome};
        let cases = [
            ("Lx x Ux Ly y Uy", "Lx x Ux Ly y Uy"),
            ("Lx x Ux Ly y Uy", "Ly y Uy Lx x Ux"),
            ("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux"),
        ];
        for (s1, s2) in cases {
            let sys = pair(s1, s2, &[("x", 0), ("y", 0)]);
            let c = count_schedules(&sys, 1_000_000).unwrap();
            let o = decide_exhaustive(&sys, &OracleOptions::default());
            assert_eq!(
                c.is_safe(),
                matches!(o.outcome, OracleOutcome::Safe),
                "({s1}, {s2})"
            );
            assert_eq!(c.deadlock_reachable, o.deadlock_reachable, "({s1}, {s2})");
        }
    }
}
