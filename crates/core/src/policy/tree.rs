//! The tree (hierarchical) locking protocol of Silberschatz & Kedem \[12\]
//! — a non-two-phase policy that is nonetheless safe, and the prototype of
//! the hypergraph policies whose characterization the paper extends to
//! distributed databases (Section 6).
//!
//! Rules (for totally ordered transactions over a rooted tree of entities):
//!
//! 1. the first lock may be on any entity;
//! 2. subsequently, an entity may be locked only if the transaction
//!    currently holds the lock on its parent;
//! 3. each entity is locked at most once (enforced by the model);
//! 4. unlocks may happen at any time (no two-phase requirement).

use kplock_model::{ActionKind, EntityId, Transaction};
use std::collections::{HashMap, HashSet};

/// A rooted forest over entities: `parent[e] = None` for roots.
#[derive(Clone, Debug, Default)]
pub struct EntityTree {
    parent: HashMap<EntityId, EntityId>,
}

impl EntityTree {
    /// Builds a tree from `(child, parent)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (EntityId, EntityId)>) -> Self {
        EntityTree {
            parent: pairs.into_iter().collect(),
        }
    }

    /// The parent of `e`, if any.
    pub fn parent(&self, e: EntityId) -> Option<EntityId> {
        self.parent.get(&e).copied()
    }
}

/// Checks that a **totally ordered** transaction follows the tree protocol.
/// Returns `false` for partial orders (the classic protocol is defined for
/// sequential lock request streams).
pub fn follows_tree_protocol(t: &Transaction, tree: &EntityTree) -> bool {
    let Some(order) = t.total_order() else {
        return false;
    };
    let mut held: HashSet<EntityId> = HashSet::new();
    let mut first_lock = true;
    for s in order {
        let step = t.step(s);
        match step.kind {
            ActionKind::Lock => {
                if !first_lock {
                    match tree.parent(step.entity) {
                        Some(p) if held.contains(&p) => {}
                        _ => return false,
                    }
                }
                first_lock = false;
                held.insert(step.entity);
            }
            ActionKind::Unlock => {
                held.remove(&step.entity);
            }
            ActionKind::Update => {}
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{decide_exhaustive, OracleOptions, OracleOutcome};
    use kplock_model::{Database, TxnBuilder, TxnSystem};

    /// Chain tree: x -> y -> z (x is root).
    fn chain_tree(db: &Database) -> EntityTree {
        let x = db.entity("x").unwrap();
        let y = db.entity("y").unwrap();
        let z = db.entity("z").unwrap();
        EntityTree::from_pairs([(y, x), (z, y)])
    }

    #[test]
    fn accepts_crabbing_descent() {
        let db = Database::centralized(&["x", "y", "z"]);
        let mut b = TxnBuilder::new(&db, "T");
        // Lock x, lock y (parent x held), unlock x, lock z (parent y held).
        b.script("Lx x Ly y Ux Lz z Uz Uy").unwrap();
        let t = b.build().unwrap();
        assert!(follows_tree_protocol(&t, &chain_tree(&db)));
    }

    #[test]
    fn rejects_lock_without_parent() {
        let db = Database::centralized(&["x", "y", "z"]);
        let mut b = TxnBuilder::new(&db, "T");
        // Locks z after releasing y: parent not held.
        b.script("Lx x Ly y Ux Uy Lz z Uz").unwrap();
        let t = b.build().unwrap();
        assert!(!follows_tree_protocol(&t, &chain_tree(&db)));
    }

    /// Tree-protocol transactions are non-two-phase yet safe — checked
    /// against the exact oracle.
    #[test]
    fn tree_protocol_pair_is_safe_but_not_two_phase() {
        let db = Database::centralized(&["x", "y", "z"]);
        let tree = chain_tree(&db);
        let mk = |name: &str, script: &str| {
            let mut b = TxnBuilder::new(&db, name);
            b.script(script).unwrap();
            b.build().unwrap()
        };
        // Both descend x -> y -> z with crabbing (release behind).
        let t1 = mk("T1", "Lx x Ly y Ux Lz z Uy Uz");
        let t2 = mk("T2", "Lx x Ly y Ux Lz z Uy Uz");
        assert!(follows_tree_protocol(&t1, &tree));
        assert!(!crate::policy::two_phase::is_loose_two_phase(&t1));
        let sys = TxnSystem::new(db, vec![t1, t2]);
        let r = decide_exhaustive(&sys, &OracleOptions::default());
        assert!(matches!(r.outcome, OracleOutcome::Safe));
    }
}
