//! The centralized image of a distributed locking policy (Section 6).
//!
//! "In distributed databases, a locking policy can be considered as a
//! centralized locking policy, by taking the union of all the transactions,
//! considered as sets of totally ordered transactions. It follows that a
//! policy is correct iff its centralized image is."
//!
//! For finite transaction classes this gives an alternative (exhaustive)
//! correctness check: replace every distributed transaction by all of its
//! linear extensions and decide safety of the resulting centralized class.
//! Lemma 1 specializes this to pairs.

use crate::certificate::{SafeProof, SafetyVerdict};
use crate::total_pair::decide_total_pair;
use kplock_model::{LinearExtensions, TxnId, TxnSystem};

/// Decides correctness of the policy `{T1, ..., Tk}` through its
/// centralized image: every pair of linear extensions of every pair of
/// (not necessarily distinct) transactions must be safe.
///
/// Returns `None` if more than `pair_cap` extension pairs would need
/// checking. Note that a transaction conflicts with *other executions of
/// itself* in a policy (the class is closed under re-execution), so pairs
/// `(i, i)` are included — this is what distinguishes policy correctness
/// from plain system safety.
pub fn centralized_image_safe(sys: &TxnSystem, pair_cap: usize) -> Option<SafetyVerdict> {
    let k = sys.len();
    let mut budget = pair_cap;
    for i in 0..k {
        for j in i..k {
            let (a, b) = (TxnId::from_idx(i), TxnId::from_idx(j));
            if sys.shared_locked_entities(a, b).is_empty() {
                continue;
            }
            for e1 in LinearExtensions::new(sys.txn(a)) {
                for e2 in LinearExtensions::new(sys.txn(b)) {
                    if budget == 0 {
                        return None;
                    }
                    budget -= 1;
                    let lin_a = sys.txn(a).linearized(&e1).expect("extension");
                    let lin_b = sys.txn(b).linearized(&e2).expect("extension");
                    // Centralized: view both on a single notional site by
                    // treating them as total orders (site structure is
                    // irrelevant for total orders).
                    let image = TxnSystem::new(sys.db().clone(), vec![lin_a, lin_b]);
                    let v = decide_total_pair(&image, TxnId(0), TxnId(1));
                    if v.is_unsafe() {
                        return Some(v);
                    }
                }
            }
        }
    }
    Some(SafetyVerdict::Safe(SafeProof::Exhaustive))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_model::{Database, TxnBuilder};

    fn two_txn(scripts: [&str; 2], spec: &[(&str, usize)]) -> TxnSystem {
        let db = Database::from_spec(spec);
        let txns = scripts
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut b = TxnBuilder::new(&db, format!("T{}", i + 1));
                b.script(s).unwrap();
                b.build().unwrap()
            })
            .collect();
        TxnSystem::new(db, txns)
    }

    #[test]
    fn safe_policy_image() {
        let sys = two_txn(
            ["Lx Ly x y Ux Uy", "Lx Ly x y Uy Ux"],
            &[("x", 0), ("y", 0)],
        );
        let v = centralized_image_safe(&sys, 100_000).unwrap();
        assert!(v.is_safe());
    }

    #[test]
    fn self_conflict_matters_for_policies() {
        // A single non-two-phase transaction: as a *system* it is trivially
        // safe (it runs alone), but as a *policy* (the class is closed
        // under re-execution) it is unsafe against a copy of itself.
        let db = Database::from_spec(&[("x", 0), ("y", 0)]);
        let mut b = TxnBuilder::new(&db, "T");
        b.script("Lx x Ux Ly y Uy").unwrap();
        let t = b.build().unwrap();
        let sys = TxnSystem::new(db.clone(), vec![t]);
        let v = centralized_image_safe(&sys, 100_000).unwrap();
        assert!(
            v.is_unsafe(),
            "non-two-phase transactions self-conflict in the image"
        );

        // A two-phase single-transaction policy is correct.
        let mut b = TxnBuilder::new(&db, "P");
        b.script("Lx Ly x y Ux Uy").unwrap();
        let p = b.build().unwrap();
        let sys = TxnSystem::new(db, vec![p]);
        let v = centralized_image_safe(&sys, 100_000).unwrap();
        assert!(v.is_safe());
    }

    #[test]
    fn agrees_with_lemma1_for_pairs() {
        let sys = two_txn(
            ["Lx x Ux Ly y Uy", "Ly y Uy Lx x Ux"],
            &[("x", 0), ("y", 0)],
        );
        let image = centralized_image_safe(&sys, 100_000).unwrap();
        let direct = crate::two_site::decide_two_site_system(&sys).unwrap();
        // The image includes self-pairs, so image-unsafe does not imply
        // system-unsafe in general; here both are unsafe.
        assert!(image.is_unsafe());
        assert!(direct.is_unsafe());
    }

    #[test]
    fn cap_returns_none() {
        let sys = two_txn(
            ["Lx x Ux Ly y Uy", "Ly y Uy Lx x Ux"],
            &[("x", 0), ("y", 0)],
        );
        assert!(centralized_image_safe(&sys, 0).is_none());
    }
}
