//! Two-phase locking for distributed (partially ordered) transactions.
//!
//! For total orders "two-phase" is unambiguous: no lock follows an unlock.
//! For partial orders two readings diverge, and the gap between them is
//! precisely the paper's distributed/centralized gap:
//!
//! * **loose 2PL** ([`is_loose_two_phase`]): no unlock *precedes* any lock
//!   in the partial order. Each site may be two-phase on its own while
//!   lock and unlock steps at different sites stay concurrent. This is NOT
//!   sufficient for safety — `D(T1,T2)` needs `Lx ≺ Uy` positively, and
//!   concurrency kills those arcs (see the tests);
//! * **synchronized 2PL** ([`is_synchronized_two_phase`]): every lock step
//!   precedes every unlock step (there is a global "lock point"). Then
//!   `D(T1, T2)` is complete, hence strongly connected, hence the pair is
//!   safe by Theorem 1 — at the price of a cross-site synchronization
//!   barrier in every transaction.

use kplock_model::{ActionKind, StepId, Transaction};

fn lock_steps(t: &Transaction) -> Vec<StepId> {
    t.step_ids()
        .filter(|&s| t.step(s).kind == ActionKind::Lock)
        .collect()
}

fn unlock_steps(t: &Transaction) -> Vec<StepId> {
    t.step_ids()
        .filter(|&s| t.step(s).kind == ActionKind::Unlock)
        .collect()
}

/// No unlock step precedes any lock step (per-site/loose two-phase).
pub fn is_loose_two_phase(t: &Transaction) -> bool {
    let locks = lock_steps(t);
    unlock_steps(t)
        .iter()
        .all(|&u| locks.iter().all(|&l| !t.precedes(u, l)))
}

/// Every lock step precedes every unlock step (lock-point two-phase).
pub fn is_synchronized_two_phase(t: &Transaction) -> bool {
    let locks = lock_steps(t);
    let unlocks = unlock_steps(t);
    locks
        .iter()
        .all(|&l| unlocks.iter().all(|&u| t.precedes(l, u)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::SafetyVerdict;
    use crate::two_site::decide_two_site_system;
    use kplock_model::{Database, TxnBuilder, TxnSystem};

    #[test]
    fn total_order_two_phase() {
        let db = Database::centralized(&["x", "y"]);
        let mut b = TxnBuilder::new(&db, "T");
        b.script("Lx Ly x y Ux Uy").unwrap();
        let t = b.build().unwrap();
        assert!(is_loose_two_phase(&t));
        assert!(is_synchronized_two_phase(&t));

        let mut b = TxnBuilder::new(&db, "T");
        b.script("Lx x Ux Ly y Uy").unwrap();
        let t = b.build().unwrap();
        assert!(!is_loose_two_phase(&t));
        assert!(!is_synchronized_two_phase(&t));
    }

    /// The paper's headline phenomenon, demonstrated: per-site 2PL without
    /// cross-site synchronization is unsafe.
    #[test]
    fn loose_two_phase_is_not_safe_distributed() {
        let db = Database::from_spec(&[("x", 0), ("w", 1)]);
        let mk = |name: &str| {
            let mut b = TxnBuilder::new(&db, name);
            b.script("Lx x Ux").unwrap(); // site 0: two-phase locally
            b.script("Lw w Uw").unwrap(); // site 1: two-phase locally
            b.build().unwrap()
        };
        let t1 = mk("T1");
        assert!(is_loose_two_phase(&t1), "each site is two-phase");
        assert!(
            !is_synchronized_two_phase(&t1),
            "but there is no global lock point"
        );
        let t2 = mk("T2");
        let sys = TxnSystem::new(db.clone(), vec![t1, t2]);
        let verdict = decide_two_site_system(&sys).unwrap();
        assert!(verdict.is_unsafe(), "loose 2PL admits anomalies");
        verdict.certificate().unwrap().verify(&sys).unwrap();
    }

    /// Synchronized 2PL makes D complete, hence safe (Theorem 1).
    #[test]
    fn synchronized_two_phase_is_safe_distributed() {
        let db = Database::from_spec(&[("x", 0), ("w", 1)]);
        let mk = |name: &str| {
            let mut b = TxnBuilder::new(&db, name);
            let lx = b.lock("x").unwrap();
            let lw = b.lock("w").unwrap();
            let ux_ = b.update("x").unwrap();
            let uw_ = b.update("w").unwrap();
            let ux = b.unlock("x").unwrap();
            let uw = b.unlock("w").unwrap();
            // Lock point: both locks precede both unlocks (cross edges).
            b.edge(lx, uw_);
            b.edge(lw, ux_);
            b.edge(lx, uw);
            b.edge(lw, ux);
            b.edge(ux_, uw);
            b.edge(uw_, ux);
            b.build().unwrap()
        };
        let t1 = mk("T1");
        assert!(is_synchronized_two_phase(&t1), "global lock point exists");
        let t2 = mk("T2");
        let sys = TxnSystem::new(db.clone(), vec![t1, t2]);
        let verdict = decide_two_site_system(&sys).unwrap();
        assert!(matches!(verdict, SafetyVerdict::Safe(_)));
    }
}
