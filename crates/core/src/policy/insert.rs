//! Lock insertion: turning an unlocked transaction (updates only) into a
//! locked one.
//!
//! Locking modifies transactions "by appropriately inserting lock and
//! unlock steps between the update steps" (Section 1). Strategies trade
//! concurrency for safety:
//!
//! * [`LockStrategy::Minimal`] — lock each entity immediately before its
//!   first update and unlock immediately after its last (maximum
//!   concurrency, no safety guarantee);
//! * [`LockStrategy::TwoPhaseSync`] — a lock phase totally ordered across
//!   sites, then the body, then an unlock phase (synchronized 2PL: always
//!   safe, minimum concurrency);
//! * [`LockStrategy::TwoPhaseLoose`] — per-site two-phase: locks first and
//!   unlocks last *within each site's chain*, with no cross-site ordering
//!   (safe centralized, unsafe distributed — the paper's gap).

use kplock_model::{
    ActionKind, Database, EntityId, LockMode, ModelError, SiteId, Step, StepId, Transaction,
};
use std::collections::HashMap;

/// How to place lock/unlock steps around updates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockStrategy {
    /// Tightest sections around the updates of each entity.
    Minimal,
    /// Global lock phase, body, global unlock phase.
    TwoPhaseSync,
    /// Per-site two-phase without cross-site synchronization.
    TwoPhaseLoose,
}

/// Inserts locks into `t` (which must contain only update steps) according
/// to `strategy`. The returned transaction preserves all precedences among
/// the original updates, and the updates keep their access modes: an entity
/// whose accesses are all pure reads ([`LockMode::Shared`] updates) gets a
/// *shared* lock; any written entity gets the paper's exclusive lock.
pub fn insert_locks(
    db: &Database,
    t: &Transaction,
    strategy: LockStrategy,
) -> Result<Transaction, ModelError> {
    if t.step_ids().any(|s| t.step(s).kind != ActionKind::Update) {
        return Err(ModelError::IllegalSchedule(
            "insert_locks expects an update-only transaction".into(),
        ));
    }
    match strategy {
        LockStrategy::Minimal => minimal(db, t),
        LockStrategy::TwoPhaseSync => two_phase(db, t, true),
        LockStrategy::TwoPhaseLoose => two_phase(db, t, false),
    }
}

/// The mode of the lock protecting `e` in `t`: shared iff no access of `e`
/// writes.
fn lock_mode_for(t: &Transaction, e: EntityId) -> LockMode {
    let writes = t
        .steps()
        .iter()
        .any(|s| s.entity == e && s.mode == LockMode::Exclusive);
    if writes {
        LockMode::Exclusive
    } else {
        LockMode::Shared
    }
}

/// Per-site update order of `t` (steps grouped by site in chain order).
fn site_chains(db: &Database, t: &Transaction) -> HashMap<SiteId, Vec<StepId>> {
    let mut chains: HashMap<SiteId, Vec<StepId>> = HashMap::new();
    for site in 0..db.site_count() {
        let sid = SiteId::from_idx(site);
        let steps = t.steps_at_site(db, sid);
        if steps.is_empty() {
            continue;
        }
        let mut ordered = steps;
        ordered.sort_by(|&a, &b| {
            if t.precedes(a, b) {
                std::cmp::Ordering::Less
            } else if t.precedes(b, a) {
                std::cmp::Ordering::Greater
            } else {
                a.cmp(&b)
            }
        });
        chains.insert(sid, ordered);
    }
    chains
}

fn minimal(db: &Database, t: &Transaction) -> Result<Transaction, ModelError> {
    // Build new step list: per site chain, wrap each entity's update run.
    let chains = site_chains(db, t);
    let mut steps: Vec<Step> = Vec::new();
    let mut edges: Vec<(StepId, StepId)> = Vec::new();
    let mut map: HashMap<StepId, StepId> = HashMap::new(); // old -> new

    let mut sites: Vec<SiteId> = chains.keys().copied().collect();
    sites.sort();
    for chain in sites.iter().map(|s| &chains[s]) {
        // Entities at this site with first/last update positions.
        let mut first: HashMap<EntityId, usize> = HashMap::new();
        let mut last: HashMap<EntityId, usize> = HashMap::new();
        for (i, &s) in chain.iter().enumerate() {
            let e = t.step(s).entity;
            first.entry(e).or_insert(i);
            last.insert(e, i);
        }
        let mut prev: Option<StepId> = None;
        let push = |steps: &mut Vec<Step>,
                    edges: &mut Vec<(StepId, StepId)>,
                    step: Step,
                    prev: &mut Option<StepId>| {
            let id = StepId::from_idx(steps.len());
            steps.push(step);
            if let Some(p) = *prev {
                edges.push((p, id));
            }
            *prev = Some(id);
            id
        };
        for (i, &s) in chain.iter().enumerate() {
            let e = t.step(s).entity;
            if first[&e] == i {
                let lock = Step::lock(e).with_mode(lock_mode_for(t, e));
                push(&mut steps, &mut edges, lock, &mut prev);
            }
            let new_id = push(&mut steps, &mut edges, t.step(s), &mut prev);
            map.insert(s, new_id);
            if last[&e] == i {
                push(&mut steps, &mut edges, Step::unlock(e), &mut prev);
            }
        }
    }
    // Preserve original cross-step precedences.
    for (a, b) in t.edge_graph().edges() {
        let (na, nb) = (map[&StepId::from_idx(a)], map[&StepId::from_idx(b)]);
        edges.push((na, nb));
    }
    Transaction::new(t.name().to_string(), steps, edges)
}

fn two_phase(db: &Database, t: &Transaction, sync: bool) -> Result<Transaction, ModelError> {
    let chains = site_chains(db, t);
    let mut steps: Vec<Step> = Vec::new();
    let mut edges: Vec<(StepId, StepId)> = Vec::new();
    let mut map: HashMap<StepId, StepId> = HashMap::new();

    // Sorted sites for determinism.
    let mut sites: Vec<SiteId> = chains.keys().copied().collect();
    sites.sort();

    let mut lock_ids: Vec<StepId> = Vec::new();
    let mut unlock_ids: Vec<StepId> = Vec::new();

    // Lock steps per site (in entity order), then updates, then unlocks.
    for &site in &sites {
        let chain = &chains[&site];
        let mut entities: Vec<EntityId> = chain.iter().map(|&s| t.step(s).entity).collect();
        entities.sort();
        entities.dedup();
        let mut prev: Option<StepId> = None;
        for &e in &entities {
            let id = StepId::from_idx(steps.len());
            steps.push(Step::lock(e).with_mode(lock_mode_for(t, e)));
            if let Some(p) = prev {
                edges.push((p, id));
            }
            prev = Some(id);
            lock_ids.push(id);
        }
        for &s in chain {
            let id = StepId::from_idx(steps.len());
            steps.push(t.step(s));
            if let Some(p) = prev {
                edges.push((p, id));
            }
            prev = Some(id);
            map.insert(s, id);
        }
        for &e in &entities {
            let id = StepId::from_idx(steps.len());
            steps.push(Step::unlock(e));
            if let Some(p) = prev {
                edges.push((p, id));
            }
            prev = Some(id);
            unlock_ids.push(id);
        }
    }
    for (a, b) in t.edge_graph().edges() {
        edges.push((map[&StepId::from_idx(a)], map[&StepId::from_idx(b)]));
    }
    if sync {
        // Global lock point: every lock precedes every unlock, via a
        // cross-site barrier (each site's last lock precedes each site's
        // first unlock).
        for &l in &lock_ids {
            for &u in &unlock_ids {
                edges.push((l, u));
            }
        }
    }
    let _ = db;
    Transaction::new(t.name().to_string(), steps, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::two_phase::{is_loose_two_phase, is_synchronized_two_phase};
    use kplock_model::{Level, TxnBuilder};

    fn unlocked_txn(db: &Database) -> Transaction {
        let mut b = TxnBuilder::new(db, "T");
        let x1 = b.update("x").unwrap();
        let _x2 = b.update("y").unwrap();
        let w = b.update("w").unwrap();
        b.edge(x1, w); // cross-site data dependency
        b.build().unwrap()
    }

    fn db() -> Database {
        Database::from_spec(&[("x", 0), ("y", 0), ("w", 1)])
    }

    #[test]
    fn minimal_insertion_is_well_formed() {
        let db = db();
        let t = insert_locks(&db, &unlocked_txn(&db), LockStrategy::Minimal).unwrap();
        kplock_model::validate(&db, &t, Level::Strict).unwrap();
        assert!(!is_synchronized_two_phase(&t));
    }

    #[test]
    fn sync_two_phase_insertion_is_two_phase() {
        let db = db();
        let t = insert_locks(&db, &unlocked_txn(&db), LockStrategy::TwoPhaseSync).unwrap();
        kplock_model::validate(&db, &t, Level::Strict).unwrap();
        assert!(is_synchronized_two_phase(&t));
    }

    #[test]
    fn loose_two_phase_is_per_site_only() {
        let db = db();
        let t = insert_locks(&db, &unlocked_txn(&db), LockStrategy::TwoPhaseLoose).unwrap();
        kplock_model::validate(&db, &t, Level::Strict).unwrap();
        assert!(is_loose_two_phase(&t));
        assert!(!is_synchronized_two_phase(&t));
    }

    #[test]
    fn rejects_locked_input() {
        let db = db();
        let mut b = TxnBuilder::new(&db, "T");
        b.script("Lx x Ux").unwrap();
        let t = b.build().unwrap();
        assert!(insert_locks(&db, &t, LockStrategy::Minimal).is_err());
    }

    #[test]
    fn read_only_entities_get_shared_locks() {
        let db = db();
        let mut b = TxnBuilder::new(&db, "T");
        b.read("x").unwrap(); // pure read: expects a shared lock
        b.update("y").unwrap(); // write: exclusive
        b.read("y").unwrap(); // read of a written entity: still exclusive
        let t = b.build().unwrap();
        for strategy in [
            LockStrategy::Minimal,
            LockStrategy::TwoPhaseSync,
            LockStrategy::TwoPhaseLoose,
        ] {
            let locked = insert_locks(&db, &t, strategy).unwrap();
            kplock_model::validate(&db, &locked, Level::Strict).unwrap();
            let x = db.entity("x").unwrap();
            let y = db.entity("y").unwrap();
            let lx = locked.step(locked.lock_step(x).unwrap());
            let ly = locked.step(locked.lock_step(y).unwrap());
            assert_eq!(lx.mode, LockMode::Shared, "{strategy:?}");
            assert_eq!(ly.mode, LockMode::Exclusive, "{strategy:?}");
            // The read steps keep their mode through insertion.
            assert!(locked.steps().iter().any(|s| s.entity == x
                && s.kind == ActionKind::Update
                && s.mode == LockMode::Shared));
        }
    }

    #[test]
    fn preserves_original_precedences() {
        let db = db();
        let orig = unlocked_txn(&db);
        for strategy in [
            LockStrategy::Minimal,
            LockStrategy::TwoPhaseSync,
            LockStrategy::TwoPhaseLoose,
        ] {
            let t = insert_locks(&db, &orig, strategy).unwrap();
            // The x-update precedes the w-update in the new transaction.
            let x = db.entity("x").unwrap();
            let w = db.entity("w").unwrap();
            let xs = t.update_steps(x);
            let ws = t.update_steps(w);
            assert!(t.precedes(xs[0], ws[0]), "{strategy:?}");
        }
    }
}
