//! Locking policies (Sections 1 and 6).
//!
//! A policy is a class of locked transactions. Two-phase locking is the
//! classic safe policy; the paper observes that a distributed policy is
//! correct iff its "centralized image" is, so the hypergraph/tree
//! characterization of \[12, 17–19\] carries over with *previous step*
//! reinterpreted as *preceding step in the partial order*.

pub mod image;
pub mod insert;
pub mod tree;
pub mod two_phase;

pub use image::centralized_image_safe;
pub use insert::{insert_locks, LockStrategy};
pub use tree::{follows_tree_protocol, EntityTree};
pub use two_phase::{is_loose_two_phase, is_synchronized_two_phase};
