//! Exact safety and deadlock decision by reduction *to* SAT.
//!
//! [`crate::reduction`] is the paper's Theorem 3 — CNF formulas become
//! two-transaction locking systems, proving unsafety NP-hard. This module
//! closes the equivalence from the other side: a [`TxnSystem`] becomes a
//! CNF formula whose models are exactly the reachable unsafe (or
//! deadlocked) states, decided by our own DPLL ([`kplock_sat`]). Unlike
//! the exhaustive oracle ([`crate::oracle::decide_exhaustive`]), which
//! enumerates interleavings state-by-state and is hard-capped at 8
//! transactions, the encoding is polynomial in the system size (the
//! search is the solver's job), and unlike the greedy
//! [`AvoidPlan`] it is exact, not conservative.
//!
//! # The encoding
//!
//! Every lock/unlock step is a *milestone*. One boolean per unordered
//! milestone pair says which comes first; transitivity clauses over all
//! triples force the pair variables to describe a total order, and unit
//! clauses pin the pairs already ordered by each transaction's own
//! precedence DAG. On top of that shared core:
//!
//! * **Safety** ([`check_safety`]) asks for a *complete* schedule whose
//!   serialization graph is cyclic. Same-entity lock sections of distinct
//!   transactions must not overlap (one disjointness clause per pair), a
//!   section order `unlock_i(e) ≺ lock_j(e)` realizes the conflict edge
//!   `i → j`, and selector variables must pick a set of realized edges in
//!   which every tail also has an incoming selected edge — in a finite
//!   graph such a set necessarily contains a directed cycle, and every
//!   actual cycle is such a set.
//! * **Deadlock** ([`check_deadlock`]) asks for a reachable *prefix* in
//!   which no remaining step is enabled, mirroring the oracle's stall
//!   rule. Per-step executed flags are closed downward over the DAG and
//!   linked to the milestone order (an executed lock whose section is
//!   ordered after another executed section forces that section's unlock
//!   to be executed too), holder variables witness who blocks each
//!   stalled lock, and one clause per step says "executed, or missing a
//!   predecessor, or blocked".
//!
//! A satisfying model is *decoded* — milestone counts give the total
//! order, a topological sort interleaves the remaining steps — and the
//! resulting schedule is re-verified against the model-level definitions
//! ([`Schedule::validate_complete`], [`kplock_model::is_serializable`],
//! oracle-style enabledness), so a witness is never taken on the
//! encoding's word alone. `crates/sim` replays these witnesses through
//! the lock-table machinery for the dynamic half of the story.
//!
//! The checker mirrors the oracle's mode-blind contention rule (any
//! holder blocks a lock request), which coincides with write-aware
//! serializability only when every access is exclusive, so systems using
//! shared modes are refused up front with a typed error — as are systems
//! whose updates stray outside their entity's lock section, where
//! section-level ordering stops determining access-level conflicts.
//!
//! # Optimal certificates
//!
//! [`synthesize_optimal`] reuses the machinery for the avoidance arm: a
//! transaction set is certifiable iff the union of its hold-while-request
//! edges embeds in a total entity order, which is one selection variable
//! per transaction, one ordering variable per entity pair, and a
//! cardinality bound ([`kplock_sat::at_least_k`]). Iterating the bound
//! upward from the greedy count finds a *maximum* certifiable set and
//! quantifies exactly how conservative declaration-order greediness is.

use std::collections::HashMap;
use std::fmt;

use kplock_model::{
    is_serializable, ActionKind, EntityId, Level, LockMode, ModelError, Schedule, ScheduledStep,
    StepId, TxnId, TxnSystem,
};
use kplock_sat::{at_least_k, Cnf, Lit, SatResult, Solver, Var};

use crate::avoid::{hold_request_edges, AvoidPlan};

/// Tuning knobs for the SAT checker.
#[derive(Clone, Debug)]
pub struct SatCheckOptions {
    /// Refuse systems with more than this many milestones (lock/unlock
    /// steps): the transitivity core grows with the cube of the milestone
    /// count, and the cap keeps encodings in the range our DPLL handles.
    pub max_milestones: usize,
}

impl Default for SatCheckOptions {
    fn default() -> Self {
        SatCheckOptions { max_milestones: 64 }
    }
}

/// Why a system was refused (or a model failed to decode).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatCheckError {
    /// A lock or update step uses [`LockMode::Shared`]. The encoding
    /// mirrors the oracle's mode-blind semantics, which match
    /// serializability only for exclusive-only systems.
    SharedMode { txn: TxnId, step: StepId },
    /// A transaction fails Locking-level well-formedness.
    Invalid { txn: TxnId, error: ModelError },
    /// An update step lies outside its entity's lock/unlock section, so
    /// section disjointness would not govern its conflicts.
    UnprotectedUpdate { txn: TxnId, step: StepId },
    /// The system exceeds [`SatCheckOptions::max_milestones`].
    TooLarge { milestones: usize, cap: usize },
    /// Internal: a satisfying model did not decode into a witness passing
    /// independent re-verification. Indicates an encoder bug.
    WitnessDecode(String),
}

impl fmt::Display for SatCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SatCheckError::SharedMode { txn, step } => {
                write!(f, "step {step} of {txn} uses a shared mode; the SAT checker decides exclusive-only systems")
            }
            SatCheckError::Invalid { txn, error } => {
                write!(f, "transaction {txn} is not well-formed: {error}")
            }
            SatCheckError::UnprotectedUpdate { txn, step } => {
                write!(
                    f,
                    "update step {step} of {txn} lies outside its lock section"
                )
            }
            SatCheckError::TooLarge { milestones, cap } => {
                write!(
                    f,
                    "system has {milestones} lock/unlock milestones, above the cap of {cap}"
                )
            }
            SatCheckError::WitnessDecode(why) => {
                write!(f, "internal error: model failed witness decoding: {why}")
            }
        }
    }
}

impl std::error::Error for SatCheckError {}

/// Formula size and solver effort for one decision.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EncodingStats {
    /// Total variables (ordering + auxiliaries).
    pub vars: usize,
    /// Total clauses.
    pub clauses: usize,
    /// DPLL branching decisions.
    pub decisions: u64,
    /// Unit propagations.
    pub propagations: u64,
}

/// Verdict of [`check_safety`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatSafety {
    /// Every complete legal schedule is serializable.
    Safe,
    /// A complete legal non-serializable schedule exists; here is one,
    /// verified against [`kplock_model::is_serializable`].
    Unsafe(Schedule),
}

impl SatSafety {
    /// True for the [`SatSafety::Safe`] verdict.
    pub fn is_safe(&self) -> bool {
        matches!(self, SatSafety::Safe)
    }
}

/// Result of [`check_safety`].
#[derive(Clone, Debug)]
pub struct SafetyCheck {
    /// The verdict, with a replayable witness when unsafe.
    pub verdict: SatSafety,
    /// Encoding size and solver effort.
    pub stats: EncodingStats,
}

/// Result of [`check_deadlock`].
#[derive(Clone, Debug)]
pub struct DeadlockCheck {
    /// A legal prefix from which no step is enabled (verified by an
    /// oracle-style stall recheck), or `None` if no such prefix exists.
    pub deadlock: Option<Schedule>,
    /// Encoding size and solver effort.
    pub stats: EncodingStats,
}

/// A maximum certifiable transaction set, next to the greedy baseline.
#[derive(Clone, Debug)]
pub struct OptimalCertificate {
    /// Plan certifying a *maximum* jointly-certifiable set (restricted
    /// synthesis over the SAT-selected transactions).
    pub plan: AvoidPlan,
    /// What declaration-order greedy synthesis certifies.
    pub greedy_count: usize,
    /// The optimum; always ≥ `greedy_count`.
    pub optimal_count: usize,
    /// SAT invocations spent raising the cardinality bound.
    pub sat_calls: usize,
}

/// One lock/unlock section of one transaction.
#[derive(Clone, Copy, Debug)]
struct Section {
    txn: usize,
    entity: EntityId,
    lock_m: usize,
    unlock_m: usize,
}

/// The shared encoding core: milestones, ordering variables, transitivity
/// and intra-transaction order clauses.
struct Encoder<'a> {
    sys: &'a TxnSystem,
    /// Milestone index → (transaction index, step).
    milestones: Vec<(usize, StepId)>,
    sections: Vec<Section>,
    /// (transaction index, entity) → index into `sections`.
    section_of: HashMap<(usize, EntityId), usize>,
    cnf: Cnf,
}

impl<'a> Encoder<'a> {
    fn new(sys: &'a TxnSystem, opts: &SatCheckOptions) -> Result<Self, SatCheckError> {
        // Refuse anything the encoding does not faithfully model.
        for (i, t) in sys.txns().iter().enumerate() {
            let txn = TxnId::from_idx(i);
            if let Err(error) = kplock_model::validate(sys.db(), t, Level::Locking) {
                return Err(SatCheckError::Invalid { txn, error });
            }
            for v in 0..t.len() {
                let sid = StepId::from_idx(v);
                let s = t.step(sid);
                if s.kind != ActionKind::Unlock && s.mode == LockMode::Shared {
                    return Err(SatCheckError::SharedMode { txn, step: sid });
                }
                if s.kind == ActionKind::Update {
                    let protected = t
                        .lock_step(s.entity)
                        .zip(t.unlock_step(s.entity))
                        .is_some_and(|(l, u)| t.precedes(l, sid) && t.precedes(sid, u));
                    if !protected {
                        return Err(SatCheckError::UnprotectedUpdate { txn, step: sid });
                    }
                }
            }
        }

        let mut milestones = Vec::new();
        let mut sections = Vec::new();
        let mut section_of = HashMap::new();
        for (i, t) in sys.txns().iter().enumerate() {
            for e in t.locked_entities() {
                let lock_m = milestones.len();
                milestones.push((i, t.lock_step(e).expect("validated pair")));
                let unlock_m = milestones.len();
                milestones.push((i, t.unlock_step(e).expect("validated pair")));
                section_of.insert((i, e), sections.len());
                sections.push(Section {
                    txn: i,
                    entity: e,
                    lock_m,
                    unlock_m,
                });
            }
        }
        let m = milestones.len();
        if m > opts.max_milestones {
            return Err(SatCheckError::TooLarge {
                milestones: m,
                cap: opts.max_milestones,
            });
        }

        let mut enc = Encoder {
            sys,
            milestones,
            sections,
            section_of,
            cnf: Cnf::new(m * m.saturating_sub(1) / 2),
        };

        // Intra-transaction order: milestone pairs already ordered by the
        // precedence DAG become unit clauses. Using the full `precedes`
        // closure (not just direct edges) is what makes the decoded
        // milestone order embeddable into a step-level topological sort.
        for a in 0..m {
            for b in (a + 1)..m {
                let (ta, sa) = enc.milestones[a];
                let (tb, sb) = enc.milestones[b];
                if ta != tb {
                    continue;
                }
                let t = enc.sys.txn(TxnId::from_idx(ta));
                if t.precedes(sa, sb) {
                    let lit = enc.before(a, b);
                    enc.cnf.add_clause(vec![lit]);
                } else if t.precedes(sb, sa) {
                    let lit = enc.before(b, a);
                    enc.cnf.add_clause(vec![lit]);
                }
            }
        }

        // Transitivity: forbid both cyclic orientations of every triple,
        // making any model's pair relation a strict total order.
        for a in 0..m {
            for b in (a + 1)..m {
                for c in (b + 1)..m {
                    let (ab, bc, ac) = (enc.before(a, b), enc.before(b, c), enc.before(a, c));
                    enc.cnf.add_clause(vec![ab.negated(), bc.negated(), ac]);
                    enc.cnf.add_clause(vec![ab, bc, ac.negated()]);
                }
            }
        }
        Ok(enc)
    }

    /// Index of the ordering variable for milestone pair `a < b`.
    fn ord_var(&self, a: usize, b: usize) -> Var {
        debug_assert!(a < b);
        let m = self.milestones.len();
        Var((a * (2 * m - a - 1) / 2 + (b - a - 1)) as u32)
    }

    /// Literal meaning "milestone `a` precedes milestone `b`".
    fn before(&self, a: usize, b: usize) -> Lit {
        debug_assert_ne!(a, b);
        if a < b {
            Lit::pos(self.ord_var(a, b))
        } else {
            Lit::neg(self.ord_var(b, a))
        }
    }

    fn lit_true(&self, model: &[bool], lit: Lit) -> bool {
        model[lit.var.idx()] == lit.positive
    }

    /// Decodes the model's milestone order restricted to `included`
    /// milestones and topologically sorts `included_step` steps under the
    /// precedence DAGs plus that order. Returns the schedule, or an error
    /// if the combined relation is cyclic (which would be an encoder bug).
    fn decode(
        &self,
        model: &[bool],
        included_step: impl Fn(usize, StepId) -> bool,
    ) -> Result<Schedule, SatCheckError> {
        // Total order over the included milestones: sort by how many other
        // included milestones come first.
        let mut chain: Vec<usize> = (0..self.milestones.len())
            .filter(|&a| {
                let (t, s) = self.milestones[a];
                included_step(t, s)
            })
            .collect();
        let keys: HashMap<usize, usize> = chain
            .iter()
            .map(|&a| {
                let k = chain
                    .iter()
                    .filter(|&&b| b != a && self.lit_true(model, self.before(b, a)))
                    .count();
                (a, k)
            })
            .collect();
        chain.sort_by_key(|a| keys[a]);

        // Step-level node ids.
        let mut offsets = Vec::with_capacity(self.sys.len());
        let mut total = 0usize;
        for t in self.sys.txns() {
            offsets.push(total);
            total += t.len();
        }
        let node = |t: usize, s: StepId| offsets[t] + s.idx();
        let included: Vec<(usize, StepId)> = (0..self.sys.len())
            .flat_map(|t| {
                (0..self.sys.txn(TxnId::from_idx(t)).len()).map(move |v| (t, StepId::from_idx(v)))
            })
            .filter(|&(t, s)| included_step(t, s))
            .collect();

        let mut indegree = vec![0usize; total];
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); total];
        for &(t, s) in &included {
            for &p in self
                .sys
                .txn(TxnId::from_idx(t))
                .edge_graph()
                .predecessors(s.idx())
            {
                let ps = StepId::from_idx(p);
                debug_assert!(included_step(t, ps), "executed set not downward closed");
                successors[node(t, ps)].push(node(t, s));
                indegree[node(t, s)] += 1;
            }
        }
        for w in chain.windows(2) {
            let (ta, sa) = self.milestones[w[0]];
            let (tb, sb) = self.milestones[w[1]];
            successors[node(ta, sa)].push(node(tb, sb));
            indegree[node(tb, sb)] += 1;
        }

        // Kahn's algorithm, deterministic by smallest node id.
        let mut order = Vec::with_capacity(included.len());
        let mut ready: Vec<usize> = included
            .iter()
            .map(|&(t, s)| node(t, s))
            .filter(|&n| indegree[n] == 0)
            .collect();
        ready.sort_unstable();
        while let Some(&n) = ready.first() {
            ready.remove(0);
            order.push(n);
            for &m in &successors[n] {
                indegree[m] -= 1;
                if indegree[m] == 0 {
                    let pos = ready.partition_point(|&r| r < m);
                    ready.insert(pos, m);
                }
            }
        }
        if order.len() != included.len() {
            return Err(SatCheckError::WitnessDecode(
                "milestone order and precedence DAGs form a cycle".into(),
            ));
        }
        let steps = order
            .into_iter()
            .map(|n| {
                let t = offsets.partition_point(|&o| o <= n) - 1;
                ScheduledStep {
                    txn: TxnId::from_idx(t),
                    step: StepId::from_idx(n - offsets[t]),
                }
            })
            .collect();
        Ok(Schedule::new(steps))
    }
}

fn stats_of(cnf: &Cnf, solver: &Solver<'_>) -> EncodingStats {
    EncodingStats {
        vars: cnf.num_vars,
        clauses: cnf.clauses.len(),
        decisions: solver.decisions,
        propagations: solver.propagations,
    }
}

/// Decides safety exactly with default options. See [`check_safety_with`].
pub fn check_safety(sys: &TxnSystem) -> Result<SafetyCheck, SatCheckError> {
    check_safety_with(sys, &SatCheckOptions::default())
}

/// Decides whether some complete legal schedule of `sys` is
/// non-serializable, returning a verified witness schedule if so.
///
/// Agrees with [`crate::oracle::decide_exhaustive`] on every system both
/// can decide (the triad proptests pin this).
pub fn check_safety_with(
    sys: &TxnSystem,
    opts: &SatCheckOptions,
) -> Result<SafetyCheck, SatCheckError> {
    let enc = Encoder::new(sys, opts)?;
    let mut cnf = enc.cnf.clone();

    // Same-entity sections of distinct transactions never overlap in a
    // complete legal schedule: one must fully precede the other.
    by_entity_pairs(&enc, |a, b| {
        cnf.add_clause(vec![
            enc.before(a.unlock_m, b.lock_m),
            enc.before(b.unlock_m, a.lock_m),
        ]);
    });

    // Conflict-edge candidates: ordered transaction pairs sharing a locked
    // entity. sel(i→j) asserts the serialization graph has edge i → j.
    let mut candidates: Vec<(usize, usize, Vec<EntityId>)> = Vec::new();
    for i in 0..sys.len() {
        for j in 0..sys.len() {
            if i == j {
                continue;
            }
            let shared = sys.shared_locked_entities(TxnId::from_idx(i), TxnId::from_idx(j));
            if !shared.is_empty() {
                candidates.push((i, j, shared));
            }
        }
    }
    if candidates.is_empty() {
        // No two transactions conflict: the serialization graph is edgeless
        // and every complete schedule serializable.
        return Ok(SafetyCheck {
            verdict: SatSafety::Safe,
            stats: EncodingStats {
                vars: cnf.num_vars,
                clauses: cnf.clauses.len(),
                ..Default::default()
            },
        });
    }
    let sel_base = cnf.num_vars;
    cnf.num_vars += candidates.len();
    let sel = |idx: usize| Var((sel_base + idx) as u32);

    for (idx, (i, j, shared)) in candidates.iter().enumerate() {
        // A selected edge must be realized by some shared entity whose
        // section order runs i before j.
        let mut clause = vec![Lit::neg(sel(idx))];
        for &e in shared {
            let si = enc.sections[enc.section_of[&(*i, e)]];
            let sj = enc.sections[enc.section_of[&(*j, e)]];
            clause.push(enc.before(si.unlock_m, sj.lock_m));
        }
        cnf.add_clause(clause);
        // Every selected edge's tail has an incoming selected edge; any
        // nonempty such set contains a directed cycle, and conversely an
        // actual cycle selects itself.
        let mut flow = vec![Lit::neg(sel(idx))];
        for (kidx, (_, kj, _)) in candidates.iter().enumerate() {
            if kj == i {
                flow.push(Lit::pos(sel(kidx)));
            }
        }
        cnf.add_clause(flow);
    }
    cnf.add_clause(
        (0..candidates.len())
            .map(|idx| Lit::pos(sel(idx)))
            .collect(),
    );

    let mut solver = Solver::new(&cnf);
    let result = solver.solve();
    let stats = stats_of(&cnf, &solver);
    match result {
        SatResult::Unsat => Ok(SafetyCheck {
            verdict: SatSafety::Safe,
            stats,
        }),
        SatResult::Sat(model) => {
            let schedule = enc.decode(&model, |_, _| true)?;
            schedule
                .validate_complete(sys)
                .map_err(|e| SatCheckError::WitnessDecode(format!("illegal witness: {e}")))?;
            if is_serializable(sys, &schedule) {
                return Err(SatCheckError::WitnessDecode(
                    "decoded schedule is serializable".into(),
                ));
            }
            Ok(SafetyCheck {
                verdict: SatSafety::Unsafe(schedule),
                stats,
            })
        }
    }
}

/// Decides deadlock reachability with default options. See
/// [`check_deadlock_with`].
pub fn check_deadlock(sys: &TxnSystem) -> Result<DeadlockCheck, SatCheckError> {
    check_deadlock_with(sys, &SatCheckOptions::default())
}

/// Decides whether some legal prefix of `sys` stalls every remaining step
/// (the oracle's `deadlock_reachable`), returning a verified prefix if so.
pub fn check_deadlock_with(
    sys: &TxnSystem,
    opts: &SatCheckOptions,
) -> Result<DeadlockCheck, SatCheckError> {
    let enc = Encoder::new(sys, opts)?;
    let mut cnf = enc.cnf.clone();

    // Executed flag per step.
    let mut offsets = Vec::with_capacity(sys.len());
    let mut total = 0usize;
    for t in sys.txns() {
        offsets.push(total);
        total += t.len();
    }
    let x_base = cnf.num_vars;
    cnf.num_vars += total;
    let x = |t: usize, s: StepId| Var((x_base + offsets[t] + s.idx()) as u32);
    // Holder flag per section: h asserts the section's transaction holds
    // the entity in the final state (locked, not yet unlocked).
    let h_base = cnf.num_vars;
    cnf.num_vars += enc.sections.len();
    let h = |sec: usize| Var((h_base + sec) as u32);

    for (t, txn) in sys.txns().iter().enumerate() {
        for v in 0..txn.len() {
            let s = StepId::from_idx(v);
            // Downward closure: an executed step's DAG predecessors are
            // executed.
            for &p in txn.edge_graph().predecessors(v) {
                cnf.add_clause(vec![Lit::neg(x(t, s)), Lit::pos(x(t, StepId::from_idx(p)))]);
            }
        }
    }

    by_entity_pairs(&enc, |a, b| {
        let (la, ua) = (enc.milestones[a.lock_m], enc.milestones[a.unlock_m]);
        let (lb, ub) = (enc.milestones[b.lock_m], enc.milestones[b.unlock_m]);
        // If both locks executed, the sections are disjoint and ordered.
        cnf.add_clause(vec![
            Lit::neg(x(la.0, la.1)),
            Lit::neg(x(lb.0, lb.1)),
            enc.before(a.unlock_m, b.lock_m),
            enc.before(b.unlock_m, a.lock_m),
        ]);
        // Cross-transaction closure: a section ordered before an executed
        // lock has released (its unlock executed), in both directions.
        cnf.add_clause(vec![
            enc.before(a.unlock_m, b.lock_m).negated(),
            Lit::neg(x(lb.0, lb.1)),
            Lit::pos(x(ua.0, ua.1)),
        ]);
        cnf.add_clause(vec![
            enc.before(b.unlock_m, a.lock_m).negated(),
            Lit::neg(x(la.0, la.1)),
            Lit::pos(x(ub.0, ub.1)),
        ]);
    });

    for (idx, sec) in enc.sections.iter().enumerate() {
        let l = enc.milestones[sec.lock_m];
        let u = enc.milestones[sec.unlock_m];
        cnf.add_clause(vec![Lit::neg(h(idx)), Lit::pos(x(l.0, l.1))]);
        cnf.add_clause(vec![Lit::neg(h(idx)), Lit::neg(x(u.0, u.1))]);
    }

    // The stall condition: every step is executed, or missing a
    // predecessor, or a lock blocked by some holder.
    for (t, txn) in sys.txns().iter().enumerate() {
        for v in 0..txn.len() {
            let s = StepId::from_idx(v);
            let mut clause = vec![Lit::pos(x(t, s))];
            for &p in txn.edge_graph().predecessors(v) {
                clause.push(Lit::neg(x(t, StepId::from_idx(p))));
            }
            let step = txn.step(s);
            if step.kind == ActionKind::Lock {
                for (idx, sec) in enc.sections.iter().enumerate() {
                    if sec.txn != t && sec.entity == step.entity {
                        clause.push(Lit::pos(h(idx)));
                    }
                }
            }
            cnf.add_clause(clause);
        }
    }

    // ... and at least one step is missing, else the state is complete.
    let mut incomplete = Vec::with_capacity(total);
    for (t, txn) in sys.txns().iter().enumerate() {
        for v in 0..txn.len() {
            incomplete.push(Lit::neg(x(t, StepId::from_idx(v))));
        }
    }
    cnf.add_clause(incomplete);

    let mut solver = Solver::new(&cnf);
    let result = solver.solve();
    let stats = stats_of(&cnf, &solver);
    match result {
        SatResult::Unsat => Ok(DeadlockCheck {
            deadlock: None,
            stats,
        }),
        SatResult::Sat(model) => {
            let executed = |t: usize, s: StepId| model[x(t, s).idx()];
            let prefix = enc.decode(&model, executed)?;
            prefix
                .validate_prefix(sys)
                .map_err(|e| SatCheckError::WitnessDecode(format!("illegal prefix: {e}")))?;
            verify_stalled(sys, &prefix)?;
            Ok(DeadlockCheck {
                deadlock: Some(prefix),
                stats,
            })
        }
    }
}

/// Invokes `f` on every unordered pair of same-entity sections of
/// distinct transactions.
fn by_entity_pairs(enc: &Encoder<'_>, mut f: impl FnMut(Section, Section)) {
    for (ai, a) in enc.sections.iter().enumerate() {
        for b in enc.sections.iter().skip(ai + 1) {
            if a.entity == b.entity && a.txn != b.txn {
                f(*a, *b);
            }
        }
    }
}

/// Oracle-style stall recheck: after `prefix`, the system is incomplete
/// and no remaining step of any transaction is enabled.
fn verify_stalled(sys: &TxnSystem, prefix: &Schedule) -> Result<(), SatCheckError> {
    let mut done: Vec<Vec<bool>> = sys.txns().iter().map(|t| vec![false; t.len()]).collect();
    for ss in prefix.steps() {
        done[ss.txn.idx()][ss.step.idx()] = true;
    }
    let holds = |j: usize, e: EntityId| -> bool {
        let t = sys.txn(TxnId::from_idx(j));
        t.lock_step(e)
            .zip(t.unlock_step(e))
            .is_some_and(|(l, u)| done[j][l.idx()] && !done[j][u.idx()])
    };
    let mut any_remaining = false;
    for (i, t) in sys.txns().iter().enumerate() {
        for v in 0..t.len() {
            if done[i][v] {
                continue;
            }
            any_remaining = true;
            let s = StepId::from_idx(v);
            if t.edge_graph().predecessors(v).iter().any(|&p| !done[i][p]) {
                continue; // not yet reachable, vacuously disabled
            }
            let step = t.step(s);
            if step.kind != ActionKind::Lock {
                return Err(SatCheckError::WitnessDecode(format!(
                    "non-lock step {s} of T{i} is enabled after the prefix"
                )));
            }
            if !(0..sys.len()).any(|j| j != i && holds(j, step.entity)) {
                return Err(SatCheckError::WitnessDecode(format!(
                    "lock step {s} of T{i} is uncontended after the prefix"
                )));
            }
        }
    }
    if !any_remaining {
        return Err(SatCheckError::WitnessDecode(
            "prefix is a complete schedule, not a deadlock".into(),
        ));
    }
    Ok(())
}

/// Finds a *maximum* certifiable transaction set by iterated SAT and
/// packages it as an [`AvoidPlan`], next to the greedy baseline count.
///
/// A set is certifiable iff the union of its members'
/// [`hold_request_edges`] admits a total entity order (acyclicity ⇔
/// embeddability in a total order): one selection variable per
/// transaction, one ordering variable per entity pair, transitivity, and
/// `selected → every edge ascends`. The cardinality bound walks upward
/// from the greedy count until UNSAT; the last satisfiable selection is
/// optimal.
pub fn synthesize_optimal(sys: &TxnSystem) -> OptimalCertificate {
    let k = sys.len();
    let n_e = sys.db().entity_count();
    let greedy = AvoidPlan::synthesize(sys);
    let greedy_count = greedy.certified_count();

    let edges: Vec<Vec<(EntityId, EntityId)>> = sys.txns().iter().map(hold_request_edges).collect();

    // Variables: s_t (selection) then r(x<y) (entity order).
    let rank_base = k;
    let rank = |a: usize, b: usize| -> Var {
        debug_assert!(a < b);
        Var((rank_base + a * (2 * n_e - a - 1) / 2 + (b - a - 1)) as u32)
    };
    let before_e = |a: EntityId, b: EntityId| -> Lit {
        if a.idx() < b.idx() {
            Lit::pos(rank(a.idx(), b.idx()))
        } else {
            Lit::neg(rank(b.idx(), a.idx()))
        }
    };
    let mut base = Cnf::new(k + n_e * n_e.saturating_sub(1) / 2);
    for a in 0..n_e {
        for b in (a + 1)..n_e {
            for c in (b + 1)..n_e {
                let (ab, bc, ac) = (
                    before_e(EntityId::from_idx(a), EntityId::from_idx(b)),
                    before_e(EntityId::from_idx(b), EntityId::from_idx(c)),
                    before_e(EntityId::from_idx(a), EntityId::from_idx(c)),
                );
                base.add_clause(vec![ab.negated(), bc.negated(), ac]);
                base.add_clause(vec![ab, bc, ac.negated()]);
            }
        }
    }
    for (t, tedges) in edges.iter().enumerate() {
        for &(xe, ye) in tedges {
            base.add_clause(vec![Lit::neg(Var(t as u32)), before_e(xe, ye)]);
        }
    }
    let s_lits: Vec<Lit> = (0..k).map(|t| Lit::pos(Var(t as u32))).collect();

    let mut best: Option<Vec<TxnId>> = None;
    let mut sat_calls = 0usize;
    for target in (greedy_count + 1)..=k {
        let mut cnf = base.clone();
        at_least_k(&mut cnf, &s_lits, target);
        sat_calls += 1;
        match kplock_sat::solve(&cnf) {
            SatResult::Sat(model) => {
                let selected: Vec<TxnId> =
                    (0..k).filter(|&t| model[t]).map(TxnId::from_idx).collect();
                debug_assert!(selected.len() >= target);
                best = Some(selected);
            }
            SatResult::Unsat => break,
        }
    }

    match best {
        Some(selected) => {
            let optimal_count = selected.len();
            let plan = AvoidPlan::synthesize_restricted(sys, &selected);
            // Restricted synthesis adds candidates greedily, but every
            // subset of a jointly-acyclic set is jointly acyclic, so it
            // certifies all of them.
            debug_assert_eq!(plan.certified_count(), optimal_count);
            OptimalCertificate {
                plan,
                greedy_count,
                optimal_count,
                sat_calls,
            }
        }
        None => OptimalCertificate {
            plan: greedy,
            greedy_count,
            optimal_count: greedy_count,
            sat_calls,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{decide_exhaustive, OracleOptions, OracleOutcome};
    use kplock_model::{Database, TxnBuilder};

    fn sys_of(scripts: &[&str]) -> TxnSystem {
        let db = Database::from_spec(&[("x", 0), ("y", 1), ("z", 0)]);
        let txns = scripts
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut b = TxnBuilder::new(&db, format!("T{i}"));
                b.script(s).expect("script");
                b.build().expect("acyclic")
            })
            .collect();
        TxnSystem::new(db, txns)
    }

    #[test]
    fn opposed_two_phase_pair_is_safe_but_deadlocks() {
        let sys = sys_of(&["Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux"]);
        let safety = check_safety(&sys).unwrap();
        assert!(safety.verdict.is_safe());
        let dl = check_deadlock(&sys).unwrap();
        let prefix = dl.deadlock.expect("opposed lock orders deadlock");
        assert!(prefix.validate_prefix(&sys).is_ok());
        let report = decide_exhaustive(&sys, &OracleOptions::default());
        assert!(matches!(report.outcome, OracleOutcome::Safe));
        assert!(report.deadlock_reachable);
    }

    #[test]
    fn aligned_two_phase_pair_is_safe_and_deadlock_free() {
        let sys = sys_of(&["Lx Ly x y Ux Uy", "Lx Ly x y Ux Uy"]);
        let safety = check_safety(&sys).unwrap();
        assert!(safety.verdict.is_safe());
        let dl = check_deadlock(&sys).unwrap();
        assert!(dl.deadlock.is_none());
    }

    #[test]
    fn early_unlock_pair_is_unsafe_with_verified_witness() {
        // Classic non-2PL anomaly: both transactions release x before
        // touching y, so the sections can interleave into a cycle.
        let sys = sys_of(&["Lx x Ux Ly y Uy", "Lx x Ux Ly y Uy"]);
        let safety = check_safety(&sys).unwrap();
        let SatSafety::Unsafe(w) = safety.verdict else {
            panic!("early unlock must be unsafe");
        };
        w.validate_complete(&sys).unwrap();
        assert!(!is_serializable(&sys, &w));
        let report = decide_exhaustive(&sys, &OracleOptions::default());
        assert!(matches!(report.outcome, OracleOutcome::Unsafe(_)));
    }

    #[test]
    fn disjoint_transactions_are_trivially_safe() {
        let sys = sys_of(&["Lx x Ux", "Ly y Uy"]);
        let safety = check_safety(&sys).unwrap();
        assert!(safety.verdict.is_safe());
        assert_eq!(safety.stats.decisions, 0);
        assert!(check_deadlock(&sys).unwrap().deadlock.is_none());
    }

    #[test]
    fn three_way_rotation_deadlocks_but_stays_safe() {
        let sys = sys_of(&["Lx Lz x z Ux Uz", "Lz Ly z y Uz Uy", "Ly Lx y x Uy Ux"]);
        assert!(check_safety(&sys).unwrap().verdict.is_safe());
        let dl = check_deadlock(&sys).unwrap();
        assert!(dl.deadlock.is_some());
        let report = decide_exhaustive(&sys, &OracleOptions::default());
        assert!(matches!(report.outcome, OracleOutcome::Safe));
        assert!(report.deadlock_reachable);
    }

    #[test]
    fn shared_modes_are_refused() {
        let db = Database::from_spec(&[("x", 0)]);
        let t = {
            let mut b = TxnBuilder::new(&db, "T0");
            b.script("SLx rx Ux").unwrap();
            b.build().unwrap()
        };
        let sys = TxnSystem::new(db, vec![t]);
        assert!(matches!(
            check_safety(&sys),
            Err(SatCheckError::SharedMode { .. })
        ));
    }

    #[test]
    fn milestone_cap_is_enforced() {
        let sys = sys_of(&["Lx Ly x y Ux Uy"]);
        let opts = SatCheckOptions { max_milestones: 2 };
        assert!(matches!(
            check_safety_with(&sys, &opts),
            Err(SatCheckError::TooLarge {
                milestones: 4,
                cap: 2
            })
        ));
    }

    #[test]
    fn optimal_certificate_beats_greedy_on_opposed_family() {
        // T0 ascends x→y; T1, T2 descend y→x. Greedy (declaration order)
        // keeps only T0; the optimum drops T0 and keeps both descenders.
        let sys = sys_of(&["Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", "Ly Lx y x Uy Ux"]);
        let opt = synthesize_optimal(&sys);
        assert_eq!(opt.greedy_count, 1);
        assert_eq!(opt.optimal_count, 2);
        assert_eq!(opt.plan.certified_count(), 2);
        opt.plan.verify(&sys).unwrap();
        assert!(opt.sat_calls >= 2);
    }

    #[test]
    fn optimal_matches_greedy_when_greedy_is_already_optimal() {
        let sys = sys_of(&["Lx Ly x y Ux Uy", "Lx Ly x y Ux Uy"]);
        let opt = synthesize_optimal(&sys);
        assert_eq!(opt.greedy_count, 2);
        assert_eq!(opt.optimal_count, 2);
        assert!(opt.plan.fully_certified());
    }
}
