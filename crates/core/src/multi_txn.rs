//! Proposition 2: safety of systems with more than two transactions
//! (Section 6).
//!
//! Let `G` be the graph on transactions with an edge `[Ti, Tj]` iff they
//! lock a common entity. For each directed length-2 path `(Ti, Tj, Tk)` of
//! `G`, the digraph `B_ijk` has a node `x_ij` for each entity locked by both
//! `Ti` and `Tj` and a node `y_jk` for each entity locked by `Tj` and `Tk`,
//! and arcs (all read off `Tj`'s partial order):
//!
//! * `x_ij → y_jk`   iff `Lx ≺_j Uy`,
//! * `x_ij → x'_ij`  iff `Lx ≺_j Lx'`,
//! * `y_jk → y'_jk`  iff `Uy ≺_j Uy'`.
//!
//! **Proposition 2**: `T` is safe iff (a) every two-transaction subsystem
//! is safe, and (b) for each directed cycle `c` of `G`, the union `B_c` of
//! the `B_ijk` over the consecutive subpaths of `c` has a directed cycle.
//!
//! Interfaces are keyed by *ordered* transaction pairs along the cycle
//! direction, so a 2-cycle `(Ti, Tj)` contributes the two node families
//! `x_ij` and `x_ji`.

use crate::certificate::SafetyVerdict;
use crate::multisite::{decide_multisite, MultisiteOptions};
use crate::two_site::decide_two_site;
use kplock_graph::{has_cycle, simple_cycles, DiGraph};
use kplock_model::{EntityId, TxnId, TxnSystem};
use std::collections::HashMap;

/// Result of a Proposition-2 analysis.
#[derive(Clone, Debug)]
pub struct Prop2Report {
    /// Verdict for each unordered pair `(i, j)` with `i < j` that shares an
    /// entity.
    pub pair_verdicts: Vec<(TxnId, TxnId, SafetyVerdict)>,
    /// For each directed simple cycle of `G` (as transaction indices),
    /// whether its union graph `B_c` has a cycle.
    pub cycle_checks: Vec<(Vec<TxnId>, bool)>,
    /// Whether the cycle enumeration was exhaustive (within cap).
    pub cycles_exhaustive: bool,
    /// The overall verdict: safe iff all pairs safe and all `B_c` cyclic.
    /// `Unknown` if any component was undecided.
    pub verdict: Prop2Verdict,
}

/// Overall Proposition-2 verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Prop2Verdict {
    /// All pairwise subsystems safe and every `B_c` has a cycle.
    Safe,
    /// Some pair is unsafe (witness available in `pair_verdicts`).
    UnsafePair,
    /// All pairs safe but some cycle's `B_c` is acyclic.
    UnsafeCycle,
    /// Some pair undecided or the cycle cap was hit.
    Unknown,
}

/// Options for [`proposition2`].
#[derive(Clone, Debug)]
pub struct Prop2Options {
    /// Cap on the number of simple cycles of `G` to check.
    pub cycle_cap: usize,
    /// Options for pairwise decisions on > 2 sites.
    pub multisite: MultisiteOptions,
}

impl Default for Prop2Options {
    fn default() -> Self {
        Prop2Options {
            cycle_cap: 10_000,
            multisite: MultisiteOptions::default(),
        }
    }
}

/// The conflict graph `G` as a symmetric digraph.
pub fn conflict_graph_g(sys: &TxnSystem) -> DiGraph {
    let k = sys.len();
    let mut g = DiGraph::new(k);
    for i in 0..k {
        for j in (i + 1)..k {
            if !sys
                .shared_locked_entities(TxnId::from_idx(i), TxnId::from_idx(j))
                .is_empty()
            {
                g.add_edge(i, j);
                g.add_edge(j, i);
            }
        }
    }
    g
}

/// Builds the union graph `B_c` for a directed cycle `c` of `G`.
pub fn union_graph_for_cycle(sys: &TxnSystem, cycle: &[TxnId]) -> DiGraph {
    let len = cycle.len();
    // Node universe: (ordered interface (from,to), entity).
    let mut index: HashMap<(usize, usize, EntityId), usize> = HashMap::new();
    let mut nodes: Vec<(usize, usize, EntityId)> = Vec::new();
    let mut interface: Vec<Vec<EntityId>> = Vec::new(); // per cycle position
    for p in 0..len {
        let from = cycle[p];
        let to = cycle[(p + 1) % len];
        let shared = sys.shared_locked_entities(from, to);
        for &e in &shared {
            let key = (from.idx(), to.idx(), e);
            index.entry(key).or_insert_with(|| {
                nodes.push(key);
                nodes.len() - 1
            });
        }
        interface.push(shared);
    }
    let mut b = DiGraph::new(nodes.len());
    // For each subpath (Ti, Tj, Tk) — positions (p-1, p, p+1).
    for p in 0..len {
        let prev = (p + len - 1) % len;
        let ti = cycle[prev];
        let tj = cycle[p];
        let tk = cycle[(p + 1) % len];
        let left = &interface[prev]; // entities shared by Ti, Tj
        let right = &interface[p]; // entities shared by Tj, Tk
        let t = sys.txn(tj);
        let node_left = |e: EntityId| index[&(ti.idx(), tj.idx(), e)];
        let node_right = |e: EntityId| index[&(tj.idx(), tk.idx(), e)];
        // x_ij -> y_jk iff Lx ≺_j Uy.
        for &x in left {
            let lx = t.lock_step(x).expect("shared");
            for &y in right {
                let uy = t.unlock_step(y).expect("shared");
                if t.precedes(lx, uy) {
                    b.add_edge(node_left(x), node_right(y));
                }
            }
        }
        // x_ij -> x'_ij iff Lx ≺_j Lx'.
        for &x in left {
            let lx = t.lock_step(x).expect("shared");
            for &x2 in left {
                if x == x2 {
                    continue;
                }
                let lx2 = t.lock_step(x2).expect("shared");
                if t.precedes(lx, lx2) {
                    b.add_edge(node_left(x), node_left(x2));
                }
            }
        }
        // y_jk -> y'_jk iff Uy ≺_j Uy'.
        for &y in right {
            let uy = t.unlock_step(y).expect("shared");
            for &y2 in right {
                if y == y2 {
                    continue;
                }
                let uy2 = t.unlock_step(y2).expect("shared");
                if t.precedes(uy, uy2) {
                    b.add_edge(node_right(y), node_right(y2));
                }
            }
        }
    }
    b
}

/// Runs the full Proposition-2 analysis.
pub fn proposition2(sys: &TxnSystem, opts: &Prop2Options) -> Prop2Report {
    let k = sys.len();
    let mut pair_verdicts = Vec::new();
    let mut any_pair_unsafe = false;
    let mut any_unknown = false;
    for i in 0..k {
        for j in (i + 1)..k {
            let (a, b) = (TxnId::from_idx(i), TxnId::from_idx(j));
            if sys.shared_locked_entities(a, b).is_empty() {
                continue;
            }
            let v = if sys.db().site_count() <= 2 {
                decide_two_site(sys, a, b).expect("≤2 sites")
            } else {
                decide_multisite(sys, a, b, &opts.multisite)
            };
            match &v {
                SafetyVerdict::Unsafe(_) => any_pair_unsafe = true,
                SafetyVerdict::Unknown => any_unknown = true,
                SafetyVerdict::Safe(_) => {}
            }
            pair_verdicts.push((a, b, v));
        }
    }

    let g = conflict_graph_g(sys);
    let (cycles, cycles_exhaustive) = simple_cycles(&g, opts.cycle_cap);
    let mut cycle_checks = Vec::new();
    let mut any_acyclic_bc = false;
    for c in cycles {
        if c.len() < 2 {
            continue;
        }
        let cycle: Vec<TxnId> = c.into_iter().map(TxnId::from_idx).collect();
        let b = union_graph_for_cycle(sys, &cycle);
        let ok = has_cycle(&b);
        if !ok {
            any_acyclic_bc = true;
        }
        cycle_checks.push((cycle, ok));
    }

    let verdict = if any_pair_unsafe {
        Prop2Verdict::UnsafePair
    } else if any_acyclic_bc && !any_unknown {
        Prop2Verdict::UnsafeCycle
    } else if any_unknown || !cycles_exhaustive {
        Prop2Verdict::Unknown
    } else {
        Prop2Verdict::Safe
    };
    Prop2Report {
        pair_verdicts,
        cycle_checks,
        cycles_exhaustive,
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{decide_exhaustive, OracleOptions, OracleOutcome};
    use kplock_model::{Database, TxnBuilder};

    fn sys_from_scripts(names: &[&str], scripts: &[&str]) -> TxnSystem {
        let db = Database::centralized(names);
        let txns = scripts
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut b = TxnBuilder::new(&db, format!("T{}", i + 1));
                b.script(s).unwrap();
                b.build().unwrap()
            })
            .collect();
        TxnSystem::new(db, txns)
    }

    #[test]
    fn three_two_phase_transactions_are_safe() {
        let sys = sys_from_scripts(
            &["x", "y", "z"],
            &["Lx Ly x y Ux Uy", "Ly Lz y z Uy Uz", "Lz Lx z x Uz Ux"],
        );
        let report = proposition2(&sys, &Prop2Options::default());
        assert_eq!(report.verdict, Prop2Verdict::Safe);
        // Cross-check with the exact oracle.
        let oracle = decide_exhaustive(&sys, &OracleOptions::default());
        assert!(matches!(oracle.outcome, OracleOutcome::Safe));
    }

    #[test]
    fn pairwise_unsafe_is_reported() {
        let sys = sys_from_scripts(
            &["x", "y", "z"],
            &["Lx x Ux Ly y Uy", "Ly y Uy Lx x Ux", "Lz z Uz"],
        );
        let report = proposition2(&sys, &Prop2Options::default());
        assert_eq!(report.verdict, Prop2Verdict::UnsafePair);
        let oracle = decide_exhaustive(&sys, &OracleOptions::default());
        assert!(matches!(oracle.outcome, OracleOutcome::Unsafe(_)));
    }

    #[test]
    fn pairwise_safe_but_cycle_unsafe() {
        // Classic: three transactions, each pair shares exactly ONE entity
        // (pairwise trivially safe), but the triangle allows a cycle
        // T1 -> T2 -> T3 -> T1. Each transaction is NON-two-phase so the
        // union graph B_c can be acyclic.
        let sys = sys_from_scripts(
            &["x", "y", "z"],
            &[
                "Lx x Ux Ly y Uy", // T1: x then y
                "Ly y Uy Lz z Uz", // T2: y then z
                "Lz z Uz Lx x Ux", // T3: z then x
            ],
        );
        // Pairs: T1,T2 share y only; T2,T3 share z only; T1,T3 share x only.
        let report = proposition2(&sys, &Prop2Options::default());
        let oracle = decide_exhaustive(&sys, &OracleOptions::default());
        let oracle_unsafe = matches!(oracle.outcome, OracleOutcome::Unsafe(_));
        assert!(oracle_unsafe, "triangle anomaly must exist");
        assert_eq!(report.verdict, Prop2Verdict::UnsafeCycle);
    }

    #[test]
    fn agreement_with_oracle_on_three_txn_cases() {
        let cases: Vec<Vec<&str>> = vec![
            vec!["Lx Ly x y Ux Uy", "Ly Lz y z Uy Uz", "Lz Lx z x Uz Ux"],
            vec!["Lx x Ux Ly y Uy", "Ly y Uy Lz z Uz", "Lz z Uz Lx x Ux"],
            vec!["Lx Ly x y Ux Uy", "Ly y Uy Lz z Uz", "Lz Lx z x Uz Ux"],
            vec!["Lx Ly x y Uy Ux", "Ly Lz y z Uz Uy", "Lx Lz x z Ux Uz"],
        ];
        for scripts in cases {
            let sys = sys_from_scripts(&["x", "y", "z"], &scripts);
            let report = proposition2(&sys, &Prop2Options::default());
            let oracle = decide_exhaustive(&sys, &OracleOptions::default());
            let oracle_safe = matches!(oracle.outcome, OracleOutcome::Safe);
            let prop2_safe = report.verdict == Prop2Verdict::Safe;
            assert_eq!(
                prop2_safe, oracle_safe,
                "Proposition 2 disagrees with oracle on {scripts:?}: {:?}",
                report.verdict
            );
        }
    }
}
