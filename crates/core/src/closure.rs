//! The dominator-closure construction (Definition 3, Lemmas 2 and 3) and
//! certificate extraction (proof of Theorem 2, Corollary 2).
//!
//! Given a dominator `X` of `D(T1, T2)`, the closure repeatedly finds
//! triples `z ∈ V−X`, `x, y ∈ X` with `Lz ≺₁ Ux` and `Ly ≺₂ Uz` and adds
//! the precedences `Uy ≺₁ Ux` and `Ly ≺₂ Lx`. For two sites this always
//! succeeds and preserves the dominator (Lemmas 2–3); for three or more
//! sites it can fail — by creating a precedence cycle, or by growing a
//! `D`-arc into `X` — and each failure mode is reported. From a successfully
//! closed system, Corollary 2 extracts a certificate of unsafeness via two
//! priority topological sorts.

use crate::certificate::UnsafetyCertificate;
use crate::conflict_graph::ConflictDigraph;
use crate::total_pair::schedule_from_orientation;
use kplock_graph::topo_sort_by_key;
use kplock_model::{ActionKind, EntityId, StepId, Transaction, TxnId, TxnSystem};

/// A successfully closed system.
#[derive(Clone, Debug)]
pub struct Closure {
    /// The strengthened system (transactions `txn_a`, `txn_b` replaced by
    /// `R1`, `R2`; all other transactions untouched).
    pub system: TxnSystem,
    /// First transaction of the pair.
    pub txn_a: TxnId,
    /// Second transaction of the pair.
    pub txn_b: TxnId,
    /// The dominator the closure was taken with respect to.
    pub dominator: Vec<EntityId>,
    /// Precedences added to `txn_a` (audit trail).
    pub added_a: Vec<(StepId, StepId)>,
    /// Precedences added to `txn_b`.
    pub added_b: Vec<(StepId, StepId)>,
}

/// Why a closure attempt failed (possible only with ≥ 3 sites).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClosureError {
    /// A required precedence would create a cycle in a transaction's
    /// partial order.
    CycleCreated {
        /// Which transaction.
        txn: TxnId,
        /// Required precedence source.
        from: StepId,
        /// Required precedence target.
        to: StepId,
    },
    /// After strengthening, `D(R1, R2)` gained an arc from outside into the
    /// dominator, so `X` no longer dominates.
    DominatorBroken,
    /// The final orientation produced no legal schedule.
    OrientationInfeasible,
}

/// Closes `{Ta, Tb}` with respect to `dominator` (a set of shared locked
/// entities forming a dominator of `D(Ta, Tb)`).
pub fn close_wrt_dominator(
    sys: &TxnSystem,
    a: TxnId,
    b: TxnId,
    dominator: &[EntityId],
) -> Result<Closure, ClosureError> {
    let mut cur = sys.clone();
    let mut added_a = Vec::new();
    let mut added_b = Vec::new();

    loop {
        let d = ConflictDigraph::build(&cur, a, b);
        // X must still dominate: no arc from V−X into X.
        let in_x: Vec<bool> = d.entities.iter().map(|e| dominator.contains(e)).collect();
        for (u, v) in d.graph.edges() {
            if !in_x[u] && in_x[v] {
                return Err(ClosureError::DominatorBroken);
            }
        }

        let ta = cur.txn(a).clone();
        let tb = cur.txn(b).clone();
        let mut changed = false;

        for (zi, &z) in d.entities.iter().enumerate() {
            if in_x[zi] {
                continue;
            }
            let lz_a = ta.lock_step(z).expect("shared entity");
            let uz_b = tb.unlock_step(z).expect("shared entity");
            for (xi, &x) in d.entities.iter().enumerate() {
                if !in_x[xi] {
                    continue;
                }
                let ux_a = ta.unlock_step(x).expect("shared");
                let lx_b = tb.lock_step(x).expect("shared");
                if !ta.precedes(lz_a, ux_a) {
                    continue;
                }
                for (yi, &y) in d.entities.iter().enumerate() {
                    if !in_x[yi] || x == y {
                        continue;
                    }
                    let ly_b = tb.lock_step(y).expect("shared");
                    let uy_a = ta.unlock_step(y).expect("shared");
                    if !tb.precedes(ly_b, uz_b) {
                        continue;
                    }
                    // Condition met: require Uy ≺₁ Ux and Ly ≺₂ Lx.
                    if !ta.precedes(uy_a, ux_a) {
                        let t = cur.txn(a).with_precedence(uy_a, ux_a).map_err(|_| {
                            ClosureError::CycleCreated {
                                txn: a,
                                from: uy_a,
                                to: ux_a,
                            }
                        })?;
                        cur = cur.with_txn(a, t);
                        added_a.push((uy_a, ux_a));
                        changed = true;
                    }
                    if !tb.precedes(ly_b, lx_b) {
                        let t = cur.txn(b).with_precedence(ly_b, lx_b).map_err(|_| {
                            ClosureError::CycleCreated {
                                txn: b,
                                from: ly_b,
                                to: lx_b,
                            }
                        })?;
                        cur = cur.with_txn(b, t);
                        added_b.push((ly_b, lx_b));
                        changed = true;
                    }
                    if changed {
                        break;
                    }
                }
                if changed {
                    break;
                }
            }
            if changed {
                break;
            }
        }

        if !changed {
            return Ok(Closure {
                system: cur,
                txn_a: a,
                txn_b: b,
                dominator: dominator.to_vec(),
                added_a,
                added_b,
            });
        }
    }
}

/// Extracts the Theorem-2/Corollary-2 certificate from a closed system:
///
/// * `t1` topologically sorts `R1`, emitting `Ux` (x ∈ X) steps as early as
///   possible;
/// * `t2` topologically sorts `R2`, deferring `Lx` (x ∈ X) steps as long as
///   possible and tie-breaking them by the position of `Ux` in `t1`;
/// * the schedule runs `Ta`'s lock sections first on `X` and `Tb`'s first on
///   `V − X`.
pub fn certificate_from_closure(
    original: &TxnSystem,
    closure: &Closure,
) -> Result<UnsafetyCertificate, ClosureError> {
    let (a, b) = (closure.txn_a, closure.txn_b);
    let r1 = closure.system.txn(a);
    let r2 = closure.system.txn(b);
    let x_set = &closure.dominator;

    let is_unlock_of_x = |t: &Transaction, v: usize| {
        let s = t.step(StepId::from_idx(v));
        s.kind == ActionKind::Unlock && x_set.contains(&s.entity)
    };
    // "Place the Ux (x ∈ X) steps as early as possible in t1". Concretely:
    // rank the X-unlocks in an order consistent with R1's partial order
    // (the closure makes the relevant ones comparable), then emit each step
    // keyed by the rank of the earliest X-unlock it is an ancestor of —
    // steps not needed for any X-unlock come last. This realizes the
    // proof's property: if Uy ≺₁⁺ Ux for every x ∈ X with Lz ≺₁⁺ Ux, then
    // Uy precedes Lz in t1 (the whole ancestor cone of Uy carries smaller
    // keys than Lz).
    let x_unlocks_1: Vec<StepId> = x_set
        .iter()
        .map(|&e| r1.unlock_step(e).expect("dominator entity locked"))
        .collect();
    // Rank = position in a topological order of the X-unlocks under R1's
    // precedence (a partial-order-respecting total order; index tiebreak).
    let mut mini = kplock_graph::DiGraph::new(x_unlocks_1.len());
    for (i, &a) in x_unlocks_1.iter().enumerate() {
        for (j, &b) in x_unlocks_1.iter().enumerate() {
            if i != j && r1.precedes(a, b) {
                mini.add_edge(i, j);
            }
        }
    }
    let mini_order = topo_sort_by_key(&mini, |v| v).expect("partial order is acyclic");
    let ranked: Vec<StepId> = mini_order.iter().map(|&i| x_unlocks_1[i]).collect();
    let rank_of = |u: StepId| ranked.iter().position(|&r| r == u);
    let target = |t: &Transaction, v: usize| -> usize {
        x_unlocks_1
            .iter()
            .filter(|&&u| t.precedes_eq(StepId::from_idx(v), u))
            .filter_map(|&u| rank_of(u))
            .min()
            .unwrap_or(usize::MAX)
    };
    let t1_idx = topo_sort_by_key(r1.edge_graph(), |v| {
        (
            target(r1, v),
            if is_unlock_of_x(r1, v) { 0usize } else { 1 },
            v,
        )
    })
    .expect("transaction partial orders are acyclic");
    let t1_order: Vec<StepId> = t1_idx.iter().map(|&v| StepId::from_idx(v)).collect();

    // Position of Ux in t1 per entity in X.
    let ux_pos = |e: EntityId| -> usize {
        let ux = r1.unlock_step(e).expect("dominator entity locked");
        t1_order.iter().position(|&s| s == ux).expect("in order")
    };

    let t2_idx = topo_sort_by_key(r2.edge_graph(), |v| {
        let s = r2.step(StepId::from_idx(v));
        if s.kind == ActionKind::Lock && x_set.contains(&s.entity) {
            (1usize, ux_pos(s.entity), v)
        } else {
            (0, 0, v)
        }
    })
    .expect("acyclic");
    let t2_order: Vec<StepId> = t2_idx.iter().map(|&v| StepId::from_idx(v)).collect();

    let schedule = schedule_from_orientation(original, a, b, &t1_order, &t2_order, x_set)
        .ok_or(ClosureError::OrientationInfeasible)?;

    Ok(UnsafetyCertificate {
        txn_a: a,
        txn_b: b,
        t1_order,
        t2_order,
        dominator: x_set.to_vec(),
        schedule,
    })
}

/// Corollary-2 pipeline: attempt closure with respect to `dominator`,
/// extract a certificate and verify it. `None` if any stage fails —
/// soundness is preserved because only verified certificates are returned.
pub fn try_unsafety_via_dominator(
    sys: &TxnSystem,
    a: TxnId,
    b: TxnId,
    dominator: &[EntityId],
) -> Option<UnsafetyCertificate> {
    let closure = close_wrt_dominator(sys, a, b, dominator).ok()?;
    let cert = certificate_from_closure(sys, &closure).ok()?;
    cert.verify(sys).ok()?;
    Some(cert)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_graph::find_dominator;
    use kplock_model::{Database, TxnBuilder};

    /// A two-site system whose D(T1,T2) is `x ↔ y` with `z` isolated:
    /// dominators are {x, y} and {z}; the system is unsafe by Corollary 2.
    fn two_site_dominator_system() -> TxnSystem {
        let db = Database::from_spec(&[("x", 0), ("y", 0), ("z", 1)]);
        // T1: site 0 chain Ly Lx Uy Ux; site 1 chain Lz Uz; Lz ≺ Ux.
        let mut b1 = TxnBuilder::new(&db, "T1");
        b1.script("Ly Lx Uy Ux").unwrap();
        let [lz, _uz]: [_; 2] = b1.script("Lz Uz").unwrap().try_into().unwrap();
        let ux = kplock_model::StepId(3);
        b1.edge(lz, ux);
        let t1 = b1.build().unwrap();
        // T2: site 0 chain Ly Lx Uy Ux; site 1 chain Lz Uz; Ly ≺ Uz.
        let mut b2 = TxnBuilder::new(&db, "T2");
        let site0 = b2.script("Ly Lx Uy Ux").unwrap();
        let site1 = b2.script("Lz Uz").unwrap();
        b2.edge(site0[0], site1[1]); // Ly -> Uz
        let t2 = b2.build().unwrap();
        TxnSystem::new(db, vec![t1, t2])
    }

    #[test]
    fn closure_succeeds_on_two_sites_and_produces_certificate() {
        let sys = two_site_dominator_system();
        let d = ConflictDigraph::build(&sys, TxnId(0), TxnId(1));
        assert!(!d.is_strongly_connected(), "test premise");
        let dom_bits = find_dominator(&d.graph).unwrap();
        let dom: Vec<EntityId> = dom_bits.iter().map(|i| d.entities[i]).collect();
        let cert = try_unsafety_via_dominator(&sys, TxnId(0), TxnId(1), &dom)
            .expect("two-site closure must succeed (Lemma 3)");
        cert.verify(&sys).unwrap();
    }

    #[test]
    fn explicit_xy_dominator_also_works() {
        let sys = two_site_dominator_system();
        let x = sys.db().entity("x").unwrap();
        let y = sys.db().entity("y").unwrap();
        let cert = try_unsafety_via_dominator(&sys, TxnId(0), TxnId(1), &[x, y])
            .expect("closure w.r.t. {x,y}");
        cert.verify(&sys).unwrap();
        assert_eq!(cert.dominator, vec![x, y]);
    }

    #[test]
    fn closure_is_idempotent_when_nothing_to_add() {
        // Totally ordered pair: already closed w.r.t. any dominator.
        let db = Database::centralized(&["x", "y"]);
        let mut b1 = TxnBuilder::new(&db, "t1");
        b1.script("Lx x Ux Ly y Uy").unwrap();
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "t2");
        b2.script("Ly y Uy Lx x Ux").unwrap();
        let t2 = b2.build().unwrap();
        let sys = TxnSystem::new(db, vec![t1, t2]);
        let d = ConflictDigraph::build(&sys, TxnId(0), TxnId(1));
        let dom_bits = find_dominator(&d.graph).unwrap();
        let dom: Vec<EntityId> = dom_bits.iter().map(|i| d.entities[i]).collect();
        let c = close_wrt_dominator(&sys, TxnId(0), TxnId(1), &dom).unwrap();
        assert!(c.added_a.is_empty() && c.added_b.is_empty());
    }
}
