//! Safety verdicts and machine-checkable certificates.
//!
//! An unsafety certificate packages what Theorem 2's proof constructs: a
//! pair of linear extensions, a dominator of `D(t1, t2)`, and an explicit
//! legal, complete, non-serializable schedule. [`UnsafetyCertificate::verify`]
//! re-checks everything against the *original* system, so callers never have
//! to trust the search that produced it.

use kplock_model::{is_serializable, EntityId, ModelError, Schedule, StepId, TxnId, TxnSystem};

/// How a system was proven safe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SafeProof {
    /// `D(T1,T2)` strongly connected (Theorem 1; exact for ≤ 2 sites by
    /// Theorem 2).
    StronglyConnected,
    /// Exhaustive product-space search (the exact oracle).
    Exhaustive,
    /// Fewer than two entities are locked by both transactions.
    TrivialOverlap,
}

/// The outcome of a safety decision.
#[derive(Clone, Debug)]
pub enum SafetyVerdict {
    /// Every schedule is serializable.
    Safe(SafeProof),
    /// Some legal schedule is not serializable; here is one.
    Unsafe(Box<UnsafetyCertificate>),
    /// The procedure could not decide within its resource caps (only
    /// possible for ≥ 3 sites, where the problem is coNP-complete).
    Unknown,
}

impl SafetyVerdict {
    /// True for `Safe`.
    pub fn is_safe(&self) -> bool {
        matches!(self, SafetyVerdict::Safe(_))
    }

    /// True for `Unsafe`.
    pub fn is_unsafe(&self) -> bool {
        matches!(self, SafetyVerdict::Unsafe(_))
    }

    /// The certificate, if unsafe.
    pub fn certificate(&self) -> Option<&UnsafetyCertificate> {
        match self {
            SafetyVerdict::Unsafe(c) => Some(c),
            _ => None,
        }
    }
}

/// A certificate that a two-transaction system is unsafe.
#[derive(Clone, Debug)]
pub struct UnsafetyCertificate {
    /// The two transactions concerned.
    pub txn_a: TxnId,
    /// Second transaction.
    pub txn_b: TxnId,
    /// A linear extension of `txn_a`'s partial order.
    pub t1_order: Vec<StepId>,
    /// A linear extension of `txn_b`'s partial order.
    pub t2_order: Vec<StepId>,
    /// The dominator `X` of `D(t1, t2)` used to orient lock sections
    /// (entities in `X` run `txn_a` first).
    pub dominator: Vec<EntityId>,
    /// A legal, complete, non-serializable schedule of the pair.
    pub schedule: Schedule,
}

/// Why a certificate failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertificateError {
    /// `t1_order`/`t2_order` is not a linear extension.
    NotALinearExtension(TxnId),
    /// The schedule is illegal or incomplete.
    BadSchedule(ModelError),
    /// The schedule is serializable after all.
    ScheduleSerializable,
    /// The dominator is empty or covers all shared entities.
    BadDominator,
}

impl UnsafetyCertificate {
    /// Re-checks the certificate against `sys` (restricted to the two
    /// transactions named in it).
    pub fn verify(&self, sys: &TxnSystem) -> Result<(), CertificateError> {
        let ta = sys.txn(self.txn_a);
        let tb = sys.txn(self.txn_b);
        if !ta.is_linear_extension(&self.t1_order) {
            return Err(CertificateError::NotALinearExtension(self.txn_a));
        }
        if !tb.is_linear_extension(&self.t2_order) {
            return Err(CertificateError::NotALinearExtension(self.txn_b));
        }
        let shared = sys.shared_locked_entities(self.txn_a, self.txn_b);
        if self.dominator.is_empty()
            || self.dominator.len() >= shared.len()
            || self.dominator.iter().any(|e| !shared.contains(e))
        {
            return Err(CertificateError::BadDominator);
        }
        // The schedule must involve only the two transactions.
        let pair_sys = pair_subsystem(sys, self.txn_a, self.txn_b);
        let remapped = remap_schedule(&self.schedule, self.txn_a, self.txn_b);
        remapped
            .validate_complete(&pair_sys)
            .map_err(CertificateError::BadSchedule)?;
        if is_serializable(&pair_sys, &remapped) {
            return Err(CertificateError::ScheduleSerializable);
        }
        Ok(())
    }
}

/// The two-transaction subsystem `{Ta, Tb}` (ids 0 and 1).
pub fn pair_subsystem(sys: &TxnSystem, a: TxnId, b: TxnId) -> TxnSystem {
    TxnSystem::new(
        sys.db().clone(),
        vec![sys.txn(a).clone(), sys.txn(b).clone()],
    )
}

/// Renames transactions `a -> 0`, `b -> 1` in a schedule.
pub fn remap_schedule(s: &Schedule, a: TxnId, b: TxnId) -> Schedule {
    Schedule::new(
        s.steps()
            .iter()
            .map(|ss| kplock_model::ScheduledStep {
                txn: if ss.txn == a {
                    TxnId(0)
                } else if ss.txn == b {
                    TxnId(1)
                } else {
                    ss.txn
                },
                step: ss.step,
            })
            .collect(),
    )
}
