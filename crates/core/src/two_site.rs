//! Theorem 2 / Corollary 1: exact safety for two-site systems in O(n²).
//!
//! For transactions distributed over **at most two sites**, `{T1, T2}` is
//! safe iff `D(T1, T2)` is strongly connected. The decision itself is a
//! single SCC computation over a digraph built from O(k²) precedence
//! queries (k = shared entities, each query O(1) on precomputed closures) —
//! the paper's O(n²) bound. When unsafe, the dominator-closure pipeline
//! produces an explicit non-serializable schedule, and the certificate is
//! verified before being returned.

use crate::certificate::{SafeProof, SafetyVerdict};
use crate::closure::try_unsafety_via_dominator;
use crate::conflict_graph::ConflictDigraph;
use kplock_graph::find_dominator;
use kplock_model::{EntityId, TxnId, TxnSystem};

/// Errors from the two-site decision procedure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TwoSiteError {
    /// The system uses more than two sites; use
    /// [`crate::multisite::decide_multisite`] instead.
    TooManySites(usize),
}

impl std::fmt::Display for TwoSiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TwoSiteError::TooManySites(m) => {
                write!(f, "Theorem 2 requires at most two sites, got {m}")
            }
        }
    }
}

impl std::error::Error for TwoSiteError {}

/// Decides safety of the pair `{Ta, Tb}` for a (≤2)-site database.
pub fn decide_two_site(sys: &TxnSystem, a: TxnId, b: TxnId) -> Result<SafetyVerdict, TwoSiteError> {
    let m = sys.db().site_count();
    if m > 2 {
        return Err(TwoSiteError::TooManySites(m));
    }
    let d = ConflictDigraph::build(sys, a, b);
    if d.entities.len() < 2 {
        return Ok(SafetyVerdict::Safe(SafeProof::TrivialOverlap));
    }
    if d.is_strongly_connected() {
        return Ok(SafetyVerdict::Safe(SafeProof::StronglyConnected));
    }
    let dom_bits = find_dominator(&d.graph).expect("not strongly connected");
    let dominator: Vec<EntityId> = dom_bits.iter().map(|i| d.entities[i]).collect();
    let cert = try_unsafety_via_dominator(sys, a, b, &dominator).expect(
        "internal error: Theorem 2 guarantees the closure certificate for two sites \
         (Lemmas 2 and 3)",
    );
    Ok(SafetyVerdict::Unsafe(Box::new(cert)))
}

/// Convenience wrapper for a two-transaction system.
pub fn decide_two_site_system(sys: &TxnSystem) -> Result<SafetyVerdict, TwoSiteError> {
    assert_eq!(sys.len(), 2, "expects exactly two transactions");
    decide_two_site(sys, TxnId(0), TxnId(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{decide_exhaustive, OracleOptions, OracleOutcome};
    use kplock_model::{Database, TxnBuilder};

    fn centralized_pair(s1: &str, s2: &str) -> TxnSystem {
        let db = Database::centralized(&["x", "y", "z"]);
        let mut b1 = TxnBuilder::new(&db, "T1");
        b1.script(s1).unwrap();
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "T2");
        b2.script(s2).unwrap();
        let t2 = b2.build().unwrap();
        TxnSystem::new(db, vec![t1, t2])
    }

    #[test]
    fn agrees_with_oracle_on_centralized_pairs() {
        let cases = [
            ("Lx x Ux Ly y Uy", "Ly y Uy Lx x Ux"),
            ("Lx Ly x y Ux Uy", "Lx Ly y x Uy Ux"),
            ("Lx x Ux Ly y Uy", "Lx x Ux Ly y Uy"),
            ("Lx x Lz z Uz Ux Ly y Uy", "Lz z Uz Ly y Uy Lx x Ux"),
        ];
        for (s1, s2) in cases {
            let sys = centralized_pair(s1, s2);
            let verdict = decide_two_site_system(&sys).unwrap();
            let oracle = decide_exhaustive(&sys, &OracleOptions::default());
            let oracle_safe = matches!(oracle.outcome, OracleOutcome::Safe);
            assert_eq!(verdict.is_safe(), oracle_safe, "disagree on ({s1}, {s2})");
            if let Some(cert) = verdict.certificate() {
                cert.verify(&sys).unwrap();
            }
        }
    }

    #[test]
    fn rejects_three_sites() {
        let db = Database::from_spec(&[("x", 0), ("y", 1), ("z", 2)]);
        let mut b1 = TxnBuilder::new(&db, "T1");
        b1.script("Lx Ux").unwrap();
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "T2");
        b2.script("Lx Ux").unwrap();
        let t2 = b2.build().unwrap();
        let sys = TxnSystem::new(db, vec![t1, t2]);
        assert_eq!(
            decide_two_site_system(&sys).unwrap_err(),
            TwoSiteError::TooManySites(3)
        );
    }

    #[test]
    fn distributed_two_site_unsafe_pair() {
        // Loose per-site locking: each site individually two-phase but no
        // cross-site synchronization. D has no arcs at all => unsafe.
        let db = Database::from_spec(&[("x", 0), ("w", 1)]);
        let mk = |name: &str| {
            let mut b = TxnBuilder::new(&db, name);
            b.script("Lx x Ux").unwrap();
            b.script("Lw w Uw").unwrap();
            b.build().unwrap()
        };
        let sys = TxnSystem::new(db.clone(), vec![mk("T1"), mk("T2")]);
        let verdict = decide_two_site_system(&sys).unwrap();
        let cert = verdict.certificate().expect("unsafe");
        cert.verify(&sys).unwrap();
        // Cross-check with the exact oracle.
        let oracle = decide_exhaustive(&sys, &OracleOptions::default());
        assert!(matches!(oracle.outcome, OracleOutcome::Unsafe(_)));
    }
}
