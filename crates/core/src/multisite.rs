//! Safety of two transactions distributed over many sites.
//!
//! Theorem 3 shows this problem coNP-complete, so no polynomial decision
//! procedure is expected. This module combines:
//!
//! 1. **Theorem 1** (sound for Safe): strong connectivity of `D(T1,T2)`;
//! 2. **Corollary 2** (sound for Unsafe): for each dominator of `D`, attempt
//!    the closure; a verified certificate proves unsafety;
//! 3. an optional **exhaustive oracle** fallback (exact but exponential).
//!
//! Without the oracle the procedure may return [`SafetyVerdict::Unknown`] —
//! e.g. on the paper's four-site Fig. 5 system, where `D` is not strongly
//! connected, every closure attempt fails, and yet the system is safe.

use crate::certificate::{SafeProof, SafetyVerdict, UnsafetyCertificate};
use crate::closure::try_unsafety_via_dominator;
use crate::conflict_graph::ConflictDigraph;
use crate::oracle::{decide_exhaustive, OracleOptions, OracleOutcome};
use kplock_graph::enumerate_dominators;
use kplock_model::{ActionKind, EntityId, Schedule, ScheduledStep, StepId, TxnId, TxnSystem};

/// Options for the multisite procedure.
#[derive(Clone, Debug)]
pub struct MultisiteOptions {
    /// Maximum number of dominators to try closures for.
    pub dominator_cap: usize,
    /// Optional exhaustive fallback.
    pub oracle: Option<OracleOptions>,
}

impl Default for MultisiteOptions {
    fn default() -> Self {
        MultisiteOptions {
            dominator_cap: 4096,
            oracle: Some(OracleOptions::default()),
        }
    }
}

/// Decides (or semi-decides) safety of `{Ta, Tb}` over any number of sites.
pub fn decide_multisite(
    sys: &TxnSystem,
    a: TxnId,
    b: TxnId,
    opts: &MultisiteOptions,
) -> SafetyVerdict {
    let d = ConflictDigraph::build(sys, a, b);
    if d.entities.len() < 2 {
        return SafetyVerdict::Safe(SafeProof::TrivialOverlap);
    }
    if d.is_strongly_connected() {
        return SafetyVerdict::Safe(SafeProof::StronglyConnected);
    }

    let (dominators, dominators_exhaustive) = enumerate_dominators(&d.graph, opts.dominator_cap);
    for dom_bits in &dominators {
        let dom: Vec<EntityId> = dom_bits.iter().map(|i| d.entities[i]).collect();
        if let Some(cert) = try_unsafety_via_dominator(sys, a, b, &dom) {
            return SafetyVerdict::Unsafe(Box::new(cert));
        }
    }
    let _ = dominators_exhaustive; // closure failure is inconclusive either way

    if let Some(oracle_opts) = &opts.oracle {
        let pair = crate::certificate::pair_subsystem(sys, a, b);
        let report = decide_exhaustive(&pair, oracle_opts);
        return match report.outcome {
            OracleOutcome::Safe => SafetyVerdict::Safe(SafeProof::Exhaustive),
            OracleOutcome::Unsafe(witness) => match certificate_from_witness(sys, a, b, &witness) {
                Some(cert) => SafetyVerdict::Unsafe(Box::new(cert)),
                None => SafetyVerdict::Unknown,
            },
            OracleOutcome::Aborted => SafetyVerdict::Unknown,
        };
    }
    SafetyVerdict::Unknown
}

/// Packages an oracle witness schedule (over the pair subsystem with ids
/// 0/1) as a certificate for `{a, b}` of the original system.
pub fn certificate_from_witness(
    sys: &TxnSystem,
    a: TxnId,
    b: TxnId,
    witness: &Schedule,
) -> Option<UnsafetyCertificate> {
    // Projections of the witness are linear extensions.
    let t1_order: Vec<StepId> = witness
        .steps()
        .iter()
        .filter(|ss| ss.txn == TxnId(0))
        .map(|ss| ss.step)
        .collect();
    let t2_order: Vec<StepId> = witness
        .steps()
        .iter()
        .filter(|ss| ss.txn == TxnId(1))
        .map(|ss| ss.step)
        .collect();

    // Orientation: entities whose Ta-section completes before Tb's begins.
    let ta = sys.txn(a);
    let tb = sys.txn(b);
    let pos = |txn: TxnId, step: StepId| {
        witness
            .steps()
            .iter()
            .position(|ss| ss.txn == txn && ss.step == step)
    };
    let mut dominator = Vec::new();
    let shared = sys.shared_locked_entities(a, b);
    for &e in &shared {
        let ua = pos(TxnId(0), ta.unlock_step(e)?)?;
        let lb = pos(TxnId(1), tb.lock_step(e)?)?;
        if ua < lb {
            dominator.push(e);
        }
    }
    let schedule = Schedule::new(
        witness
            .steps()
            .iter()
            .map(|ss| ScheduledStep {
                txn: if ss.txn == TxnId(0) { a } else { b },
                step: ss.step,
            })
            .collect(),
    );
    let cert = UnsafetyCertificate {
        txn_a: a,
        txn_b: b,
        t1_order,
        t2_order,
        dominator,
        schedule,
    };
    cert.verify(sys).ok()?;
    Some(cert)
}

/// Sanity helper used in experiments: true iff the pair locks any entity
/// without updates (figure-style) — affects how accesses are counted.
pub fn is_figure_style(sys: &TxnSystem, a: TxnId, b: TxnId) -> bool {
    [a, b].iter().any(|&t| {
        let txn = sys.txn(t);
        txn.locked_entities()
            .iter()
            .any(|&e| txn.update_steps(e).is_empty())
    })
}

/// Marks steps for diagnostics (unused entities etc.).
pub fn lock_section_spans(sys: &TxnSystem, t: TxnId) -> Vec<(EntityId, StepId, StepId)> {
    let txn = sys.txn(t);
    txn.locked_entities()
        .into_iter()
        .filter_map(|e| {
            let l = txn.lock_step(e)?;
            let u = txn.unlock_step(e)?;
            debug_assert_eq!(txn.step(l).kind, ActionKind::Lock);
            Some((e, l, u))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_model::{Database, TxnBuilder};

    /// The Fig. 5 construction (semantically): four sites, entities
    /// x1, x2, y1, y2, one per site. D(T1,T2) = {x1 ↔ x2, y1 ↔ y2, x1 → y1};
    /// the only dominator is {x1, x2}; its closure forces Ux1 to both
    /// precede and follow Ux2, so there is no certificate — and the system
    /// is in fact safe (Theorem 1's converse fails at ≥ 4 sites).
    pub(crate) fn fig5_system() -> TxnSystem {
        let db = Database::from_spec(&[("x1", 0), ("x2", 1), ("y1", 2), ("y2", 3)]);
        let mut b1 = TxnBuilder::new(&db, "T1");
        let mut b2 = TxnBuilder::new(&db, "T2");
        let mut step1 = std::collections::HashMap::new();
        let mut step2 = std::collections::HashMap::new();
        for e in ["x1", "x2", "y1", "y2"] {
            let l1 = b1.lock(e).unwrap();
            let u1 = b1.unlock(e).unwrap();
            step1.insert((e, 'L'), l1);
            step1.insert((e, 'U'), u1);
            let l2 = b2.lock(e).unwrap();
            let u2 = b2.unlock(e).unwrap();
            step2.insert((e, 'L'), l2);
            step2.insert((e, 'U'), u2);
        }
        // Realize intended arcs (p,q): Lp ≺1 Uq and Lq ≺2 Up.
        let arcs = [
            ("x1", "x2"),
            ("x2", "x1"),
            ("y1", "y2"),
            ("y2", "y1"),
            ("x1", "y1"),
        ];
        for (p, q) in arcs {
            b1.edge(step1[&(p, 'L')], step1[&(q, 'U')]);
            b2.edge(step2[&(q, 'L')], step2[&(p, 'U')]);
        }
        // Closure-trigger gadget: Ly1 ≺1 Ux1, Ly2 ≺1 Ux2 in T1;
        // Lx2 ≺2 Uy1, Lx1 ≺2 Uy2 in T2 (index-shifted to avoid new D-arcs).
        b1.edge(step1[&("y1", 'L')], step1[&("x1", 'U')]);
        b1.edge(step1[&("y2", 'L')], step1[&("x2", 'U')]);
        b2.edge(step2[&("x2", 'L')], step2[&("y1", 'U')]);
        b2.edge(step2[&("x1", 'L')], step2[&("y2", 'U')]);
        let t1 = b1.build().unwrap();
        let t2 = b2.build().unwrap();
        TxnSystem::new(db, vec![t1, t2])
    }

    #[test]
    fn fig5_d_graph_is_as_intended() {
        let sys = fig5_system();
        let d = ConflictDigraph::build(&sys, TxnId(0), TxnId(1));
        let e = |n: &str| sys.db().entity(n).unwrap();
        assert!(d.has_arc(e("x1"), e("x2")));
        assert!(d.has_arc(e("x2"), e("x1")));
        assert!(d.has_arc(e("y1"), e("y2")));
        assert!(d.has_arc(e("y2"), e("y1")));
        assert!(d.has_arc(e("x1"), e("y1")));
        assert_eq!(d.graph.edge_count(), 5, "no unintended arcs");
        assert!(!d.is_strongly_connected());
    }

    #[test]
    fn fig5_every_closure_fails_but_system_is_safe() {
        let sys = fig5_system();
        let d = ConflictDigraph::build(&sys, TxnId(0), TxnId(1));
        let (doms, exhaustive) = enumerate_dominators(&d.graph, 1000);
        assert!(exhaustive);
        assert_eq!(doms.len(), 1, "only dominator is {{x1,x2}}");
        for dom_bits in &doms {
            let dom: Vec<EntityId> = dom_bits.iter().map(|i| d.entities[i]).collect();
            assert!(
                try_unsafety_via_dominator(&sys, TxnId(0), TxnId(1), &dom).is_none(),
                "closure must fail on Fig. 5"
            );
        }
        // Full procedure with oracle fallback: Safe (exhaustive).
        let v = decide_multisite(&sys, TxnId(0), TxnId(1), &MultisiteOptions::default());
        assert!(matches!(v, SafetyVerdict::Safe(SafeProof::Exhaustive)));
        // Without oracle: Unknown — the paper's open territory for 3 sites.
        let v = decide_multisite(
            &sys,
            TxnId(0),
            TxnId(1),
            &MultisiteOptions {
                dominator_cap: 1000,
                oracle: None,
            },
        );
        assert!(matches!(v, SafetyVerdict::Unknown));
    }

    #[test]
    fn multisite_unsafe_with_closure_certificate() {
        // Loose per-site locking across 3 sites: D has no arcs; any single
        // entity is a dominator and closes trivially.
        let db = Database::from_spec(&[("x", 0), ("y", 1), ("z", 2)]);
        let mk = |name: &str| {
            let mut b = TxnBuilder::new(&db, name);
            b.script("Lx x Ux").unwrap();
            b.script("Ly y Uy").unwrap();
            b.script("Lz z Uz").unwrap();
            b.build().unwrap()
        };
        let sys = TxnSystem::new(db.clone(), vec![mk("T1"), mk("T2")]);
        let v = decide_multisite(&sys, TxnId(0), TxnId(1), &MultisiteOptions::default());
        let cert = v.certificate().expect("unsafe");
        cert.verify(&sys).unwrap();
    }
}
