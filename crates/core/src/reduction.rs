//! Theorem 3: the reduction from restricted CNF satisfiability to
//! unsafety of a two-transaction multisite system.
//!
//! Given a CNF formula `F` in the paper's restricted form (clauses of width
//! 2–3; each variable ≤ 2 positive and ≤ 1 negative occurrences), this
//! module builds transactions `T1(F)`, `T2(F)` — every entity stored at its
//! own site — such that `{T1(F), T2(F)}` is **unsafe iff `F` is
//! satisfiable**.
//!
//! The intended conflict digraph `D` (Fig. 8) consists of:
//!
//! * an **upper cycle** through `u`, the clause-literal nodes `c_ij` and
//!   separating dummies;
//! * a **middle row**: for each variable `k`, nodes `w_k` and `w'_k`
//!   (direct descendants of `u`); if `x_k` occurs twice positively, two
//!   copies of `w_k` joined by arcs in both directions, only the first a
//!   direct descendant of `u`;
//! * a **lower cycle** through `v`, the nodes `z_k`, `z'_k` and dummies,
//!   with `v` a direct descendant of every middle node that descends
//!   directly from `u`.
//!
//! Dominators of `D` are exactly "upper cycle + a subset of middle SCCs";
//! reading `w_k ∈ X` as `x_k = true` and `w'_k ∈ X` as `x_k = false`, the
//! *completion gadgets* make the dominator closure (Definition 3) fail
//! exactly on the **undesirable** dominators — those choosing both
//! polarities of a variable, or satisfying no literal of some clause. Thus
//! a closure certificate (Corollary 2) exists iff `F` has a satisfying
//! assignment.
//!
//! Every intended arc `(p, q)` is realized sparsely by `Lp ≺₁ Uq` and
//! `Lq ≺₂ Up`; since all cross-entity precedences run from lock steps to
//! unlock steps, the transitive closure introduces no unintended
//! Definition-1 arcs — [`Reduction::verify_intended`] checks this.

use crate::conflict_graph::ConflictDigraph;
use kplock_graph::DiGraph;
use kplock_model::{Database, EntityId, SiteId, Step, StepId, Transaction, TxnId, TxnSystem};
use kplock_sat::{solve, Cnf, SatResult};
use std::collections::HashMap;

/// What role an entity/node plays in the construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// The upper-cycle anchor `u`.
    U,
    /// A dummy node of the upper cycle.
    UpperDummy,
    /// The node `c_ij` for the `j`-th literal of clause `i`.
    ClauseLit {
        /// Clause index.
        clause: usize,
        /// Literal position within the clause.
        lit: usize,
    },
    /// `w_k` (copy 0 is the primary, direct descendant of `u`).
    WPos {
        /// Variable index.
        var: usize,
        /// Copy number (0 or 1).
        copy: usize,
    },
    /// `w'_k`, the negation's middle node.
    WNeg {
        /// Variable index.
        var: usize,
    },
    /// The lower-cycle anchor `v`.
    V,
    /// `z_k` (`neg == false`) or `z'_k` (`neg == true`).
    Z {
        /// Variable index.
        var: usize,
        /// Whether this is the negation's node.
        neg: bool,
    },
    /// A dummy node of the lower cycle.
    LowerDummy,
}

/// Errors from [`reduce`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReductionError {
    /// The formula is not in the paper's restricted form.
    NotRestricted,
    /// A clause contains a repeated variable (dedupe/tautology-eliminate
    /// first).
    RepeatedVariable(usize),
}

impl std::fmt::Display for ReductionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReductionError::NotRestricted => {
                write!(
                    f,
                    "formula not in restricted form (use kplock_sat::to_restricted_form)"
                )
            }
            ReductionError::RepeatedVariable(c) => {
                write!(f, "clause {c} repeats a variable")
            }
        }
    }
}

impl std::error::Error for ReductionError {}

/// The full output of the Theorem-3 construction.
#[derive(Clone, Debug)]
pub struct Reduction {
    /// The source formula.
    pub cnf: Cnf,
    /// `{T1(F), T2(F)}`, one site per entity.
    pub sys: TxnSystem,
    /// Role of each entity (indexed by entity id).
    pub kinds: Vec<NodeKind>,
    /// The intended digraph `D` over entity indices.
    pub intended: DiGraph,
}

impl Reduction {
    /// The actual `D(T1(F), T2(F))`.
    pub fn d_graph(&self) -> ConflictDigraph {
        ConflictDigraph::build(&self.sys, TxnId(0), TxnId(1))
    }

    /// Checks that the constructed `D` equals the intended digraph
    /// (vertex sets coincide because both transactions lock everything).
    pub fn verify_intended(&self) -> bool {
        let d = self.d_graph();
        if d.entities.len() != self.intended.node_count() {
            return false;
        }
        if d.graph.edge_count() != self.intended.edge_count() {
            return false;
        }
        let matches = d.graph.edges().all(|(a, b)| self.intended.has_edge(a, b));
        matches
    }

    /// The dominator corresponding to an assignment: upper cycle plus the
    /// middle SCCs of the true literals.
    pub fn dominator_for_assignment(&self, assignment: &[bool]) -> Vec<EntityId> {
        let mut x = Vec::new();
        for (i, kind) in self.kinds.iter().enumerate() {
            let include = match kind {
                NodeKind::U | NodeKind::UpperDummy | NodeKind::ClauseLit { .. } => true,
                NodeKind::WPos { var, .. } => assignment[*var],
                NodeKind::WNeg { var } => !assignment[*var],
                _ => false,
            };
            if include {
                x.push(EntityId::from_idx(i));
            }
        }
        x
    }

    /// Reads a dominator as a (partial) assignment: `Some(true)` if `w_k`
    /// is in, `Some(false)` if `w'_k` is in, `None` if neither, and an
    /// error (`Err(var)`) if both are (undesirable type 1).
    pub fn assignment_of_dominator(&self, dom: &[EntityId]) -> Result<Vec<Option<bool>>, usize> {
        let mut out = vec![None; self.cnf.num_vars];
        for e in dom {
            match &self.kinds[e.idx()] {
                NodeKind::WPos { var, copy: 0 } => match out[*var] {
                    Some(false) => return Err(*var),
                    _ => out[*var] = Some(true),
                },
                NodeKind::WNeg { var } => match out[*var] {
                    Some(true) => return Err(*var),
                    _ => out[*var] = Some(false),
                },
                _ => {}
            }
        }
        Ok(out)
    }

    /// Whether a dominator is *desirable*: consistent polarities and every
    /// clause contains a literal made true.
    pub fn is_desirable(&self, dom: &[EntityId]) -> bool {
        let Ok(assignment) = self.assignment_of_dominator(dom) else {
            return false;
        };
        self.cnf.clauses.iter().all(|c| {
            c.iter()
                .any(|l| assignment[l.var.idx()] == Some(l.positive))
        })
    }

    /// Decides satisfiability of the source formula with DPLL (the paper's
    /// equivalence: satisfiable iff the transaction pair is unsafe).
    pub fn solve_formula(&self) -> SatResult {
        solve(&self.cnf)
    }

    /// Human-readable entity label.
    pub fn label(&self, e: EntityId) -> String {
        self.sys.db().name_of(e).to_string()
    }
}

/// Builds the Theorem-3 reduction for a restricted-form formula.
pub fn reduce(cnf: &Cnf) -> Result<Reduction, ReductionError> {
    if !cnf.is_restricted_form() {
        return Err(ReductionError::NotRestricted);
    }
    for (ci, c) in cnf.clauses.iter().enumerate() {
        let mut vars: Vec<_> = c.iter().map(|l| l.var).collect();
        vars.sort();
        vars.dedup();
        if vars.len() != c.len() {
            return Err(ReductionError::RepeatedVariable(ci));
        }
    }

    // ---- 1. Create the node set. ------------------------------------
    let mut db = Database::new();
    let mut kinds: Vec<NodeKind> = Vec::new();
    let add = |db: &mut Database, kinds: &mut Vec<NodeKind>, name: String, kind: NodeKind| {
        let site = SiteId::from_idx(kinds.len()); // one site per entity
        let e = db.add_entity(&name, site);
        kinds.push(kind);
        e
    };

    let u = add(&mut db, &mut kinds, "u".into(), NodeKind::U);
    let mut upper_cycle: Vec<EntityId> = vec![u];
    let mut clause_nodes: Vec<Vec<EntityId>> = Vec::new();
    let mut dummy_count = 0usize;
    for (i, clause) in cnf.clauses.iter().enumerate() {
        let mut row = Vec::new();
        for j in 0..clause.len() {
            let d = add(
                &mut db,
                &mut kinds,
                format!("ud{dummy_count}"),
                NodeKind::UpperDummy,
            );
            dummy_count += 1;
            upper_cycle.push(d);
            let c = add(
                &mut db,
                &mut kinds,
                format!("c{}_{}", i + 1, j + 1),
                NodeKind::ClauseLit { clause: i, lit: j },
            );
            upper_cycle.push(c);
            row.push(c);
        }
        clause_nodes.push(row);
    }
    // Final dummy closing the upper cycle back to u.
    let closing = add(
        &mut db,
        &mut kinds,
        format!("ud{dummy_count}"),
        NodeKind::UpperDummy,
    );
    upper_cycle.push(closing);

    // Middle row.
    let occurrences = cnf.occurrence_counts();
    let mut wpos: Vec<Vec<EntityId>> = Vec::new();
    let mut wneg: Vec<EntityId> = Vec::new();
    for (k, occ) in occurrences.iter().enumerate() {
        let copies = if occ.0 == 2 { 2 } else { 1 };
        let mut row = Vec::new();
        for copy in 0..copies {
            let name = if copy == 0 {
                format!("w{}", k + 1)
            } else {
                format!("w{}_{}", k + 1, copy + 1)
            };
            row.push(add(
                &mut db,
                &mut kinds,
                name,
                NodeKind::WPos { var: k, copy },
            ));
        }
        wpos.push(row);
        wneg.push(add(
            &mut db,
            &mut kinds,
            format!("w{}'", k + 1),
            NodeKind::WNeg { var: k },
        ));
    }

    // Lower cycle.
    let v = add(&mut db, &mut kinds, "v".into(), NodeKind::V);
    let mut lower_cycle: Vec<EntityId> = vec![v];
    let mut zpos: Vec<EntityId> = Vec::new();
    let mut zneg: Vec<EntityId> = Vec::new();
    let mut ldummy = 0usize;
    for k in 0..cnf.num_vars {
        let d = add(
            &mut db,
            &mut kinds,
            format!("ld{ldummy}"),
            NodeKind::LowerDummy,
        );
        ldummy += 1;
        lower_cycle.push(d);
        let z = add(
            &mut db,
            &mut kinds,
            format!("z{}", k + 1),
            NodeKind::Z { var: k, neg: false },
        );
        lower_cycle.push(z);
        zpos.push(z);
        let d = add(
            &mut db,
            &mut kinds,
            format!("ld{ldummy}"),
            NodeKind::LowerDummy,
        );
        ldummy += 1;
        lower_cycle.push(d);
        let z2 = add(
            &mut db,
            &mut kinds,
            format!("z{}'", k + 1),
            NodeKind::Z { var: k, neg: true },
        );
        lower_cycle.push(z2);
        zneg.push(z2);
    }
    let closing_low = add(
        &mut db,
        &mut kinds,
        format!("ld{ldummy}"),
        NodeKind::LowerDummy,
    );
    lower_cycle.push(closing_low);

    // ---- 2. Intended arcs. -------------------------------------------
    let n = kinds.len();
    let mut intended = DiGraph::new(n);
    let arc = |g: &mut DiGraph, p: EntityId, q: EntityId| {
        g.add_edge(p.idx(), q.idx());
    };
    for w in upper_cycle.windows(2) {
        arc(&mut intended, w[0], w[1]);
    }
    arc(&mut intended, *upper_cycle.last().unwrap(), u);
    for k in 0..cnf.num_vars {
        arc(&mut intended, u, wpos[k][0]);
        arc(&mut intended, u, wneg[k]);
        if wpos[k].len() == 2 {
            arc(&mut intended, wpos[k][0], wpos[k][1]);
            arc(&mut intended, wpos[k][1], wpos[k][0]);
        }
        arc(&mut intended, wpos[k][0], v);
        arc(&mut intended, wneg[k], v);
    }
    for w in lower_cycle.windows(2) {
        arc(&mut intended, w[0], w[1]);
    }
    arc(&mut intended, *lower_cycle.last().unwrap(), v);

    // ---- 3. Transactions: Lx x Ux per entity + cross edges. ----------
    let mut steps1: Vec<Step> = Vec::new();
    let mut steps2: Vec<Step> = Vec::new();
    let mut lock1: HashMap<EntityId, StepId> = HashMap::new();
    let mut unlock1: HashMap<EntityId, StepId> = HashMap::new();
    let mut lock2: HashMap<EntityId, StepId> = HashMap::new();
    let mut unlock2: HashMap<EntityId, StepId> = HashMap::new();
    let mut edges1: Vec<(StepId, StepId)> = Vec::new();
    let mut edges2: Vec<(StepId, StepId)> = Vec::new();
    for i in 0..n {
        let e = EntityId::from_idx(i);
        for (steps, lock, unlock, edges) in [
            (&mut steps1, &mut lock1, &mut unlock1, &mut edges1),
            (&mut steps2, &mut lock2, &mut unlock2, &mut edges2),
        ] {
            let l = StepId::from_idx(steps.len());
            steps.push(Step::lock(e));
            let up = StepId::from_idx(steps.len());
            steps.push(Step::update(e));
            let ul = StepId::from_idx(steps.len());
            steps.push(Step::unlock(e));
            edges.push((l, up));
            edges.push((up, ul));
            lock.insert(e, l);
            unlock.insert(e, ul);
        }
    }
    // Realize intended arcs.
    for (p, q) in intended.edges() {
        let (p, q) = (EntityId::from_idx(p), EntityId::from_idx(q));
        edges1.push((lock1[&p], unlock1[&q]));
        edges2.push((lock2[&q], unlock2[&p]));
    }
    // Gadget (a): Lz_k ≺₁ Uw_k, Lz'_k ≺₁ Uw'_k; Lw_k ≺₂ Uz'_k,
    // Lw'_k ≺₂ Uz_k.
    for k in 0..cnf.num_vars {
        edges1.push((lock1[&zpos[k]], unlock1[&wpos[k][0]]));
        edges1.push((lock1[&zneg[k]], unlock1[&wneg[k]]));
        edges2.push((lock2[&wpos[k][0]], unlock2[&zneg[k]]));
        edges2.push((lock2[&wneg[k]], unlock2[&zpos[k]]));
    }
    // Gadgets (b)/(c): per occurrence, with the index shift.
    let mut pos_seen = vec![0usize; cnf.num_vars];
    for (i, clause) in cnf.clauses.iter().enumerate() {
        let width = clause.len();
        for (j, lit) in clause.iter().enumerate() {
            let m = if lit.positive {
                let copy = pos_seen[lit.var.idx()].min(wpos[lit.var.idx()].len() - 1);
                pos_seen[lit.var.idx()] += 1;
                wpos[lit.var.idx()][copy]
            } else {
                wneg[lit.var.idx()]
            };
            let c_here = clause_nodes[i][j];
            let c_next = clause_nodes[i][(j + 1) % width];
            edges1.push((lock1[&m], unlock1[&c_here]));
            edges2.push((lock2[&c_next], unlock2[&m]));
        }
    }

    let t1 = Transaction::new("T1(F)", steps1, edges1).expect("reduction T1 acyclic");
    let t2 = Transaction::new("T2(F)", steps2, edges2).expect("reduction T2 acyclic");
    let sys = TxnSystem::new(db, vec![t1, t2]);
    Ok(Reduction {
        cnf: cnf.clone(),
        sys,
        kinds,
        intended,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::try_unsafety_via_dominator;
    use kplock_model::Level;
    use kplock_sat::SatResult;

    /// The paper's Fig. 8 example: F = (x1 ∨ x2 ∨ x3) ∧ (¬x1 ∨ x2 ∨ ¬x3).
    pub(crate) fn fig8_formula() -> Cnf {
        Cnf::from_clauses(
            3,
            &[
                &[(0, true), (1, true), (2, true)],
                &[(0, false), (1, true), (2, false)],
            ],
        )
    }

    #[test]
    fn fig8_reduction_is_well_formed() {
        let r = reduce(&fig8_formula()).unwrap();
        r.sys.validate(Level::Strict).unwrap();
        assert!(r.verify_intended(), "D(T1,T2) != intended digraph");
    }

    #[test]
    fn fig8_satisfiable_gives_verified_certificate() {
        let r = reduce(&fig8_formula()).unwrap();
        let SatResult::Sat(model) = r.solve_formula() else {
            panic!("fig8 formula is satisfiable");
        };
        let dom = r.dominator_for_assignment(&model);
        let cert = try_unsafety_via_dominator(&r.sys, TxnId(0), TxnId(1), &dom)
            .expect("desirable dominator must close");
        cert.verify(&r.sys).unwrap();
    }

    #[test]
    fn undesirable_dominators_fail() {
        let r = reduce(&fig8_formula()).unwrap();
        // Type 1: both polarities of x1.
        let mut dom = r.dominator_for_assignment(&[true, true, true]);
        // Add w1' too.
        let w1n = r
            .kinds
            .iter()
            .position(|k| matches!(k, NodeKind::WNeg { var: 0 }))
            .unwrap();
        dom.push(EntityId::from_idx(w1n));
        assert!(!r.is_desirable(&dom));
        assert!(try_unsafety_via_dominator(&r.sys, TxnId(0), TxnId(1), &dom).is_none());

        // Type 2: upper cycle alone falsifies clause 1.
        let upper_only: Vec<EntityId> = r
            .kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| {
                matches!(
                    k,
                    NodeKind::U | NodeKind::UpperDummy | NodeKind::ClauseLit { .. }
                )
            })
            .map(|(i, _)| EntityId::from_idx(i))
            .collect();
        assert!(!r.is_desirable(&upper_only));
        assert!(try_unsafety_via_dominator(&r.sys, TxnId(0), TxnId(1), &upper_only).is_none());
    }

    #[test]
    fn dominator_assignment_roundtrip() {
        let r = reduce(&fig8_formula()).unwrap();
        // A genuine model: clause 1 via x1, clause 2 via x2.
        let model = [true, true, false];
        let dom = r.dominator_for_assignment(&model);
        let back = r.assignment_of_dominator(&dom).unwrap();
        for (k, &m) in model.iter().enumerate() {
            assert_eq!(back[k], Some(m));
        }
        assert!(r.is_desirable(&dom));
    }

    #[test]
    fn rejects_unrestricted_formulas() {
        // Unit clause.
        let f = Cnf::from_clauses(1, &[&[(0, true)]]);
        assert_eq!(reduce(&f).unwrap_err(), ReductionError::NotRestricted);
        // Repeated variable.
        let f = Cnf::from_clauses(2, &[&[(0, true), (0, false), (1, true)]]);
        assert!(matches!(
            reduce(&f),
            Err(ReductionError::RepeatedVariable(0)) | Err(ReductionError::NotRestricted)
        ));
    }

    #[test]
    fn two_literal_clauses_work() {
        // (x1 ∨ x2) ∧ (¬x1 ∨ ¬x2): satisfiable.
        let f = Cnf::from_clauses(2, &[&[(0, true), (1, true)], &[(0, false), (1, false)]]);
        let r = reduce(&f).unwrap();
        assert!(r.verify_intended());
        let SatResult::Sat(model) = r.solve_formula() else {
            panic!("satisfiable");
        };
        let dom = r.dominator_for_assignment(&model);
        let cert = try_unsafety_via_dominator(&r.sys, TxnId(0), TxnId(1), &dom)
            .expect("closure certificate");
        cert.verify(&r.sys).unwrap();
    }
}
