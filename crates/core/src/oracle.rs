//! Exact (exponential) safety oracles.
//!
//! Two independent ground-truth procedures used to validate the paper's
//! polynomial tests and to exhibit the centralized-vs-distributed complexity
//! gap empirically:
//!
//! 1. [`decide_exhaustive`] — breadth-first search of the product state
//!    space (progress of every transaction × serialization-graph edges).
//!    Works for any number of transactions and sites; also detects
//!    reachable deadlock states.
//! 2. [`decide_by_extensions`] — Lemma 1 made literal: enumerate all pairs
//!    of linear extensions and decide each with the total-order test.

use crate::certificate::{SafeProof, SafetyVerdict, UnsafetyCertificate};
use crate::total_pair::decide_total_pair;
use kplock_model::{
    ActionKind, EntityId, LinearExtensions, Schedule, ScheduledStep, StepId, TxnId, TxnSystem,
};
use std::collections::{HashMap, VecDeque};

/// Resource limits for the exhaustive search.
#[derive(Clone, Copy, Debug)]
pub struct OracleOptions {
    /// Maximum number of distinct states to explore before giving up.
    pub max_states: usize,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions {
            max_states: 2_000_000,
        }
    }
}

/// Outcome of the exhaustive search.
#[derive(Clone, Debug)]
pub enum OracleOutcome {
    /// Every complete schedule is serializable.
    Safe,
    /// A legal, complete, non-serializable schedule (the witness).
    Unsafe(Schedule),
    /// State cap exceeded.
    Aborted,
}

/// Full report of the exhaustive search.
#[derive(Clone, Debug)]
pub struct OracleReport {
    /// The decision.
    pub outcome: OracleOutcome,
    /// Number of distinct states explored.
    pub states_explored: usize,
    /// Whether a reachable state exists from which no transaction can move
    /// but the system is incomplete (a deadlock).
    pub deadlock_reachable: bool,
    /// Number of distinct complete states reached.
    pub complete_states: usize,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    /// Bitmask of completed steps per transaction.
    done: Vec<u64>,
    /// Serialization-graph edges as a k*k bitmask (row-major).
    sg: u64,
}

/// Exhaustively decides safety of `sys` (any number of transactions/sites).
///
/// # Panics
/// Panics if some transaction has more than 64 steps or the system has more
/// than 8 transactions (the state encoding's limits; the oracle is meant for
/// small ground-truth instances).
pub fn decide_exhaustive(sys: &TxnSystem, opts: &OracleOptions) -> OracleReport {
    let k = sys.len();
    assert!(k <= 8, "oracle limited to 8 transactions");
    for t in sys.txns() {
        assert!(t.len() <= 64, "oracle limited to 64 steps per transaction");
    }

    // Precompute per-transaction step metadata.
    struct StepMeta {
        entity: EntityId,
        kind: ActionKind,
        is_access: bool,
        preds_mask: u64,
    }
    let metas: Vec<Vec<StepMeta>> = sys
        .txns()
        .iter()
        .map(|t| {
            (0..t.len())
                .map(|v| {
                    let s = t.step(StepId::from_idx(v));
                    let is_access = match s.kind {
                        ActionKind::Update => true,
                        ActionKind::Lock => t.update_steps(s.entity).is_empty(),
                        ActionKind::Unlock => false,
                    };
                    let mut preds_mask = 0u64;
                    for &p in t.edge_graph().predecessors(v) {
                        preds_mask |= 1 << p;
                    }
                    StepMeta {
                        entity: s.entity,
                        kind: s.kind,
                        is_access,
                        preds_mask,
                    }
                })
                .collect()
        })
        .collect();
    // Per transaction and entity: (lock_bit, unlock_bit) for hold detection,
    // and mask of access steps per entity.
    let lock_bits: Vec<HashMap<EntityId, (u64, u64)>> = sys
        .txns()
        .iter()
        .map(|t| {
            t.locked_entities()
                .into_iter()
                .map(|e| {
                    (
                        e,
                        (
                            1u64 << t.lock_step(e).unwrap().idx(),
                            1u64 << t.unlock_step(e).unwrap().idx(),
                        ),
                    )
                })
                .collect()
        })
        .collect();
    let access_masks: Vec<HashMap<EntityId, u64>> = metas
        .iter()
        .map(|ms| {
            let mut m: HashMap<EntityId, u64> = HashMap::new();
            for (v, meta) in ms.iter().enumerate() {
                if meta.is_access {
                    *m.entry(meta.entity).or_default() |= 1 << v;
                }
            }
            m
        })
        .collect();

    let full: Vec<u64> = sys
        .txns()
        .iter()
        .map(|t| {
            if t.len() == 64 {
                u64::MAX
            } else {
                (1u64 << t.len()) - 1
            }
        })
        .collect();

    let sg_cyclic = |sg: u64| -> bool {
        // Transitive closure on k<=8 nodes via repeated row unions.
        let mut rows = [0u64; 8];
        for (i, row) in rows.iter_mut().enumerate().take(k) {
            *row = (sg >> (i * 8)) & 0xFF;
        }
        for _ in 0..k {
            for i in 0..k {
                let mut r = rows[i];
                let mut bits = r;
                while bits != 0 {
                    let j = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    r |= rows[j];
                }
                rows[i] = r;
            }
        }
        (0..k).any(|i| rows[i] & (1 << i) != 0)
    };

    let start = State {
        done: vec![0; k],
        sg: 0,
    };
    let mut parents: HashMap<State, Option<(State, ScheduledStep)>> = HashMap::new();
    parents.insert(start.clone(), None);
    let mut queue: VecDeque<State> = VecDeque::from([start]);
    let mut deadlock_reachable = false;
    let mut complete_states = 0usize;
    let mut aborted = false;

    let holds = |done: &[u64], i: usize, e: EntityId| -> bool {
        lock_bits[i]
            .get(&e)
            .is_some_and(|&(l, u)| done[i] & l != 0 && done[i] & u == 0)
    };

    let mut unsafe_state: Option<State> = None;

    'bfs: while let Some(state) = queue.pop_front() {
        let complete = (0..k).all(|i| state.done[i] == full[i]);
        if complete {
            complete_states += 1;
            continue;
        }
        let mut moved = false;
        for i in 0..k {
            let remaining = full[i] & !state.done[i];
            let mut bits = remaining;
            while bits != 0 {
                let v = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let meta = &metas[i][v];
                if meta.preds_mask & !state.done[i] != 0 {
                    continue; // predecessors not done
                }
                if meta.kind == ActionKind::Lock {
                    let contended = (0..k).any(|j| j != i && holds(&state.done, j, meta.entity));
                    if contended {
                        continue;
                    }
                }
                moved = true;
                let mut next = state.clone();
                next.done[i] |= 1 << v;
                if meta.is_access {
                    #[allow(clippy::needless_range_loop)]
                    for j in 0..k {
                        if j != i {
                            if let Some(&am) = access_masks[j].get(&meta.entity) {
                                if state.done[j] & am != 0 {
                                    next.sg |= 1 << (j * 8 + i);
                                }
                            }
                        }
                    }
                }
                if parents.contains_key(&next) {
                    continue;
                }
                let step = ScheduledStep {
                    txn: TxnId::from_idx(i),
                    step: StepId::from_idx(v),
                };
                parents.insert(next.clone(), Some((state.clone(), step)));
                let next_complete = (0..k).all(|t| next.done[t] == full[t]);
                if next_complete && sg_cyclic(next.sg) {
                    unsafe_state = Some(next);
                    break 'bfs;
                }
                if parents.len() > opts.max_states {
                    aborted = true;
                    break 'bfs;
                }
                queue.push_back(next);
            }
        }
        if !moved {
            deadlock_reachable = true;
        }
    }

    let states_explored = parents.len();
    let outcome = if let Some(end) = unsafe_state {
        // Reconstruct the witness schedule.
        let mut steps = Vec::new();
        let mut cur = end;
        while let Some(Some((prev, step))) = parents.get(&cur).cloned() {
            steps.push(step);
            cur = prev;
        }
        steps.reverse();
        OracleOutcome::Unsafe(Schedule::new(steps))
    } else if aborted {
        OracleOutcome::Aborted
    } else {
        OracleOutcome::Safe
    };
    OracleReport {
        outcome,
        states_explored,
        deadlock_reachable,
        complete_states,
    }
}

/// Lemma-1 ground truth for a pair: enumerates up to `pair_cap` pairs of
/// linear extensions and decides each with the total-order test. Returns
/// `None` if the cap was exceeded before finding a counterexample.
pub fn decide_by_extensions(
    sys: &TxnSystem,
    a: TxnId,
    b: TxnId,
    pair_cap: usize,
) -> Option<SafetyVerdict> {
    let mut pairs = 0usize;
    for e1 in LinearExtensions::new(sys.txn(a)) {
        for e2 in LinearExtensions::new(sys.txn(b)) {
            pairs += 1;
            if pairs > pair_cap {
                return None;
            }
            let lin_a = sys.txn(a).linearized(&e1).expect("valid extension");
            let lin_b = sys.txn(b).linearized(&e2).expect("valid extension");
            let mut pair_sys = sys.clone();
            pair_sys = pair_sys.with_txn(a, lin_a);
            pair_sys = pair_sys.with_txn(b, lin_b);
            if let SafetyVerdict::Unsafe(cert) = decide_total_pair(&pair_sys, a, b) {
                // Translate step ids back: linearized() renumbered steps by
                // position, so map through e1/e2.
                let schedule = Schedule::new(
                    cert.schedule
                        .steps()
                        .iter()
                        .map(|ss| ScheduledStep {
                            txn: ss.txn,
                            step: if ss.txn == a {
                                e1[ss.step.idx()]
                            } else {
                                e2[ss.step.idx()]
                            },
                        })
                        .collect(),
                );
                return Some(SafetyVerdict::Unsafe(Box::new(UnsafetyCertificate {
                    txn_a: a,
                    txn_b: b,
                    t1_order: e1.clone(),
                    t2_order: e2,
                    dominator: cert.dominator.clone(),
                    schedule,
                })));
            }
        }
    }
    Some(SafetyVerdict::Safe(SafeProof::Exhaustive))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_model::{Database, TxnBuilder};

    fn pair(script1: &str, script2: &str, spec: &[(&str, usize)]) -> TxnSystem {
        let db = Database::from_spec(spec);
        let mut b1 = TxnBuilder::new(&db, "T1");
        b1.script(script1).unwrap();
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "T2");
        b2.script(script2).unwrap();
        let t2 = b2.build().unwrap();
        TxnSystem::new(db, vec![t1, t2])
    }

    #[test]
    fn oracle_finds_classic_anomaly() {
        let sys = pair("Lx x Ux Ly y Uy", "Ly y Uy Lx x Ux", &[("x", 0), ("y", 0)]);
        let r = decide_exhaustive(&sys, &OracleOptions::default());
        let OracleOutcome::Unsafe(witness) = r.outcome else {
            panic!("expected unsafe");
        };
        witness.validate_complete(&sys).unwrap();
        assert!(!kplock_model::is_serializable(&sys, &witness));
    }

    #[test]
    fn oracle_confirms_two_phase_safety_and_deadlock() {
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 0)]);
        let r = decide_exhaustive(&sys, &OracleOptions::default());
        assert!(matches!(r.outcome, OracleOutcome::Safe));
        // Opposite lock orders: the classic deadlock is reachable.
        assert!(r.deadlock_reachable);
    }

    #[test]
    fn oracle_same_order_two_phase_no_deadlock() {
        let sys = pair("Lx Ly x y Ux Uy", "Lx Ly x y Ux Uy", &[("x", 0), ("y", 0)]);
        let r = decide_exhaustive(&sys, &OracleOptions::default());
        assert!(matches!(r.outcome, OracleOutcome::Safe));
        assert!(!r.deadlock_reachable);
    }

    #[test]
    fn extension_oracle_agrees_with_state_oracle() {
        // A genuinely distributed pair: x,y at site 0; w,z at site 1, with
        // concurrent site programs.
        let db = Database::from_spec(&[("x", 0), ("y", 0), ("w", 1), ("z", 1)]);
        let mut b1 = TxnBuilder::new(&db, "T1");
        b1.script("Lx x Ux Ly y Uy").unwrap();
        b1.script("Lw w Uw Lz z Uz").unwrap();
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "T2");
        b2.script("Ly y Uy Lx x Ux").unwrap();
        b2.script("Lz z Uz Lw w Uw").unwrap();
        let t2 = b2.build().unwrap();
        let sys = TxnSystem::new(db, vec![t1, t2]);

        let state = decide_exhaustive(&sys, &OracleOptions::default());
        let ext = decide_by_extensions(&sys, TxnId(0), TxnId(1), 1_000_000).unwrap();
        assert_eq!(matches!(state.outcome, OracleOutcome::Safe), ext.is_safe());
        if let SafetyVerdict::Unsafe(cert) = &ext {
            cert.verify(&sys).unwrap();
        }
    }

    #[test]
    fn extension_oracle_cap() {
        let sys = pair("Lx x Ux Ly y Uy", "Lx x Ux Ly y Uy", &[("x", 0), ("y", 0)]);
        assert!(decide_by_extensions(&sys, TxnId(0), TxnId(1), 0).is_none());
    }

    #[test]
    fn three_transactions_cycle() {
        // T1, T2, T3 each two-phase pairwise-safe, but schedule order around
        // the triangle is still serializable — oracle should say safe.
        let db = Database::from_spec(&[("x", 0), ("y", 0), ("z", 0)]);
        let scripts = ["Lx Ly x y Ux Uy", "Ly Lz y z Uy Uz", "Lz Lx z x Uz Ux"];
        let txns: Vec<_> = scripts
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut b = TxnBuilder::new(&db, format!("T{}", i + 1));
                b.script(s).unwrap();
                b.build().unwrap()
            })
            .collect();
        let sys = TxnSystem::new(db, txns);
        let r = decide_exhaustive(&sys, &OracleOptions::default());
        assert!(matches!(r.outcome, OracleOutcome::Safe));
    }
}
