//! The conflict digraph `D(T1, T2)` (Definition 1).
//!
//! Vertices are the entities locked (and unlocked) by **both** transactions.
//! There is an arc `(x, y)` iff `Lx` precedes `Uy` in `T1` **and** `Ly`
//! precedes `Ux` in `T2`. Geometrically (Fig. 4): in every coordinated
//! plane compatible with the pair, the upper-left corner of the
//! `x`-rectangle lies above and to the left of the lower-right corner of the
//! `y`-rectangle.
//!
//! Self-arcs `(x, x)` would hold trivially for every well-formed pair
//! (`Lx ≺ Ux` in both) and never affect strong connectivity or dominators,
//! so we omit them.

use kplock_graph::{is_strongly_connected, DiGraph};
use kplock_model::{EntityId, Transaction, TxnId, TxnSystem};

/// `D(T1, T2)` with its entity labelling.
#[derive(Clone, Debug)]
pub struct ConflictDigraph {
    /// Transaction on the "1" side of Definition 1.
    pub txn_a: TxnId,
    /// Transaction on the "2" side.
    pub txn_b: TxnId,
    /// Vertex `i` is entity `entities[i]` (ascending order).
    pub entities: Vec<EntityId>,
    /// The arc structure.
    pub graph: DiGraph,
}

impl ConflictDigraph {
    /// Builds `D(Ta, Tb)` for two transactions of a system.
    pub fn build(sys: &TxnSystem, a: TxnId, b: TxnId) -> Self {
        let entities = sys.shared_locked_entities(a, b);
        let graph = build_arcs(sys.txn(a), sys.txn(b), &entities);
        ConflictDigraph {
            txn_a: a,
            txn_b: b,
            entities,
            graph,
        }
    }

    /// Index of an entity among the vertices.
    pub fn vertex_of(&self, e: EntityId) -> Option<usize> {
        self.entities.binary_search(&e).ok()
    }

    /// Theorem 1's condition: is `D` strongly connected?
    pub fn is_strongly_connected(&self) -> bool {
        is_strongly_connected(&self.graph)
    }

    /// Whether the arc `(x, y)` is present.
    pub fn has_arc(&self, x: EntityId, y: EntityId) -> bool {
        match (self.vertex_of(x), self.vertex_of(y)) {
            (Some(i), Some(j)) => self.graph.has_edge(i, j),
            _ => false,
        }
    }
}

fn build_arcs(ta: &Transaction, tb: &Transaction, entities: &[EntityId]) -> DiGraph {
    let n = entities.len();
    let mut g = DiGraph::new(n);
    for (i, &x) in entities.iter().enumerate() {
        let lx_a = ta.lock_step(x).expect("shared entity locked in Ta");
        let ux_b = tb.unlock_step(x).expect("shared entity unlocked in Tb");
        for (j, &y) in entities.iter().enumerate() {
            if i == j {
                continue;
            }
            let uy_a = ta.unlock_step(y).expect("locked in Ta");
            let ly_b = tb.lock_step(y).expect("locked in Tb");
            if ta.precedes(lx_a, uy_a) && tb.precedes(ly_b, ux_b) {
                g.add_edge(i, j);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_model::{Database, TxnBuilder, TxnSystem};

    fn pair(script1: &str, script2: &str, spec: &[(&str, usize)]) -> TxnSystem {
        let db = Database::from_spec(spec);
        let mut b1 = TxnBuilder::new(&db, "T1");
        b1.script(script1).unwrap();
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "T2");
        b2.script(script2).unwrap();
        let t2 = b2.build().unwrap();
        TxnSystem::new(db, vec![t1, t2])
    }

    #[test]
    fn two_phase_totals_give_complete_digraph() {
        // Both transactions lock everything before unlocking anything:
        // every (x,y) pair satisfies Definition 1.
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 0)]);
        let d = ConflictDigraph::build(&sys, TxnId(0), TxnId(1));
        assert_eq!(d.entities.len(), 2);
        assert_eq!(d.graph.edge_count(), 2); // both directions, no self-arcs
        assert!(d.is_strongly_connected());
    }

    #[test]
    fn non_two_phase_centralized_pair_not_strongly_connected() {
        // T1 releases x before acquiring y; T2 likewise in opposite order:
        // classic unsafe pair. D must not be strongly connected.
        let sys = pair("Lx x Ux Ly y Uy", "Ly y Uy Lx x Ux", &[("x", 0), ("y", 0)]);
        let d = ConflictDigraph::build(&sys, TxnId(0), TxnId(1));
        // Arc (x,y): Lx <1 Uy (yes) and Ly <2 Ux (yes) => present.
        // Arc (y,x): Ly <1 Ux (no: Ly comes after Ux in T1).
        let x = sys.db().entity("x").unwrap();
        let y = sys.db().entity("y").unwrap();
        assert!(d.has_arc(x, y));
        assert!(!d.has_arc(y, x));
        assert!(!d.is_strongly_connected());
    }

    #[test]
    fn vertices_are_shared_entities_only() {
        let sys = pair(
            "Lx x Ux Ly y Uy",
            "Lx x Ux Lz z Uz",
            &[("x", 0), ("y", 0), ("z", 0)],
        );
        let d = ConflictDigraph::build(&sys, TxnId(0), TxnId(1));
        assert_eq!(d.entities, vec![sys.db().entity("x").unwrap()]);
        // One vertex: strongly connected by convention.
        assert!(d.is_strongly_connected());
    }

    #[test]
    fn distributed_concurrency_removes_arcs() {
        // x at site 0, y at site 1. T1 locks both concurrently (no cross
        // edges): Lx and Uy are concurrent, so arc (x,y) requires Lx <1 Uy
        // which fails.
        let db = Database::from_spec(&[("x", 0), ("y", 1)]);
        let mut b1 = TxnBuilder::new(&db, "T1");
        b1.script("Lx x Ux").unwrap(); // site 0 chain
        b1.script("Ly y Uy").unwrap(); // site 1 chain, concurrent
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "T2");
        b2.script("Lx x Ux").unwrap();
        b2.script("Ly y Uy").unwrap();
        let t2 = b2.build().unwrap();
        let sys = TxnSystem::new(db, vec![t1, t2]);
        let d = ConflictDigraph::build(&sys, TxnId(0), TxnId(1));
        assert_eq!(d.graph.edge_count(), 0);
        assert!(!d.is_strongly_connected());
    }
}
