//! Deadlock **avoidance** plans: the paper's static analysis packaged for
//! a runtime.
//!
//! Theorems 1–3 decide, *before anything runs*, whether a declared
//! transaction set can misbehave. This module turns that decision into
//! something a lock manager can consume: an [`AvoidPlan`] certifies a
//! subset of the declared transactions against one global **safe lock
//! order** and synthesizes per-site local controllers (the order
//! restricted to each site's entities). A certified transaction only
//! ever holds an entity while requesting a *later* one in the order, so
//! no wait-for cycle among certified transactions can exist — avoidance
//! needs **no runtime messages** and no wait-for graph; transactions
//! outside the certified set fall back to a runtime discipline of the
//! caller's choice (the simulator uses wound-wait).
//!
//! # The certification condition
//!
//! For one transaction, draw an edge `x → y` between locked entities
//! whenever some execution can **hold `x` while the request for `y` is
//! pending**. With steps issued as soon as their predecessors complete,
//! that is possible exactly when neither `Ux ≺ Ly` (x is always gone
//! before y is asked for) nor `Ly ≺ Lx` (y is always granted before x is
//! even requested):
//!
//! ```text
//! edge x → y   ⇔   ¬(Ux ≺ Ly)  ∧  ¬(Ly ≺ Lx)
//! ```
//!
//! A set of transactions is **certified** when the union of these
//! per-transaction digraphs is acyclic; any topological order of the
//! union is a safe lock order σ. Soundness (why no wait-for cycle can
//! form, FIFO queues included): in a hypothetical cycle each member
//! waits for one entity; follow it around. A member *holding* `eᵢ`
//! while waiting for `eᵢ₊₁` contributes the edge `eᵢ → eᵢ₊₁`, so
//! σ(eᵢ) < σ(eᵢ₊₁); a member merely *queued ahead* on the same entity
//! keeps σ equal but strictly decreases the queue position. Around a
//! cycle σ must return to its start, forcing every hop to be a queue
//! hop — and queue positions cannot decrease forever. Contradiction.
//!
//! Certification is conservative (partial orders are judged by what they
//! *could* do), deterministic, and polynomial — the same complexity
//! class the paper's Theorem 2 places the two-site decision in, and the
//! practical counterweight to Theorem 3's many-site hardness: the plan
//! certifies what it can and meters the rest.

use kplock_graph::DiGraph;
use kplock_model::{EntityId, SiteId, Transaction, TxnId, TxnSystem};
use std::fmt;

/// Why a plan failed [`AvoidPlan::verify`] against a system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AvoidPlanError {
    /// The plan was synthesized from a different number of transactions.
    TxnCountMismatch {
        /// Transactions the plan knows about.
        plan: usize,
        /// Transactions the system declares.
        system: usize,
    },
    /// The safe lock order is not a permutation of the database's
    /// entities.
    OrderNotPermutation,
    /// A certified transaction can hold `held` while requesting
    /// `requested`, yet the safe order puts `requested` first — the
    /// controller would not prevent that wait from closing a cycle.
    EdgeViolation {
        /// The offending certified transaction.
        txn: TxnId,
        /// The entity it can hold.
        held: EntityId,
        /// The σ-earlier entity it can request while holding `held`.
        requested: EntityId,
    },
}

impl fmt::Display for AvoidPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AvoidPlanError::TxnCountMismatch { plan, system } => write!(
                f,
                "plan certifies {plan} transactions but the system declares {system}"
            ),
            AvoidPlanError::OrderNotPermutation => {
                write!(f, "safe lock order is not a permutation of the entities")
            }
            AvoidPlanError::EdgeViolation {
                txn,
                held,
                requested,
            } => write!(
                f,
                "certified {txn:?} can hold {held:?} while requesting {requested:?}, \
                 which the safe order places earlier"
            ),
        }
    }
}

impl std::error::Error for AvoidPlanError {}

/// One site's local controller: the global safe lock order restricted to
/// the entities stored at that site.
///
/// This is all a site needs at runtime — certified transactions request
/// its entities in ascending controller rank, so the site can assert
/// conformance (and make escalation decisions) from purely local
/// knowledge, without a message to anyone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteController {
    /// The site this controller is local to.
    pub site: SiteId,
    /// The site's entities in global safe-lock-order position.
    pub order: Vec<EntityId>,
}

/// A runtime-consumable avoidance plan for one declared transaction set:
/// which transactions are certified, the global safe lock order
/// certifying them, and the per-site controllers derived from it.
///
/// Build one with [`AvoidPlan::synthesize`] (greedy maximal certified
/// set) or [`AvoidPlan::synthesize_restricted`] (certification restricted
/// to a candidate subset — the knob experiments use to control the
/// certified fraction, and the way to force an empty certified set for
/// fallback-equivalence tests).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AvoidPlan {
    /// Number of declared transactions the plan was synthesized from.
    txns: usize,
    /// `certified[t]` — transaction `t` is covered by the certificate.
    certified: Vec<bool>,
    /// The global safe lock order: every database entity, σ-ascending.
    order: Vec<EntityId>,
    /// `rank[e.idx()]` — position of entity `e` in [`AvoidPlan::order`].
    rank: Vec<usize>,
    /// Per-site restrictions of the order, one per database site.
    controllers: Vec<SiteController>,
}

/// The hold-while-request edges of one transaction: `(x, y)` whenever
/// some execution can hold `x` while the lock request for `y` is
/// outstanding (see the module docs for the derivation). These are the
/// constraints a safe lock order must respect for this transaction.
pub fn hold_request_edges(t: &Transaction) -> Vec<(EntityId, EntityId)> {
    let ents = t.locked_entities();
    let mut edges = Vec::new();
    for &x in &ents {
        for &y in &ents {
            if x == y {
                continue;
            }
            let lx = t.lock_step(x).expect("locked entity has a lock step");
            let ly = t.lock_step(y).expect("locked entity has a lock step");
            // `Ux ≺ Ly` forces x released before y is requested; a missing
            // unlock step means x is held to the end and never rules the
            // overlap out.
            let released_first = t.unlock_step(x).is_some_and(|ux| t.precedes(ux, ly));
            // `Ly ≺ Lx` forces y granted before x is even requested.
            let granted_first = t.precedes(ly, lx);
            if !released_first && !granted_first {
                edges.push((x, y));
            }
        }
    }
    edges
}

impl AvoidPlan {
    /// Synthesizes a plan with a **greedy maximal** certified set:
    /// transactions are considered in declaration order and kept whenever
    /// the union hold-while-request digraph stays acyclic. Deterministic;
    /// a transaction locking at most one entity is always certified.
    pub fn synthesize(sys: &TxnSystem) -> AvoidPlan {
        let all: Vec<TxnId> = (0..sys.len()).map(TxnId::from_idx).collect();
        Self::synthesize_restricted(sys, &all)
    }

    /// Synthesizes a plan whose certified set is drawn only from
    /// `candidates` (greedily, in declaration order); every other
    /// transaction is left to the runtime fallback even if it would have
    /// certified. `synthesize_restricted(sys, &[])` yields the empty
    /// certificate — pure fallback, the arm equivalence tests pin
    /// against wound-wait.
    pub fn synthesize_restricted(sys: &TxnSystem, candidates: &[TxnId]) -> AvoidPlan {
        let n_ents = sys.db().entity_count();
        let mut candidate = vec![false; sys.len()];
        for &t in candidates {
            candidate[t.idx()] = true;
        }
        let mut certified = vec![false; sys.len()];
        let mut union = DiGraph::new(n_ents);
        for (i, t) in sys.txns().iter().enumerate() {
            if !candidate[i] {
                continue;
            }
            let edges = hold_request_edges(t);
            let mut trial = union.clone();
            for &(x, y) in &edges {
                trial.add_edge(x.idx(), y.idx());
            }
            if kplock_graph::topo_sort(&trial).is_some() {
                union = trial;
                certified[i] = true;
            }
        }
        let order: Vec<EntityId> = kplock_graph::topo_sort(&union)
            .expect("certified union digraph is acyclic by construction")
            .into_iter()
            .map(EntityId::from_idx)
            .collect();
        let mut rank = vec![0usize; n_ents];
        for (pos, &e) in order.iter().enumerate() {
            rank[e.idx()] = pos;
        }
        let controllers = (0..sys.db().site_count())
            .map(|s| {
                let site = SiteId::from_idx(s);
                SiteController {
                    site,
                    order: order
                        .iter()
                        .copied()
                        .filter(|&e| sys.db().site_of(e) == site)
                        .collect(),
                }
            })
            .collect();
        AvoidPlan {
            txns: sys.len(),
            certified,
            order,
            rank,
            controllers,
        }
    }

    /// Whether `t` is covered by the certificate (its lock behavior
    /// conforms to the safe order and it may run controller-governed).
    pub fn is_certified(&self, t: TxnId) -> bool {
        self.certified.get(t.idx()).copied().unwrap_or(false)
    }

    /// The certified transactions, ascending.
    pub fn certified(&self) -> Vec<TxnId> {
        self.certified
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c)
            .map(|(i, _)| TxnId::from_idx(i))
            .collect()
    }

    /// Number of declared transactions the plan covers (certified or not).
    pub fn txn_count(&self) -> usize {
        self.txns
    }

    /// Number of certified transactions.
    pub fn certified_count(&self) -> usize {
        self.certified.iter().filter(|&&c| c).count()
    }

    /// Number of transactions left to the runtime fallback.
    pub fn fallback_count(&self) -> usize {
        self.txns - self.certified_count()
    }

    /// True when every declared transaction is certified — the regime
    /// where the Theorem-level guarantee holds outright: no deadlock can
    /// form and the fallback never engages.
    pub fn fully_certified(&self) -> bool {
        self.certified.iter().all(|&c| c)
    }

    /// The global safe lock order (every database entity, σ-ascending).
    pub fn lock_order(&self) -> &[EntityId] {
        &self.order
    }

    /// Position of `e` in the safe lock order; certified transactions
    /// acquire in ascending rank.
    pub fn entity_rank(&self, e: EntityId) -> usize {
        self.rank[e.idx()]
    }

    /// The per-site local controllers, one per database site.
    pub fn controllers(&self) -> &[SiteController] {
        &self.controllers
    }

    /// The controller local to `site`.
    pub fn controller(&self, site: SiteId) -> &SiteController {
        &self.controllers[site.idx()]
    }

    /// Re-checks the certificate against a system: the plan must cover
    /// exactly its transactions, the safe order must be a permutation of
    /// its entities, and every certified transaction's
    /// [`hold_request_edges`] must ascend in the order. This is the
    /// machine-checkable core of the conformance suite — a plan that
    /// verifies cannot let certified transactions deadlock.
    pub fn verify(&self, sys: &TxnSystem) -> Result<(), AvoidPlanError> {
        if self.txns != sys.len() {
            return Err(AvoidPlanError::TxnCountMismatch {
                plan: self.txns,
                system: sys.len(),
            });
        }
        let n_ents = sys.db().entity_count();
        let mut seen = vec![false; n_ents];
        for &e in &self.order {
            if e.idx() >= n_ents || seen[e.idx()] {
                return Err(AvoidPlanError::OrderNotPermutation);
            }
            seen[e.idx()] = true;
        }
        if self.order.len() != n_ents {
            return Err(AvoidPlanError::OrderNotPermutation);
        }
        for (i, t) in sys.txns().iter().enumerate() {
            if !self.certified[i] {
                continue;
            }
            for (x, y) in hold_request_edges(t) {
                if self.entity_rank(x) >= self.entity_rank(y) {
                    return Err(AvoidPlanError::EdgeViolation {
                        txn: TxnId::from_idx(i),
                        held: x,
                        requested: y,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_model::{Database, TxnBuilder};

    fn sys(scripts: &[&str], spec: &[(&str, usize)]) -> TxnSystem {
        let db = Database::from_spec(spec);
        let txns = scripts
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut b = TxnBuilder::new(&db, format!("T{}", i + 1));
                b.script(s).unwrap();
                b.build().unwrap()
            })
            .collect();
        TxnSystem::new(db, txns)
    }

    #[test]
    fn aligned_lock_orders_certify_fully() {
        let s = sys(
            &["Lx Ly x y Ux Uy", "Lx Ly x y Ux Uy", "Ly y Uy"],
            &[("x", 0), ("y", 1)],
        );
        let p = AvoidPlan::synthesize(&s);
        assert!(p.fully_certified());
        assert_eq!(p.certified_count(), 3);
        assert_eq!(p.fallback_count(), 0);
        p.verify(&s).unwrap();
        // x precedes y in the safe order: both transactions hold x while
        // requesting y.
        let (x, y) = (s.db().entity("x").unwrap(), s.db().entity("y").unwrap());
        assert!(p.entity_rank(x) < p.entity_rank(y));
    }

    #[test]
    fn opposed_lock_orders_leave_one_uncertified() {
        let s = sys(
            &["Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux"],
            &[("x", 0), ("y", 0)],
        );
        let p = AvoidPlan::synthesize(&s);
        // Greedy keeps T1; T2's y→x edge would close a cycle.
        assert!(p.is_certified(TxnId(0)));
        assert!(!p.is_certified(TxnId(1)));
        assert_eq!(p.fallback_count(), 1);
        p.verify(&s).unwrap();
    }

    #[test]
    fn two_phase_release_before_request_needs_no_edge() {
        // Non-overlapping holds: x is unlocked before y is requested, so
        // no constraint x→y exists and the *opposite* order elsewhere
        // still certifies.
        let s = sys(
            &["Lx x Ux Ly y Uy", "Ly Lx y x Uy Ux"],
            &[("x", 0), ("y", 0)],
        );
        let t1 = &s.txns()[0];
        assert_eq!(hold_request_edges(t1), vec![]);
        let p = AvoidPlan::synthesize(&s);
        assert!(p.fully_certified(), "disjoint holds conflict with nothing");
        p.verify(&s).unwrap();
    }

    #[test]
    fn concurrent_locks_constrain_both_ways() {
        // A partial order that leaves Lx and Ly unordered can hold either
        // entity while requesting the other: both edges appear and the
        // transaction alone is uncertifiable.
        // Distinct sites: same-site steps would be auto-chained by the
        // builder and the chains would not be concurrent.
        let db = Database::from_spec(&[("x", 0), ("y", 1)]);
        let mut b = TxnBuilder::new(&db, "T1");
        // Two independent chains: Lx x Ux || Ly y Uy (script per chain).
        b.script("Lx x Ux").unwrap();
        b.script("Ly y Uy").unwrap();
        let t = b.build().unwrap();
        let s = TxnSystem::new(db, vec![t]);
        let edges = hold_request_edges(&s.txns()[0]);
        assert_eq!(edges.len(), 2, "both directions: {edges:?}");
        let p = AvoidPlan::synthesize(&s);
        assert!(!p.is_certified(TxnId(0)));
        p.verify(&s).unwrap();
    }

    #[test]
    fn restricted_synthesis_controls_the_certified_set() {
        let s = sys(
            &["Lx Ly x y Ux Uy", "Lx Ly x y Ux Uy"],
            &[("x", 0), ("y", 1)],
        );
        let none = AvoidPlan::synthesize_restricted(&s, &[]);
        assert_eq!(none.certified_count(), 0);
        assert_eq!(none.fallback_count(), 2);
        assert!(!none.fully_certified());
        none.verify(&s).unwrap();
        let one = AvoidPlan::synthesize_restricted(&s, &[TxnId(1)]);
        assert_eq!(one.certified(), vec![TxnId(1)]);
        one.verify(&s).unwrap();
    }

    #[test]
    fn controllers_partition_the_order_by_site() {
        let s = sys(
            &["Lx Ly Lz x y z Ux Uy Uz"],
            &[("x", 0), ("y", 1), ("z", 0)],
        );
        let p = AvoidPlan::synthesize(&s);
        assert_eq!(p.controllers().len(), 2);
        let total: usize = p.controllers().iter().map(|c| c.order.len()).sum();
        assert_eq!(total, 3, "controllers partition the entities");
        for c in p.controllers() {
            for w in c.order.windows(2) {
                assert!(
                    p.entity_rank(w[0]) < p.entity_rank(w[1]),
                    "controller order must ascend in σ"
                );
            }
            assert_eq!(p.controller(c.site).order, c.order);
        }
    }

    #[test]
    fn verify_catches_mismatch_and_violation() {
        let s1 = sys(&["Lx Ly x y Ux Uy"], &[("x", 0), ("y", 0)]);
        let s2 = sys(
            &["Lx Ly x y Ux Uy", "Lx Ly x y Ux Uy"],
            &[("x", 0), ("y", 0)],
        );
        let p = AvoidPlan::synthesize(&s1);
        assert_eq!(
            p.verify(&s2),
            Err(AvoidPlanError::TxnCountMismatch { plan: 1, system: 2 })
        );
        // Forge a plan whose order contradicts the transaction: x held
        // while y requested, yet y ranked first.
        let (x, y) = (s1.db().entity("x").unwrap(), s1.db().entity("y").unwrap());
        let forged = AvoidPlan {
            order: vec![y, x],
            rank: {
                let mut r = vec![0; 2];
                r[y.idx()] = 0;
                r[x.idx()] = 1;
                r
            },
            ..AvoidPlan::synthesize(&s1)
        };
        assert!(matches!(
            forged.verify(&s1),
            Err(AvoidPlanError::EdgeViolation { held, requested, .. })
                if held == x && requested == y
        ));
        let errs = [
            AvoidPlanError::TxnCountMismatch { plan: 1, system: 2 }.to_string(),
            AvoidPlanError::OrderNotPermutation.to_string(),
        ];
        assert!(errs[0].contains("1") && errs[0].contains("2"));
        assert!(errs[1].contains("permutation"));
    }

    #[test]
    fn synthesis_is_deterministic() {
        let s = sys(
            &["Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", "Lx x Ux"],
            &[("x", 0), ("y", 1)],
        );
        assert_eq!(AvoidPlan::synthesize(&s), AvoidPlan::synthesize(&s));
    }
}
