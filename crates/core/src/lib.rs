//! The paper's contribution: safety decision procedures for distributed
//! locked transaction systems.
//!
//! *Is Distributed Locking Harder?* (Kanellakis & Papadimitriou) asks
//! whether deciding safety of locked transactions survives the move from
//! centralized to distributed databases. This crate implements every
//! result:
//!
//! | Paper | Here |
//! |---|---|
//! | Definition 1 — conflict digraph `D(T1,T2)` | [`conflict_graph`] |
//! | Theorem 1 — strong connectivity ⇒ safe | [`conflict_graph::ConflictDigraph::is_strongly_connected`], used by all deciders |
//! | Lemmas 2–3, Definition 3 — dominator closure | [`closure`] |
//! | Theorem 2, Corollary 1 — two sites: safe ⟺ strongly connected, O(n²) | [`two_site`] |
//! | Corollary 2 — closed w.r.t. dominator ⇒ unsafe | [`closure::try_unsafety_via_dominator`] |
//! | Theorem 3 — many sites: coNP-complete (SAT reduction) | [`reduction`] |
//! | Theorem 3, converse direction — system → CNF, exact decision | [`sat_check`] |
//! | Proposition 2 — k transactions | [`multi_txn`] |
//! | Locking policies (2PL, tree) | [`policy`] |
//!
//! Ground truth for all of it: the exact oracles in [`oracle`], and
//! machine-checkable certificates in [`certificate`].
//!
//! # Example
//!
//! The classic centralized anomaly (non-two-phase, opposite entity
//! orders) is decided unsafe with a counterexample schedule attached:
//!
//! ```
//! use kplock_core::{analyze_pair, SafetyVerdict};
//! use kplock_model::{Database, TxnBuilder, TxnSystem};
//!
//! let db = Database::from_spec(&[("x", 0), ("y", 0)]);
//! let mut b1 = TxnBuilder::new(&db, "T1");
//! b1.script("Lx x Ux Ly y Uy").unwrap();
//! let t1 = b1.build().unwrap();
//! let mut b2 = TxnBuilder::new(&db, "T2");
//! b2.script("Ly y Uy Lx x Ux").unwrap();
//! let t2 = b2.build().unwrap();
//! let sys = TxnSystem::new(db, vec![t1, t2]);
//!
//! let analysis = analyze_pair(&sys);
//! assert!(!analysis.strongly_connected); // Theorem 1's condition fails...
//! match analysis.verdict {
//!     SafetyVerdict::Unsafe(cert) => cert.verify(&sys).unwrap(), // ...provably
//!     _ => unreachable!(),
//! }
//! ```

pub mod analysis;
pub mod avoid;
pub mod certificate;
pub mod closure;
pub mod conflict_graph;
pub mod counting;
pub mod multi_txn;
pub mod multisite;
pub mod oracle;
pub mod policy;
pub mod reduction;
pub mod sat_check;
pub mod total_pair;
pub mod two_site;

pub use analysis::{analyze_pair, PairAnalysis};
pub use avoid::{hold_request_edges, AvoidPlan, AvoidPlanError, SiteController};
pub use certificate::{CertificateError, SafeProof, SafetyVerdict, UnsafetyCertificate};
pub use closure::{
    certificate_from_closure, close_wrt_dominator, try_unsafety_via_dominator, Closure,
    ClosureError,
};
pub use conflict_graph::ConflictDigraph;
pub use counting::{count_schedules, ScheduleCounts};
pub use multi_txn::{proposition2, Prop2Options, Prop2Report, Prop2Verdict};
pub use multisite::{decide_multisite, MultisiteOptions};
pub use oracle::{
    decide_by_extensions, decide_exhaustive, OracleOptions, OracleOutcome, OracleReport,
};
pub use reduction::{reduce, NodeKind, Reduction, ReductionError};
pub use sat_check::{
    check_deadlock, check_deadlock_with, check_safety, check_safety_with, synthesize_optimal,
    DeadlockCheck, EncodingStats, OptimalCertificate, SafetyCheck, SatCheckError, SatCheckOptions,
    SatSafety,
};
pub use total_pair::{decide_total_pair, schedule_from_orientation};
pub use two_site::{decide_two_site, decide_two_site_system, TwoSiteError};
