//! CNF satisfiability substrate for the Theorem-3 experiments.
//!
//! The paper's coNP-completeness proof reduces *restricted* CNF
//! satisfiability (≤3 literals per clause, each variable at most twice
//! positive and once negative) to unsafety of a two-transaction multisite
//! system. This crate provides the CNF types, a complete DPLL solver (used
//! as the decision baseline), the restricted-form conversion, random
//! formula generators, and DIMACS I/O. No external SAT solver is available
//! in the offline crate set, so everything is built from scratch.
//!
//! # Example
//!
//! ```
//! use kplock_sat::{solve, Cnf, Lit, SatResult, Var};
//!
//! // (a ∨ b) ∧ (¬a) ∧ (¬b ∨ c): satisfiable only with b=c=true.
//! let mut cnf = Cnf::new(3);
//! let (a, b, c) = (Var(0), Var(1), Var(2));
//! cnf.add_clause(vec![Lit::pos(a), Lit::pos(b)]);
//! cnf.add_clause(vec![Lit::neg(a)]);
//! cnf.add_clause(vec![Lit::neg(b), Lit::pos(c)]);
//! match solve(&cnf) {
//!     SatResult::Sat(assignment) => {
//!         assert!(!assignment[0] && assignment[1] && assignment[2]);
//!     }
//!     SatResult::Unsat => unreachable!(),
//! }
//! ```

pub mod card;
pub mod cnf;
pub mod dimacs;
pub mod dpll;
pub mod gen;
pub mod models;
pub mod restricted;

pub use card::{at_least_k, at_most_k};
pub use cnf::{Clause, Cnf, Lit, Var};
pub use dpll::{solve, solve_brute_force, SatResult, Solver};
pub use gen::{random_kcnf, random_restricted, XorShift};
pub use models::{all_models, count_models_brute_force};
pub use restricted::{to_restricted_form, Restricted};
