//! Conversion to the paper's restricted satisfiability form.
//!
//! Theorem 3 reduces from CNF formulas in which *no clause has more than
//! three literals and each variable appears at most twice unnegated and at
//! most once negated* (a classic NP-complete restriction). This module
//! converts an arbitrary CNF into that form, preserving satisfiability:
//!
//! 1. unit clauses are eliminated by propagation (the reduction gadgets
//!    need clauses of width ≥ 2);
//! 2. wide clauses are split with fresh chaining variables
//!    (`(a b c d)` → `(a b s) (¬s c d)`);
//! 3. a variable with too many occurrences is replaced by a cycle of fresh
//!    literal-representatives `ℓ_1 → ℓ_2 → ... → ℓ_r → ℓ_1` (clauses
//!    `(¬ℓ_i ∨ ℓ_{i+1})`), one per occurrence slot. Each occurrence uses its
//!    representative **positively**; a slot standing for `¬x` gets a
//!    representative whose cycle polarity is inverted. Every fresh variable
//!    then occurs once positively and once negatively in the cycle plus once
//!    positively in its slot: within budget.

use crate::cnf::{Cnf, Lit, Var};

/// Result of the conversion, with the mapping back to original variables.
#[derive(Clone, Debug)]
pub struct Restricted {
    /// The restricted-form formula.
    pub cnf: Cnf,
    /// For each variable of the new formula: `Some((orig, polarity))` if
    /// assigning the new variable `v` forces `orig = v == polarity`;
    /// `None` for pure auxiliary (clause-splitting) variables.
    pub back_map: Vec<Option<(Var, bool)>>,
    /// Whether unit propagation already decided the formula.
    pub decided: Option<bool>,
}

/// Converts `cnf` into restricted form.
pub fn to_restricted_form(cnf: &Cnf) -> Restricted {
    // --- 1. Unit propagation to remove unit clauses. -----------------
    let mut assignment: Vec<Option<bool>> = vec![None; cnf.num_vars];
    let mut clauses: Vec<Vec<Lit>> = cnf.clauses.clone();
    loop {
        let mut changed = false;
        let mut conflict = false;
        clauses.retain(|c| !c.iter().any(|l| l.eval(&assignment) == Some(true)));
        for c in &mut clauses {
            c.retain(|l| l.eval(&assignment).is_none());
        }
        for c in &clauses {
            if c.is_empty() {
                conflict = true;
            } else if c.len() == 1 {
                let l = c[0];
                match assignment[l.var.idx()] {
                    None => {
                        assignment[l.var.idx()] = Some(l.positive);
                        changed = true;
                    }
                    Some(v) if v != l.positive => conflict = true,
                    _ => {}
                }
            }
        }
        if conflict {
            return Restricted {
                cnf: Cnf::new(0),
                back_map: Vec::new(),
                decided: Some(false),
            };
        }
        if !changed {
            break;
        }
    }
    if clauses.is_empty() {
        return Restricted {
            cnf: Cnf::new(0),
            back_map: Vec::new(),
            decided: Some(true),
        };
    }

    // --- 2. Split wide clauses. --------------------------------------
    let mut num_vars = cnf.num_vars;
    let mut back_map: Vec<Option<(Var, bool)>> = (0..cnf.num_vars)
        .map(|v| Some((Var(v as u32), true)))
        .collect();
    let mut split: Vec<Vec<Lit>> = Vec::new();
    for c in clauses {
        let mut rest = c;
        while rest.len() > 3 {
            let fresh = Var(num_vars as u32);
            num_vars += 1;
            back_map.push(None);
            let head: Vec<Lit> = vec![rest[0], rest[1], Lit::pos(fresh)];
            split.push(head);
            let mut tail = vec![Lit::neg(fresh)];
            tail.extend_from_slice(&rest[2..]);
            rest = tail;
        }
        split.push(rest);
    }

    // --- 3. Occurrence-limit via literal-representative cycles. ------
    // Count occurrences per variable; variables within budget are left
    // alone.
    let mut occ: Vec<Vec<(usize, usize)>> = vec![Vec::new(); num_vars]; // (clause, pos-in-clause)
    for (ci, c) in split.iter().enumerate() {
        for (li, l) in c.iter().enumerate() {
            occ[l.var.idx()].push((ci, li));
        }
    }
    let mut out = split.clone();
    let mut extra_clauses: Vec<Vec<Lit>> = Vec::new();
    for (v, slots) in occ.clone().iter().enumerate() {
        let (p, n) = slots.iter().fold((0, 0), |(p, n), &(ci, li)| {
            if split[ci][li].positive {
                (p + 1, n)
            } else {
                (p, n + 1)
            }
        });
        if p <= 2 && n <= 1 {
            continue;
        }
        // Replace every occurrence with its own representative. The cycle
        // ¬ℓ_i ∨ ℓ_{i+1} makes all representatives' *meanings* equal, where
        // the meaning of representative r_i is `x` if the slot was positive
        // and `¬x` if negative; each slot then uses r_i positively.
        let r = slots.len();
        let reps: Vec<Var> = (0..r).map(|i| Var((num_vars + i) as u32)).collect();
        let polarities: Vec<bool> = slots
            .iter()
            .map(|&(ci, li)| split[ci][li].positive)
            .collect();
        for (i, &(ci, li)) in slots.iter().enumerate() {
            out[ci][li] = Lit::pos(reps[i]);
            back_map.push(Some((Var(v as u32), polarities[i])));
        }
        num_vars += r;
        // Implication cycle over the *meanings*: meaning(i) → meaning(i+1).
        // meaning(i) = reps[i] if polarity true else ... — by construction
        // meaning(i) == reps[i] == (x == polarities[i]). The equivalence of
        // all meanings-as-x is enforced by chaining the x-views:
        // (reps[i] == (x==pol_i)) so the x-view of reps[i] is reps[i] if
        // pol_i, else ¬reps[i]. Chain x-views in a cycle.
        let x_view = |i: usize| -> (Lit, Lit) {
            // Returns (lit meaning "x is true", lit meaning "x is false").
            if polarities[i] {
                (Lit::pos(reps[i]), Lit::neg(reps[i]))
            } else {
                (Lit::neg(reps[i]), Lit::pos(reps[i]))
            }
        };
        for i in 0..r {
            let j = (i + 1) % r;
            // x-view(i) implies x-view(j): ¬x-view(i) ∨ x-view(j).
            let (xi_true, _) = x_view(i);
            let (xj_true, _) = x_view(j);
            extra_clauses.push(vec![xi_true.negated(), xj_true]);
        }
    }
    out.extend(extra_clauses);

    let mut result = Cnf::new(num_vars);
    for c in out {
        result.add_clause(c);
    }
    Restricted {
        cnf: result,
        back_map,
        decided: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpll::{solve, solve_brute_force};

    fn check_equisat(f: &Cnf) {
        let r = to_restricted_form(f);
        let orig_sat = solve_brute_force(f).is_sat();
        match r.decided {
            Some(d) => assert_eq!(d, orig_sat, "propagation decision wrong for {f:?}"),
            None => {
                assert!(r.cnf.is_restricted_form(), "not restricted: {:?}", r.cnf);
                assert_eq!(
                    solve(&r.cnf).is_sat(),
                    orig_sat,
                    "equisatisfiability broken"
                );
            }
        }
    }

    #[test]
    fn wide_clauses_are_split() {
        let f = Cnf::from_clauses(
            5,
            &[
                &[(0, true), (1, true), (2, true), (3, true), (4, true)],
                &[(0, false), (1, false)],
            ],
        );
        check_equisat(&f);
    }

    #[test]
    fn heavy_occurrence_variables_are_cycled() {
        // x0 appears 4 times positive, twice negative.
        let f = Cnf::from_clauses(
            3,
            &[
                &[(0, true), (1, true)],
                &[(0, true), (2, true)],
                &[(0, true), (1, false)],
                &[(0, true), (2, false)],
                &[(0, false), (1, true)],
                &[(0, false), (2, true)],
            ],
        );
        check_equisat(&f);
    }

    #[test]
    fn unit_clauses_are_propagated_away() {
        let f = Cnf::from_clauses(
            3,
            &[
                &[(0, true)],
                &[(0, false), (1, true), (2, true)],
                &[(1, false), (2, false)],
            ],
        );
        let r = to_restricted_form(&f);
        if r.decided.is_none() {
            assert!(r.cnf.is_restricted_form());
        }
        check_equisat(&f);
    }

    #[test]
    fn contradictory_units_decided_unsat() {
        let f = Cnf::from_clauses(1, &[&[(0, true)], &[(0, false)]]);
        let r = to_restricted_form(&f);
        assert_eq!(r.decided, Some(false));
    }

    #[test]
    fn random_formulas_stay_equisatisfiable() {
        let mut seed = 42u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..50 {
            let nv = 3 + (next() % 4) as usize;
            let nc = 2 + (next() % 10) as usize;
            let mut f = Cnf::new(nv);
            for _ in 0..nc {
                let len = 1 + (next() % 4) as usize;
                let clause: Vec<_> = (0..len)
                    .map(|_| Lit {
                        var: Var((next() % nv as u64) as u32),
                        positive: next() % 2 == 0,
                    })
                    .collect();
                f.add_clause(clause);
            }
            check_equisat(&f);
        }
    }
}
