//! CNF formulas: variables, literals, clauses.

use std::fmt;

/// A propositional variable, numbered from 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// Raw index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0 + 1)
    }
}

/// A literal: a variable or its negation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit {
    /// The variable.
    pub var: Var,
    /// True for the positive literal `x`, false for `¬x`.
    pub positive: bool,
}

impl Lit {
    /// Positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit {
            var: v,
            positive: true,
        }
    }

    /// Negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit {
            var: v,
            positive: false,
        }
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Evaluates under an assignment (`None` entries = unassigned).
    pub fn eval(self, assignment: &[Option<bool>]) -> Option<bool> {
        assignment[self.var.idx()].map(|v| v == self.positive)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "{:?}", self.var)
        } else {
            write!(f, "¬{:?}", self.var)
        }
    }
}

/// A clause: a disjunction of literals.
pub type Clause = Vec<Lit>;

/// A CNF formula.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables (vars are `0..num_vars`).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// An empty (trivially satisfiable) formula over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Adds a clause; panics on out-of-range variables.
    pub fn add_clause(&mut self, clause: Clause) {
        for l in &clause {
            assert!(l.var.idx() < self.num_vars, "variable out of range");
        }
        self.clauses.push(clause);
    }

    /// Builds from `(var_index, positive)` pairs, 0-based.
    pub fn from_clauses(num_vars: usize, clauses: &[&[(usize, bool)]]) -> Self {
        let mut f = Cnf::new(num_vars);
        for c in clauses {
            f.add_clause(
                c.iter()
                    .map(|&(v, p)| Lit {
                        var: Var(v as u32),
                        positive: p,
                    })
                    .collect(),
            );
        }
        f
    }

    /// Evaluates the formula under a **complete** assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| assignment[l.var.idx()] == l.positive))
    }

    /// Number of positive/negative occurrences of each variable.
    pub fn occurrence_counts(&self) -> Vec<(usize, usize)> {
        let mut counts = vec![(0usize, 0usize); self.num_vars];
        for c in &self.clauses {
            for l in c {
                if l.positive {
                    counts[l.var.idx()].0 += 1;
                } else {
                    counts[l.var.idx()].1 += 1;
                }
            }
        }
        counts
    }

    /// Checks the paper's restricted form: every clause has 2 or 3 literals
    /// and each variable occurs at most twice positively and at most once
    /// negatively.
    pub fn is_restricted_form(&self) -> bool {
        self.clauses.iter().all(|c| c.len() == 2 || c.len() == 3)
            && self
                .occurrence_counts()
                .iter()
                .all(|&(p, n)| p <= 2 && n <= 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_eval() {
        let l = Lit::pos(Var(0));
        assert_eq!(l.eval(&[Some(true)]), Some(true));
        assert_eq!(l.negated().eval(&[Some(true)]), Some(false));
        assert_eq!(l.eval(&[None]), None);
    }

    #[test]
    fn formula_eval() {
        // (x1 ∨ ¬x2) ∧ (x2 ∨ x3)
        let f = Cnf::from_clauses(3, &[&[(0, true), (1, false)], &[(1, true), (2, true)]]);
        assert!(f.eval(&[true, true, false]));
        assert!(!f.eval(&[false, true, false]));
        assert!(f.eval(&[false, false, true]));
    }

    #[test]
    fn occurrence_counts_and_restricted_form() {
        let f = Cnf::from_clauses(
            3,
            &[
                &[(0, true), (1, true), (2, true)],
                &[(0, false), (1, true), (2, false)],
            ],
        );
        assert_eq!(f.occurrence_counts(), vec![(1, 1), (2, 0), (1, 1)]);
        assert!(f.is_restricted_form());
        let g = Cnf::from_clauses(1, &[&[(0, true)]]);
        assert!(!g.is_restricted_form()); // unit clause
    }
}
