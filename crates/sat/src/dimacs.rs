//! DIMACS CNF parsing and printing.

use crate::cnf::{Cnf, Lit, Var};

/// Parse errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DimacsError {
    /// Missing or malformed `p cnf <vars> <clauses>` line.
    BadHeader,
    /// A token that is not an integer.
    BadToken(String),
    /// A literal references a variable beyond the declared count.
    VarOutOfRange(i64),
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DimacsError::BadHeader => write!(f, "missing or malformed DIMACS header"),
            DimacsError::BadToken(t) => write!(f, "bad token {t:?}"),
            DimacsError::VarOutOfRange(v) => write!(f, "literal {v} out of declared range"),
        }
    }
}

impl std::error::Error for DimacsError {}

/// Parses DIMACS CNF text.
pub fn parse(text: &str) -> Result<Cnf, DimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut cnf = Cnf::new(0);
    let mut current: Vec<Lit> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(DimacsError::BadHeader);
            }
            let nv: usize = parts[1].parse().map_err(|_| DimacsError::BadHeader)?;
            num_vars = Some(nv);
            cnf = Cnf::new(nv);
            continue;
        }
        let nv = num_vars.ok_or(DimacsError::BadHeader)?;
        for tok in line.split_whitespace() {
            let v: i64 = tok
                .parse()
                .map_err(|_| DimacsError::BadToken(tok.to_string()))?;
            if v == 0 {
                cnf.add_clause(std::mem::take(&mut current));
            } else {
                let var = v.unsigned_abs() as usize - 1;
                if var >= nv {
                    return Err(DimacsError::VarOutOfRange(v));
                }
                current.push(Lit {
                    var: Var(var as u32),
                    positive: v > 0,
                });
            }
        }
    }
    if !current.is_empty() {
        cnf.add_clause(current);
    }
    Ok(cnf)
}

/// Prints a formula in DIMACS format.
pub fn print(cnf: &Cnf) -> String {
    let mut out = format!("p cnf {} {}\n", cnf.num_vars, cnf.clauses.len());
    for c in &cnf.clauses {
        for l in c {
            let v = l.var.0 as i64 + 1;
            out.push_str(&format!("{} ", if l.positive { v } else { -v }));
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let f = Cnf::from_clauses(3, &[&[(0, true), (1, false)], &[(2, true)]]);
        let text = print(&f);
        let g = parse(&text).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn parses_comments_and_header() {
        let text = "c a comment\np cnf 2 2\n1 -2 0\n2 0\n";
        let f = parse(text).unwrap();
        assert_eq!(f.num_vars, 2);
        assert_eq!(f.clauses.len(), 2);
    }

    #[test]
    fn error_cases() {
        assert_eq!(parse("1 2 0"), Err(DimacsError::BadHeader));
        assert_eq!(parse("p cnf 1 1\n2 0"), Err(DimacsError::VarOutOfRange(2)));
        assert!(matches!(
            parse("p cnf 1 1\nxyz 0"),
            Err(DimacsError::BadToken(_))
        ));
    }
}
