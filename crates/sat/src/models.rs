//! Model enumeration: all satisfying assignments of a CNF.
//!
//! Used by the Theorem-3 experiments to relate satisfying assignments to
//! desirable dominators of the reduction, and by tests as a second
//! (exhaustive) satisfiability check.

use crate::cnf::{Cnf, Lit, Var};
use crate::dpll::{solve, SatResult};

/// Enumerates satisfying assignments, up to `cap` of them.
/// Returns `(models, exhaustive)`.
///
/// Implementation: repeated DPLL with blocking clauses — after each model,
/// a clause excluding it is added. Simple and adequate for the instance
/// sizes used in experiments.
pub fn all_models(cnf: &Cnf, cap: usize) -> (Vec<Vec<bool>>, bool) {
    let mut work = cnf.clone();
    let mut models = Vec::new();
    loop {
        if models.len() >= cap {
            return (models, false);
        }
        match solve(&work) {
            SatResult::Sat(model) => {
                // Block this exact model.
                let blocking: Vec<Lit> = (0..work.num_vars)
                    .map(|v| Lit {
                        var: Var(v as u32),
                        positive: !model[v],
                    })
                    .collect();
                work.add_clause(blocking);
                models.push(model);
            }
            SatResult::Unsat => return (models, true),
        }
    }
}

/// Counts models exactly by brute force (≤ 24 variables).
pub fn count_models_brute_force(cnf: &Cnf) -> u64 {
    assert!(cnf.num_vars <= 24, "brute force limited to 24 variables");
    (0u64..(1u64 << cnf.num_vars))
        .filter(|bits| {
            let assignment: Vec<bool> = (0..cnf.num_vars).map(|v| bits >> v & 1 == 1).collect();
            cnf.eval(&assignment)
        })
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_all_models() {
        // (x1 ∨ x2): 3 models out of 4 assignments.
        let f = Cnf::from_clauses(2, &[&[(0, true), (1, true)]]);
        let (models, exhaustive) = all_models(&f, 100);
        assert!(exhaustive);
        assert_eq!(models.len(), 3);
        for m in &models {
            assert!(f.eval(m));
        }
        assert_eq!(count_models_brute_force(&f), 3);
    }

    #[test]
    fn unsat_has_no_models() {
        let f = Cnf::from_clauses(1, &[&[(0, true)], &[(0, false)]]);
        let (models, exhaustive) = all_models(&f, 100);
        assert!(models.is_empty() && exhaustive);
    }

    #[test]
    fn cap_is_respected() {
        let f = Cnf::new(4); // empty formula: 16 models
        let (models, exhaustive) = all_models(&f, 5);
        assert_eq!(models.len(), 5);
        assert!(!exhaustive);
    }

    #[test]
    fn agrees_with_brute_force_on_random_formulas() {
        for seed in 0..15 {
            let f = crate::gen::random_kcnf(seed, 5, 6, 3);
            let (models, exhaustive) = all_models(&f, 100);
            assert!(exhaustive);
            assert_eq!(models.len() as u64, count_models_brute_force(&f), "{f:?}");
            // Models are distinct.
            let mut sorted = models.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), models.len());
        }
    }
}
