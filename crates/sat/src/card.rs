//! Cardinality constraints as CNF (Sinz-style sequential counter).
//!
//! `kplock_core::sat_check::synthesize_optimal` asks "is there a
//! certifiable transaction set of size ≥ k?" — a cardinality constraint
//! over the per-transaction selection variables. The sequential-counter
//! encoding keeps that polynomial: `at_most_k` over `n` literals adds
//! `(n-1)·k` auxiliary register variables and `O(n·k)` clauses, and unit
//! propagation alone enforces the bound (the encoding maintains arc
//! consistency), which matters for a solver without clause learning.

use crate::cnf::{Cnf, Lit, Var};

/// Appends clauses to `cnf` forcing at most `k` of `lits` to be true.
///
/// Fresh auxiliary variables are appended after `cnf.num_vars`; original
/// variables are never touched, so any model of the extended formula
/// restricted to the original variables satisfies the bound, and every
/// assignment of the original variables meeting the bound extends to a
/// model of the added clauses.
pub fn at_most_k(cnf: &mut Cnf, lits: &[Lit], k: usize) {
    let n = lits.len();
    if k >= n {
        return; // vacuous
    }
    if k == 0 {
        for &l in lits {
            cnf.add_clause(vec![l.negated()]);
        }
        return;
    }
    // s(i, j) ⇔ "at least j+1 of lits[0..=i] are true" (j < k), tracked
    // for i in 0..n-1 — the last literal needs no register row, only the
    // overflow clause below.
    let base = cnf.num_vars;
    cnf.num_vars += (n - 1) * k;
    let s = |i: usize, j: usize| Var((base + i * k + j) as u32);
    for (i, &lit) in lits.iter().enumerate().take(n - 1) {
        // lits[i] → s(i, 0)
        cnf.add_clause(vec![lit.negated(), Lit::pos(s(i, 0))]);
        if i > 0 {
            for j in 0..k {
                // s(i-1, j) → s(i, j): counts are monotone in the prefix.
                cnf.add_clause(vec![Lit::neg(s(i - 1, j)), Lit::pos(s(i, j))]);
            }
            for j in 1..k {
                // lits[i] ∧ s(i-1, j-1) → s(i, j): a true literal bumps
                // the count.
                cnf.add_clause(vec![
                    lit.negated(),
                    Lit::neg(s(i - 1, j - 1)),
                    Lit::pos(s(i, j)),
                ]);
            }
        }
    }
    for (i, &lit) in lits.iter().enumerate().skip(1) {
        // Overflow: lits[i] with k already counted before it exceeds k.
        cnf.add_clause(vec![lit.negated(), Lit::neg(s(i - 1, k - 1))]);
    }
}

/// Appends clauses to `cnf` forcing at least `k` of `lits` to be true
/// (dually: at most `n - k` of their negations).
pub fn at_least_k(cnf: &mut Cnf, lits: &[Lit], k: usize) {
    if k == 0 {
        return; // vacuous
    }
    let n = lits.len();
    if k > n {
        cnf.add_clause(vec![]); // unsatisfiable on its face
        return;
    }
    let negated: Vec<Lit> = lits.iter().map(|l| l.negated()).collect();
    at_most_k(cnf, &negated, n - k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpll::solve;

    /// Pins `m` of the `n` selection variables true (the rest false) and
    /// returns whether the constrained formula is satisfiable — the aux
    /// variables are existentially quantified by the solver.
    fn feasible(n: usize, m: usize, build: impl Fn(&mut Cnf, &[Lit])) -> bool {
        let mut cnf = Cnf::new(n);
        let lits: Vec<Lit> = (0..n).map(|v| Lit::pos(Var(v as u32))).collect();
        build(&mut cnf, &lits);
        for (i, &l) in lits.iter().enumerate() {
            cnf.add_clause(vec![if i < m { l } else { l.negated() }]);
        }
        solve(&cnf).is_sat()
    }

    #[test]
    fn at_most_k_is_exact_for_every_count() {
        for n in 1..=6 {
            for k in 0..=n {
                for m in 0..=n {
                    assert_eq!(
                        feasible(n, m, |cnf, lits| at_most_k(cnf, lits, k)),
                        m <= k,
                        "n={n} k={k} m={m}"
                    );
                }
            }
        }
    }

    #[test]
    fn at_least_k_is_exact_for_every_count() {
        for n in 1..=6 {
            for k in 0..=n + 1 {
                for m in 0..=n {
                    assert_eq!(
                        feasible(n, m, |cnf, lits| at_least_k(cnf, lits, k)),
                        m >= k,
                        "n={n} k={k} m={m}"
                    );
                }
            }
        }
    }

    #[test]
    fn bounds_compose_into_an_exact_window() {
        // 2 ≤ count ≤ 3 over 5 variables, solver free to pick: must find a
        // model, and every model must respect the window.
        let mut cnf = Cnf::new(5);
        let lits: Vec<Lit> = (0..5).map(|v| Lit::pos(Var(v as u32))).collect();
        at_least_k(&mut cnf, &lits, 2);
        at_most_k(&mut cnf, &lits, 3);
        match solve(&cnf) {
            crate::dpll::SatResult::Sat(model) => {
                let count = (0..5).filter(|&v| model[v]).count();
                assert!((2..=3).contains(&count), "model picked {count} of 5");
            }
            crate::dpll::SatResult::Unsat => panic!("window 2..=3 of 5 is satisfiable"),
        }
    }

    #[test]
    fn negated_literals_are_counted_as_given() {
        // at_most_1 over {¬a, ¬b}: at least one of a, b must be true.
        let mut cnf = Cnf::new(2);
        let lits = [Lit::neg(Var(0)), Lit::neg(Var(1))];
        at_most_k(&mut cnf, &lits, 1);
        cnf.add_clause(vec![Lit::neg(Var(0))]);
        cnf.add_clause(vec![Lit::neg(Var(1))]);
        assert_eq!(solve(&cnf), crate::dpll::SatResult::Unsat);
    }
}
