//! A conflict-driven DPLL satisfiability solver.
//!
//! The search is classic DPLL — unit propagation, branching, backtracking
//! — hardened with the standard machinery that makes the Theorem-3
//! experiments' *ordering* encodings tractable (thousands of transitivity
//! clauses over milestone-pair variables, whose UNSAT proofs blow up a
//! learning-free solver):
//!
//! * **two-watched-literal** propagation, so a propagation pass touches
//!   only clauses that might have become unit;
//! * **first-UIP conflict analysis** with clause learning and
//!   backjumping, so a refuted subspace is never revisited;
//! * **activity-driven branching** (VSIDS-style, bump on conflict,
//!   geometric decay) with phase saving;
//! * **geometric restarts** that keep learned clauses and activities;
//! * optional **pure-literal elimination**, applied once at the root
//!   (see [`Solver::with_pure_literals`] and the `dpll` bench).
//!
//! Everything is deterministic — no randomized tie-breaking — so solver
//! verdicts, witnesses, and statistics reproduce exactly across runs.

use crate::cnf::{Clause, Cnf, Lit, Var};

/// The result of solving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a witness assignment (one value per variable).
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// True if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// Watch-list key of a literal (2·var + polarity).
fn watch_key(l: Lit) -> usize {
    2 * l.var.idx() + l.positive as usize
}

/// Literal value under a partial assignment (free function so it can be
/// used while a clause is mutably borrowed).
fn lit_value(assignment: &[Option<bool>], l: Lit) -> Option<bool> {
    assignment[l.var.idx()].map(|v| v == l.positive)
}

/// Solver state.
pub struct Solver<'a> {
    cnf: &'a Cnf,
    /// Cleaned original clauses followed by learned clauses. The first two
    /// literals of every clause are its watched literals.
    clauses: Vec<Clause>,
    watches: Vec<Vec<usize>>,
    assignment: Vec<Option<bool>>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    queue_head: usize,
    activity: Vec<f64>,
    var_inc: f64,
    phase: Vec<bool>,
    pure_literal_elimination: bool,
    /// Statistics: number of branching decisions made.
    pub decisions: u64,
    /// Statistics: number of unit propagations performed.
    pub propagations: u64,
}

const ACTIVITY_DECAY: f64 = 0.95;
const ACTIVITY_RESCALE: f64 = 1e100;

impl<'a> Solver<'a> {
    /// Creates a solver for `cnf`.
    pub fn new(cnf: &'a Cnf) -> Self {
        let n = cnf.num_vars;
        Solver {
            cnf,
            clauses: Vec::with_capacity(cnf.clauses.len()),
            watches: vec![Vec::new(); 2 * n],
            assignment: vec![None; n],
            level: vec![0; n],
            reason: vec![None; n],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            queue_head: 0,
            activity: vec![0.0; n],
            var_inc: 1.0,
            phase: vec![true; n],
            pure_literal_elimination: true,
            decisions: 0,
            propagations: 0,
        }
    }

    /// Enables or disables pure-literal elimination (on by default).
    ///
    /// The rule assigns, once at the root, every variable that occurs with
    /// a single polarity among not-yet-satisfied clauses (such a literal
    /// can never falsify anything). Exists so the `dpll` criterion bench
    /// can measure what the rule buys; both settings are complete.
    pub fn with_pure_literals(mut self, on: bool) -> Self {
        self.pure_literal_elimination = on;
        self
    }

    fn value(&self, l: Lit) -> Option<bool> {
        self.assignment[l.var.idx()].map(|v| v == l.positive)
    }

    fn assign(&mut self, l: Lit, reason: Option<usize>) {
        let v = l.var.idx();
        debug_assert!(self.assignment[v].is_none());
        self.assignment[v] = Some(l.positive);
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Root-level assignment that tolerates repeats; false on conflict.
    fn enqueue_root(&mut self, l: Lit) -> bool {
        match self.value(l) {
            Some(true) => true,
            Some(false) => false,
            None => {
                self.assign(l, None);
                true
            }
        }
    }

    fn backtrack_to(&mut self, target_level: usize) {
        while self.trail_lim.len() > target_level {
            let mark = self.trail_lim.pop().expect("level");
            while self.trail.len() > mark {
                let l = self.trail.pop().expect("trail");
                let v = l.var.idx();
                self.phase[v] = l.positive;
                self.assignment[v] = None;
                self.reason[v] = None;
            }
        }
        self.queue_head = self.trail.len();
    }

    /// Two-watched-literal unit propagation. Returns the index of a
    /// conflicting clause, or `None` when a fixpoint is reached.
    fn propagate(&mut self) -> Option<usize> {
        while self.queue_head < self.trail.len() {
            let p = self.trail[self.queue_head];
            self.queue_head += 1;
            let falsified = p.negated();
            let key = watch_key(falsified);
            let mut ws = std::mem::take(&mut self.watches[key]);
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                if self.clauses[ci][0] == falsified {
                    self.clauses[ci].swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci][1], falsified);
                let first = self.clauses[ci][0];
                if lit_value(&self.assignment, first) == Some(true) {
                    i += 1;
                    continue;
                }
                // Find a replacement watch among the tail literals.
                let replacement = (2..self.clauses[ci].len())
                    .find(|&k| lit_value(&self.assignment, self.clauses[ci][k]) != Some(false));
                if let Some(k) = replacement {
                    self.clauses[ci].swap(1, k);
                    let new_key = watch_key(self.clauses[ci][1]);
                    self.watches[new_key].push(ci);
                    ws.swap_remove(i);
                    continue;
                }
                if lit_value(&self.assignment, first) == Some(false) {
                    self.watches[key] = ws;
                    return Some(ci); // conflict
                }
                self.propagations += 1;
                self.assign(first, Some(ci));
                i += 1;
            }
            self.watches[key] = ws;
        }
        None
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > ACTIVITY_RESCALE {
            for a in &mut self.activity {
                *a /= ACTIVITY_RESCALE;
            }
            self.var_inc /= ACTIVITY_RESCALE;
        }
    }

    /// First-UIP conflict analysis: resolves the conflict clause backwards
    /// along the trail until exactly one literal of the current decision
    /// level remains. Returns the learned (asserting) clause with that
    /// literal first, and the level to backjump to.
    fn analyze(&mut self, conflict: usize) -> (Clause, usize) {
        let current = self.trail_lim.len() as u32;
        let mut learnt: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.cnf.num_vars];
        let mut counter = 0usize;
        let mut index = self.trail.len();
        let mut clause_idx = conflict;
        let mut pivot: Option<Lit> = None;
        loop {
            // Skip the asserted literal (index 0) of reason clauses: it is
            // the pivot being resolved away.
            let skip = usize::from(pivot.is_some());
            for k in skip..self.clauses[clause_idx].len() {
                let q = self.clauses[clause_idx][k];
                let v = q.var.idx();
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump(v);
                    if self.level[v] == current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next marked literal on the trail (always at the current
            // level: lower levels were pushed to `learnt`, not marked for
            // resolution).
            loop {
                index -= 1;
                if seen[self.trail[index].var.idx()] {
                    break;
                }
            }
            let p = self.trail[index];
            seen[p.var.idx()] = false;
            counter -= 1;
            pivot = Some(p);
            if counter == 0 {
                break;
            }
            clause_idx = self.reason[p.var.idx()]
                .expect("a non-decision literal at the conflict level has a reason");
        }
        let uip = pivot.expect("conflict analysis found the UIP").negated();
        learnt.insert(0, uip);

        // Backjump to the second-highest level in the clause; keep a
        // literal of that level in the other watched slot so the clause
        // stays asserting after the jump.
        if learnt.len() == 1 {
            return (learnt, 0);
        }
        let mut best = 1;
        for k in 2..learnt.len() {
            if self.level[learnt[k].var.idx()] > self.level[learnt[best].var.idx()] {
                best = k;
            }
        }
        learnt.swap(1, best);
        let back = self.level[learnt[1].var.idx()] as usize;
        (learnt, back)
    }

    /// Assigns every variable occurring with only one polarity among
    /// not-yet-satisfied clauses (sound: a formula is satisfiable iff it
    /// is satisfiable with all its pure literals set).
    fn assign_pure_literals(&mut self) {
        let n = self.cnf.num_vars;
        let mut pos = vec![false; n];
        let mut neg = vec![false; n];
        for clause in &self.clauses {
            if clause.iter().any(|&l| self.value(l) == Some(true)) {
                continue;
            }
            for &l in clause {
                if self.assignment[l.var.idx()].is_none() {
                    if l.positive {
                        pos[l.var.idx()] = true;
                    } else {
                        neg[l.var.idx()] = true;
                    }
                }
            }
        }
        for v in 0..n {
            if self.assignment[v].is_none() && pos[v] != neg[v] {
                self.assign(
                    Lit {
                        var: Var(v as u32),
                        positive: pos[v],
                    },
                    None,
                );
            }
        }
    }

    /// Unassigned variable with the highest activity (ties to the lowest
    /// index), or `None` when the assignment is complete.
    fn pick_branch(&self) -> Option<Var> {
        let mut best: Option<usize> = None;
        for v in 0..self.cnf.num_vars {
            if self.assignment[v].is_none()
                && best.is_none_or(|b| self.activity[v] > self.activity[b])
            {
                best = Some(v);
            }
        }
        best.map(|v| Var(v as u32))
    }

    /// Loads the formula: deduplicates literals, drops tautologies,
    /// enqueues unit clauses at the root, watches the rest. Returns false
    /// if the formula is trivially unsatisfiable.
    fn load(&mut self) -> bool {
        for clause in &self.cnf.clauses {
            let mut c = clause.clone();
            c.sort();
            c.dedup();
            if c.windows(2).any(|w| w[0].var == w[1].var) {
                continue; // tautology: x ∨ ¬x
            }
            match c.len() {
                0 => return false,
                1 => {
                    if !self.enqueue_root(c[0]) {
                        return false;
                    }
                }
                _ => {
                    let ci = self.clauses.len();
                    self.watches[watch_key(c[0])].push(ci);
                    self.watches[watch_key(c[1])].push(ci);
                    self.clauses.push(c);
                }
            }
        }
        true
    }

    /// Decides satisfiability.
    pub fn solve(&mut self) -> SatResult {
        if !self.load() || self.propagate().is_some() {
            return SatResult::Unsat;
        }
        if self.pure_literal_elimination {
            self.assign_pure_literals();
            if self.propagate().is_some() {
                return SatResult::Unsat;
            }
        }
        let mut conflicts_since_restart = 0u64;
        let mut restart_limit = 100u64;
        loop {
            if let Some(conflict) = self.propagate() {
                if self.trail_lim.is_empty() {
                    return SatResult::Unsat;
                }
                let (learnt, back) = self.analyze(conflict);
                self.backtrack_to(back);
                let asserted = learnt[0];
                if learnt.len() == 1 {
                    self.assign(asserted, None);
                } else {
                    let ci = self.clauses.len();
                    self.watches[watch_key(learnt[0])].push(ci);
                    self.watches[watch_key(learnt[1])].push(ci);
                    self.clauses.push(learnt);
                    self.assign(asserted, Some(ci));
                }
                self.var_inc /= ACTIVITY_DECAY;
                conflicts_since_restart += 1;
                if conflicts_since_restart >= restart_limit {
                    conflicts_since_restart = 0;
                    restart_limit += restart_limit / 2;
                    self.backtrack_to(0);
                }
            } else {
                let Some(v) = self.pick_branch() else {
                    let model: Vec<bool> = self
                        .assignment
                        .iter()
                        .map(|v| v.expect("complete"))
                        .collect();
                    debug_assert!(self.cnf.eval(&model));
                    return SatResult::Sat(model);
                };
                self.decisions += 1;
                self.trail_lim.push(self.trail.len());
                self.assign(
                    Lit {
                        var: v,
                        positive: self.phase[v.idx()],
                    },
                    None,
                );
            }
        }
    }
}

/// One-shot convenience: solve `cnf`.
pub fn solve(cnf: &Cnf) -> SatResult {
    Solver::new(cnf).solve()
}

/// Brute-force satisfiability over all assignments (for cross-checking;
/// panics above 24 variables).
pub fn solve_brute_force(cnf: &Cnf) -> SatResult {
    assert!(cnf.num_vars <= 24, "brute force limited to 24 variables");
    for bits in 0u64..(1u64 << cnf.num_vars) {
        let assignment: Vec<bool> = (0..cnf.num_vars).map(|v| bits >> v & 1 == 1).collect();
        if cnf.eval(&assignment) {
            return SatResult::Sat(assignment);
        }
    }
    SatResult::Unsat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Cnf;

    #[test]
    fn simple_sat() {
        let f = Cnf::from_clauses(2, &[&[(0, true), (1, true)], &[(0, false), (1, true)]]);
        let SatResult::Sat(m) = solve(&f) else {
            panic!("should be sat");
        };
        assert!(f.eval(&m));
    }

    #[test]
    fn simple_unsat() {
        let f = Cnf::from_clauses(1, &[&[(0, true)], &[(0, false)]]);
        assert_eq!(solve(&f), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_2_into_1_unsat() {
        // p1 ∨ p2 forced each pigeon into hole 1; both can't share.
        // Variables: x_ij = pigeon i in hole j, 2 pigeons 1 hole.
        let f = Cnf::from_clauses(2, &[&[(0, true)], &[(1, true)], &[(0, false), (1, false)]]);
        assert_eq!(solve(&f), SatResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let f = Cnf::new(3);
        assert!(solve(&f).is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut f = Cnf::new(1);
        f.add_clause(vec![]);
        assert_eq!(solve(&f), SatResult::Unsat);
    }

    #[test]
    fn tautological_clauses_are_ignored() {
        // (x ∨ ¬x) ∧ (¬y) is satisfiable; the tautology must not confuse
        // the watch lists.
        let f = Cnf::from_clauses(2, &[&[(0, true), (0, false)], &[(1, false)]]);
        let SatResult::Sat(m) = solve(&f) else {
            panic!("should be sat");
        };
        assert!(f.eval(&m));
    }

    #[test]
    fn duplicate_literals_are_deduplicated() {
        // (x ∨ x) ∧ (¬x ∨ ¬x): still plain x ∧ ¬x, unsatisfiable.
        let f = Cnf::from_clauses(1, &[&[(0, true), (0, true)], &[(0, false), (0, false)]]);
        assert_eq!(solve(&f), SatResult::Unsat);
    }

    #[test]
    fn learning_cracks_pigeonhole_quickly() {
        // 7 pigeons into 6 holes: hopeless for a learning-free solver at
        // this size, routine with first-UIP clause learning.
        let holes = 6;
        let pigeons = holes + 1;
        let var = |p: usize, h: usize| p * holes + h;
        let mut f = Cnf::new(pigeons * holes);
        for p in 0..pigeons {
            f.add_clause(
                (0..holes)
                    .map(|h| Lit::pos(Var(var(p, h) as u32)))
                    .collect(),
            );
        }
        for h in 0..holes {
            for p in 0..pigeons {
                for q in (p + 1)..pigeons {
                    f.add_clause(vec![
                        Lit::neg(Var(var(p, h) as u32)),
                        Lit::neg(Var(var(q, h) as u32)),
                    ]);
                }
            }
        }
        assert_eq!(solve(&f), SatResult::Unsat);
    }

    #[test]
    fn agrees_with_brute_force_on_small_formulas() {
        // Deterministic pseudo-random small formulas.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..60 {
            let nv = 3 + (next() % 4) as usize;
            let nc = 2 + (next() % 8) as usize;
            let mut f = Cnf::new(nv);
            for _ in 0..nc {
                let len = 1 + (next() % 3) as usize;
                let clause: Vec<_> = (0..len)
                    .map(|_| Lit {
                        var: Var((next() % nv as u64) as u32),
                        positive: next() % 2 == 0,
                    })
                    .collect();
                f.add_clause(clause);
            }
            assert_eq!(
                solve(&f).is_sat(),
                solve_brute_force(&f).is_sat(),
                "formula {f:?}"
            );
            // Pure-literal elimination is an optimization, never a
            // soundness ingredient: disabling it must not change verdicts.
            let mut plain = Solver::new(&f).with_pure_literals(false);
            assert_eq!(
                plain.solve().is_sat(),
                solve(&f).is_sat(),
                "pure-literal toggle changed the verdict on {f:?}"
            );
        }
    }
}
