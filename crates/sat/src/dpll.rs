//! A DPLL satisfiability solver with unit propagation and pure-literal
//! elimination.
//!
//! Deliberately simple (the Theorem-3 experiments use formulas of tens to a
//! few hundred variables) but complete and allocation-conscious: one
//! assignment vector plus an explicit trail, no clause learning.

use crate::cnf::{Cnf, Lit, Var};

/// The result of solving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a witness assignment (one value per variable).
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// True if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// Solver state.
pub struct Solver<'a> {
    cnf: &'a Cnf,
    assignment: Vec<Option<bool>>,
    trail: Vec<Var>,
    /// Statistics: number of branching decisions made.
    pub decisions: u64,
    /// Statistics: number of unit propagations performed.
    pub propagations: u64,
}

impl<'a> Solver<'a> {
    /// Creates a solver for `cnf`.
    pub fn new(cnf: &'a Cnf) -> Self {
        Solver {
            cnf,
            assignment: vec![None; cnf.num_vars],
            trail: Vec::new(),
            decisions: 0,
            propagations: 0,
        }
    }

    /// Decides satisfiability.
    pub fn solve(&mut self) -> SatResult {
        if self.dpll() {
            // Unassigned variables are don't-cares; default to false.
            let model: Vec<bool> = self.assignment.iter().map(|v| v.unwrap_or(false)).collect();
            debug_assert!(self.cnf.eval(&model));
            SatResult::Sat(model)
        } else {
            SatResult::Unsat
        }
    }

    fn assign(&mut self, lit: Lit) {
        self.assignment[lit.var.idx()] = Some(lit.positive);
        self.trail.push(lit.var);
    }

    fn backtrack_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let v = self.trail.pop().expect("trail");
            self.assignment[v.idx()] = None;
        }
    }

    /// Unit propagation; returns `false` on conflict.
    fn propagate(&mut self) -> bool {
        loop {
            let mut changed = false;
            for clause in &self.cnf.clauses {
                let mut unassigned: Option<Lit> = None;
                let mut satisfied = false;
                let mut unassigned_count = 0usize;
                for &l in clause {
                    match l.eval(&self.assignment) {
                        Some(true) => {
                            satisfied = true;
                            break;
                        }
                        Some(false) => {}
                        None => {
                            unassigned_count += 1;
                            unassigned = Some(l);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match unassigned_count {
                    0 => return false, // conflict
                    1 => {
                        self.propagations += 1;
                        self.assignment[unassigned.unwrap().var.idx()] =
                            Some(unassigned.unwrap().positive);
                        self.trail.push(unassigned.unwrap().var);
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                return true;
            }
        }
    }

    /// Assigns variables that occur with only one polarity among
    /// not-yet-satisfied clauses.
    fn pure_literals(&mut self) {
        let mut pos = vec![false; self.cnf.num_vars];
        let mut neg = vec![false; self.cnf.num_vars];
        for clause in &self.cnf.clauses {
            if clause
                .iter()
                .any(|l| l.eval(&self.assignment) == Some(true))
            {
                continue;
            }
            for &l in clause {
                if self.assignment[l.var.idx()].is_none() {
                    if l.positive {
                        pos[l.var.idx()] = true;
                    } else {
                        neg[l.var.idx()] = true;
                    }
                }
            }
        }
        for v in 0..self.cnf.num_vars {
            if self.assignment[v].is_none() && pos[v] != neg[v] && (pos[v] || neg[v]) {
                self.assign(Lit {
                    var: Var(v as u32),
                    positive: pos[v],
                });
            }
        }
    }

    /// Chooses the unassigned variable appearing in the most unsatisfied
    /// clauses.
    fn pick_branch(&self) -> Option<Var> {
        let mut counts = vec![0usize; self.cnf.num_vars];
        for clause in &self.cnf.clauses {
            if clause
                .iter()
                .any(|l| l.eval(&self.assignment) == Some(true))
            {
                continue;
            }
            for &l in clause {
                if self.assignment[l.var.idx()].is_none() {
                    counts[l.var.idx()] += 1;
                }
            }
        }
        counts
            .iter()
            .enumerate()
            .filter(|&(v, &c)| c > 0 && self.assignment[v].is_none())
            .max_by_key(|&(_, &c)| c)
            .map(|(v, _)| Var(v as u32))
            .or_else(|| {
                (0..self.cnf.num_vars)
                    .find(|&v| self.assignment[v].is_none())
                    .map(|v| Var(v as u32))
            })
    }

    fn all_satisfied(&self) -> bool {
        self.cnf
            .clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(&self.assignment) == Some(true)))
    }

    fn dpll(&mut self) -> bool {
        let mark = self.trail.len();
        if !self.propagate() {
            self.backtrack_to(mark);
            return false;
        }
        self.pure_literals();
        if !self.propagate() {
            self.backtrack_to(mark);
            return false;
        }
        if self.all_satisfied() {
            return true;
        }
        let Some(v) = self.pick_branch() else {
            // No unassigned variable left but some clause unsatisfied.
            let ok = self.all_satisfied();
            if !ok {
                self.backtrack_to(mark);
            }
            return ok;
        };
        for value in [true, false] {
            self.decisions += 1;
            let branch_mark = self.trail.len();
            self.assign(Lit {
                var: v,
                positive: value,
            });
            if self.dpll() {
                return true;
            }
            self.backtrack_to(branch_mark);
        }
        self.backtrack_to(mark);
        false
    }
}

/// One-shot convenience: solve `cnf`.
pub fn solve(cnf: &Cnf) -> SatResult {
    Solver::new(cnf).solve()
}

/// Brute-force satisfiability over all assignments (for cross-checking;
/// panics above 24 variables).
pub fn solve_brute_force(cnf: &Cnf) -> SatResult {
    assert!(cnf.num_vars <= 24, "brute force limited to 24 variables");
    for bits in 0u64..(1u64 << cnf.num_vars) {
        let assignment: Vec<bool> = (0..cnf.num_vars).map(|v| bits >> v & 1 == 1).collect();
        if cnf.eval(&assignment) {
            return SatResult::Sat(assignment);
        }
    }
    SatResult::Unsat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Cnf;

    #[test]
    fn simple_sat() {
        let f = Cnf::from_clauses(2, &[&[(0, true), (1, true)], &[(0, false), (1, true)]]);
        let SatResult::Sat(m) = solve(&f) else {
            panic!("should be sat");
        };
        assert!(f.eval(&m));
    }

    #[test]
    fn simple_unsat() {
        let f = Cnf::from_clauses(1, &[&[(0, true)], &[(0, false)]]);
        assert_eq!(solve(&f), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_2_into_1_unsat() {
        // p1 ∨ p2 forced each pigeon into hole 1; both can't share.
        // Variables: x_ij = pigeon i in hole j, 2 pigeons 1 hole.
        let f = Cnf::from_clauses(2, &[&[(0, true)], &[(1, true)], &[(0, false), (1, false)]]);
        assert_eq!(solve(&f), SatResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let f = Cnf::new(3);
        assert!(solve(&f).is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut f = Cnf::new(1);
        f.add_clause(vec![]);
        assert_eq!(solve(&f), SatResult::Unsat);
    }

    #[test]
    fn agrees_with_brute_force_on_small_formulas() {
        // Deterministic pseudo-random small formulas.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..60 {
            let nv = 3 + (next() % 4) as usize;
            let nc = 2 + (next() % 8) as usize;
            let mut f = Cnf::new(nv);
            for _ in 0..nc {
                let len = 1 + (next() % 3) as usize;
                let clause: Vec<_> = (0..len)
                    .map(|_| Lit {
                        var: Var((next() % nv as u64) as u32),
                        positive: next() % 2 == 0,
                    })
                    .collect();
                f.add_clause(clause);
            }
            assert_eq!(
                solve(&f).is_sat(),
                solve_brute_force(&f).is_sat(),
                "formula {f:?}"
            );
        }
    }
}
