//! Random CNF generation (self-contained xorshift; no external RNG needed).

use crate::cnf::{Cnf, Lit, Var};

/// A tiny deterministic xorshift64* generator, sufficient for workload
/// generation and fully reproducible across platforms.
#[derive(Clone, Debug)]
pub struct XorShift(u64);

impl XorShift {
    /// Seeds the generator (zero is remapped).
    pub fn new(seed: u64) -> Self {
        XorShift(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `0..n` (n > 0), bias-free.
    ///
    /// Plain `next_u64() % n` over-weights the low residues whenever `n`
    /// does not divide `2^64` (by at most one part in `2^64 / n`, tiny but
    /// real). Rejection sampling inside the largest multiple-of-`n` zone
    /// makes every residue exactly equally likely; the retry probability is
    /// below `n / 2^64`, so the loop is effectively a single draw.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        let n = n as u64;
        let zone = (u64::MAX / n) * n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n) as usize;
            }
        }
    }

    /// Uniform boolean.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Generates a random k-CNF with `num_clauses` clauses of width `k` over
/// `num_vars` variables (distinct variables within each clause).
pub fn random_kcnf(seed: u64, num_vars: usize, num_clauses: usize, k: usize) -> Cnf {
    assert!(k <= num_vars, "clause width exceeds variable count");
    let mut rng = XorShift::new(seed);
    let mut f = Cnf::new(num_vars);
    for _ in 0..num_clauses {
        let mut vars: Vec<usize> = Vec::with_capacity(k);
        while vars.len() < k {
            let v = rng.below(num_vars);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        f.add_clause(
            vars.into_iter()
                .map(|v| Lit {
                    var: Var(v as u32),
                    positive: rng.flip(),
                })
                .collect(),
        );
    }
    f
}

/// Generates a random formula already in the paper's restricted form:
/// clause width 2–3, each variable at most twice positive and once negative.
///
/// Works by drawing from a budget pool: each variable contributes two
/// positive tokens and one negative token; clauses consume tokens.
pub fn random_restricted(seed: u64, num_vars: usize, num_clauses: usize) -> Cnf {
    let mut rng = XorShift::new(seed);
    let mut pos_budget = vec![2u8; num_vars];
    let mut neg_budget = vec![1u8; num_vars];
    let mut f = Cnf::new(num_vars);
    for _ in 0..num_clauses {
        let width = 2 + rng.below(2);
        let mut clause: Vec<Lit> = Vec::with_capacity(width);
        let mut tries = 0;
        while clause.len() < width && tries < 100 {
            tries += 1;
            let v = rng.below(num_vars);
            if clause.iter().any(|l| l.var.idx() == v) {
                continue;
            }
            let want_pos = rng.flip();
            if want_pos && pos_budget[v] > 0 {
                pos_budget[v] -= 1;
                clause.push(Lit::pos(Var(v as u32)));
            } else if !want_pos && neg_budget[v] > 0 {
                neg_budget[v] -= 1;
                clause.push(Lit::neg(Var(v as u32)));
            }
        }
        if clause.len() >= 2 {
            f.add_clause(clause);
        }
    }
    debug_assert!(f.is_restricted_form());
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kcnf_shape() {
        let f = random_kcnf(7, 10, 20, 3);
        assert_eq!(f.num_vars, 10);
        assert_eq!(f.clauses.len(), 20);
        for c in &f.clauses {
            assert_eq!(c.len(), 3);
            let mut vars: Vec<_> = c.iter().map(|l| l.var).collect();
            vars.sort();
            vars.dedup();
            assert_eq!(vars.len(), 3, "distinct variables per clause");
        }
    }

    #[test]
    fn restricted_generator_respects_budgets() {
        for seed in 0..20 {
            let f = random_restricted(seed, 12, 10);
            assert!(f.is_restricted_form(), "seed {seed}: {f:?}");
        }
    }

    #[test]
    fn determinism() {
        assert_eq!(random_kcnf(5, 8, 10, 3), random_kcnf(5, 8, 10, 3));
        assert_ne!(random_kcnf(5, 8, 10, 3), random_kcnf(6, 8, 10, 3));
    }
}
