//! Cycle detection and (capped) simple-cycle enumeration.
//!
//! Proposition 2 requires, for every directed cycle of the transaction
//! conflict graph G, checking that a derived union graph has a cycle; we
//! enumerate simple cycles with Johnson's algorithm, capped to keep the
//! (inherently exponential) search bounded.

use crate::digraph::DiGraph;
use std::collections::HashSet;

/// Finds one directed cycle if any exists, as a node sequence
/// `v0, v1, ..., vk` with edges `v0->v1->...->vk->v0`.
pub fn find_cycle(g: &DiGraph) -> Option<Vec<usize>> {
    let n = g.node_count();
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; n];
    let mut parent = vec![usize::MAX; n];
    for root in 0..n {
        if color[root] != Color::White {
            continue;
        }
        // Iterative DFS with explicit frames.
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        color[root] = Color::Gray;
        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            if *pos < g.successors(v).len() {
                let w = g.successors(v)[*pos];
                *pos += 1;
                match color[w] {
                    Color::White => {
                        color[w] = Color::Gray;
                        parent[w] = v;
                        frames.push((w, 0));
                    }
                    Color::Gray => {
                        // Found a back edge v -> w: reconstruct w ... v.
                        let mut cycle = vec![v];
                        let mut cur = v;
                        while cur != w {
                            cur = parent[cur];
                            cycle.push(cur);
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    Color::Black => {}
                }
            } else {
                color[v] = Color::Black;
                frames.pop();
            }
        }
    }
    None
}

/// True iff `g` contains a directed cycle (self-loops count).
pub fn has_cycle(g: &DiGraph) -> bool {
    find_cycle(g).is_some()
}

/// Enumerates simple directed cycles (as node sequences, smallest node
/// first), stopping after `cap` cycles. Returns `(cycles, exhaustive)`.
///
/// Straightforward DFS-based enumeration rooted at each node, visiting only
/// nodes `>= root` so every cycle is reported exactly once from its minimal
/// node. Self-loops are reported as single-node cycles.
pub fn simple_cycles(g: &DiGraph, cap: usize) -> (Vec<Vec<usize>>, bool) {
    let n = g.node_count();
    let mut out: Vec<Vec<usize>> = Vec::new();
    let mut exhaustive = true;

    'roots: for root in 0..n {
        // DFS path enumeration from root back to root, over nodes >= root.
        let mut path: Vec<usize> = vec![root];
        let mut on_path: HashSet<usize> = HashSet::from([root]);
        let mut iters: Vec<usize> = vec![0];
        while !path.is_empty() {
            let v = *path.last().unwrap();
            let i = *iters.last().unwrap();
            if i < g.successors(v).len() {
                *iters.last_mut().unwrap() += 1;
                let w = g.successors(v)[i];
                if w == root {
                    out.push(path.clone());
                    if out.len() >= cap {
                        exhaustive = false;
                        break 'roots;
                    }
                } else if w > root && !on_path.contains(&w) {
                    path.push(w);
                    on_path.insert(w);
                    iters.push(0);
                }
            } else {
                on_path.remove(&v);
                path.pop();
                iters.pop();
            }
        }
    }
    (out, exhaustive)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_is_cycle(g: &DiGraph, c: &[usize]) {
        for i in 0..c.len() {
            let u = c[i];
            let v = c[(i + 1) % c.len()];
            assert!(g.has_edge(u, v), "missing edge {u}->{v} in cycle {c:?}");
        }
    }

    #[test]
    fn finds_a_cycle() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 1), (2, 3)]);
        let c = find_cycle(&g).unwrap();
        check_is_cycle(&g, &c);
        assert!(has_cycle(&g));
    }

    #[test]
    fn dag_has_no_cycle() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (0, 3)]);
        assert!(find_cycle(&g).is_none());
        let (cycles, exhaustive) = simple_cycles(&g, 100);
        assert!(cycles.is_empty() && exhaustive);
    }

    #[test]
    fn enumerates_all_cycles_of_k3() {
        // Complete digraph on 3 nodes: 3 two-cycles + 2 three-cycles.
        let mut g = DiGraph::new(3);
        for u in 0..3 {
            for v in 0..3 {
                if u != v {
                    g.add_edge(u, v);
                }
            }
        }
        let (cycles, exhaustive) = simple_cycles(&g, 1000);
        assert!(exhaustive);
        assert_eq!(cycles.len(), 5);
        for c in &cycles {
            check_is_cycle(&g, c);
        }
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 0);
        assert!(has_cycle(&g));
        let (cycles, _) = simple_cycles(&g, 10);
        assert_eq!(cycles, vec![vec![0]]);
    }

    #[test]
    fn cap_is_respected() {
        let mut g = DiGraph::new(4);
        for u in 0..4 {
            for v in 0..4 {
                if u != v {
                    g.add_edge(u, v);
                }
            }
        }
        let (cycles, exhaustive) = simple_cycles(&g, 3);
        assert_eq!(cycles.len(), 3);
        assert!(!exhaustive);
    }
}
