//! Reachability and transitive closure.

use crate::bitset::BitSet;
use crate::digraph::DiGraph;

/// Set of nodes reachable from `start` (including `start`).
pub fn reachable_from(g: &DiGraph, start: usize) -> BitSet {
    let mut seen = BitSet::new(g.node_count());
    let mut stack = vec![start];
    seen.insert(start);
    while let Some(v) = stack.pop() {
        for &w in g.successors(v) {
            if seen.insert(w) {
                stack.push(w);
            }
        }
    }
    seen
}

/// Full transitive closure as one reachability row per node
/// (`closure[v].contains(w)` iff there is a path `v -> ... -> w`, `v != w`
/// included only via a real path; `v` itself is included).
///
/// O(V·E/64) via bitset row unions over a reverse post-order; falls back to
/// per-node DFS on cyclic graphs.
pub fn transitive_closure(g: &DiGraph) -> Vec<BitSet> {
    let n = g.node_count();
    if let Some(order) = crate::topo::topo_sort(g) {
        // DAG: process in reverse topological order, union successor rows.
        let mut rows: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for &v in order.iter().rev() {
            let mut row = BitSet::new(n);
            row.insert(v);
            for &w in g.successors(v) {
                row.union_with(&rows[w]);
            }
            rows[v] = row;
        }
        rows
    } else {
        (0..n).map(|v| reachable_from(g, v)).collect()
    }
}

/// True iff there is a directed path from `a` to `b` (allows `a == b` only
/// when a cycle through `a` exists or trivially as self-reach).
pub fn has_path(g: &DiGraph, a: usize, b: usize) -> bool {
    reachable_from(g, a).contains(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachability_on_chain() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let r = reachable_from(&g, 1);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(has_path(&g, 0, 3));
        assert!(!has_path(&g, 3, 0));
    }

    #[test]
    fn closure_matches_per_node_dfs() {
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (0, 3), (3, 2), (2, 4)]);
        let tc = transitive_closure(&g);
        for (v, row) in tc.iter().enumerate() {
            let direct = reachable_from(&g, v);
            assert_eq!(*row, direct, "row {v}");
        }
    }

    #[test]
    fn closure_on_cyclic_graph() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 0), (1, 2)]);
        let tc = transitive_closure(&g);
        assert!(tc[0].contains(0) && tc[0].contains(1) && tc[0].contains(2));
        assert!(!tc[2].contains(0));
    }
}
