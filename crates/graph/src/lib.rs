//! Graph algorithms for the `kplock` workspace.
//!
//! This crate provides the graph-theoretic substrate used by the
//! reproduction of Kanellakis & Papadimitriou, *Is Distributed Locking
//! Harder?*: strongly connected components and condensations (Theorems 1
//! and 2 reduce safety to strong connectivity of the conflict digraph
//! `D(T1,T2)`), dominators in the paper's Definition-2 sense, priority
//! topological sorts (the certificate construction of Theorem 2), cycle
//! enumeration (Proposition 2) and dense bitsets/reachability (transitive
//! closures of transaction partial orders).
//!
//! # Example
//!
//! ```
//! use kplock_graph::{find_cycle, is_strongly_connected, tarjan_scc, DiGraph};
//!
//! // Two 2-cycles bridged one way: strongly connected components {0,1}
//! // and {2,3}, reachable 0→2 but not back.
//! let g = DiGraph::from_edges(4, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
//! assert!(!is_strongly_connected(&g));
//! assert_eq!(tarjan_scc(&g).count(), 2);
//! let cycle = find_cycle(&g).unwrap();
//! assert!(g.has_edge(cycle[cycle.len() - 1], cycle[0])); // closes up
//! ```

pub mod bitset;
pub mod condensation;
pub mod cycle;
pub mod digraph;
pub mod dominator;
pub mod reach;
pub mod scc;
pub mod topo;

pub use bitset::BitSet;
pub use condensation::{condensation, Condensation};
pub use cycle::{find_cycle, has_cycle, simple_cycles};
pub use digraph::DiGraph;
pub use dominator::{enumerate_dominators, find_dominator, is_dominator};
pub use reach::{has_path, reachable_from, transitive_closure};
pub use scc::{is_strongly_connected, tarjan_scc, Sccs};
pub use topo::{is_acyclic, is_topological_order, topo_sort, topo_sort_by_key};
