//! Condensation (component DAG) of a directed graph.

use crate::digraph::DiGraph;
use crate::scc::{tarjan_scc, Sccs};

/// The condensation of a graph: one node per SCC, edges between distinct
/// components, plus the original SCC assignment.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// Component DAG. Node `c` corresponds to `sccs.members[c]`.
    pub dag: DiGraph,
    /// The underlying SCC decomposition.
    pub sccs: Sccs,
}

/// Builds the condensation of `g`.
pub fn condensation(g: &DiGraph) -> Condensation {
    let sccs = tarjan_scc(g);
    let mut dag = DiGraph::new(sccs.count());
    for (u, v) in g.edges() {
        let (cu, cv) = (sccs.comp[u], sccs.comp[v]);
        if cu != cv {
            dag.add_edge(cu, cv);
        }
    }
    Condensation { dag, sccs }
}

impl Condensation {
    /// Component indices with no incoming edges ("source" components).
    pub fn source_components(&self) -> Vec<usize> {
        (0..self.dag.node_count())
            .filter(|&c| self.dag.predecessors(c).is_empty())
            .collect()
    }

    /// Component indices with no outgoing edges ("sink" components).
    pub fn sink_components(&self) -> Vec<usize> {
        (0..self.dag.node_count())
            .filter(|&c| self.dag.successors(c).is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condensation_of_two_cycles() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let c = condensation(&g);
        assert_eq!(c.dag.node_count(), 2);
        assert_eq!(c.dag.edge_count(), 1);
        let sources = c.source_components();
        assert_eq!(sources.len(), 1);
        let mut src_members = c.sccs.members[sources[0]].clone();
        src_members.sort();
        assert_eq!(src_members, vec![0, 1]);
        assert_eq!(c.sink_components().len(), 1);
    }

    #[test]
    fn strongly_connected_graph_has_single_component() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let c = condensation(&g);
        assert_eq!(c.dag.node_count(), 1);
        assert_eq!(c.dag.edge_count(), 0);
        assert_eq!(c.source_components(), vec![0]);
    }

    #[test]
    fn parallel_edges_collapse() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 0), (0, 2), (1, 2), (2, 3)]);
        let c = condensation(&g);
        // {0,1} -> {2} -> {3}: 3 components, 2 DAG edges.
        assert_eq!(c.dag.node_count(), 3);
        assert_eq!(c.dag.edge_count(), 2);
    }
}
