//! Dominators in the sense of Kanellakis & Papadimitriou (Definition 2).
//!
//! A *dominator* of a directed graph `D = (V, A)` is a nonempty **proper**
//! subset `X` of `V` with no incoming arcs from `V − X`. A directed graph has
//! a dominator iff it is not strongly connected. (This is unrelated to the
//! "dominator tree" of flow-graph analysis.)
//!
//! Structurally, `X` is a dominator iff it is a nonempty proper union of
//! strongly connected components that is closed under predecessors
//! ("ancestor-closed" in the condensation DAG).

use crate::bitset::BitSet;
use crate::condensation::{condensation, Condensation};
use crate::digraph::DiGraph;
use std::collections::{HashSet, VecDeque};

/// Checks Definition 2 directly: `x` is nonempty, proper, and has no
/// incoming arc from outside.
pub fn is_dominator(g: &DiGraph, x: &BitSet) -> bool {
    let n = g.node_count();
    let size = x.count();
    if size == 0 || size >= n {
        return false;
    }
    for v in x.iter() {
        for &u in g.predecessors(v) {
            if !x.contains(u) {
                return false;
            }
        }
    }
    true
}

/// Returns some dominator if one exists (i.e. iff `g` is not strongly
/// connected and has at least two nodes): the members of a source SCC.
pub fn find_dominator(g: &DiGraph) -> Option<BitSet> {
    let n = g.node_count();
    if n < 2 {
        return None;
    }
    let c = condensation(g);
    if c.dag.node_count() < 2 {
        return None;
    }
    let src = *c
        .source_components()
        .first()
        .expect("a DAG always has a source");
    Some(BitSet::from_indices(n, c.sccs.members[src].iter().copied()))
}

/// Enumerates all dominators of `g`, up to `cap` of them.
///
/// Dominators are exactly the nonempty proper predecessor-closed unions of
/// SCCs; there can be exponentially many, hence the cap. Returns the
/// dominators found (possibly truncated at `cap`) and whether the
/// enumeration was exhaustive.
pub fn enumerate_dominators(g: &DiGraph, cap: usize) -> (Vec<BitSet>, bool) {
    let n = g.node_count();
    let c: Condensation = condensation(g);
    let k = c.dag.node_count();
    if k < 2 || n < 2 {
        return (Vec::new(), true);
    }

    // BFS over predecessor-closed component sets (as BitSets over components).
    let mut seen: HashSet<BitSet> = HashSet::new();
    let mut out: Vec<BitSet> = Vec::new();
    let mut queue: VecDeque<BitSet> = VecDeque::new();
    queue.push_back(BitSet::new(k));
    seen.insert(BitSet::new(k));
    let mut exhaustive = true;

    while let Some(cur) = queue.pop_front() {
        // Try to extend `cur` by each component whose predecessors are all in.
        for comp in 0..k {
            if cur.contains(comp) {
                continue;
            }
            if !c.dag.predecessors(comp).iter().all(|&p| cur.contains(p)) {
                continue;
            }
            let mut next = cur.clone();
            next.insert(comp);
            if seen.contains(&next) {
                continue;
            }
            seen.insert(next.clone());
            // Record as dominator if nonempty (it is) and proper.
            if next.count() < k || k_total_nodes(&c, &next) < n {
                let nodes = comps_to_nodes(&c, &next, n);
                if nodes.count() < n {
                    out.push(nodes);
                    if out.len() >= cap {
                        exhaustive = false;
                        return (out, exhaustive);
                    }
                }
            }
            queue.push_back(next);
        }
    }
    (out, exhaustive)
}

fn comps_to_nodes(c: &Condensation, comps: &BitSet, n: usize) -> BitSet {
    BitSet::from_indices(
        n,
        comps
            .iter()
            .flat_map(|ci| c.sccs.members[ci].iter().copied()),
    )
}

fn k_total_nodes(c: &Condensation, comps: &BitSet) -> usize {
    comps.iter().map(|ci| c.sccs.members[ci].len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strongly_connected_has_no_dominator() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert!(find_dominator(&g).is_none());
        let (all, exhaustive) = enumerate_dominators(&g, 100);
        assert!(all.is_empty() && exhaustive);
    }

    #[test]
    fn chain_dominators() {
        // 0 -> 1 -> 2: dominators are {0}, {0,1}.
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        let d = find_dominator(&g).unwrap();
        assert!(is_dominator(&g, &d));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![0]);
        let (all, exhaustive) = enumerate_dominators(&g, 100);
        assert!(exhaustive);
        let mut sets: Vec<Vec<usize>> = all.iter().map(|b| b.iter().collect()).collect();
        sets.sort();
        assert_eq!(sets, vec![vec![0], vec![0, 1]]);
    }

    #[test]
    fn two_sources() {
        // 0 -> 2 <- 1: dominators {0},{1},{0,1}.
        let g = DiGraph::from_edges(3, [(0, 2), (1, 2)]);
        let (all, _) = enumerate_dominators(&g, 100);
        let mut sets: Vec<Vec<usize>> = all.iter().map(|b| b.iter().collect()).collect();
        sets.sort();
        assert_eq!(sets, vec![vec![0], vec![0, 1], vec![1]]);
        for d in &all {
            assert!(is_dominator(&g, d));
        }
    }

    #[test]
    fn scc_granularity() {
        // {0,1} cycle -> 2. Dominator must contain whole cycle: {0,1} only.
        let g = DiGraph::from_edges(3, [(0, 1), (1, 0), (1, 2)]);
        let (all, _) = enumerate_dominators(&g, 100);
        let mut sets: Vec<Vec<usize>> = all.iter().map(|b| b.iter().collect()).collect();
        sets.sort();
        assert_eq!(sets, vec![vec![0, 1]]);
    }

    #[test]
    fn is_dominator_rejects_improper_sets() {
        let g = DiGraph::from_edges(2, [(0, 1)]);
        assert!(!is_dominator(&g, &BitSet::new(2))); // empty
        assert!(!is_dominator(&g, &BitSet::from_indices(2, [0, 1]))); // not proper
        assert!(!is_dominator(&g, &BitSet::from_indices(2, [1]))); // incoming arc
        assert!(is_dominator(&g, &BitSet::from_indices(2, [0])));
    }

    #[test]
    fn has_dominator_iff_not_strongly_connected() {
        // Easy to check on small random-ish graphs.
        let cases: Vec<(usize, Vec<(usize, usize)>)> = vec![
            (4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]),
            (4, vec![(0, 1), (1, 2), (2, 3)]),
            (5, vec![(0, 1), (1, 0), (2, 3), (3, 4), (4, 2), (1, 2)]),
            (2, vec![]),
            (1, vec![]),
        ];
        for (n, edges) in cases {
            let g = DiGraph::from_edges(n, edges);
            let sc = crate::scc::is_strongly_connected(&g);
            assert_eq!(find_dominator(&g).is_none(), sc || n < 2, "n={n}");
        }
    }
}
