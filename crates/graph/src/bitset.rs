//! A dense, fixed-capacity bit set.
//!
//! Used throughout the workspace for transitive-closure rows, reachability
//! frontiers and dominator membership. Implemented here rather than pulled
//! from a crate so that the workspace stays within its offline dependency
//! set.

/// A fixed-capacity set of `usize` indices backed by `u64` words.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    /// Number of valid bits; indices `>= len` must never be set.
    len: usize,
}

impl BitSet {
    /// Creates an empty set with capacity for `len` elements.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Capacity (number of addressable indices).
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts `i`. Returns `true` if the bit was newly set.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "BitSet index {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `i`. Returns `true` if the bit was previously set.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "BitSet index {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union. Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place union; returns `true` if any new bit was added.
    pub fn union_with_changed(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// In-place intersection. Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// True if `self` and `other` share no element.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// True if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Iterates over set indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Builds a set with the given members.
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut s = BitSet::new(len);
        for i in indices {
            s.insert(i);
        }
        s
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices; capacity is 1 + the maximum index (0 if empty).
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let v: Vec<usize> = iter.into_iter().collect();
        let len = v.iter().max().map_or(0, |m| m + 1);
        BitSet::from_indices(len, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn iter_yields_sorted() {
        let s = BitSet::from_indices(200, [5, 199, 64, 63, 0]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 5, 63, 64, 199]);
    }

    #[test]
    fn union_intersection_subset() {
        let a = BitSet::from_indices(100, [1, 2, 3]);
        let b = BitSet::from_indices(100, [3, 4]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3]);
        assert!(i.is_subset(&a) && i.is_subset(&b));
        assert!(!a.is_subset(&b));
        let c = BitSet::from_indices(100, [7, 9]);
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn union_with_changed_reports() {
        let mut a = BitSet::from_indices(10, [1]);
        let b = BitSet::from_indices(10, [1, 2]);
        assert!(a.union_with_changed(&b));
        assert!(!a.union_with_changed(&b));
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(10));
        assert!(!s.contains(1000));
    }

    #[test]
    #[should_panic]
    fn out_of_range_insert_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::from_indices(10, [3]);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
    }
}
