//! A compact directed graph over `0..n` node indices.

use crate::bitset::BitSet;

/// Directed graph with adjacency lists and O(1) duplicate-edge detection.
#[derive(Clone, Debug, Default)]
pub struct DiGraph {
    succ: Vec<Vec<usize>>,
    pred: Vec<Vec<usize>>,
    /// `edge_set[u]` holds the successor set of `u` for O(1) `has_edge`.
    edge_set: Vec<BitSet>,
    edge_count: usize,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            succ: vec![Vec::new(); n],
            pred: vec![Vec::new(); n],
            edge_set: vec![BitSet::new(n); n],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.succ.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds edge `u -> v` (self-loops allowed); returns `true` if new.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        if self.edge_set[u].contains(v) {
            return false;
        }
        self.edge_set[u].insert(v);
        self.succ[u].push(v);
        self.pred[v].push(u);
        self.edge_count += 1;
        true
    }

    /// Edge membership.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.edge_set[u].contains(v)
    }

    /// Successors of `u`.
    pub fn successors(&self, u: usize) -> &[usize] {
        &self.succ[u]
    }

    /// Predecessors of `u`.
    pub fn predecessors(&self, u: usize) -> &[usize] {
        &self.pred[u]
    }

    /// All edges as `(u, v)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.succ
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v)))
    }

    /// Builds a graph from an edge list.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = DiGraph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// The reverse graph.
    pub fn reversed(&self) -> DiGraph {
        DiGraph::from_edges(self.node_count(), self.edges().map(|(u, v)| (v, u)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut g = DiGraph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(0, 1));
        assert!(g.add_edge(1, 2));
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.successors(0), &[1]);
        assert_eq!(g.predecessors(2), &[1]);
    }

    #[test]
    fn reverse() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        let r = g.reversed();
        assert!(r.has_edge(1, 0) && r.has_edge(2, 1));
        assert_eq!(r.edge_count(), 2);
    }

    #[test]
    fn self_loop() {
        let mut g = DiGraph::new(1);
        assert!(g.add_edge(0, 0));
        assert!(g.has_edge(0, 0));
    }

    #[test]
    fn edges_iterator() {
        let g = DiGraph::from_edges(4, [(0, 1), (2, 3), (0, 2)]);
        let mut es: Vec<_> = g.edges().collect();
        es.sort();
        assert_eq!(es, vec![(0, 1), (0, 2), (2, 3)]);
    }
}
