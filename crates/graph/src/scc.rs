//! Strongly connected components (iterative Tarjan).

use crate::digraph::DiGraph;

/// Result of an SCC computation.
#[derive(Clone, Debug)]
pub struct Sccs {
    /// `comp[v]` is the component index of node `v`.
    /// Components are numbered in *reverse topological order* of the
    /// condensation (Tarjan property): if there is an edge from component
    /// `a` to component `b` with `a != b`, then `comp` value of `a` is
    /// **greater** than that of `b`.
    pub comp: Vec<usize>,
    /// Members of each component.
    pub members: Vec<Vec<usize>>,
}

impl Sccs {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.members.len()
    }
}

/// Computes strongly connected components with an iterative Tarjan.
pub fn tarjan_scc(g: &DiGraph) -> Sccs {
    let n = g.node_count();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![UNVISITED; n];
    let mut members: Vec<Vec<usize>> = Vec::new();
    let mut next_index = 0usize;

    // Explicit DFS frames: (node, next-successor position).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            if *pos < g.successors(v).len() {
                let w = g.successors(v)[*pos];
                *pos += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let cid = members.len();
                    let mut group = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp[w] = cid;
                        group.push(w);
                        if w == v {
                            break;
                        }
                    }
                    members.push(group);
                }
            }
        }
    }
    Sccs { comp, members }
}

/// True iff the graph is strongly connected.
///
/// Convention matching the paper: graphs with zero or one node are strongly
/// connected (a single entity cannot be separated from anything).
pub fn is_strongly_connected(g: &DiGraph) -> bool {
    g.node_count() <= 1 || tarjan_scc(g).count() == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_is_one_scc() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let s = tarjan_scc(&g);
        assert_eq!(s.count(), 1);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn chain_is_n_sccs() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        let s = tarjan_scc(&g);
        assert_eq!(s.count(), 3);
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn reverse_topological_numbering() {
        // 0 -> 1 -> 2 with components {0},{1},{2}: comp[2] < comp[1] < comp[0].
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        let s = tarjan_scc(&g);
        assert!(s.comp[2] < s.comp[1]);
        assert!(s.comp[1] < s.comp[0]);
    }

    #[test]
    fn two_cycles_bridge() {
        // {0,1} -> {2,3}
        let g = DiGraph::from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let s = tarjan_scc(&g);
        assert_eq!(s.count(), 2);
        assert_eq!(s.comp[0], s.comp[1]);
        assert_eq!(s.comp[2], s.comp[3]);
        assert_ne!(s.comp[0], s.comp[2]);
        // Edge goes from comp of 0/1 to comp of 2/3 => comp[0] > comp[2].
        assert!(s.comp[0] > s.comp[2]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(is_strongly_connected(&DiGraph::new(0)));
        assert!(is_strongly_connected(&DiGraph::new(1)));
        assert!(!is_strongly_connected(&DiGraph::new(2)));
    }

    #[test]
    fn deep_graph_no_stack_overflow() {
        // A long chain exercises the iterative DFS.
        let n = 200_000;
        let g = DiGraph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)));
        let s = tarjan_scc(&g);
        assert_eq!(s.count(), n);
    }
}
