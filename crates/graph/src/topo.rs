//! Topological sorting with tie-breaking priorities.
//!
//! The certificate construction in Theorem 2 needs topological sorts that
//! emit certain steps "as early as possible" (and tie-break among them with a
//! secondary key), so the public entry point takes a priority function: among
//! all currently available nodes the one with the **smallest** key is emitted
//! next.

use crate::digraph::DiGraph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Topologically sorts `g`, always emitting the available node with the
/// smallest `key(node)`. Returns `None` if `g` has a cycle.
pub fn topo_sort_by_key<K: Ord>(
    g: &DiGraph,
    mut key: impl FnMut(usize) -> K,
) -> Option<Vec<usize>> {
    let n = g.node_count();
    let mut indeg: Vec<usize> = (0..n).map(|v| g.predecessors(v).len()).collect();
    let mut heap: BinaryHeap<Reverse<(K, usize)>> = BinaryHeap::new();
    for (v, &d) in indeg.iter().enumerate() {
        if d == 0 {
            heap.push(Reverse((key(v), v)));
        }
    }
    let mut order = Vec::with_capacity(n);
    while let Some(Reverse((_, v))) = heap.pop() {
        order.push(v);
        for &w in g.successors(v) {
            indeg[w] -= 1;
            if indeg[w] == 0 {
                heap.push(Reverse((key(w), w)));
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Plain topological sort (node index as tie-break). `None` on cycles.
pub fn topo_sort(g: &DiGraph) -> Option<Vec<usize>> {
    topo_sort_by_key(g, |v| v)
}

/// True iff `g` is acyclic.
pub fn is_acyclic(g: &DiGraph) -> bool {
    topo_sort(g).is_some()
}

/// Checks that `order` is a permutation of `0..n` consistent with all edges.
pub fn is_topological_order(g: &DiGraph, order: &[usize]) -> bool {
    let n = g.node_count();
    if order.len() != n {
        return false;
    }
    let mut pos = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        if v >= n || pos[v] != usize::MAX {
            return false;
        }
        pos[v] = i;
    }
    g.edges().all(|(u, v)| pos[u] < pos[v])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_a_dag() {
        let g = DiGraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let o = topo_sort(&g).unwrap();
        assert!(is_topological_order(&g, &o));
    }

    #[test]
    fn detects_cycle() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert!(topo_sort(&g).is_none());
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn priority_prefers_small_keys() {
        // 0 and 1 both available; key makes 1 come first.
        let g = DiGraph::from_edges(3, [(0, 2), (1, 2)]);
        let o = topo_sort_by_key(&g, |v| if v == 1 { 0 } else { 1 }).unwrap();
        assert_eq!(o[0], 1);
        assert!(is_topological_order(&g, &o));
    }

    #[test]
    fn early_emission_of_flagged_nodes() {
        // Chain 0->1, node 2 free and flagged: should be emitted first.
        let g = DiGraph::from_edges(3, [(0, 1)]);
        let flagged = [false, false, true];
        let o = topo_sort_by_key(&g, |v| (!flagged[v], v)).unwrap();
        assert_eq!(o[0], 2);
    }

    #[test]
    fn rejects_bad_orders() {
        let g = DiGraph::from_edges(2, [(0, 1)]);
        assert!(!is_topological_order(&g, &[1, 0]));
        assert!(!is_topological_order(&g, &[0]));
        assert!(!is_topological_order(&g, &[0, 0]));
        assert!(is_topological_order(&g, &[0, 1]));
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new(0);
        assert_eq!(topo_sort(&g).unwrap(), Vec::<usize>::new());
    }
}
