//! Execution history capture and serializability audit.

use crate::event::{Instance, SimTime};
use kplock_model::{is_serializable, ModelError, Schedule, ScheduledStep, StepId, TxnSystem};

/// One applied step, as observed at its site.
#[derive(Clone, Copy, Debug)]
pub struct HistoryEvent {
    /// When the site applied it.
    pub time: SimTime,
    /// Global tie-break sequence (application order).
    pub seq: u64,
    /// Which instance executed it.
    pub inst: Instance,
    /// The step.
    pub step: StepId,
}

/// The full execution history of a run.
#[derive(Clone, Debug, Default)]
pub struct History {
    events: Vec<HistoryEvent>,
    next_seq: u64,
}

impl History {
    /// Records an applied step.
    pub fn record(&mut self, time: SimTime, inst: Instance, step: StepId) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(HistoryEvent {
            time,
            seq,
            inst,
            step,
        });
    }

    /// All events in application order.
    pub fn events(&self) -> &[HistoryEvent] {
        &self.events
    }

    /// Projects the history onto the committed epochs: only events of
    /// `(txn, committed_epoch[txn])` are kept (aborted attempts are undone
    /// by the lock manager and carry no data flow). A transaction that
    /// never committed is `None` and contributes *nothing* — previously
    /// callers passed a sentinel epoch for unfinished transactions, and a
    /// phantom epoch that happened to match recorded events would have
    /// participated in the audit. Returns a [`Schedule`] in application
    /// order.
    pub fn committed_schedule(&self, committed_epoch: &[Option<u32>]) -> Schedule {
        let mut evs: Vec<&HistoryEvent> = self
            .events
            .iter()
            .filter(|e| committed_epoch[e.inst.txn.idx()] == Some(e.inst.epoch))
            .collect();
        evs.sort_by_key(|e| (e.time, e.seq));
        Schedule::new(
            evs.into_iter()
                .map(|e| ScheduledStep {
                    txn: e.inst.txn,
                    step: e.step,
                })
                .collect(),
        )
    }
}

/// Result of auditing a run's committed schedule against the model.
#[derive(Clone, Debug)]
pub struct Audit {
    /// The committed schedule.
    pub schedule: Schedule,
    /// Whether it is legal and complete for the system.
    pub legal: Result<(), ModelError>,
    /// Whether it is conflict-serializable.
    pub serializable: bool,
}

/// Audits the committed schedule of a run. `committed_epoch[t]` is the
/// epoch at which transaction `t` committed, or `None` if it never did —
/// unfinished transactions are skipped explicitly rather than smuggled in
/// under a sentinel epoch.
pub fn audit(sys: &TxnSystem, history: &History, committed_epoch: &[Option<u32>]) -> Audit {
    let schedule = history.committed_schedule(committed_epoch);
    let legal = schedule.validate_complete(sys);
    let serializable = is_serializable(sys, &schedule);
    Audit {
        schedule,
        legal,
        serializable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_model::TxnId;

    #[test]
    fn committed_projection_filters_epochs() {
        let mut h = History::new_for_test();
        h.record(
            1,
            Instance {
                txn: TxnId(0),
                epoch: 0,
            },
            StepId(0),
        );
        h.record(
            2,
            Instance {
                txn: TxnId(0),
                epoch: 1,
            },
            StepId(0),
        );
        h.record(
            3,
            Instance {
                txn: TxnId(1),
                epoch: 0,
            },
            StepId(0),
        );
        let s = h.committed_schedule(&[Some(1), Some(0)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.steps()[0].txn, TxnId(0));
        assert_eq!(s.steps()[1].txn, TxnId(1));
        // An unfinished transaction contributes nothing — even though it
        // recorded events at epochs 0 and 1, no phantom epoch matches.
        let s = h.committed_schedule(&[None, Some(0)]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.steps()[0].txn, TxnId(1));
    }

    impl History {
        fn new_for_test() -> History {
            History::default()
        }
    }
}
