//! Distributed probe-based deadlock detection (Chandy–Misra–Haas
//! edge-chasing).
//!
//! Under [`crate::DeadlockDetection::Probe`] no process ever sees a global
//! wait-for graph. Each site knows exactly the wait-for edges its own lock
//! table induces ([`crate::SiteTable::waits_of`]), and deadlocks are found
//! by *probe* messages chasing those edges across the latency-modelled
//! network:
//!
//! 1. **Initiation.** Whenever an entity's local wait-edge set changes
//!    (a request blocks, a release retargets the remaining waiters onto a
//!    new holder, an abort cancels waits), the site diffs the new edge set
//!    against what it last saw ([`SiteProbeState`]) and launches one probe
//!    per *newly appeared* edge `(w, h)`: `path = [w, h]`, initiator `w`.
//! 2. **Forwarding.** A probe examining instance `t` must reach the sites
//!    where `t` might be blocked. Sites know the static catalog — which
//!    entities a transaction locks and where they live
//!    ([`kplock_model::Database::site_of`]) — so the probe is forwarded to
//!    every site hosting an entity of `t`'s lock set. The receiving site
//!    consults only its local table: for each local edge `t → h'` it
//!    extends the path and forwards again.
//! 3. **Detection.** When a local edge points back at the probe's
//!    initiator, the path is a wait-for cycle assembled purely from
//!    site-local observations. The closing site picks the victim from the
//!    path (same [`crate::VictimPolicy`] as the centralized schemes, using
//!    the birth timestamps carried in the probe) and sends an abort
//!    message to the victim's coordinator.
//! 4. **Termination.** A probe is dropped when its target instance is
//!    stale (the epoch in the probe no longer matches), or when the next
//!    hop is already on the path (a cycle not through the initiator: the
//!    member whose edge completed *that* cycle chases it with its own
//!    probe). Paths grow strictly, so every chase ends within
//!    `#transactions` hops.
//!
//! Compared with the global-view schemes this buys honesty at a price the
//! metrics now expose: [`crate::Metrics::probe_messages`] counts the extra
//! network traffic, and [`crate::Metrics::detection_latency_ticks`] the
//! ticks between a cycle-closing edge appearing and the victim's abort —
//! one network hop per cycle edge, instead of zero (`OnBlock`) or a scan
//! interval (`Periodic`).
//!
//! The guarantees mirror Chandy–Misra–Haas: under two-phase workloads
//! (no lock released while any lock request is pending) every cycle's
//! final edge launches a probe that closes, and every closed path was a
//! genuine cycle. Non-two-phase workloads can release locks while blocked
//! elsewhere, so — exactly like the periodic scan reading transient table
//! state — a probe can report a *phantom* cycle whose edges never
//! coexisted; victims are validated against instance epochs before the
//! abort executes to keep over-aborts to cycles that were real when
//! observed.

use crate::config::VictimPolicy;
use crate::event::{Instance, SimTime};
use kplock_model::EntityId;
use std::collections::HashMap;

/// Timing facts about one instance, piggybacked on probes the way real
/// edge-chasing protocols carry priorities, so the cycle-closing site can
/// apply the victim policy without consulting any central state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stamp {
    /// When the instance last (re)started.
    pub started_at: SimTime,
    /// Original start `(time, txn_index)`; survives restarts (the
    /// Rosenkrantz–Stearns–Lewis age that keeps oldest-victim live).
    pub birth: (SimTime, usize),
}

/// A Chandy–Misra–Haas probe in flight between sites.
///
/// `path[0]` is the initiator (the waiter whose new edge launched the
/// probe); `path.last()` is the instance whose local wait-edges the
/// receiving site must examine. Instances on the path are distinct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProbeMsg {
    /// The wait-for chain assembled so far, initiator first.
    pub path: Vec<Instance>,
    /// One [`Stamp`] per path member, for victim selection at the close.
    pub stamps: Vec<Stamp>,
    /// The latest appearance tick among the wait-edges traversed so far
    /// (each site timestamps its own edges in [`SiteProbeState`]; every
    /// hop maxes the traversed edge's tick in). A cycle cannot predate
    /// its last-formed edge, so if this probe closes, this is the cycle's
    /// formation time — detection latency is measured from here. Without
    /// the running maximum, an earlier-launched probe that closed a cycle
    /// in flight attributed the whole cycle to its own (earlier) launch
    /// tick and overcounted.
    pub formed_at: SimTime,
}

impl ProbeMsg {
    /// The initiator: the waiter this probe is chasing a cycle back to.
    pub fn initiator(&self) -> Instance {
        self.path[0]
    }

    /// The instance whose local wait-edges the receiver examines.
    pub fn target(&self) -> Instance {
        *self.path.last().expect("probe path is never empty")
    }

    /// Extends the chase by one hop over an edge that appeared at
    /// `edge_appeared`, keeping [`ProbeMsg::formed_at`] the maximum over
    /// the path's edges.
    pub fn extend(&self, next: Instance, stamp: Stamp, edge_appeared: SimTime) -> ProbeMsg {
        let mut path = self.path.clone();
        path.push(next);
        let mut stamps = self.stamps.clone();
        stamps.push(stamp);
        ProbeMsg {
            path,
            stamps,
            formed_at: self.formed_at.max(edge_appeared),
        }
    }
}

/// Applies a [`VictimPolicy`] to a cycle's members. Pure and
/// rotation-invariant: every site closing the same cycle — whatever hop it
/// entered at — picks the same victim, so duplicate closes collapse onto
/// one abort. Shared by the probe path and the centralized detectors so
/// all three schemes kill identically.
///
/// # Panics
/// Panics if `members` is empty or the lengths differ.
pub fn choose_victim(policy: VictimPolicy, members: &[Instance], stamps: &[Stamp]) -> Instance {
    assert_eq!(members.len(), stamps.len(), "one stamp per member");
    let zipped = members.iter().copied().zip(stamps.iter().copied());
    match policy {
        VictimPolicy::Youngest => {
            zipped
                .max_by_key(|&(_, s)| (s.started_at, s.birth))
                .expect("cycle nonempty")
                .0
        }
        VictimPolicy::Oldest => {
            zipped
                .min_by_key(|&(_, s)| s.birth)
                .expect("cycle nonempty")
                .0
        }
    }
}

/// Per-site probe bookkeeping: the wait-edge sets this site last observed
/// for its own entities — each edge tagged with the tick it appeared — so
/// edge *appearances* (the probe triggers) and their timestamps (the
/// detection-latency anchors) come from local diffing, never from any
/// global view.
/// A live wait-edge `(waiter, holder)` with the tick it appeared.
type StampedEdge = ((Instance, Instance), SimTime);

#[derive(Clone, Debug, Default)]
pub struct SiteProbeState {
    known: HashMap<EntityId, Vec<StampedEdge>>,
}

impl SiteProbeState {
    /// Creates empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the recorded edge set for `e` with `edges` (the site's
    /// current `entity_waits_for(e)`, observed at tick `now`) and returns
    /// the edges that are new — each one launches a probe. Surviving edges
    /// keep their original appearance tick; new ones are stamped `now`.
    /// Removals need no probes: a vanished edge can only shrink the
    /// wait-for graph.
    pub fn observe(
        &mut self,
        e: EntityId,
        edges: Vec<(Instance, Instance)>,
        now: SimTime,
    ) -> Vec<(Instance, Instance)> {
        let old = self.known.remove(&e).unwrap_or_default();
        let fresh: Vec<(Instance, Instance)> = edges
            .iter()
            .copied()
            .filter(|edge| !old.iter().any(|&(oe, _)| oe == *edge))
            .collect();
        if !edges.is_empty() {
            let stamped = edges
                .into_iter()
                .map(|edge| {
                    let at = old
                        .iter()
                        .find(|&&(oe, _)| oe == edge)
                        .map_or(now, |&(_, t)| t);
                    (edge, at)
                })
                .collect();
            self.known.insert(e, stamped);
        }
        fresh
    }

    /// When the wait-edge `(w, h)` appeared at this site, if it is live:
    /// the earliest appearance tick over the entities inducing it (the
    /// wait has existed since the first of them). This is the site-local
    /// answer a probe needs to attribute a cycle to its last-formed edge.
    pub fn appeared_at(&self, w: Instance, h: Instance) -> Option<SimTime> {
        self.known
            .values()
            .flatten()
            .filter(|&&(edge, _)| edge == (w, h))
            .map(|&(_, t)| t)
            .min()
    }

    /// Forgets the recorded edge set for `e` alone, so the next
    /// [`SiteProbeState::observe`] reports every live edge as new again —
    /// re-launching their probes. The fault-injection engine calls this
    /// when a *retransmitted* blocked request arrives: the retry is
    /// evidence the waiter is still stuck, and any probe its edge
    /// launched may have been lost on the wire, so the edge must be
    /// re-chased (see ARCHITECTURE.md §7).
    pub fn forget(&mut self, e: EntityId) {
        self.known.remove(&e);
    }

    /// Forgets everything (a fresh run — or a site crash wiping the
    /// site's volatile state alongside its lock table).
    pub fn clear(&mut self) {
        self.known.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_model::TxnId;

    fn inst(t: u32) -> Instance {
        Instance {
            txn: TxnId(t),
            epoch: 0,
        }
    }

    fn stamp(started_at: SimTime, idx: usize) -> Stamp {
        Stamp {
            started_at,
            birth: (0, idx),
        }
    }

    #[test]
    fn probe_accessors_and_extension() {
        let p = ProbeMsg {
            path: vec![inst(0), inst(1)],
            stamps: vec![stamp(0, 0), stamp(5, 1)],
            formed_at: 42,
        };
        assert_eq!(p.initiator(), inst(0));
        assert_eq!(p.target(), inst(1));
        // Extending over an *older* edge keeps the later formation tick…
        let q = p.extend(inst(2), stamp(9, 2), 10);
        assert_eq!(q.target(), inst(2));
        assert_eq!(q.initiator(), inst(0));
        assert_eq!(q.formed_at, 42);
        assert_eq!(q.stamps.len(), 3);
        // …and a *younger* edge advances it: the cycle cannot predate its
        // last-formed edge.
        let r = p.extend(inst(2), stamp(9, 2), 55);
        assert_eq!(r.formed_at, 55);
        // The original is untouched (probes fan out).
        assert_eq!(p.path.len(), 2);
    }

    #[test]
    fn victim_choice_is_rotation_invariant() {
        let members = [inst(0), inst(1), inst(2)];
        let stamps = [stamp(10, 0), stamp(30, 1), stamp(20, 2)];
        let rotate = |k: usize| {
            let m: Vec<_> = (0..3).map(|i| members[(i + k) % 3]).collect();
            let s: Vec<_> = (0..3).map(|i| stamps[(i + k) % 3]).collect();
            (m, s)
        };
        for k in 0..3 {
            let (m, s) = rotate(k);
            assert_eq!(choose_victim(VictimPolicy::Youngest, &m, &s), inst(1));
            assert_eq!(choose_victim(VictimPolicy::Oldest, &m, &s), inst(0));
        }
    }

    #[test]
    fn oldest_uses_birth_not_restart_age() {
        // Instance 0 restarted recently (large started_at) but was born
        // *after* instance 1. Oldest kills by birth (the longest-running
        // transaction), Youngest by the latest restart — so they disagree
        // exactly when a victim has been restarted.
        let members = [inst(0), inst(1)];
        let stamps = [
            Stamp {
                started_at: 100,
                birth: (5, 0),
            },
            Stamp {
                started_at: 50,
                birth: (0, 1),
            },
        ];
        assert_eq!(
            choose_victim(VictimPolicy::Oldest, &members, &stamps),
            inst(1)
        );
        assert_eq!(
            choose_victim(VictimPolicy::Youngest, &members, &stamps),
            inst(0)
        );
    }

    #[test]
    fn observe_reports_only_new_edges() {
        let e = EntityId(0);
        let mut st = SiteProbeState::new();
        let new = st.observe(e, vec![(inst(1), inst(0))], 5);
        assert_eq!(new, vec![(inst(1), inst(0))]);
        // Same set again: nothing new.
        assert!(st.observe(e, vec![(inst(1), inst(0))], 7).is_empty());
        // One surviving edge, one new one: only the new one reported.
        let new = st.observe(e, vec![(inst(1), inst(0)), (inst(2), inst(0))], 9);
        assert_eq!(new, vec![(inst(2), inst(0))]);
        // Clearing an entity, then re-adding an old edge: it is new again
        // (the wait was re-established and must be re-chased).
        assert!(st.observe(e, vec![], 11).is_empty());
        let new = st.observe(e, vec![(inst(1), inst(0))], 13);
        assert_eq!(new, vec![(inst(1), inst(0))]);
    }

    #[test]
    fn observe_timestamps_survive_and_reset_with_their_edges() {
        let e = EntityId(0);
        let mut st = SiteProbeState::new();
        st.observe(e, vec![(inst(1), inst(0))], 5);
        assert_eq!(st.appeared_at(inst(1), inst(0)), Some(5));
        // A surviving edge keeps its original appearance tick across
        // re-observations…
        st.observe(e, vec![(inst(1), inst(0)), (inst(2), inst(0))], 9);
        assert_eq!(st.appeared_at(inst(1), inst(0)), Some(5));
        assert_eq!(st.appeared_at(inst(2), inst(0)), Some(9));
        // …a vanished edge forgets it…
        st.observe(e, vec![(inst(2), inst(0))], 11);
        assert_eq!(st.appeared_at(inst(1), inst(0)), None);
        // …and a re-established wait is a fresh edge with a fresh tick.
        st.observe(e, vec![(inst(1), inst(0)), (inst(2), inst(0))], 13);
        assert_eq!(st.appeared_at(inst(1), inst(0)), Some(13));
    }

    #[test]
    fn appeared_at_takes_the_earliest_inducing_entity() {
        // The same (waiter, holder) pair induced by two entities at
        // different ticks: the wait has existed since the first.
        let mut st = SiteProbeState::new();
        let (a, b) = (EntityId(0), EntityId(1));
        st.observe(a, vec![(inst(1), inst(0))], 20);
        st.observe(b, vec![(inst(1), inst(0))], 10);
        assert_eq!(st.appeared_at(inst(1), inst(0)), Some(10));
    }

    #[test]
    fn forget_makes_live_edges_new_again() {
        let (a, b) = (EntityId(0), EntityId(1));
        let mut st = SiteProbeState::new();
        st.observe(a, vec![(inst(1), inst(0))], 5);
        st.observe(b, vec![(inst(2), inst(0))], 6);
        // Re-observing the same edge is quiet…
        assert!(st.observe(a, vec![(inst(1), inst(0))], 7).is_empty());
        // …until the entity is forgotten: the edge re-chases with a fresh
        // appearance tick, and other entities are untouched.
        st.forget(a);
        let fresh = st.observe(a, vec![(inst(1), inst(0))], 9);
        assert_eq!(fresh, vec![(inst(1), inst(0))]);
        assert_eq!(st.appeared_at(inst(1), inst(0)), Some(9));
        assert!(st.observe(b, vec![(inst(2), inst(0))], 9).is_empty());
    }

    #[test]
    fn observe_tracks_entities_independently() {
        let mut st = SiteProbeState::new();
        let (a, b) = (EntityId(0), EntityId(1));
        st.observe(a, vec![(inst(1), inst(0))], 1);
        // The same owner pair on another entity is a distinct local edge.
        let new = st.observe(b, vec![(inst(1), inst(0))], 2);
        assert_eq!(new, vec![(inst(1), inst(0))]);
        st.clear();
        assert_eq!(st.observe(a, vec![(inst(1), inst(0))], 3).len(), 1);
        assert_eq!(st.appeared_at(inst(1), inst(0)), Some(3));
    }
}
