//! Simulation configuration.

/// Network latency model for coordinator ↔ site messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LatencyModel {
    /// Every message takes exactly this many ticks.
    Fixed(u64),
    /// Uniform in `[lo, hi]` (seeded, deterministic).
    Uniform(u64, u64),
}

impl LatencyModel {
    /// Draws a latency.
    pub fn sample(&self, rng: &mut impl rand::Rng) -> u64 {
        match *self {
            LatencyModel::Fixed(t) => t,
            LatencyModel::Uniform(lo, hi) => rng.gen_range(lo..=hi),
        }
    }
}

/// Which transaction to abort when a deadlock cycle is found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VictimPolicy {
    /// The most recently (re)started instance in the cycle.
    Youngest,
    /// The longest-running instance in the cycle.
    Oldest,
}

/// Full simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// RNG seed (drives latency sampling only; everything else is
    /// deterministic).
    pub seed: u64,
    /// Message latency model.
    pub latency: LatencyModel,
    /// Ticks a site spends applying a step.
    pub local_step_time: u64,
    /// Interval between global deadlock scans.
    pub deadlock_scan_interval: u64,
    /// Victim selection policy.
    pub victim_policy: VictimPolicy,
    /// Backoff before an aborted instance restarts.
    pub restart_backoff: u64,
    /// Hard cap on simulated time (guards against livelock).
    pub max_time: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xC0FFEE,
            latency: LatencyModel::Fixed(10),
            local_step_time: 1,
            deadlock_scan_interval: 50,
            victim_policy: VictimPolicy::Youngest,
            restart_backoff: 25,
            max_time: 10_000_000,
        }
    }
}
