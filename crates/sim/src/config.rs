//! Simulation configuration.

use crate::fault::{FaultPlan, FaultPlanError};
pub use kplock_core::AvoidPlan;
pub use kplock_dlm::PreventionScheme;
pub use kplock_dlm::{Bias, TableSpec};
use std::fmt;

/// Network latency model for coordinator ↔ site messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LatencyModel {
    /// Every message takes exactly this many ticks.
    Fixed(u64),
    /// Uniform in `[lo, hi]` (seeded, deterministic).
    Uniform(u64, u64),
}

impl LatencyModel {
    /// Draws a latency.
    ///
    /// Callers must validate the model first ([`SimConfig::validate`]):
    /// an empty `Uniform` range panics inside the RNG.
    pub fn sample(&self, rng: &mut impl rand::Rng) -> u64 {
        match *self {
            LatencyModel::Fixed(t) => t,
            LatencyModel::Uniform(lo, hi) => rng.gen_range(lo..=hi),
        }
    }
}

/// Delegated lock ownership ([`SimConfig::delegation`]): may a site hand
/// a coordinator a *cached grant*?
///
/// With delegation on, a site granting an uncontested lock also hands the
/// coordinator release authority under a [`kplock_dlm::Lease`]: the
/// coordinator's later re-acquires and releases of that entity are local
/// cache operations costing **zero messages**
/// ([`crate::Metrics::cache_hits`], [`crate::Metrics::messages_saved`]),
/// until another transaction demands the entity and the owning site sends
/// an epoch-validated revocation ([`crate::Metrics::revocations`]) that
/// drains the cache entry back. `Off` (the default) changes no message
/// flow and draws no randomness, so every fixed-seed pin stays
/// bit-identical — the same guarded-knob contract every other axis keeps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Delegation {
    /// Every acquire and release pays the round-trip to the owning site —
    /// the paper's model, and the engine's original behavior bit for bit.
    #[default]
    Off,
    /// Uncontested grants are delegated; re-acquires and releases of a
    /// cached entity are local until a conflicting request revokes it.
    On,
}

/// Which transaction to abort when a deadlock cycle is found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VictimPolicy {
    /// The most recently (re)started instance in the cycle.
    Youngest,
    /// The longest-running instance in the cycle.
    Oldest,
}

/// How the engine detects deadlocks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DeadlockDetection {
    /// The paper-era default: rebuild the global waits-for relation every
    /// [`SimConfig::deadlock_scan_interval`] ticks. A cycle can sit
    /// undetected for up to a full interval.
    #[default]
    Periodic,
    /// Incremental: a wait-for graph ([`kplock_dlm::WaitForGraph`]) is
    /// maintained per entity as requests block/grant/release, and checked
    /// exactly when a request blocks — deadlocks are resolved the instant
    /// they form, with no scan latency.
    ///
    /// Like `Periodic`, this consults a *global* view no real site could
    /// see; it models an idealized centralized detector.
    OnBlock,
    /// Distributed edge-chasing (Chandy–Misra–Haas): each site knows only
    /// its own wait-for edges, and deadlocks are found by probe messages
    /// forwarded site-to-site over the latency-modelled network (see
    /// [`crate::probe`]). No global wait-for graph exists anywhere on this
    /// path, so detection itself pays the distribution cost the paper asks
    /// about: probe messages, and a detection latency of one network hop
    /// per cycle edge.
    Probe,
}

/// How the engine deals with deadlocks — the resolution axis.
///
/// Every scheme so far *detected* cycles after the fact; the classic
/// alternative is timestamp-ordering *prevention* (Rosenkrantz, Stearns &
/// Lewis — see [`kplock_dlm::prevent`]), which refuses to let a cycle form
/// in the first place using only knowledge local to the lock table: no
/// wait-for graph, no scan, no probe traffic. The price is paid in
/// restarts instead of detection messages
/// ([`crate::Metrics::prevention_restarts`] vs
/// [`crate::Metrics::probe_messages`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeadlockResolution {
    /// Let wait-for cycles form and break them with the given detection
    /// scheme. `Detect(DeadlockDetection::Periodic)` is the default and
    /// reproduces the original engine bit for bit.
    Detect(DeadlockDetection),
    /// Never let a cycle form: decide at request time, from the
    /// coordinator's birth timestamp carried on the lock request, whether
    /// to wait, wound, or die.
    Prevent(PreventionScheme),
    /// Run the paper's static analysis at runtime: a pre-computed
    /// [`AvoidPlan`] (see [`SimConfig::avoid`]) certifies a subset of the
    /// declared transactions against a safe lock order, making wait-for
    /// cycles among them unreachable **without any runtime messages or
    /// restarts**; transactions outside the certified set fall back to
    /// wound-wait (certified transactions always win the tie, so no
    /// fallback transaction can ever make a certified one wait behind a
    /// cycle). Requires `avoid: Some(plan)` — validation rejects the
    /// combination of `Avoid` with an absent plan
    /// ([`ConfigError::AvoidWithoutPlan`]), which is also why open-loop
    /// arrival runs (no declared transaction set to analyze) cannot use
    /// this arm.
    Avoid,
}

impl Default for DeadlockResolution {
    fn default() -> Self {
        DeadlockResolution::Detect(DeadlockDetection::Periodic)
    }
}

impl From<DeadlockDetection> for DeadlockResolution {
    fn from(d: DeadlockDetection) -> Self {
        DeadlockResolution::Detect(d)
    }
}

impl From<PreventionScheme> for DeadlockResolution {
    fn from(p: PreventionScheme) -> Self {
        DeadlockResolution::Prevent(p)
    }
}

/// A [`SimConfig`] (or [`crate::ThreadedConfig`]) that cannot be run.
///
/// Returned by [`SimConfig::validate`] and the `run*` entry points, so a
/// bad configuration fails up front with a typed error instead of
/// panicking mid-run deep inside the RNG or livelocking the event loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `LatencyModel::Uniform(lo, hi)` with `lo > hi`: the range is empty,
    /// and sampling it would panic mid-run.
    EmptyLatencyRange {
        /// The (invalid) lower bound.
        lo: u64,
        /// The (invalid, smaller) upper bound.
        hi: u64,
    },
    /// `deadlock_scan_interval == 0` under [`DeadlockDetection::Periodic`]:
    /// the scan would reschedule itself at the current tick forever and
    /// the event loop would never advance.
    ZeroScanInterval,
    /// A sharded table with zero shards has nowhere to put any entity.
    ZeroShards,
    /// The fault plan is invalid (a rate outside `[0, 1]`, or a crash
    /// scheduled for a site the system does not have).
    BadFaultPlan(FaultPlanError),
    /// `resolution == Avoid` but no [`AvoidPlan`] was supplied
    /// ([`SimConfig::avoid`] is `None`). Avoidance analyzes the *declared*
    /// transaction set ahead of time; without a plan there is nothing to
    /// enforce — notably, open-loop arrival runs have no declared set and
    /// can never use this arm.
    AvoidWithoutPlan,
    /// The supplied [`AvoidPlan`] was synthesized from a different number
    /// of transactions than the system being run — its certificate says
    /// nothing about these transactions.
    AvoidPlanMismatch {
        /// Transactions the plan was synthesized from.
        plan_txns: usize,
        /// Transactions the system declares.
        system_txns: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::EmptyLatencyRange { lo, hi } => {
                write!(f, "empty latency range: Uniform({lo}, {hi}) with lo > hi")
            }
            ConfigError::ZeroScanInterval => {
                write!(
                    f,
                    "deadlock_scan_interval must be > 0 under periodic detection"
                )
            }
            ConfigError::ZeroShards => write!(f, "shard count must be > 0"),
            ConfigError::BadFaultPlan(e) => write!(f, "invalid fault plan: {e}"),
            ConfigError::AvoidWithoutPlan => write!(
                f,
                "resolution Avoid requires an AvoidPlan (SimConfig::avoid); \
                 open-loop runs have no declared transaction set to analyze"
            ),
            ConfigError::AvoidPlanMismatch {
                plan_txns,
                system_txns,
            } => write!(
                f,
                "avoid plan was synthesized from {plan_txns} transactions \
                 but the system declares {system_txns}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// RNG seed (drives latency sampling only; everything else is
    /// deterministic).
    pub seed: u64,
    /// Message latency model.
    pub latency: LatencyModel,
    /// Ticks a site spends applying a step.
    pub local_step_time: u64,
    /// Interval between global deadlock scans (unused under
    /// [`DeadlockDetection::OnBlock`], [`DeadlockDetection::Probe`] and
    /// every prevention scheme).
    pub deadlock_scan_interval: u64,
    /// How deadlocks are resolved: detected after the fact (with which
    /// scheme), or prevented by timestamp ordering.
    pub resolution: DeadlockResolution,
    /// Victim selection policy.
    pub victim_policy: VictimPolicy,
    /// Measurement-only (default `false`): cross-check every probe-ordered
    /// abort against the instantaneous union of site tables and count the
    /// misses in [`crate::Metrics::phantom_probe_aborts`]. The check is a
    /// god's-eye verification instrument for the test suite — the probe
    /// protocol itself never reads global state, audited or not.
    pub probe_audit: bool,
    /// Backoff before an aborted instance restarts.
    pub restart_backoff: u64,
    /// Hard cap on simulated time (guards against livelock).
    pub max_time: u64,
    /// Fault injection: seeded message loss/duplication/reordering and
    /// scheduled site crashes with lease-based recovery (see
    /// [`crate::fault`]). The default [`FaultPlan::none`] injects nothing
    /// and keeps the engine bit-identical to the fault-free path.
    pub faults: FaultPlan,
    /// Measurement-only (default `false`): after every event that can
    /// mutate a lock table (site events, coordinator events whose aborts
    /// release locks everywhere, deadlock scans, recoveries), assert
    /// every site table's structural invariants — full
    /// compatibility-matrix exclusion over the `IS`/`IX`/`S`/`SIX`/`X`
    /// lattice (pairwise-incompatible co-held modes such as `S`+`IX`,
    /// `SIX`+`SIX` or `X`+anything, not just `S`/`X` exclusion),
    /// upgraders hold with uncovered targets, no holder-and-waiter
    /// owners — the safety harness the fault-injection property tests
    /// run under. A violation is an engine bug and panics with the
    /// offending site and tick.
    pub invariant_audit: bool,
    /// Which lock-table implementation backs every site (see
    /// [`kplock_dlm::TableSpec`]). The default, [`TableSpec::Fifo`],
    /// reproduces the original engine bit for bit; [`TableSpec::Queue`]
    /// swaps in the arena-allocated queue table with its bias and
    /// cohort-handoff knobs (grant-order-equivalent when neutral).
    pub table: TableSpec,
    /// Delegated lock ownership (see [`Delegation`]): `Off` (the default)
    /// reproduces every existing run bit for bit; `On` lets sites hand
    /// coordinators cached grants whose re-acquires and releases are
    /// message-free until revoked.
    pub delegation: Delegation,
    /// The avoidance certificate, required (and only consulted) under
    /// [`DeadlockResolution::Avoid`]: synthesize one from the declared
    /// transaction set with [`AvoidPlan::synthesize`] (or
    /// `synthesize_restricted` to control the certified fraction). The
    /// run entry points additionally check the plan covers exactly the
    /// system's transactions ([`ConfigError::AvoidPlanMismatch`]).
    pub avoid: Option<AvoidPlan>,
}

impl SimConfig {
    /// The detection scheme in force, if deadlocks are detected at all
    /// (`None` under prevention — there is nothing to detect).
    pub fn detection(&self) -> Option<DeadlockDetection> {
        match self.resolution {
            DeadlockResolution::Detect(d) => Some(d),
            DeadlockResolution::Prevent(_) | DeadlockResolution::Avoid => None,
        }
    }

    /// The prevention scheme in force, if any. `None` under `Avoid`: the
    /// avoidance arm's wound-wait *fallback* is reported by
    /// [`SimConfig::admission_scheme`] instead, so code keying on "is
    /// this a pure prevention run" stays accurate.
    pub fn prevention(&self) -> Option<PreventionScheme> {
        match self.resolution {
            DeadlockResolution::Detect(_) | DeadlockResolution::Avoid => None,
            DeadlockResolution::Prevent(p) => Some(p),
        }
    }

    /// The scheme deciding lock admission at request time, if any:
    /// the configured scheme under `Prevent`, wound-wait under `Avoid`
    /// (the fallback discipline for uncertified transactions — certified
    /// ones are admitted with a priority that always wins), `None` under
    /// `Detect` (requests always wait; cycles are found later).
    pub fn admission_scheme(&self) -> Option<PreventionScheme> {
        match self.resolution {
            DeadlockResolution::Detect(_) => None,
            DeadlockResolution::Prevent(p) => Some(p),
            DeadlockResolution::Avoid => Some(PreventionScheme::WoundWait),
        }
    }

    /// The avoidance plan in force: `Some` iff the resolution is
    /// [`DeadlockResolution::Avoid`] *and* a plan was supplied.
    pub fn avoid_plan(&self) -> Option<&AvoidPlan> {
        match self.resolution {
            DeadlockResolution::Avoid => self.avoid.as_ref(),
            _ => None,
        }
    }

    /// Checks the configuration for values that would panic or hang a run.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let LatencyModel::Uniform(lo, hi) = self.latency {
            if lo > hi {
                return Err(ConfigError::EmptyLatencyRange { lo, hi });
            }
        }
        if self.detection() == Some(DeadlockDetection::Periodic) && self.deadlock_scan_interval == 0
        {
            return Err(ConfigError::ZeroScanInterval);
        }
        self.faults.validate().map_err(ConfigError::BadFaultPlan)?;
        if self.resolution == DeadlockResolution::Avoid && self.avoid.is_none() {
            return Err(ConfigError::AvoidWithoutPlan);
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xC0FFEE,
            latency: LatencyModel::Fixed(10),
            local_step_time: 1,
            deadlock_scan_interval: 50,
            resolution: DeadlockResolution::default(),
            victim_policy: VictimPolicy::Youngest,
            probe_audit: false,
            restart_backoff: 25,
            max_time: 10_000_000,
            faults: FaultPlan::none(),
            invariant_audit: false,
            table: TableSpec::default(),
            delegation: Delegation::default(),
            avoid: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        SimConfig::default().validate().unwrap();
    }

    #[test]
    fn empty_uniform_range_is_rejected() {
        let cfg = SimConfig {
            latency: LatencyModel::Uniform(20, 1),
            ..Default::default()
        };
        assert_eq!(
            cfg.validate().unwrap_err(),
            ConfigError::EmptyLatencyRange { lo: 20, hi: 1 }
        );
        // Degenerate-but-nonempty ranges are fine.
        let cfg = SimConfig {
            latency: LatencyModel::Uniform(5, 5),
            ..Default::default()
        };
        cfg.validate().unwrap();
    }

    #[test]
    fn zero_scan_interval_only_matters_for_periodic() {
        let cfg = SimConfig {
            deadlock_scan_interval: 0,
            ..Default::default()
        };
        assert_eq!(cfg.validate().unwrap_err(), ConfigError::ZeroScanInterval);
        let no_scan: [DeadlockResolution; 5] = [
            DeadlockDetection::OnBlock.into(),
            DeadlockDetection::Probe.into(),
            PreventionScheme::WoundWait.into(),
            PreventionScheme::WaitDie.into(),
            PreventionScheme::NoWait.into(),
        ];
        for resolution in no_scan {
            let cfg = SimConfig {
                deadlock_scan_interval: 0,
                resolution,
                ..Default::default()
            };
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn resolution_axis_projects_to_exactly_one_side() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.resolution, DeadlockResolution::default());
        assert_eq!(cfg.detection(), Some(DeadlockDetection::Periodic));
        assert_eq!(cfg.prevention(), None);
        let cfg = SimConfig {
            resolution: PreventionScheme::WoundWait.into(),
            ..Default::default()
        };
        assert_eq!(cfg.detection(), None);
        assert_eq!(cfg.prevention(), Some(PreventionScheme::WoundWait));
        assert_eq!(
            DeadlockResolution::from(DeadlockDetection::Probe),
            DeadlockResolution::Detect(DeadlockDetection::Probe)
        );
    }

    #[test]
    fn config_error_displays() {
        let e = ConfigError::EmptyLatencyRange { lo: 3, hi: 1 };
        assert!(e.to_string().contains("Uniform(3, 1)"));
        assert!(ConfigError::ZeroScanInterval.to_string().contains("scan"));
        assert!(ConfigError::ZeroShards.to_string().contains("shard"));
        let e = ConfigError::BadFaultPlan(FaultPlanError::RateOutOfRange { which: "loss" });
        assert!(e.to_string().contains("fault"));
        assert!(ConfigError::AvoidWithoutPlan.to_string().contains("Avoid"));
        let e = ConfigError::AvoidPlanMismatch {
            plan_txns: 2,
            system_txns: 5,
        };
        assert!(e.to_string().contains('2') && e.to_string().contains('5'));
    }

    #[test]
    fn avoid_without_plan_is_rejected() {
        let cfg = SimConfig {
            resolution: DeadlockResolution::Avoid,
            ..Default::default()
        };
        assert_eq!(cfg.validate().unwrap_err(), ConfigError::AvoidWithoutPlan);
        // With a plan (even an empty-certificate one) it validates, needs
        // no scan interval, and projects onto the admission side only.
        let db = kplock_model::Database::from_spec(&[("x", 0)]);
        let sys = kplock_model::TxnSystem::new(db, vec![]);
        let cfg = SimConfig {
            resolution: DeadlockResolution::Avoid,
            deadlock_scan_interval: 0,
            avoid: Some(AvoidPlan::synthesize(&sys)),
            ..Default::default()
        };
        cfg.validate().unwrap();
        assert_eq!(cfg.detection(), None);
        assert_eq!(cfg.prevention(), None);
        assert_eq!(cfg.admission_scheme(), Some(PreventionScheme::WoundWait));
        assert!(cfg.avoid_plan().is_some());
        // A plan supplied under a non-Avoid resolution is inert.
        let cfg = SimConfig {
            avoid: Some(AvoidPlan::synthesize(&sys)),
            ..Default::default()
        };
        assert!(cfg.avoid_plan().is_none());
        assert_eq!(cfg.admission_scheme(), None);
        assert_eq!(
            SimConfig {
                resolution: PreventionScheme::WaitDie.into(),
                ..Default::default()
            }
            .admission_scheme(),
            Some(PreventionScheme::WaitDie)
        );
    }

    #[test]
    fn invalid_fault_rates_fail_validation() {
        let cfg = SimConfig {
            faults: FaultPlan {
                loss: 2.0,
                ..FaultPlan::none()
            },
            ..Default::default()
        };
        assert_eq!(
            cfg.validate().unwrap_err(),
            ConfigError::BadFaultPlan(FaultPlanError::RateOutOfRange { which: "loss" })
        );
        // A full-strength but in-range plan validates.
        let cfg = SimConfig {
            faults: FaultPlan::lossy(1, 1.0, 1.0, 1.0),
            ..Default::default()
        };
        cfg.validate().unwrap();
    }
}
