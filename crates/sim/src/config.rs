//! Simulation configuration.

/// Network latency model for coordinator ↔ site messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LatencyModel {
    /// Every message takes exactly this many ticks.
    Fixed(u64),
    /// Uniform in `[lo, hi]` (seeded, deterministic).
    Uniform(u64, u64),
}

impl LatencyModel {
    /// Draws a latency.
    pub fn sample(&self, rng: &mut impl rand::Rng) -> u64 {
        match *self {
            LatencyModel::Fixed(t) => t,
            LatencyModel::Uniform(lo, hi) => rng.gen_range(lo..=hi),
        }
    }
}

/// Which transaction to abort when a deadlock cycle is found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VictimPolicy {
    /// The most recently (re)started instance in the cycle.
    Youngest,
    /// The longest-running instance in the cycle.
    Oldest,
}

/// How the engine detects deadlocks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DeadlockDetection {
    /// The paper-era default: rebuild the global waits-for relation every
    /// [`SimConfig::deadlock_scan_interval`] ticks. A cycle can sit
    /// undetected for up to a full interval.
    #[default]
    Periodic,
    /// Incremental: a wait-for graph ([`kplock_dlm::WaitForGraph`]) is
    /// maintained per entity as requests block/grant/release, and checked
    /// exactly when a request blocks — deadlocks are resolved the instant
    /// they form, with no scan latency.
    OnBlock,
}

/// Full simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// RNG seed (drives latency sampling only; everything else is
    /// deterministic).
    pub seed: u64,
    /// Message latency model.
    pub latency: LatencyModel,
    /// Ticks a site spends applying a step.
    pub local_step_time: u64,
    /// Interval between global deadlock scans (unused under
    /// [`DeadlockDetection::OnBlock`]).
    pub deadlock_scan_interval: u64,
    /// Deadlock detection scheme.
    pub detection: DeadlockDetection,
    /// Victim selection policy.
    pub victim_policy: VictimPolicy,
    /// Backoff before an aborted instance restarts.
    pub restart_backoff: u64,
    /// Hard cap on simulated time (guards against livelock).
    pub max_time: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xC0FFEE,
            latency: LatencyModel::Fixed(10),
            local_step_time: 1,
            deadlock_scan_interval: 50,
            detection: DeadlockDetection::Periodic,
            victim_policy: VictimPolicy::Youngest,
            restart_backoff: 25,
            max_time: 10_000_000,
        }
    }
}
