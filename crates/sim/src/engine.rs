//! The discrete-event simulation engine.
//!
//! Coordinators (one per transaction) exchange messages with sites over a
//! latency-modelled network; sites run reader–writer FIFO lock tables
//! (`kplock-dlm` under a thin wrapper). Deadlocks are either *detected* —
//! by the periodic global scan (default, the paper-era scheme),
//! incrementally at block time
//! ([`crate::config::DeadlockDetection::OnBlock`]), or by distributed
//! Chandy–Misra–Haas probes travelling site-to-site
//! ([`crate::config::DeadlockDetection::Probe`], see [`crate::probe`]) —
//! and a victim aborted, or *prevented* outright
//! ([`crate::config::DeadlockResolution::Prevent`]): the coordinator's
//! birth timestamp rides on every lock request and the site answers from
//! table-local arithmetic alone — wait, wound the younger holders, or
//! reject — so no wait-for cycle ever forms and no detection protocol
//! runs (see [`kplock_dlm::prevent`]). Either way the aborted instance
//! releases its locks and restarts after a backoff, keeping its birth
//! stamp.
//!
//! Every wire message additionally crosses the fault-injection chokepoint
//! ([`crate::fault::FaultPlan`]): seeded loss, duplication and reordering
//! apply uniformly to data traffic, probes, abort orders, wounds and
//! rejections, and scheduled site crashes wipe volatile lock tables that
//! recovery rebuilds from surviving leases. Duplicated and retransmitted
//! messages are safe because every site- and coordinator-side handler is
//! idempotent (each handler documents its argument; the table side lives
//! in [`kplock_dlm::ModeTable::is_waiting`] /
//! [`kplock_dlm::ModeTable::release_idempotent`]). The default
//! [`crate::fault::FaultPlan::none`] never touches any of it, so clean
//! runs stay bit-identical to the fault-free engine. All randomness comes
//! from two seeded RNGs (latency and faults), so runs are reproducible
//! either way.

use crate::config::{ConfigError, DeadlockDetection, Delegation, SimConfig};
use crate::event::{DelegatedGrant, EventKind, EventQueue, Instance, Payload, SimTime};
use crate::fault::FaultPlanError;
use crate::history::{audit, Audit, History};
use crate::lock_table::SiteTable;
use crate::metrics::Metrics;
use crate::probe::{self, ProbeMsg, SiteProbeState, Stamp};
use kplock_dlm::{DelegationLedger, Lease, LeaseTable, PreventionOutcome, WaitForGraph};
use kplock_graph::DiGraph;
use kplock_model::{ActionKind, EntityId, LockMode, SiteId, StepId, TxnId, TxnSystem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// How a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every transaction committed.
    Completed,
    /// Simulated time hit [`SimConfig::max_time`] with work still pending
    /// (livelock, or simply too little time). Previously this was
    /// indistinguishable from a clean completion in the report.
    TimedOut,
    /// The event queue drained with uncommitted transactions and time to
    /// spare — an undetected deadlock, i.e. a detection-scheme bug.
    Stalled,
}

/// Final report of a run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Collected counters.
    pub metrics: Metrics,
    /// Serializability audit of the committed schedule.
    pub audit: Audit,
    /// Epoch at which each transaction committed, `None` for transactions
    /// still in flight when the run ended (timeout/stall) — exactly what
    /// the audit consumed, so an unfinished transaction's in-flight epoch
    /// can never be mistaken for a commit claim (the threaded runner's
    /// report follows the same shape).
    pub committed_epoch: Vec<Option<u32>>,
    /// How the run ended — distinguishes a clean completion from a
    /// [`SimConfig::max_time`] timeout or a stall. The single source of
    /// truth; [`SimReport::finished`] and [`SimReport::timed_out`] derive
    /// from it.
    pub outcome: RunOutcome,
}

impl SimReport {
    /// True when every transaction committed before `max_time`.
    pub fn finished(&self) -> bool {
        self.outcome == RunOutcome::Completed
    }

    /// True when the run was cut off by [`SimConfig::max_time`].
    pub fn timed_out(&self) -> bool {
        self.outcome == RunOutcome::TimedOut
    }
}

struct Coordinator {
    epoch: u32,
    done: Vec<bool>,
    issued: Vec<bool>,
    committed: bool,
    /// Last (re)start time (metrics/diagnostics).
    started_at: SimTime,
    /// Original start time; survives restarts. Victim selection uses this
    /// timestamp, following Rosenkrantz, Stearns & Lewis: an aborted
    /// transaction keeps its age, or the oldest-victim policy livelocks by
    /// repeatedly killing whichever transaction is about to finish.
    birth: (SimTime, usize),
}

/// The admission priority of instance `o` — what the lock table's
/// wound/wait/die arithmetic compares (smaller wins).
///
/// Plain prevention runs use the coordinator's birth stamp unchanged.
/// Under [`crate::DeadlockResolution::Avoid`] the certificate splits the
/// population into two classes:
///
/// * **certified** transactions all share the top priority `(0, 0)` —
///   deliberately *not* distinct: wound-wait only wounds a strictly
///   lower-priority obstacle, so equals never wound each other and
///   certified transactions simply queue FIFO among themselves (safe by
///   the plan's lock order, which makes certified-only wait cycles
///   impossible), while any uncertified obstacle in their way is wounded
///   and no uncertified requester can ever make a certified holder wait
///   behind it;
/// * **uncertified** transactions keep their wound-wait birth order,
///   uniformly shifted one tick later so even a birth-0 fallback ranks
///   strictly below every certified transaction. The shift preserves the
///   relative order of all fallback transactions, which is why an
///   empty-certificate Avoid run is decision-for-decision identical to
///   `Prevent(WoundWait)`.
fn admission_priority(
    cfg: &SimConfig,
    coords: &[Coordinator],
    o: Instance,
) -> kplock_dlm::Priority {
    let (t, idx) = coords[o.txn.idx()].birth;
    match cfg.avoid_plan() {
        Some(plan) if plan.is_certified(o.txn) => (0, 0),
        Some(_) => (t.saturating_add(1), idx as u64),
        None => (t, idx as u64),
    }
}

/// One entry in a coordinator's delegated-grant cache
/// ([`Delegation::On`] only): a cached grant on one entity, serviced
/// locally until revoked. The site-side hold stays in the owner's table
/// (the cache's collateral); this entry is the *release authority*.
#[derive(Clone, Copy, Debug)]
struct CacheEntry {
    /// The instance the grant (and the site-side hold) belongs to; abort
    /// retention re-keys it alongside the site's ledger and table.
    inst: Instance,
    /// The delegated mode — local re-acquires must be covered by it.
    mode: LockMode,
    /// The delegation's fence; an expired entry must not be trusted
    /// (the coordinator drops it and goes remote).
    lease: Lease,
    /// A lock step is live on the entity (locked locally or remotely,
    /// matching unlock not yet serviced). An in-use entry defers its
    /// revocation drain to the unlock.
    in_use: bool,
    /// A revocation arrived mid-use; the drain (entry removal +
    /// [`Payload::RevokeAck`]) rides the upcoming local unlock.
    revoke_pending: bool,
}

struct Engine<'a> {
    sys: &'a TxnSystem,
    cfg: &'a SimConfig,
    rng: StdRng,
    queue: EventQueue,
    sites: Vec<SiteTable>,
    coords: Vec<Coordinator>,
    /// Lock step id for a queued lock request.
    pending_lock_step: HashMap<(Instance, EntityId), StepId>,
    /// When an instance started waiting for a lock.
    waiting_since: HashMap<(Instance, EntityId), SimTime>,
    /// Incrementally maintained wait-for graph (only under
    /// [`DeadlockDetection::OnBlock`]; stays empty in periodic and probe
    /// modes).
    wfg: WaitForGraph<Instance>,
    /// Whether `wfg` changed since the last cycle check.
    wfg_dirty: bool,
    /// Per-site probe bookkeeping ([`DeadlockDetection::Probe`] only):
    /// each site remembers the wait-edges of *its own* entities to spot
    /// new ones. There is no cross-site state here by design.
    probe_state: Vec<SiteProbeState>,
    /// Static catalog knowledge, per transaction: the sites hosting any
    /// entity it locks — where a probe chasing that transaction might find
    /// it blocked. Derived from the schema via `Database::site_of`, not
    /// from runtime state.
    lock_sites: Vec<Vec<SiteId>>,
    /// Dedicated fault RNG ([`crate::fault::FaultPlan::seed`]): loss,
    /// duplication and reorder draws never touch the latency RNG, so
    /// `FaultPlan::none()` leaves the main stream — and every fixed-seed
    /// pin — bit-identical.
    fault_rng: StdRng,
    /// Per-site outage flag: deliveries to a down site are dropped.
    down: Vec<bool>,
    /// Tick each site last crashed (lease-survival anchor).
    crash_at: Vec<SimTime>,
    /// Per-site lease ledgers mirroring grants — the surviving holder
    /// state a recovery rebuilds from. Maintained only when the plan
    /// schedules crashes (`track_leases`).
    leases: Vec<LeaseTable<Instance>>,
    /// Whether leases are being tracked (the plan has crashes).
    track_leases: bool,
    /// Whether delegated lock ownership is on ([`Delegation::On`]).
    /// Every delegation code path is gated on this flag, so `Off` runs
    /// are message-for-message identical to the pre-delegation engine.
    delegation: bool,
    /// Per-transaction delegated-grant caches (delegation only): the
    /// coordinator half of decoupled ownership. Keyed by entity — one
    /// cached grant per entity per coordinator.
    caches: Vec<HashMap<EntityId, CacheEntry>>,
    /// Per-site delegation ledgers (delegation only): the owning site's
    /// record of which holds have their release authority delegated —
    /// what a conflicting request consults to send revocations, and what
    /// a crash walks to clear both sides.
    delegations: Vec<DelegationLedger<Instance>>,
    /// Revocations that overtook their delegated grant ack on the wire
    /// (the revoke can draw a shorter latency than the earlier-sent
    /// grant): remembered per coordinator and applied when the ack
    /// lands — the entry is born `revoke_pending` and drains at the
    /// local unlock. Keyed by entity, valued by the revoked instance.
    deferred_revokes: Vec<HashMap<EntityId, Instance>>,
    /// Per-site boot epoch, bumped at every crash. Delegated grants carry
    /// the grant-time boot ([`DelegatedGrant::boot`]); a coordinator
    /// refuses to cache a grant from an older boot, since the crash
    /// cleared the site's ledger (see `on_crash`).
    boot: Vec<u32>,
    /// Steps already recorded in the history, so a duplicated or
    /// retransmitted request re-acknowledges without re-recording.
    /// Consulted only on fault-injected runs.
    recorded: HashSet<(Instance, StepId)>,
    history: History,
    metrics: Metrics,
    now: SimTime,
}

/// Runs the system to completion (or `max_time`), all transactions
/// arriving at time 0.
///
/// Returns [`ConfigError`] if `cfg` fails [`SimConfig::validate`] —
/// checked up front, so a bad latency range is a typed error instead of a
/// panic deep inside the RNG mid-run.
pub fn run(sys: &TxnSystem, cfg: &SimConfig) -> Result<SimReport, ConfigError> {
    run_with_arrivals(sys, cfg, &vec![0; sys.len()])
}

/// Runs the system with per-transaction arrival times (an open-loop
/// workload): transaction `t` issues its first steps at `arrivals[t]`.
///
/// Validates `cfg` up front; see [`run`].
pub fn run_with_arrivals(
    sys: &TxnSystem,
    cfg: &SimConfig,
    arrivals: &[SimTime],
) -> Result<SimReport, ConfigError> {
    cfg.validate()?;
    assert_eq!(
        arrivals.len(),
        sys.len(),
        "one arrival time per transaction"
    );
    // The plan alone cannot know the site count; finish its validation
    // here, where the system is in hand.
    for c in &cfg.faults.crashes {
        if c.site >= sys.db().site_count() {
            return Err(ConfigError::BadFaultPlan(
                FaultPlanError::CrashSiteOutOfRange {
                    site: c.site,
                    sites: sys.db().site_count(),
                },
            ));
        }
    }
    // Likewise the avoid plan: its certificate is only meaningful for the
    // transaction set it was synthesized from.
    if let Some(plan) = cfg.avoid_plan() {
        if plan.txn_count() != sys.len() {
            return Err(ConfigError::AvoidPlanMismatch {
                plan_txns: plan.txn_count(),
                system_txns: sys.len(),
            });
        }
    }
    let lock_sites = if cfg.detection() == Some(DeadlockDetection::Probe) {
        sys.txns()
            .iter()
            .map(|t| {
                let mut v: Vec<SiteId> = t
                    .locked_entities()
                    .iter()
                    .map(|&e| sys.db().site_of(e))
                    .collect();
                v.sort_by_key(|s| s.idx());
                v.dedup();
                v
            })
            .collect()
    } else {
        Vec::new()
    };
    let mut eng = Engine {
        sys,
        cfg,
        rng: StdRng::seed_from_u64(cfg.seed),
        queue: EventQueue::new(),
        sites: vec![SiteTable::new(cfg.table); sys.db().site_count()],
        coords: sys
            .txns()
            .iter()
            .enumerate()
            .map(|(i, t)| Coordinator {
                epoch: 0,
                done: vec![false; t.len()],
                issued: vec![false; t.len()],
                committed: false,
                started_at: arrivals[i],
                birth: (arrivals[i], i),
            })
            .collect(),
        pending_lock_step: HashMap::new(),
        waiting_since: HashMap::new(),
        wfg: WaitForGraph::new(),
        wfg_dirty: false,
        probe_state: vec![SiteProbeState::new(); sys.db().site_count()],
        lock_sites,
        fault_rng: StdRng::seed_from_u64(cfg.faults.seed),
        down: vec![false; sys.db().site_count()],
        crash_at: vec![0; sys.db().site_count()],
        leases: vec![LeaseTable::new(); sys.db().site_count()],
        track_leases: !cfg.faults.crashes.is_empty(),
        delegation: cfg.delegation == Delegation::On,
        caches: vec![HashMap::new(); sys.len()],
        delegations: vec![DelegationLedger::new(); sys.db().site_count()],
        deferred_revokes: vec![HashMap::new(); sys.len()],
        boot: vec![0; sys.db().site_count()],
        recorded: HashSet::new(),
        history: History::default(),
        metrics: Metrics {
            avoid_certified: cfg.avoid_plan().map_or(0, |p| p.certified_count()),
            avoid_fallbacks: cfg.avoid_plan().map_or(0, |p| p.fallback_count()),
            ..Metrics::default()
        },
        now: 0,
    };

    for (t, &arrival) in arrivals.iter().enumerate() {
        let txn = TxnId::from_idx(t);
        if arrival == 0 {
            eng.issue_ready(txn);
            // Late arrivals get their timer from the Restart handler.
            if cfg.faults.retransmit_after > 0 {
                eng.queue.push(
                    cfg.faults.retransmit_after,
                    EventKind::RetransmitCheck(txn, 0),
                );
            }
        } else {
            eng.queue.push(arrival, EventKind::Restart(txn));
        }
    }
    if cfg.detection() == Some(DeadlockDetection::Periodic) {
        eng.queue
            .push(cfg.deadlock_scan_interval, EventKind::DeadlockScan);
    }
    for c in &cfg.faults.crashes {
        let site = SiteId::from_idx(c.site);
        eng.queue.push(c.at, EventKind::SiteCrash(site));
        // A zero-length outage recovers in the same tick, after the crash
        // (insertion order breaks the tie): a crash-restart the network
        // never sees, but the volatile table is gone all the same.
        eng.queue.push(
            c.at.saturating_add(c.down_for),
            EventKind::SiteRecover(site),
        );
    }

    let mut timed_out = false;
    while let Some((t, ev)) = eng.queue.pop() {
        eng.now = t;
        if eng.now > cfg.max_time {
            timed_out = true;
            break;
        }
        if eng.all_committed() {
            break;
        }
        match ev {
            EventKind::ToSite(site, payload) => {
                if eng.down[site.idx()] {
                    // The site is mid-outage: everything landing on it is
                    // lost with the crash (retransmission and the
                    // recovery re-delivery make up for it).
                    eng.metrics.messages_dropped += 1;
                    continue;
                }
                eng.on_site(site, payload);
                // Table state changes inside site events — and inside the
                // resolution below, whose aborts release locks at *every*
                // site. A cycle can form not just when a request blocks
                // but also when a release *grants*: remaining waiters
                // retarget onto the new holder. Check after any site event
                // that changed the graph, so no formation path is missed
                // (and update-only events stay O(1)).
                if eng.cfg.detection() == Some(DeadlockDetection::OnBlock) && eng.wfg_dirty {
                    eng.resolve_incremental();
                }
                if eng.cfg.invariant_audit {
                    eng.audit_tables();
                }
            }
            EventKind::ToCoordinator(txn, payload) => {
                // Coordinator events mutate tables too: a Wound, Abort or
                // LockRejected triggers an abort whose releases and
                // cancellations touch every site.
                eng.on_coordinator(txn, payload);
                if eng.cfg.invariant_audit {
                    eng.audit_tables();
                }
            }
            EventKind::DeadlockScan => {
                eng.deadlock_scan();
                if eng.cfg.invariant_audit {
                    eng.audit_tables();
                }
                if !eng.all_committed() {
                    eng.queue.push(
                        eng.now + cfg.deadlock_scan_interval,
                        EventKind::DeadlockScan,
                    );
                }
            }
            EventKind::Restart(txn) => {
                eng.coords[txn.idx()].started_at = eng.now;
                eng.issue_ready(txn);
                // Arm the retransmission timer for this (possibly fresh)
                // epoch; the previous epoch's timer dies on its mismatch.
                if cfg.faults.retransmit_after > 0 {
                    let epoch = eng.coords[txn.idx()].epoch;
                    eng.queue.push(
                        eng.now + cfg.faults.retransmit_after,
                        EventKind::RetransmitCheck(txn, epoch),
                    );
                }
            }
            EventKind::SiteCrash(site) => eng.on_crash(site),
            EventKind::SiteRecover(site) => {
                eng.on_recover(site);
                if eng.cfg.invariant_audit {
                    eng.audit_tables();
                }
            }
            EventKind::RetransmitCheck(txn, epoch) => eng.on_retransmit(txn, epoch),
        }
    }

    let finished = eng.all_committed();
    let outcome = if finished {
        RunOutcome::Completed
    } else if timed_out {
        RunOutcome::TimedOut
    } else {
        RunOutcome::Stalled
    };
    // Elapsed simulated time: the honest throughput denominator. Equal to
    // the makespan for clean completions; a timed-out run used its whole
    // budget, a stalled one its drain tick.
    eng.metrics.elapsed_ticks = match outcome {
        RunOutcome::Completed => eng.metrics.makespan,
        RunOutcome::TimedOut => cfg.max_time,
        RunOutcome::Stalled => eng.now,
    };
    // Only actually-committed epochs participate in the audit; an
    // unfinished transaction's in-flight epoch is skipped explicitly.
    let committed_epoch: Vec<Option<u32>> = eng
        .coords
        .iter()
        .map(|c| c.committed.then_some(c.epoch))
        .collect();
    let audit = audit(sys, &eng.history, &committed_epoch);
    Ok(SimReport {
        metrics: eng.metrics,
        audit,
        committed_epoch,
        outcome,
    })
}

impl Engine<'_> {
    fn all_committed(&self) -> bool {
        self.coords.iter().all(|c| c.committed)
    }

    fn latency(&mut self) -> u64 {
        self.cfg.latency.sample(&mut self.rng)
    }

    fn send_to_site(&mut self, site: SiteId, payload: Payload) {
        self.transmit(EventKind::ToSite(site, payload));
    }

    fn send_to_coordinator(&mut self, txn: TxnId, payload: Payload) {
        self.transmit(EventKind::ToCoordinator(txn, payload));
    }

    /// Site → site wire (probe mode): until probes existed every message
    /// had a coordinator on one end; detection traffic is the first to
    /// flow between sites directly, and is metered separately so its
    /// overhead is visible.
    fn send_site_to_site(&mut self, to: SiteId, msg: ProbeMsg) {
        self.metrics.probe_messages += 1;
        self.transmit(EventKind::ToSite(to, Payload::Probe(msg)));
    }

    /// The single wire chokepoint: every message — data traffic, probes,
    /// abort orders, wounds, rejections — is counted, latency-stamped from
    /// the main RNG, and then run through the fault plan's channel model.
    /// Loss swallows the delivery; reorder delays it by an extra jitter so
    /// later sends can overtake it; duplication schedules a second copy
    /// strictly after the first. All fault draws come from the dedicated
    /// fault RNG, so a plan with no channel faults never perturbs the
    /// latency stream and the clean path is bit-identical to the
    /// fault-free engine.
    fn transmit(&mut self, ev: EventKind) {
        self.metrics.messages += 1;
        // Acquire/release traffic, metered separately: the quantity
        // delegated ownership reduces (pure counting — no RNG draw and
        // no flow change, so fixed-seed pins are untouched).
        if let EventKind::ToSite(_, p) | EventKind::ToCoordinator(_, p) = &ev {
            if matches!(
                p,
                Payload::LockRequest { .. }
                    | Payload::LockGranted { .. }
                    | Payload::LockRejected { .. }
                    | Payload::UnlockRequest { .. }
                    | Payload::UnlockDone { .. }
                    | Payload::Revoke { .. }
                    | Payload::RevokeAck { .. }
            ) {
                self.metrics.lock_traffic += 1;
            }
        }
        let at = self.now + self.latency();
        let f = &self.cfg.faults;
        if !f.channel_faults() {
            self.queue.push(at, ev);
            return;
        }
        let (loss, dup, reorder) = (f.loss, f.duplication, f.reorder);
        let window = f.reorder_window.max(1);
        if loss > 0.0 && self.fault_rng.gen_bool(loss) {
            self.metrics.messages_dropped += 1;
            return;
        }
        let at = if reorder > 0.0 && self.fault_rng.gen_bool(reorder) {
            at + self.fault_rng.gen_range(1..=window)
        } else {
            at
        };
        if dup > 0.0 && self.fault_rng.gen_bool(dup) {
            self.metrics.messages_duplicated += 1;
            let lag = 1 + self.fault_rng.gen_range(0..=window);
            self.queue.push(at + lag, ev.clone());
        }
        self.queue.push(at, ev);
    }

    /// Issues every step whose predecessors are done and that has not been
    /// issued yet.
    fn issue_ready(&mut self, txn: TxnId) {
        let t = self.sys.txn(txn);
        let ready: Vec<usize> = (0..t.len())
            .filter(|&v| {
                let c = &self.coords[txn.idx()];
                !c.issued[v] && t.edge_graph().predecessors(v).iter().all(|&p| c.done[p])
            })
            .collect();
        for v in ready {
            self.coords[txn.idx()].issued[v] = true;
            self.send_step(txn, v);
        }
    }

    /// Sends (or re-sends — retransmission and recovery re-delivery both
    /// land here) the request for step `v` of `txn`'s current epoch.
    fn send_step(&mut self, txn: TxnId, v: usize) {
        let inst = Instance {
            txn,
            epoch: self.coords[txn.idx()].epoch,
        };
        let step = self.sys.txn(txn).step(StepId::from_idx(v));
        let site = self.sys.db().site_of(step.entity);
        if self.delegation {
            // The delegated fast path: a cached grant services the lock
            // or unlock locally — zero wire messages, no site table
            // consulted, the ack a local-latency self-delivery.
            let hit = match step.kind {
                ActionKind::Lock => {
                    self.try_cached_lock(txn, inst, step.entity, StepId::from_idx(v))
                }
                ActionKind::Unlock => {
                    self.try_cached_unlock(txn, inst, step.entity, StepId::from_idx(v))
                }
                ActionKind::Update => false,
            };
            if hit {
                return;
            }
        }
        let payload = match step.kind {
            ActionKind::Lock => Payload::LockRequest {
                inst,
                entity: step.entity,
                step: StepId::from_idx(v),
            },
            ActionKind::Update => Payload::UpdateRequest {
                inst,
                entity: step.entity,
                step: StepId::from_idx(v),
            },
            ActionKind::Unlock => Payload::UnlockRequest {
                inst,
                entity: step.entity,
                step: StepId::from_idx(v),
            },
        };
        self.send_to_site(site, payload);
    }

    /// Services a lock step from the delegated cache if a covering,
    /// unexpired entry for the current epoch exists: the entry is marked
    /// in-use *synchronously* (so a revocation landing before the local
    /// ack still defers its drain to the unlock), the step recorded, and
    /// the ack self-delivered after `local_step_time` — two wire messages
    /// saved. Returns whether the cache hit.
    fn try_cached_lock(
        &mut self,
        txn: TxnId,
        inst: Instance,
        entity: EntityId,
        step: StepId,
    ) -> bool {
        let mode = self.sys.txn(txn).step(step).mode;
        let Some(entry) = self.caches[txn.idx()].get_mut(&entity) else {
            return false;
        };
        if entry.inst != inst || !entry.mode.covers(mode) {
            // A stray epoch, or an upgrade the cached mode cannot cover:
            // go remote (the site re-grants idempotently if we hold).
            return false;
        }
        if entry.lease.ttl != 0 && self.now > entry.lease.granted_at + entry.lease.ttl {
            // The lease lapsed: a cache must not be trusted past its
            // fence. Drop the entry and go remote — a one-way degrade;
            // only an explicit re-grant renews (satellite of the
            // duplicated-grant rule: nothing local slides the clock).
            self.caches[txn.idx()].remove(&entity);
            return false;
        }
        entry.in_use = true;
        let (cached_mode, cached_lease) = (entry.mode, entry.lease);
        self.record_step(inst, step);
        self.metrics.cache_hits += 1;
        self.metrics.messages_saved += 2;
        let delegated = Some(DelegatedGrant {
            mode: cached_mode,
            lease: cached_lease,
            boot: self.boot[self.sys.db().site_of(entity).idx()],
        });
        self.queue.push(
            self.now + self.cfg.local_step_time,
            EventKind::ToCoordinator(
                txn,
                Payload::LockGranted {
                    inst,
                    entity,
                    step,
                    delegated,
                },
            ),
        );
        true
    }

    /// Services an unlock step from the delegated cache: the entry goes
    /// idle (or, with a revocation pending, drains — removal plus a
    /// [`Payload::RevokeAck`] so the owner releases the hold), the step
    /// is recorded, and the ack self-delivered. A duplicate of an
    /// already-serviced local unlock just re-acknowledges. Returns
    /// whether the cache serviced the step.
    fn try_cached_unlock(
        &mut self,
        txn: TxnId,
        inst: Instance,
        entity: EntityId,
        step: StepId,
    ) -> bool {
        let Some(entry) = self.caches[txn.idx()].get_mut(&entity) else {
            return false;
        };
        if entry.inst != inst {
            return false;
        }
        if entry.in_use {
            entry.in_use = false;
            if entry.revoke_pending {
                let entry = self.caches[txn.idx()]
                    .remove(&entity)
                    .expect("entry present");
                // The request stayed local; only the drain ack crossed
                // the wire (and it doubles as the release).
                self.metrics.messages_saved += 1;
                let site = self.sys.db().site_of(entity);
                self.send_to_site(
                    site,
                    Payload::RevokeAck {
                        inst: entry.inst,
                        entity,
                    },
                );
            } else {
                self.metrics.messages_saved += 2;
            }
        }
        self.record_step(inst, step);
        self.metrics.cache_hits += 1;
        self.queue.push(
            self.now + self.cfg.local_step_time,
            EventKind::ToCoordinator(txn, Payload::UnlockDone { inst, step }),
        );
        true
    }

    /// True when `inst` belongs to an epoch that has been aborted: its
    /// coordinator has already moved on. Every message handler checks this
    /// first — messages from dead epochs (a release still in flight when
    /// its sender was chosen as a deadlock victim, a probe chasing an
    /// aborted instance) must be ignored, or they would corrupt state the
    /// abort already cleaned up (see the
    /// `stale_unlock_after_abort_is_ignored` test for the race).
    fn stale(&self, inst: Instance) -> bool {
        self.coords[inst.txn.idx()].epoch != inst.epoch
    }

    /// The victim-policy timestamps of `inst`, as piggybacked on probes.
    fn stamp_of(&self, inst: Instance) -> Stamp {
        let c = &self.coords[inst.txn.idx()];
        Stamp {
            started_at: c.started_at,
            birth: c.birth,
        }
    }

    /// Reacts to a change of `entity`'s contribution to the wait-for
    /// relation (no-op under periodic detection and under prevention,
    /// which admits no cycle to ever look for): OnBlock refreshes the
    /// incremental global graph; Probe diffs the site-local view and
    /// launches a probe per new edge.
    fn edges_changed(&mut self, site: SiteId, entity: EntityId) {
        match self.cfg.detection() {
            None | Some(DeadlockDetection::Periodic) => {}
            Some(DeadlockDetection::OnBlock) => {
                let edges = self.sites[site.idx()].entity_waits_for(entity);
                self.wfg_dirty |= self.wfg.update_entity(entity, edges);
            }
            Some(DeadlockDetection::Probe) => {
                let edges = self.sites[site.idx()].entity_waits_for(entity);
                let fresh = self.probe_state[site.idx()].observe(entity, edges, self.now);
                for (w, h) in fresh {
                    // Holders and waiters in a live table are never stale
                    // (aborts scrub them synchronously), and the table
                    // never records an owner waiting on itself.
                    let msg = ProbeMsg {
                        path: vec![w, h],
                        stamps: vec![self.stamp_of(w), self.stamp_of(h)],
                        formed_at: self.now,
                    };
                    self.route_probe(site, msg);
                }
            }
        }
    }

    /// Delivers a probe to every site where its target might be blocked:
    /// the sites hosting the target's lock set (static catalog knowledge).
    /// The local site examines it for free; remote sites cost a message.
    fn route_probe(&mut self, from: SiteId, msg: ProbeMsg) {
        let targets = self.lock_sites[msg.target().txn.idx()].clone();
        for to in targets {
            if to == from {
                self.on_probe(to, msg.clone());
            } else {
                self.send_site_to_site(to, msg.clone());
            }
        }
    }

    /// A probe arrived at `site`: examine the target's local wait-edges,
    /// closing the cycle if one points back at the initiator, extending
    /// the chase otherwise. Reads nothing but this site's table.
    fn on_probe(&mut self, site: SiteId, msg: ProbeMsg) {
        if self.stale(msg.initiator()) || self.stale(msg.target()) {
            return;
        }
        let successors = self.sites[site.idx()].waits_of(msg.target());
        for h in successors {
            // When this site's edge `target → h` appeared, from its own
            // bookkeeping: the cycle is attributed to its *last-formed*
            // edge, so the formation tick carried onward is the maximum
            // over the path. (The edge is always on record here — it was
            // observed the moment it changed — but a probe racing an edge
            // re-formation falls back to now, the conservative choice.)
            let appeared = self.probe_state[site.idx()]
                .appeared_at(msg.target(), h)
                .unwrap_or(self.now);
            if h == msg.initiator() {
                // The path is a wait-for cycle assembled hop by hop from
                // site-local views. Every site closing the same cycle
                // picks the same victim (rotation-invariant policy), so
                // duplicate detections collapse at the abort.
                let victim = probe::choose_victim(self.cfg.victim_policy, &msg.path, &msg.stamps);
                self.send_to_coordinator(
                    victim.txn,
                    Payload::Abort {
                        victim,
                        members: msg.path.clone(),
                        formed_at: msg.formed_at.max(appeared),
                    },
                );
            } else if msg.path.contains(&h) {
                // A cycle not through our initiator: whichever member's
                // edge completed it launched its own probe; dropping this
                // branch (rather than looping forever) is what bounds
                // every chase to `#transactions` hops.
            } else {
                let next = msg.extend(h, self.stamp_of(h), appeared);
                self.route_probe(site, next);
            }
        }
    }

    /// True when this step request is a duplicate of one the coordinator
    /// has already seen acknowledged (`done[step]`): the first copy was
    /// serviced *and* its ack consumed, so nothing remains to do and the
    /// message is dropped whole — modelling per-request sequence numbers.
    /// Without this, a late duplicate `LockRequest` for an entity its
    /// sender already used and released would be a *fresh* request and
    /// ghost-grant a lock nobody will ever release. Consulted only on
    /// fault-injected runs (the clean protocol delivers exactly once);
    /// callers check `stale` first, so `done` is the current epoch's.
    fn already_serviced(&self, inst: Instance, step: StepId) -> bool {
        self.cfg.faults.any() && self.coords[inst.txn.idx()].done[step.idx()]
    }

    /// Records a step in the history exactly once per `(instance, step)`:
    /// a retransmitted or duplicated request whose original was already
    /// recorded re-acknowledges without re-recording (a double record
    /// would corrupt the audit's schedule). The dedup set is consulted
    /// only on fault-injected runs.
    fn record_step(&mut self, inst: Instance, step: StepId) {
        if self.cfg.faults.any() && !self.recorded.insert((inst, step)) {
            return;
        }
        self.history.record(self.now, inst, step);
    }

    /// Mirrors a grant into the site's lease ledger (crash plans only):
    /// the lease is stamped now with the plan's ttl, and the *held* mode
    /// is recorded (a covered re-request must not downgrade an exclusive
    /// lease to shared).
    fn note_grant(&mut self, site: SiteId, inst: Instance, e: EntityId) {
        if !self.track_leases {
            return;
        }
        let mode = self.sites[site.idx()]
            .holds(e, inst)
            .expect("a granted lock is held");
        self.leases[site.idx()].grant(
            inst,
            e,
            mode,
            Lease::new(self.now, self.cfg.faults.lease_ttl),
        );
    }

    /// Decides whether a grant of `entity` to `inst` is *delegated*:
    /// uncontested entities (no waiter, no pending upgrade) hand their
    /// release authority to the coordinator under a lease; contested or
    /// mid-revocation grants stay plain, so the waiters' demand keeps its
    /// ordinary remote path. A re-grant of an existing delegation (a
    /// duplicated or retransmitted request) re-advertises the **original**
    /// lease clock. Called at every grant site that sends a
    /// [`Payload::LockGranted`].
    fn maybe_delegate(
        &mut self,
        site: SiteId,
        inst: Instance,
        entity: EntityId,
    ) -> Option<DelegatedGrant> {
        if !self.delegation {
            return None;
        }
        let s = site.idx();
        if !self.sites[s].entity_waits_for(entity).is_empty()
            || self.delegations[s].is_revoking(inst, entity)
        {
            // Contested, or a revocation is still draining: granting
            // plainly keeps exactly one authority over the hold.
            return None;
        }
        let mode = self.sites[s]
            .holds(entity, inst)
            .expect("a granted lock is held");
        let lease = self.delegations[s].delegate(
            inst,
            entity,
            Lease::new(self.now, self.cfg.faults.lease_ttl),
        );
        Some(DelegatedGrant {
            mode,
            lease,
            boot: self.boot[s],
        })
    }

    /// A conflicting request by `inst` demands `entity`: revoke every
    /// delegated hold standing in its way. The first demand sends the
    /// revocation; under faults, later demands (the requester's own
    /// retransmissions) re-send a still-pending one — revocation's
    /// loss recovery rides the demander's timer, like wound re-derivation.
    fn demand(&mut self, site: SiteId, inst: Instance, entity: EntityId) {
        if !self.delegation {
            return;
        }
        let s = site.idx();
        for h in self.sites[s].conflicts_of(entity, inst) {
            if self.delegations[s].start_revoke(h, entity) {
                self.metrics.revocations += 1;
                self.send_to_coordinator(h.txn, Payload::Revoke { inst: h, entity });
            } else if self.cfg.faults.any() && self.delegations[s].is_revoking(h, entity) {
                self.send_to_coordinator(h.txn, Payload::Revoke { inst: h, entity });
            }
        }
    }

    fn on_site(&mut self, site: SiteId, payload: Payload) {
        match payload {
            Payload::LockRequest { inst, entity, step } => {
                if self.stale(inst) || self.already_serviced(inst, step) {
                    return;
                }
                // Every live lock request a site services — the work a
                // lock manager actually performs, and the quantity
                // hierarchical locking exists to shrink (one coarse parent
                // lock replacing hundreds of per-record requests).
                self.metrics.lock_requests += 1;
                let mode = self.sys.txn(inst.txn).step(step).mode;
                if let Some(scheme) = self.cfg.admission_scheme() {
                    self.on_prevented_lock_request(site, inst, entity, step, mode, scheme);
                    return;
                }
                if self.cfg.faults.any() && self.sites[site.idx()].is_waiting(entity, inst) {
                    // Retransmitted while queued: the grant will come
                    // through the queue, so the request itself is a no-op —
                    // but the retry is evidence the waiter is still stuck,
                    // and any probe its edge launched may have been lost.
                    // Forget and re-observe the entity so its live edges
                    // are chased again (idempotent at the abort: duplicate
                    // cycle closes collapse on the epoch check).
                    if self.cfg.detection() == Some(DeadlockDetection::Probe) {
                        self.probe_state[site.idx()].forget(entity);
                        self.edges_changed(site, entity);
                    }
                    // Likewise any revocation the original demand sent
                    // may have been lost: re-demand re-sends it.
                    self.demand(site, inst, entity);
                    return;
                }
                if self.sites[site.idx()].request(entity, inst, mode) {
                    self.note_grant(site, inst, entity);
                    self.record_step(inst, step);
                    let delegated = self.maybe_delegate(site, inst, entity);
                    self.send_to_coordinator(
                        inst.txn,
                        Payload::LockGranted {
                            inst,
                            entity,
                            step,
                            delegated,
                        },
                    );
                } else {
                    self.pending_lock_step.insert((inst, entity), step);
                    // `or_insert`: on clean runs the key is never live
                    // twice; under faults a crash-and-re-request must not
                    // reset the wait clock.
                    self.waiting_since.entry((inst, entity)).or_insert(self.now);
                    // OnBlock's cycle check runs in the event loop right
                    // after this handler returns; Probe launches its
                    // chase from inside `edges_changed`.
                    self.edges_changed(site, entity);
                    // If any obstacle's grant is delegated, its cache
                    // must drain before this wait can end: revoke it.
                    self.demand(site, inst, entity);
                }
            }
            Payload::UpdateRequest { inst, entity, step } => {
                if self.stale(inst) || self.already_serviced(inst, step) {
                    return;
                }
                debug_assert!(
                    {
                        let mode = self.sys.txn(inst.txn).step(step).mode;
                        // Either the entity's own lock covers the access,
                        // or (hierarchical databases) a coarse lock on the
                        // parent — possibly held at another site — shields
                        // it; see `LockMode::shields_child`.
                        self.sites[site.idx()]
                            .holds(entity, inst)
                            .is_some_and(|held| held.covers(mode))
                            || self.sys.db().parent_of(entity).is_some_and(|p| {
                                let ps = self.sys.db().site_of(p);
                                self.sites[ps.idx()]
                                    .holds(p, inst)
                                    .is_some_and(|m| m.shields_child(mode))
                            })
                    },
                    "update without a covering lock or parent shield"
                );
                self.record_step(inst, step);
                self.send_to_coordinator(inst.txn, Payload::UpdateDone { inst, step });
            }
            Payload::UnlockRequest { inst, entity, step } => {
                if self.stale(inst) || self.already_serviced(inst, step) {
                    // Stale: the sender was aborted while this release was
                    // in flight; the abort already freed its locks, and
                    // `inst` may no longer hold `entity` (or someone else
                    // may). Processing it would panic in the lock table.
                    return;
                }
                self.record_step(inst, step);
                // A retransmitted unlock whose original was processed (but
                // whose ack was lost) finds no hold: release idempotently
                // — keyed by owner, it can never free a later holder's
                // lock — and just re-acknowledge.
                let grants = if self.cfg.faults.any() {
                    self.sites[site.idx()].release_idempotent(entity, inst)
                } else {
                    self.sites[site.idx()].release(entity, inst)
                };
                if self.track_leases {
                    self.leases[site.idx()].release(inst, entity);
                }
                if self.delegation {
                    // A full remote release retires any delegation record
                    // with the hold: a later re-acquire is a *fresh*
                    // delegation (fresh lease clock), and a revocation ack
                    // still in flight must find nothing left to drain.
                    self.delegations[site.idx()].remove(inst, entity);
                }
                self.edges_changed(site, entity);
                self.send_to_coordinator(inst.txn, Payload::UnlockDone { inst, step });
                for (n, _) in grants {
                    self.grant_queued(n, entity);
                }
            }
            Payload::RevokeAck { inst, entity } => {
                // The drain ack: only an *awaited* revocation releases the
                // hold. A duplicated or outdated ack (the entry already
                // drained elsewhere, or a fresh delegation replaced it)
                // must not release a hold some cache still claims.
                if !self.delegations[site.idx()].is_revoking(inst, entity) {
                    return;
                }
                self.delegations[site.idx()].remove(inst, entity);
                let grants = if self.cfg.faults.any() {
                    self.sites[site.idx()].release_idempotent(entity, inst)
                } else {
                    self.sites[site.idx()].release(entity, inst)
                };
                if self.track_leases {
                    self.leases[site.idx()].release(inst, entity);
                }
                self.edges_changed(site, entity);
                for (n, _) in grants {
                    self.grant_queued(n, entity);
                }
            }
            Payload::Probe(msg) => self.on_probe(site, msg),
            _ => unreachable!("coordinator payload at site"),
        }
    }

    /// A lock request under an admission scheme — a prevention run, or
    /// the avoidance arm's wound-wait fallback: the site decides wait /
    /// wound / die from the requester's and the conflicting owners'
    /// admission priorities ([`admission_priority`]) — knowledge carried
    /// on the request and already present in the table's ownership
    /// records. Nothing global is consulted and no detection state exists
    /// in this mode.
    fn on_prevented_lock_request(
        &mut self,
        site: SiteId,
        inst: Instance,
        entity: EntityId,
        step: StepId,
        mode: kplock_model::LockMode,
        scheme: kplock_dlm::PreventionScheme,
    ) {
        if self.cfg.faults.any() && self.sites[site.idx()].is_waiting(entity, inst) {
            // Retransmitted while queued. Re-admitting would be a protocol
            // error, but under wound-wait the original's wound orders may
            // have been lost on the wire — so re-derive the victim set
            // (every *currently* conflicting owner younger than us) and
            // re-send the wounds. Idempotent at the coordinator: wounds
            // for moved-on or committed victims are dropped there.
            if scheme == kplock_dlm::PreventionScheme::WoundWait {
                let mine = admission_priority(self.cfg, &self.coords, inst);
                let victims: Vec<Instance> = self.sites[site.idx()]
                    .conflicts_of(entity, inst)
                    .into_iter()
                    .filter(|&o| admission_priority(self.cfg, &self.coords, o) > mine)
                    .collect();
                for victim in victims {
                    self.send_to_coordinator(victim.txn, Payload::Wound { victim });
                }
            }
            // And any revocation the original demand sent may have been
            // lost too: re-demand re-sends it.
            self.demand(site, inst, entity);
            return;
        }
        // Split borrows: the table mutates while the priority closure
        // reads coordinator birth stamps. Owners in a live table are never
        // stale (aborts scrub synchronously), and birth survives restarts,
        // so the lookup is always current.
        let coords = &self.coords;
        let cfg = self.cfg;
        let table = &mut self.sites[site.idx()];
        let outcome = table.request_with_priority(entity, inst, mode, scheme, |o: Instance| {
            admission_priority(cfg, coords, o)
        });
        match outcome {
            PreventionOutcome::Granted => {
                self.note_grant(site, inst, entity);
                self.record_step(inst, step);
                let delegated = self.maybe_delegate(site, inst, entity);
                self.send_to_coordinator(
                    inst.txn,
                    Payload::LockGranted {
                        inst,
                        entity,
                        step,
                        delegated,
                    },
                );
            }
            PreventionOutcome::Queued => {
                self.pending_lock_step.insert((inst, entity), step);
                self.waiting_since.entry((inst, entity)).or_insert(self.now);
                self.demand(site, inst, entity);
            }
            PreventionOutcome::Wounded(victims) => {
                // The elder waits in the queue like any blocked request;
                // the wound orders travel the network to the younger
                // owners' coordinators, whose aborts will release the
                // entity and grant the queue.
                self.pending_lock_step.insert((inst, entity), step);
                self.waiting_since.entry((inst, entity)).or_insert(self.now);
                for victim in victims {
                    self.send_to_coordinator(victim.txn, Payload::Wound { victim });
                }
                // Older delegated holders are not wounded; their caches
                // must still drain for this wait to end.
                self.demand(site, inst, entity);
            }
            PreventionOutcome::Rejected => {
                // Wait-die / no-wait: the requester was not queued; tell
                // its coordinator to restart it (with its original birth
                // stamp, so it ages toward invulnerability).
                self.send_to_coordinator(inst.txn, Payload::LockRejected { inst, entity, step });
                // The rejected requester will retry after its restart
                // backoff; demanding now drains the delegated obstacle
                // in the meantime, or the retry spins forever against a
                // hold whose owner sees no reason to release it.
                self.demand(site, inst, entity);
            }
        }
    }

    /// A queued instance just received the lock on `entity`.
    fn grant_queued(&mut self, inst: Instance, entity: EntityId) {
        let step = self
            .pending_lock_step
            .remove(&(inst, entity))
            .expect("queued lock has a pending step");
        if let Some(since) = self.waiting_since.remove(&(inst, entity)) {
            self.metrics.lock_wait_ticks += self.now - since;
        }
        let site = self.sys.db().site_of(entity);
        // The grant happens at the site; the wait in the queue means the
        // instance may have been aborted meanwhile — stale grants release
        // immediately.
        if self.stale(inst) {
            let grants = self.sites[site.idx()].release(entity, inst);
            self.edges_changed(site, entity);
            for (n, _) in grants {
                self.grant_queued(n, entity);
            }
            return;
        }
        self.note_grant(site, inst, entity);
        self.record_step(inst, step);
        let delegated = self.maybe_delegate(site, inst, entity);
        self.send_to_coordinator(
            inst.txn,
            Payload::LockGranted {
                inst,
                entity,
                step,
                delegated,
            },
        );
    }

    fn on_coordinator(&mut self, txn: TxnId, payload: Payload) {
        match payload {
            Payload::Abort {
                victim,
                members,
                formed_at,
            } => {
                self.on_abort_message(victim, &members, formed_at);
                return;
            }
            Payload::Wound { victim } => {
                // A wound order for an instance that already moved on is
                // dropped: an earlier wound bumped its epoch (`stale`), or
                // it *committed* while the order was in flight — a commit
                // does not bump the epoch, so it needs its own check, like
                // the probe path's member validation. Either way the wait
                // the wound protected has dissolved (the victim's unlocks
                // grant the elder), and aborting here would re-run a
                // finished transaction.
                if !self.stale(victim) && !self.coords[victim.txn.idx()].committed {
                    self.metrics.prevention_restarts += 1;
                    self.abort(victim.txn);
                }
                return;
            }
            Payload::LockRejected { inst, .. } => {
                if !self.stale(inst) {
                    self.metrics.prevention_restarts += 1;
                    self.abort(inst.txn);
                }
                return;
            }
            Payload::Revoke { inst, entity } => {
                self.on_revoke(txn, inst, entity);
                return;
            }
            _ => {}
        }
        let (inst, step, granted_entity) = match payload {
            Payload::LockGranted {
                inst,
                step,
                entity,
                delegated,
            } => (inst, step, Some((entity, delegated))),
            Payload::UpdateDone { inst, step } | Payload::UnlockDone { inst, step } => {
                (inst, step, None)
            }
            _ => unreachable!("site payload at coordinator"),
        };
        if self.stale(inst) {
            return;
        }
        if self.coords[txn.idx()].done[step.idx()] {
            // A duplicated acknowledgement: the first copy's effects are
            // in. In particular a duplicated *final* ack must not commit
            // (and count) the transaction twice. Unreachable on clean
            // runs, where every ack is delivered exactly once. Checked
            // *before* the cache upkeep below: a duplicated delegated
            // grant must not resurrect an entry a revocation drained.
            return;
        }
        if self.delegation {
            if let Some((entity, delegated)) = granted_entity {
                self.note_cached_grant(txn, inst, entity, delegated);
            }
        }
        let c = &mut self.coords[txn.idx()];
        c.done[step.idx()] = true;
        if c.done.iter().all(|&d| d) {
            c.committed = true;
            self.metrics.committed += 1;
            self.metrics.makespan = self.now;
            return;
        }
        self.issue_ready(txn);
    }

    /// Maintains the delegated cache from a fresh (non-duplicate,
    /// current-epoch) lock acknowledgement. A delegated grant from the
    /// site's **current** boot is cached (or refreshed — preserving any
    /// pending revocation); a plain grant, or a delegated one from an
    /// older boot (the site crashed while the ack flew, wiping its
    /// ledger), clears the slot — that entity's lifecycle is remote. A
    /// revocation that overtook this ack on the wire is applied now: the
    /// entry is born draining.
    fn note_cached_grant(
        &mut self,
        txn: TxnId,
        inst: Instance,
        entity: EntityId,
        delegated: Option<DelegatedGrant>,
    ) {
        let site = self.sys.db().site_of(entity);
        let deferred = self.deferred_revokes[txn.idx()].remove(&entity);
        match delegated {
            Some(g) if g.boot == self.boot[site.idx()] => {
                let cache = &mut self.caches[txn.idx()];
                match cache.get_mut(&entity) {
                    Some(entry) if entry.inst == inst => {
                        entry.mode = g.mode;
                        entry.lease = g.lease;
                        entry.in_use = true;
                        // `revoke_pending` is preserved: a refresh must
                        // not lose a drain the unlock owes the site.
                        entry.revoke_pending |= deferred == Some(inst);
                    }
                    _ => {
                        cache.insert(
                            entity,
                            CacheEntry {
                                inst,
                                mode: g.mode,
                                lease: g.lease,
                                in_use: true,
                                revoke_pending: deferred == Some(inst),
                            },
                        );
                    }
                }
            }
            _ => {
                // Plain (or pre-crash) grant: nothing is cached, so a
                // deferred revocation's premise is void too — the remote
                // unlock will release the hold through its own path.
                self.caches[txn.idx()].remove(&entity);
            }
        }
    }

    /// True when `txn`'s *current epoch* has an issued, unacknowledged
    /// lock step on `entity` — a grant ack may be in flight.
    fn lock_in_flight(&self, txn: TxnId, entity: EntityId) -> bool {
        let c = &self.coords[txn.idx()];
        let t = self.sys.txn(txn);
        (0..t.len()).any(|v| {
            let st = t.step(StepId::from_idx(v));
            st.kind == ActionKind::Lock && st.entity == entity && c.issued[v] && !c.done[v]
        })
    }

    /// True when `txn`'s current epoch holds `entity` through the
    /// *remote* protocol: a lock step acknowledged, the matching unlock
    /// not yet. In that state a revocation must not be answered with a
    /// release-granting ack — the remote unlock frees the hold itself.
    fn holds_remotely(&self, txn: TxnId, entity: EntityId) -> bool {
        let c = &self.coords[txn.idx()];
        let t = self.sys.txn(txn);
        let mut locked = false;
        let mut unlocked = false;
        for v in 0..t.len() {
            let st = t.step(StepId::from_idx(v));
            if st.entity != entity {
                continue;
            }
            match st.kind {
                ActionKind::Lock => locked |= c.done[v],
                ActionKind::Unlock => unlocked |= c.done[v],
                ActionKind::Update => {}
            }
        }
        locked && !unlocked
    }

    /// A revocation reached the delegate's coordinator. Deliberately *no*
    /// stale-epoch or commit guard on the cache lookup: revocation
    /// targets the cache slot, which outlives epochs (abort retention
    /// re-keys it) and commits (an idle entry is residue that must still
    /// drain). The subtle arm is a revoke that **overtook its own grant
    /// ack** on the wire — answered by deferring, not acking, or the site
    /// would release a hold the late-arriving ack then caches.
    fn on_revoke(&mut self, txn: TxnId, inst: Instance, entity: EntityId) {
        let site = self.sys.db().site_of(entity);
        if let Some(entry) = self.caches[txn.idx()].get_mut(&entity) {
            if entry.inst == inst {
                if entry.in_use {
                    // Mid-use: the drain rides the upcoming local unlock.
                    entry.revoke_pending = true;
                } else {
                    self.caches[txn.idx()].remove(&entity);
                    self.send_to_site(site, Payload::RevokeAck { inst, entity });
                }
                return;
            }
        }
        if self.stale(inst) {
            // An old epoch's revocation: its cache died with the abort
            // (or was re-keyed past it). Ack idempotently — the site
            // ignores acks for revocations it is not awaiting.
            self.send_to_site(site, Payload::RevokeAck { inst, entity });
            return;
        }
        if self.lock_in_flight(txn, entity) {
            // The revoke overtook the grant ack (a shorter latency draw).
            // Remember it; `note_cached_grant` applies it when the ack
            // lands, so the entry is born draining.
            self.deferred_revokes[txn.idx()].insert(entity, inst);
            return;
        }
        if self.holds_remotely(txn, entity) {
            // Nothing cached and the hold's lifecycle is remote (e.g. a
            // plain re-grant superseded the delegation): the remote
            // unlock releases it; acking here would free a lock still in
            // use. Under faults the demander re-sends until the unlock
            // retires the ledger entry.
            return;
        }
        // Nothing cached, nothing in flight, nothing held: a duplicated
        // revoke whose drain already completed. Ack idempotently.
        self.send_to_site(site, Payload::RevokeAck { inst, entity });
    }

    /// A probe-detected abort order reached the victim's coordinator. The
    /// cycle travelled the network, so it may have dissolved meanwhile: if
    /// any member was already aborted or committed, that cycle is broken
    /// and the order is dropped — the validation that keeps duplicate and
    /// outdated detections from over-killing.
    fn on_abort_message(&mut self, victim: Instance, members: &[Instance], formed_at: SimTime) {
        if members
            .iter()
            .any(|&m| self.stale(m) || self.coords[m.txn.idx()].committed)
        {
            return;
        }
        if self.cfg.probe_audit {
            self.audit_probe_abort(victim);
        }
        self.metrics.deadlocks_resolved += 1;
        self.metrics.detection_latency_ticks += self.now - formed_at;
        self.abort(victim.txn);
    }

    /// Measurement-only cross-check, enabled by [`SimConfig::probe_audit`]
    /// (off by default): was the victim really on a wait-for cycle at the
    /// instant its abort executed? This consults the union of the site
    /// tables — a god's-eye view the protocol itself never has — purely to
    /// *count* phantom kills in [`Metrics::phantom_probe_aborts`]; the
    /// detection decision was already made by the probes alone.
    fn audit_probe_abort(&mut self, victim: Instance) {
        let mut wfg: WaitForGraph<Instance> = WaitForGraph::new();
        for (s, table) in self.sites.iter().enumerate() {
            for e in self.sys.db().entities_at(SiteId::from_idx(s)) {
                wfg.update_entity(e, table.entity_waits_for(e));
            }
        }
        let on_cycle = wfg
            .deadlocked_groups()
            .iter()
            .any(|grp| grp.contains(&victim));
        if !on_cycle {
            self.metrics.phantom_probe_aborts += 1;
        }
    }

    /// Global deadlock scan (periodic mode): waits-for cycle detection +
    /// victim abort, repeated until no cycle remains.
    fn deadlock_scan(&mut self) {
        loop {
            let mut edges: Vec<(Instance, Instance)> = Vec::new();
            for site in &self.sites {
                edges.extend(site.waits_for());
            }
            if !self.resolve_one_cycle(&edges) {
                return;
            }
        }
    }

    /// OnBlock mode: detects and resolves cycles from the incrementally
    /// maintained graph, repeating until none remain (an abort's releases
    /// retarget edges and could expose another cycle).
    fn resolve_incremental(&mut self) {
        loop {
            self.wfg_dirty = false;
            if self.wfg.is_empty() {
                return;
            }
            let edges = self.wfg.edges();
            if !self.resolve_one_cycle(&edges) {
                return;
            }
        }
    }

    /// Builds the transaction-level graph from instance edges (current
    /// epochs only), aborts one victim if a cycle exists. Returns whether
    /// it did.
    fn resolve_one_cycle(&mut self, edges: &[(Instance, Instance)]) -> bool {
        let k = self.sys.len();
        let mut g = DiGraph::new(k);
        for &(w, h) in edges {
            if !self.stale(w) && !self.stale(h) {
                g.add_edge(w.txn.idx(), h.txn.idx());
            }
        }
        let Some(cycle) = kplock_graph::find_cycle(&g) else {
            return false;
        };
        let members: Vec<Instance> = cycle
            .iter()
            .map(|&t| Instance {
                txn: TxnId::from_idx(t),
                epoch: self.coords[t].epoch,
            })
            .collect();
        let stamps: Vec<Stamp> = members.iter().map(|&m| self.stamp_of(m)).collect();
        let victim = probe::choose_victim(self.cfg.victim_policy, &members, &stamps);
        // Detection latency, approximated by the youngest wait among the
        // cycle's members (the cycle cannot predate its youngest edge):
        // ~0 for OnBlock, up to a scan interval here.
        let formation = self
            .waiting_since
            .iter()
            .filter(|&(&(inst, _), _)| !self.stale(inst) && cycle.contains(&inst.txn.idx()))
            .map(|(_, &t)| t)
            .max();
        if let Some(t0) = formation {
            self.metrics.detection_latency_ticks += self.now - t0;
        }
        self.metrics.deadlocks_resolved += 1;
        self.abort(victim.txn);
        true
    }

    fn abort(&mut self, txn: TxnId) {
        // The safety net every resolution path already guards (epoch
        // checks, member validation, commit checks): a committed
        // transaction must never be aborted — not by a probe, a wound, a
        // rejection, a scan, or a lease expiry. Violations are engine
        // bugs; the fault-injection property tests run straight into this.
        assert!(
            !self.coords[txn.idx()].committed,
            "aborting committed transaction {txn:?} at tick {}",
            self.now
        );
        let old = Instance {
            txn,
            epoch: self.coords[txn.idx()].epoch,
        };
        self.metrics.aborts += 1;
        if self.delegation {
            // Retention: uncontested cached grants survive the restart —
            // re-keyed to the successor epoch at the table, ledger, lease
            // and cache, all synchronously — so the restarted epoch
            // re-acquires them for free. This is where restart-heavy
            // hot-spot workloads earn their cache hits. Contested or
            // draining entries go down with the epoch.
            self.retain_cache_on_abort(txn, old);
            for d in &mut self.delegations {
                d.drop_owner(old);
            }
            self.deferred_revokes[txn.idx()].clear();
        }
        if self.track_leases {
            for leases in &mut self.leases {
                leases.drop_owner(old);
            }
        }
        // Drop waits and release locks at every site.
        for s in 0..self.sites.len() {
            let site_id = SiteId::from_idx(s);
            let cancelled = self.sites[s].cancel_waits(old);
            for &e in &cancelled.cancelled {
                self.pending_lock_step.remove(&(old, e));
                self.waiting_since.remove(&(old, e));
                self.edges_changed(site_id, e);
            }
            for (entity, grants) in cancelled
                .granted
                .into_iter()
                .chain(self.sites[s].release_all(old))
            {
                self.edges_changed(site_id, entity);
                for (n, _) in grants {
                    self.grant_queued(n, entity);
                }
            }
        }
        // Reset the coordinator for a fresh epoch.
        let t = self.sys.txn(txn);
        let c = &mut self.coords[txn.idx()];
        c.epoch += 1;
        c.done = vec![false; t.len()];
        c.issued = vec![false; t.len()];
        c.committed = false;
        // Jittered backoff (seeded, deterministic): without jitter,
        // symmetric workloads can re-collide forever under fixed latencies.
        let jitter = rand::Rng::gen_range(&mut self.rng, 0..=self.cfg.restart_backoff);
        self.queue.push(
            self.now + self.cfg.restart_backoff + jitter,
            EventKind::Restart(txn),
        );
    }

    /// The abort-time half of delegated retention: every cache entry of
    /// `old` over an entity that is uncontested (no waiter), not mid-
    /// revocation, and whose site is up, is re-keyed — table hold, ledger
    /// entry, lease and cache entry all move to the successor epoch in
    /// one synchronous step, preserving the lease clock. Everything else
    /// is dropped from the cache (the generic abort path below releases
    /// the holds and scrubs the ledger).
    fn retain_cache_on_abort(&mut self, txn: TxnId, old: Instance) {
        let new = Instance {
            txn,
            epoch: old.epoch + 1,
        };
        let mut entities: Vec<EntityId> = self.caches[txn.idx()].keys().copied().collect();
        entities.sort();
        for e in entities {
            let entry = self.caches[txn.idx()][&e];
            let site = self.sys.db().site_of(e);
            let s = site.idx();
            let retain = entry.inst == old
                && !self.down[s]
                && !entry.revoke_pending
                && !self.delegations[s].is_revoking(old, e)
                && self.sites[s].entity_waits_for(e).is_empty()
                && self.sites[s].holds(e, old).is_some();
            if !retain {
                self.caches[txn.idx()].remove(&e);
                continue;
            }
            let grants = self.sites[s].release(e, old);
            debug_assert!(grants.is_empty(), "uncontested releases grant nobody");
            let granted = self.sites[s].request(e, new, entry.mode);
            debug_assert!(granted, "re-keyed retention re-grants conflict-free");
            let _ = (grants, granted);
            self.delegations[s].rekey(old, new, e);
            if self.track_leases {
                self.leases[s].release(old, e);
                self.leases[s].grant(new, e, entry.mode, entry.lease);
            }
            let entry = self.caches[txn.idx()].get_mut(&e).expect("entry present");
            entry.inst = new;
            entry.in_use = false;
            entry.revoke_pending = false;
        }
    }

    /// A scheduled outage begins: the site's volatile state — lock table
    /// and probe memory — is wiped, and until recovery every delivery to
    /// it is dropped by the event loop. The lease ledger survives (it
    /// models durable grant records / client-held leases), anchoring
    /// recovery — except for delegated *cache residue*, which the crash
    /// clears on **both** sides: the coordinator cache entries die here
    /// (the site that backed them lost its ledger), and delegations whose
    /// owner already recorded its unlock — idle entries and completed
    /// drains — release their leases, so recovery cannot rebuild a hold
    /// that only a dead cache claimed and that nobody would ever release.
    /// Delegations whose lock section may still be open (mid-use, grant
    /// ack in flight, lifecycle gone remote) keep their lease and rebuild
    /// as plain holds, or expire and abort their owner — never silently
    /// vanish, which would let recovery re-grant an entity whose first
    /// holder's committed section is still open.
    fn on_crash(&mut self, site: SiteId) {
        let s = site.idx();
        self.down[s] = true;
        self.crash_at[s] = self.now;
        self.boot[s] = self.boot[s].wrapping_add(1);
        if self.delegation {
            for (inst, e, _lease, revoking) in self.delegations[s].entries() {
                let _ = revoking;
                let t = inst.txn.idx();
                let cached = match self.caches[t].get(&e) {
                    Some(entry) if entry.inst == inst => {
                        let in_use = entry.in_use;
                        self.caches[t].remove(&e);
                        Some(in_use)
                    }
                    _ => None,
                };
                // Keep the lease exactly when the owner's lock section
                // may still be *open* at its coordinator — the lock was
                // granted (and recorded) here, and no unlock has been
                // recorded for it yet. Recovery then rebuilds the hold or
                // aborts the expired owner, either way keeping the
                // committed history exclusive. The section is open when
                // the cached entry is mid-use, when the grant ack (or a
                // deferred revocation) is still in flight — a *lost* ack
                // still granted here — or when a plain re-grant moved the
                // hold's lifecycle remote. It is closed (release the
                // lease, nobody will ever unlock at this table) only for
                // idle residue and completed drains whose ack died with
                // the site: there the unlock is already on record.
                let keep_lease = match cached {
                    Some(in_use) => in_use,
                    None => {
                        !self.stale(inst)
                            && !self.coords[t].committed
                            && (self.lock_in_flight(inst.txn, e)
                                || self.holds_remotely(inst.txn, e)
                                || self.deferred_revokes[t].get(&e) == Some(&inst))
                    }
                };
                if !keep_lease && self.track_leases {
                    self.leases[s].release(inst, e);
                }
            }
            self.delegations[s].clear();
            // Any stray cache entry over this site's entities dies too
            // (defensive: ledger and cache are kept in sync, but a crash
            // must leave no cache claiming a wiped table).
            let sys = self.sys;
            for cache in &mut self.caches {
                cache.retain(|&e, _| sys.db().site_of(e) != site);
            }
            for deferred in &mut self.deferred_revokes {
                deferred.retain(|&e, _| sys.db().site_of(e) != site);
            }
        }
        self.sites[s] = SiteTable::new(self.cfg.table);
        self.probe_state[s].clear();
        // Sync the detectors to the wiped table: every wait edge this
        // site induced is gone until the waits re-form. Removals cannot
        // create a cycle, so no resolution pass is needed here.
        let entities: Vec<EntityId> = self.sys.db().entities_at(site).collect();
        for e in entities {
            self.edges_changed(site, e);
        }
    }

    /// The outage ends. Recovery is three steps, in order:
    ///
    /// 1. **Rebuild** the lock table from the lease ledger: every live,
    ///    current-epoch holder whose [`Lease`] survived the outage is
    ///    re-granted its lock (conflict-free by construction — the ledger
    ///    mirrors a consistent holder set).
    /// 2. **Expire** the rest: a holder whose lease lapsed has lost a
    ///    lock it thinks it holds; running it further would update
    ///    without a covering lock, so it is aborted (counted in
    ///    [`Metrics::leases_expired`]) and restarts with its birth stamp.
    /// 3. **Re-deliver**: every coordinator re-sends its
    ///    issued-but-unacknowledged requests targeting this site — the
    ///    retransmission a real client performs when its server comes
    ///    back, compressed into the recovery tick. Blocked requests
    ///    re-queue, wait edges re-form, and (under Probe) the re-formed
    ///    edges launch fresh probes from the site's cleared edge memory.
    fn on_recover(&mut self, site: SiteId) {
        let s = site.idx();
        if !self.down[s] {
            // Defensive only: validation rejects overlapping outages, so
            // every recovery should find its site down.
            return;
        }
        self.down[s] = false;
        self.metrics.recoveries += 1;
        let crash_at = self.crash_at[s];
        let ledger = self.leases[s].entries();
        self.leases[s].clear();
        let mut expired: Vec<Instance> = Vec::new();
        for (inst, e, mode, lease) in ledger {
            if self.stale(inst) || self.coords[inst.txn.idx()].committed {
                // The owner moved on while the site was down (aborted
                // elsewhere, or committed after its release was already
                // processed here pre-crash); its lease is garbage.
                continue;
            }
            if lease.survives_outage(crash_at, self.now) {
                let granted = self.sites[s].request(e, inst, mode);
                debug_assert!(granted, "surviving holders rebuild conflict-free");
                let _ = granted;
                self.note_grant(site, inst, e);
            } else {
                self.metrics.leases_expired += 1;
                expired.push(inst);
            }
        }
        expired.sort();
        expired.dedup();
        for inst in expired {
            if !self.stale(inst) {
                self.abort(inst.txn);
            }
        }
        for t in 0..self.sys.len() {
            let txn = TxnId::from_idx(t);
            if self.coords[t].committed {
                continue;
            }
            let pending: Vec<usize> = (0..self.coords[t].done.len())
                .filter(|&v| self.coords[t].issued[v] && !self.coords[t].done[v])
                .filter(|&v| {
                    let e = self.sys.txn(txn).step(StepId::from_idx(v)).entity;
                    self.sys.db().site_of(e) == site
                })
                .collect();
            for v in pending {
                self.send_step(txn, v);
            }
        }
    }

    /// The coordinator retransmission timer fired: if the tagged epoch is
    /// still current and uncommitted, re-send every
    /// issued-but-unacknowledged step request (sites handle the
    /// duplicates idempotently) and re-arm. A stale epoch's timer dies
    /// here; the Restart handler armed a new one for the successor.
    fn on_retransmit(&mut self, txn: TxnId, epoch: u32) {
        let c = &self.coords[txn.idx()];
        if c.epoch != epoch || c.committed {
            return;
        }
        let pending: Vec<usize> = (0..c.done.len())
            .filter(|&v| c.issued[v] && !c.done[v])
            .collect();
        for v in pending {
            self.send_step(txn, v);
        }
        self.queue.push(
            self.now + self.cfg.faults.retransmit_after,
            EventKind::RetransmitCheck(txn, epoch),
        );
    }

    /// The [`SimConfig::invariant_audit`] harness: panics if any site's
    /// table violates its structural invariants (any pairwise-incompatible
    /// co-held mode pair under the full compatibility matrix — `S`+`X`,
    /// `S`+`IX`, `X`+anything —, a non-holder upgrader, a pending upgrade
    /// its holder already covers, an owner both holding and waiting). Run
    /// after every event that can mutate a table —
    /// site events, coordinator events (whose aborts release locks at
    /// every site), deadlock scans and recoveries — so a violation names
    /// the exact tick it first became observable.
    fn audit_tables(&self) {
        for (s, table) in self.sites.iter().enumerate() {
            if let Err(e) = table.check_invariants() {
                panic!(
                    "lock-table invariant violated at site {s} tick {}: {e}",
                    self.now
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LatencyModel;
    use kplock_model::{Database, TxnBuilder};

    fn pair(s1: &str, s2: &str, spec: &[(&str, usize)]) -> TxnSystem {
        let db = Database::from_spec(spec);
        let mut b1 = TxnBuilder::new(&db, "T1");
        b1.script(s1).unwrap();
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "T2");
        b2.script(s2).unwrap();
        let t2 = b2.build().unwrap();
        TxnSystem::new(db, vec![t1, t2])
    }

    #[test]
    fn runs_non_conflicting_pair() {
        let sys = pair("Lx x Ux", "Ly y Uy", &[("x", 0), ("y", 1)]);
        let r = run(&sys, &SimConfig::default()).unwrap();
        assert!(r.finished());
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert!(!r.timed_out());
        assert_eq!(r.metrics.committed, 2);
        assert_eq!(r.metrics.aborts, 0);
        r.audit.legal.as_ref().unwrap();
        assert!(r.audit.serializable);
    }

    #[test]
    fn serializes_conflicting_pair_via_locks() {
        let sys = pair("Lx x Ux", "Lx x Ux", &[("x", 0)]);
        let r = run(&sys, &SimConfig::default()).unwrap();
        assert!(r.finished());
        assert!(r.audit.serializable);
        assert!(r.metrics.lock_wait_ticks > 0 || r.metrics.committed == 2);
    }

    #[test]
    fn resolves_deadlock_and_commits() {
        // Opposite-order two-phase: guaranteed deadlock under fixed latency.
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 0)]);
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(5),
            ..Default::default()
        };
        let r = run(&sys, &cfg).unwrap();
        assert!(r.finished(), "deadlock resolution must unblock the run");
        assert!(r.metrics.deadlocks_resolved >= 1);
        assert!(r.metrics.aborts >= 1);
        r.audit.legal.as_ref().unwrap();
        assert!(r.audit.serializable, "2PL commits are serializable");
    }

    #[test]
    fn deterministic_across_runs() {
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 0)]);
        let cfg = SimConfig {
            latency: LatencyModel::Uniform(1, 20),
            seed: 7,
            ..Default::default()
        };
        let a = run(&sys, &cfg).unwrap();
        let b = run(&sys, &cfg).unwrap();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.committed_epoch, b.committed_epoch);
    }

    #[test]
    fn invalid_latency_range_is_a_typed_error_not_a_panic() {
        let sys = pair("Lx x Ux", "Ly y Uy", &[("x", 0), ("y", 1)]);
        let cfg = SimConfig {
            latency: LatencyModel::Uniform(30, 3),
            ..Default::default()
        };
        // Before validation existed this panicked mid-run inside
        // `rand::gen_range` on the first message send.
        assert_eq!(
            run(&sys, &cfg).unwrap_err(),
            ConfigError::EmptyLatencyRange { lo: 30, hi: 3 }
        );
    }

    #[test]
    fn max_time_exhaustion_is_reported_as_timeout() {
        // A run that cannot finish in the budget: latency alone exceeds
        // max_time, and the periodic scan keeps the queue alive, so the
        // old report would have quietly said "not finished" with no cause.
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 0)]);
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(40),
            max_time: 60,
            deadlock_scan_interval: 25,
            ..Default::default()
        };
        let r = run(&sys, &cfg).unwrap();
        assert!(!r.finished());
        assert_eq!(r.outcome, RunOutcome::TimedOut);
        assert!(r.timed_out());
        assert_eq!(r.metrics.committed, 0);
        // In-flight transactions publish no commit epoch — the report
        // cannot be misread as "committed at its current epoch".
        assert_eq!(r.committed_epoch, vec![None, None]);
        // The same system with the default budget completes.
        let r = run(
            &sys,
            &SimConfig {
                latency: LatencyModel::Fixed(40),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.outcome, RunOutcome::Completed);
    }

    #[test]
    fn livelock_shaped_run_times_out_rather_than_lying() {
        // Opposite-order deadlock with zero backoff and a budget that ends
        // mid-churn: the victim has aborted and one transaction even
        // committed, but the run is *not* done — the old report was
        // indistinguishable from a clean completion here (committed count
        // aside), the outcome now says TimedOut explicitly.
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 0)]);
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(5),
            restart_backoff: 0,
            max_time: 100,
            deadlock_scan_interval: 10,
            ..Default::default()
        };
        let r = run(&sys, &cfg).unwrap();
        assert!(!r.finished());
        assert_eq!(r.outcome, RunOutcome::TimedOut);
        assert!(r.timed_out());
        assert_eq!(r.metrics.committed, 1, "cut off with work in flight");
        assert!(r.metrics.aborts >= 1, "the deadlock did churn first");
        // Ten more ticks of budget and the same run completes cleanly.
        let r = run(
            &sys,
            &SimConfig {
                max_time: 120,
                ..cfg
            },
        )
        .unwrap();
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert_eq!(r.metrics.committed, 2);
    }

    #[test]
    fn on_block_detection_resolves_deadlocks_immediately() {
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 0)]);
        let periodic = SimConfig {
            latency: LatencyModel::Fixed(5),
            ..Default::default()
        };
        let onblock = SimConfig {
            resolution: crate::config::DeadlockDetection::OnBlock.into(),
            ..periodic.clone()
        };
        let rp = run(&sys, &periodic).unwrap();
        let rb = run(&sys, &onblock).unwrap();
        assert!(rp.finished() && rb.finished());
        assert!(rb.metrics.deadlocks_resolved >= 1);
        assert!(rb.audit.serializable);
        // The periodic scan waits out the scan interval before resolving;
        // on-block detection fires the moment the cycle forms.
        assert!(
            rb.metrics.makespan < rp.metrics.makespan,
            "on-block {} vs periodic {}",
            rb.metrics.makespan,
            rp.metrics.makespan
        );
        // Determinism holds in OnBlock mode too.
        let rb2 = run(&sys, &onblock).unwrap();
        assert_eq!(rb.metrics, rb2.metrics);
    }

    #[test]
    fn probe_detection_resolves_the_guaranteed_deadlock() {
        // Same guaranteed cycle, but x and y on different sites so the
        // probe must actually cross the network. No global wait-for graph
        // is consulted anywhere on this path.
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 1)]);
        let base = SimConfig {
            latency: LatencyModel::Fixed(5),
            probe_audit: true,
            ..Default::default()
        };
        let probe = SimConfig {
            resolution: DeadlockDetection::Probe.into(),
            ..base.clone()
        };
        let periodic = SimConfig {
            resolution: DeadlockDetection::Periodic.into(),
            ..base.clone()
        };
        let rp = run(&sys, &probe).unwrap();
        let rs = run(&sys, &periodic).unwrap();
        assert_eq!(rp.outcome, RunOutcome::Completed);
        assert!(rp.metrics.deadlocks_resolved >= 1);
        assert!(rp.metrics.aborts >= 1);
        assert!(rp.audit.serializable);
        assert_eq!(rp.metrics.phantom_probe_aborts, 0);
        // Distributed detection pays in messages and latency the
        // centralized scan never sees.
        assert!(rp.metrics.probe_messages > 0, "probes must cross sites");
        assert!(rp.metrics.detection_latency_ticks > 0);
        // Same victim as the global scan (same policy, same cycle): the
        // committed/aborted sets agree even though ticks differ.
        assert_eq!(rp.metrics.committed, rs.metrics.committed);
        let aborted = |r: &SimReport| -> Vec<usize> {
            r.committed_epoch
                .iter()
                .enumerate()
                .filter(|&(_, &e)| e.is_some_and(|ep| ep > 0))
                .map(|(i, _)| i)
                .collect()
        };
        assert_eq!(aborted(&rp), aborted(&rs));
        // Determinism.
        let rp2 = run(&sys, &probe).unwrap();
        assert_eq!(rp.metrics, rp2.metrics);
    }

    #[test]
    fn probe_detection_handles_single_site_cycles_locally() {
        // Both entities at one site: the chase closes without leaving the
        // site, so detection costs no probe messages — only the abort
        // order crosses the network.
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 0)]);
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(5),
            resolution: DeadlockDetection::Probe.into(),
            probe_audit: true,
            ..Default::default()
        };
        let r = run(&sys, &cfg).unwrap();
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert!(r.metrics.deadlocks_resolved >= 1);
        assert_eq!(r.metrics.probe_messages, 0, "local cycles need no wire");
        assert_eq!(r.metrics.phantom_probe_aborts, 0);
        assert!(r.audit.serializable);
    }

    #[test]
    fn probe_detection_survives_grant_retargeting_sweep() {
        // The cycle-at-release scenario that once only OnBlock was tested
        // against: every arrival timing must finish under probes too, and
        // agree with the periodic scan on what committed.
        let db = Database::from_spec(&[("x", 0), ("y", 1)]);
        let mut b1 = TxnBuilder::new(&db, "T1");
        b1.script("Lx x Ux").unwrap();
        b1.script("Ly y Uy").unwrap(); // parallel chain: no cross edge
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "T2");
        b2.script("Ly Lx y x Uy Ux").unwrap();
        let t2 = b2.build().unwrap();
        let mut b3 = TxnBuilder::new(&db, "T3");
        b3.script("Lx x Ux").unwrap();
        let t3 = b3.build().unwrap();
        let sys = TxnSystem::new(db, vec![t1, t2, t3]);
        let mut deadlocks = 0;
        for a1 in 0..4u64 {
            for a2 in 0..4u64 {
                for a3 in 0..4u64 {
                    let arrivals = vec![a1 * 3, a2 * 3, a3 * 3];
                    let periodic = SimConfig {
                        latency: LatencyModel::Fixed(5),
                        ..Default::default()
                    };
                    let probe = SimConfig {
                        resolution: DeadlockDetection::Probe.into(),
                        ..periodic.clone()
                    };
                    let rp = run_with_arrivals(&sys, &periodic, &arrivals).unwrap();
                    let rb = run_with_arrivals(&sys, &probe, &arrivals).unwrap();
                    assert!(rp.finished(), "periodic hung at {arrivals:?}");
                    assert!(
                        rb.finished(),
                        "probe hung at {arrivals:?}: {:?}",
                        rb.outcome
                    );
                    assert!(rb.audit.serializable);
                    deadlocks += rb.metrics.deadlocks_resolved;
                }
            }
        }
        assert!(deadlocks > 0, "sweep never provoked a deadlock");
    }

    #[test]
    fn stale_unlock_after_abort_is_ignored() {
        // The race the epoch check at `on_site` exists for. T2 runs two
        // parallel chains: it holds b and has its *release of b in
        // flight* while blocked on x; T1 holds x and queues for b. For
        // ten ticks the site tables show the cycle T1→T2→T1 (the scan
        // cannot know b's release is already on the wire), the scan fires
        // inside that window and aborts T2 — freeing b a second time,
        // handing it to T1 — and then T2's stale UnlockRequest lands at a
        // table where T2 holds nothing. Without the epoch check the table
        // panics "release by non-holder"; with it the message is ignored
        // and the run completes. (A *phantom* deadlock: distributed
        // detection killing a transaction that was already getting out of
        // the way.)
        let db = Database::from_spec(&[("x", 0), ("b", 1)]);
        let mut b1 = TxnBuilder::new(&db, "T1");
        b1.script("Lx x Lb b Ub Ux").unwrap();
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "T2");
        b2.script("Lb b b Ub").unwrap(); // extra update delays the unlock
        b2.script("Lx x Ux").unwrap(); // parallel chain blocks on x
        let t2 = b2.build().unwrap();
        let sys = TxnSystem::new(db, vec![t1, t2]);
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(5),
            deadlock_scan_interval: 7,
            ..Default::default()
        };
        let r = run(&sys, &cfg).unwrap();
        assert!(r.finished(), "stale release must not wedge the run");
        // The window really opened: the scan saw the transient cycle and
        // aborted, so a dead-epoch unlock was in flight at that moment.
        assert!(
            r.metrics.deadlocks_resolved >= 1,
            "scenario must trigger the phantom-deadlock window"
        );
        assert!(r.metrics.aborts >= 1);
        r.audit.legal.as_ref().unwrap();
        assert!(r.audit.serializable);
        // Same race under probe detection, where abort orders also travel
        // the network and widen the window.
        let probe = SimConfig {
            resolution: DeadlockDetection::Probe.into(),
            ..cfg
        };
        let r = run(&sys, &probe).unwrap();
        assert!(r.finished());
        assert!(r.audit.serializable);
    }

    #[test]
    fn prevention_schemes_resolve_the_guaranteed_deadlock_without_detection() {
        use crate::config::PreventionScheme;
        // The opposite-order pair that deadlocks under every detection
        // scheme. Prevention must complete it with *zero* detected
        // deadlocks, zero probe traffic, and at least one prevention
        // restart — the whole resolution cost moved to the restart side.
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 1)]);
        for scheme in [
            PreventionScheme::WoundWait,
            PreventionScheme::WaitDie,
            PreventionScheme::NoWait,
        ] {
            let cfg = SimConfig {
                latency: LatencyModel::Fixed(5),
                resolution: scheme.into(),
                ..Default::default()
            };
            let r = run(&sys, &cfg).unwrap();
            assert_eq!(r.outcome, RunOutcome::Completed, "{scheme:?}");
            assert_eq!(r.metrics.committed, 2);
            assert_eq!(
                r.metrics.deadlocks_resolved, 0,
                "{scheme:?} detects nothing"
            );
            assert_eq!(r.metrics.probe_messages, 0);
            assert_eq!(r.metrics.detection_latency_ticks, 0);
            assert!(r.metrics.prevention_restarts >= 1, "{scheme:?}");
            assert_eq!(
                r.metrics.aborts, r.metrics.prevention_restarts,
                "every abort under prevention is a prevention restart"
            );
            r.audit.legal.as_ref().unwrap();
            assert!(r.audit.serializable, "{scheme:?}");
            // Deterministic like every other scheme.
            let r2 = run(&sys, &cfg).unwrap();
            assert_eq!(r.metrics, r2.metrics);
            assert_eq!(r.committed_epoch, r2.committed_epoch);
        }
    }

    #[test]
    fn prevention_victims_follow_the_timestamp_order() {
        use crate::config::PreventionScheme;
        // Births are (arrival, index) = (0,0) and (0,1): T1 is older. In
        // wound-wait T1 wounds T2 on conflict; in wait-die T2 dies when it
        // requests against T1. Either way the *younger* transaction is the
        // one that restarts, and the elder commits at epoch 0.
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 0)]);
        for scheme in [PreventionScheme::WoundWait, PreventionScheme::WaitDie] {
            let cfg = SimConfig {
                latency: LatencyModel::Fixed(5),
                resolution: scheme.into(),
                ..Default::default()
            };
            let r = run(&sys, &cfg).unwrap();
            assert!(r.finished(), "{scheme:?}");
            assert_eq!(
                r.committed_epoch[0],
                Some(0),
                "the elder is never restarted"
            );
            assert!(
                r.committed_epoch[1].unwrap() >= 1,
                "the younger pays the restart"
            );
        }
    }

    fn many(scripts: &[&str], spec: &[(&str, usize)]) -> TxnSystem {
        let db = Database::from_spec(spec);
        let txns = scripts
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut b = TxnBuilder::new(&db, format!("T{}", i + 1));
                b.script(s).unwrap();
                b.build().unwrap()
            })
            .collect();
        TxnSystem::new(db, txns)
    }

    #[test]
    fn avoid_certified_set_runs_clean_of_all_deadlock_machinery() {
        use crate::config::{AvoidPlan, DeadlockResolution};
        // Three transactions, all locking in ascending entity order: the
        // whole set certifies, so the run must show *zero* traces of any
        // deadlock handling — no resolutions, no restarts, no probes, no
        // aborts of any kind — while committing serializably.
        let sys = many(
            &["Lx Ly x y Ux Uy", "Lx Ly x y Ux Uy", "Ly Lz y z Uy Uz"],
            &[("x", 0), ("y", 1), ("z", 2)],
        );
        let plan = AvoidPlan::synthesize(&sys);
        assert!(plan.fully_certified());
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(5),
            resolution: DeadlockResolution::Avoid,
            avoid: Some(plan),
            invariant_audit: true,
            ..Default::default()
        };
        let r = run(&sys, &cfg).unwrap();
        assert!(r.finished());
        assert_eq!(r.metrics.deadlocks_resolved, 0);
        assert_eq!(r.metrics.prevention_restarts, 0);
        assert_eq!(r.metrics.probe_messages, 0);
        assert_eq!(r.metrics.aborts, 0, "certified transactions never abort");
        assert_eq!(r.metrics.avoid_certified, 3);
        assert_eq!(r.metrics.avoid_fallbacks, 0);
        r.audit.legal.as_ref().unwrap();
        assert!(r.audit.serializable);
        // Deterministic like every other arm.
        let r2 = run(&sys, &cfg).unwrap();
        assert_eq!(r.metrics, r2.metrics);
    }

    #[test]
    fn avoid_mixed_set_shields_the_certified_and_meters_the_rest() {
        use crate::config::{AvoidPlan, DeadlockResolution};
        // The guaranteed deadlock pair: T1 certifies, T2 opposes the lock
        // order and falls back to wound-wait. No cycle may ever form, the
        // certified transaction must never restart, and the fallback's
        // restarts are accounted as prevention restarts.
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 0)]);
        let plan = AvoidPlan::synthesize(&sys);
        assert!(plan.is_certified(TxnId(0)) && !plan.is_certified(TxnId(1)));
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(5),
            resolution: DeadlockResolution::Avoid,
            avoid: Some(plan),
            invariant_audit: true,
            ..Default::default()
        };
        let r = run(&sys, &cfg).unwrap();
        assert!(r.finished());
        assert_eq!(r.metrics.deadlocks_resolved, 0, "no cycle ever forms");
        assert_eq!(r.metrics.avoid_certified, 1);
        assert_eq!(r.metrics.avoid_fallbacks, 1);
        assert_eq!(
            r.committed_epoch[0],
            Some(0),
            "the certified transaction is never wounded"
        );
        assert_eq!(
            r.metrics.aborts, r.metrics.prevention_restarts,
            "every avoid-arm abort is a fallback restart"
        );
        r.audit.legal.as_ref().unwrap();
        assert!(r.audit.serializable);
    }

    #[test]
    fn avoid_rejects_missing_and_mismatched_plans() {
        use crate::config::{AvoidPlan, DeadlockResolution};
        let sys = pair("Lx x Ux", "Lx x Ux", &[("x", 0)]);
        // Absent plan: typed error from validation, not a mid-run panic.
        let cfg = SimConfig {
            resolution: DeadlockResolution::Avoid,
            ..Default::default()
        };
        assert_eq!(run(&sys, &cfg).unwrap_err(), ConfigError::AvoidWithoutPlan);
        // A plan synthesized for a different transaction set is refused
        // before the engine starts.
        let other = pair("Lx x Ux", "Lx x Ux", &[("x", 0), ("y", 0)]);
        let mut three = other.txns().to_vec();
        three.push(three[0].clone());
        let other = TxnSystem::new(other.db().clone(), three);
        let cfg = SimConfig {
            resolution: DeadlockResolution::Avoid,
            avoid: Some(AvoidPlan::synthesize(&other)),
            ..Default::default()
        };
        assert_eq!(
            run(&sys, &cfg).unwrap_err(),
            ConfigError::AvoidPlanMismatch {
                plan_txns: 3,
                system_txns: 2
            }
        );
    }

    #[test]
    fn prevention_handles_shared_modes() {
        use crate::config::PreventionScheme;
        // Two shared readers coexist without consulting timestamps; an
        // exclusive writer conflicts and the scheme decides.
        let sys = pair("SLx rx Ux", "SLx rx Ux", &[("x", 0)]);
        for scheme in [
            PreventionScheme::WoundWait,
            PreventionScheme::WaitDie,
            PreventionScheme::NoWait,
        ] {
            let cfg = SimConfig {
                latency: LatencyModel::Fixed(5),
                resolution: scheme.into(),
                ..Default::default()
            };
            let r = run(&sys, &cfg).unwrap();
            assert!(r.finished());
            assert_eq!(r.metrics.prevention_restarts, 0, "S+S never conflicts");
            assert_eq!(r.metrics.lock_wait_ticks, 0);
            assert!(r.audit.serializable);
        }
    }

    #[test]
    fn timed_out_run_reports_elapsed_budget_not_last_commit() {
        // Same cutoff scenario as above: one commit early, then churn
        // until max_time. Throughput must be charged the full budget.
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 0)]);
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(5),
            restart_backoff: 0,
            max_time: 100,
            deadlock_scan_interval: 10,
            ..Default::default()
        };
        let r = run(&sys, &cfg).unwrap();
        assert_eq!(r.outcome, RunOutcome::TimedOut);
        assert_eq!(r.metrics.elapsed_ticks, cfg.max_time);
        assert!(r.metrics.makespan < r.metrics.elapsed_ticks);
        let honest = r.metrics.throughput_per_kilotick();
        let inflated = r.metrics.committed as f64 * 1000.0 / r.metrics.makespan as f64;
        assert!(honest < inflated, "the unproductive tail must count");
        // A completed run's elapsed time *is* its makespan — the old
        // reading, unchanged.
        let r = run(
            &sys,
            &SimConfig {
                max_time: 10_000,
                ..cfg
            },
        )
        .unwrap();
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert_eq!(r.metrics.elapsed_ticks, r.metrics.makespan);
    }

    #[test]
    fn shared_readers_run_without_waiting() {
        // Two pure readers of x under shared locks: no queueing at all.
        let sys = pair("SLx rx Ux", "SLx rx Ux", &[("x", 0)]);
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(5),
            ..Default::default()
        };
        let r = run(&sys, &cfg).unwrap();
        assert!(r.finished());
        assert_eq!(r.metrics.lock_wait_ticks, 0, "S+S never queues");
        r.audit.legal.as_ref().unwrap(); // overlapping S sections are legal
        assert!(r.audit.serializable);
        // The same pair with exclusive locks serializes by waiting.
        let sys = pair("Lx x Ux", "Lx x Ux", &[("x", 0)]);
        let r = run(&sys, &cfg).unwrap();
        assert!(r.metrics.lock_wait_ticks > 0, "X+X must queue");
    }

    #[test]
    fn reader_writer_mix_is_serializable() {
        // One reader, one writer of x; plus a disjoint write each.
        let sys = pair(
            "SLx rx Ux Ly y Uy",
            "Lx x Ux Lz z Uz",
            &[("x", 0), ("y", 0), ("z", 1)],
        );
        for seed in 0..20 {
            let cfg = SimConfig {
                latency: LatencyModel::Uniform(1, 20),
                seed,
                ..Default::default()
            };
            let r = run(&sys, &cfg).unwrap();
            assert!(r.finished());
            r.audit.legal.as_ref().unwrap();
            assert!(r.audit.serializable);
        }
    }

    #[test]
    fn crash_scheduled_for_unknown_site_is_a_typed_error() {
        use crate::fault::{FaultPlan, FaultPlanError, SiteCrash};
        let sys = pair("Lx x Ux", "Ly y Uy", &[("x", 0), ("y", 1)]);
        let cfg = SimConfig {
            faults: FaultPlan {
                crashes: vec![SiteCrash {
                    site: 5,
                    at: 10,
                    down_for: 10,
                }],
                ..FaultPlan::none()
            },
            ..Default::default()
        };
        assert_eq!(
            run(&sys, &cfg).unwrap_err(),
            ConfigError::BadFaultPlan(FaultPlanError::CrashSiteOutOfRange { site: 5, sites: 2 })
        );
    }

    #[test]
    fn lossy_channels_with_retransmission_still_commit_everything() {
        use crate::fault::FaultPlan;
        // Heavy loss on every channel; retransmission recovers each lost
        // request or acknowledgement. The committed set must equal the
        // fault-free run's, and the audit must stay clean.
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 1)]);
        for seed in 0..10 {
            let cfg = SimConfig {
                latency: LatencyModel::Fixed(5),
                invariant_audit: true,
                faults: FaultPlan::lossy(seed, 0.3, 0.1, 0.1),
                max_time: 500_000,
                ..Default::default()
            };
            let r = run(&sys, &cfg).unwrap();
            assert_eq!(r.outcome, RunOutcome::Completed, "fault seed {seed}");
            assert_eq!(r.metrics.committed, 2);
            assert!(r.metrics.messages_dropped > 0, "loss must actually bite");
            r.audit.legal.as_ref().unwrap();
            assert!(r.audit.serializable);
            // Faulty runs replay bit-identically too (two seeded RNGs).
            let r2 = run(&sys, &cfg).unwrap();
            assert_eq!(r.metrics, r2.metrics);
            assert_eq!(r.committed_epoch, r2.committed_epoch);
        }
    }

    #[test]
    fn duplication_only_plans_are_absorbed_idempotently() {
        use crate::fault::FaultPlan;
        // Every message duplicated, nothing lost: each handler sees each
        // payload twice and must absorb the second copy — the committed
        // set, legality and serializability all match the fault-free run.
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 1)]);
        let clean = run(
            &sys,
            &SimConfig {
                latency: LatencyModel::Fixed(5),
                ..Default::default()
            },
        )
        .unwrap();
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(5),
            invariant_audit: true,
            faults: FaultPlan {
                duplication: 1.0,
                reorder_window: 6,
                ..FaultPlan::none()
            },
            ..Default::default()
        };
        let r = run(&sys, &cfg).unwrap();
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert_eq!(r.metrics.committed, clean.metrics.committed);
        assert!(r.metrics.messages_duplicated > 0);
        assert_eq!(r.metrics.messages_dropped, 0);
        r.audit.legal.as_ref().unwrap();
        assert!(r.audit.serializable);
    }

    #[test]
    fn crash_recovery_rebuilds_surviving_holders_and_completes() {
        use crate::fault::{FaultPlan, SiteCrash};
        // Site 0 crashes mid-run and comes back 30 ticks later with
        // unbounded leases: every holder is rebuilt, every in-flight
        // request re-delivered, and the run completes without a single
        // lease expiry. Retransmission is ON so requests dropped during
        // the outage are retried even when the recovery re-delivery's
        // own messages are unlucky.
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 1)]);
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(5),
            invariant_audit: true,
            faults: FaultPlan {
                retransmit_after: 100,
                crashes: vec![SiteCrash {
                    site: 0,
                    at: 12,
                    down_for: 30,
                }],
                ..FaultPlan::none()
            },
            max_time: 500_000,
            ..Default::default()
        };
        let r = run(&sys, &cfg).unwrap();
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert_eq!(r.metrics.committed, 2);
        assert_eq!(r.metrics.recoveries, 1);
        assert_eq!(r.metrics.leases_expired, 0, "unbounded leases all survive");
        r.audit.legal.as_ref().unwrap();
        assert!(r.audit.serializable);
        // Deterministic replay.
        let r2 = run(&sys, &cfg).unwrap();
        assert_eq!(r.metrics, r2.metrics);
    }

    #[test]
    fn expired_leases_abort_their_holders_at_recovery() {
        use crate::fault::{FaultPlan, SiteCrash};
        // A long outage against a short lease ttl: whoever held a lock at
        // the crashed site when it went down loses it, is aborted at
        // recovery (leases_expired counts the lost grants), and restarts
        // with its birth stamp — the run still completes and audits clean.
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 1)]);
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(5),
            invariant_audit: true,
            faults: FaultPlan {
                retransmit_after: 100,
                lease_ttl: 10,
                crashes: vec![SiteCrash {
                    site: 0,
                    at: 12,
                    down_for: 60,
                }],
                ..FaultPlan::none()
            },
            max_time: 500_000,
            ..Default::default()
        };
        let r = run(&sys, &cfg).unwrap();
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert_eq!(r.metrics.committed, 2);
        assert_eq!(r.metrics.recoveries, 1);
        assert!(
            r.metrics.leases_expired >= 1,
            "a 60-tick outage must outlive a 10-tick lease"
        );
        assert!(r.metrics.aborts >= 1, "the expired holder restarts");
        r.audit.legal.as_ref().unwrap();
        assert!(r.audit.serializable);
    }

    #[test]
    fn probe_detection_survives_lossy_channels() {
        use crate::fault::FaultPlan;
        // The cross-site guaranteed deadlock under probes with loss: a
        // dropped probe or abort order may lose the first chase, but the
        // retransmitted blocked request re-triggers probes for the live
        // edges, so the cycle is eventually found and the run completes.
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 1)]);
        let mut deadlocks = 0;
        for seed in 0..10 {
            let cfg = SimConfig {
                latency: LatencyModel::Fixed(5),
                resolution: DeadlockDetection::Probe.into(),
                invariant_audit: true,
                faults: FaultPlan::lossy(seed, 0.25, 0.0, 0.0),
                max_time: 500_000,
                ..Default::default()
            };
            let r = run(&sys, &cfg).unwrap();
            assert_eq!(r.outcome, RunOutcome::Completed, "fault seed {seed}");
            assert!(r.audit.serializable);
            deadlocks += r.metrics.deadlocks_resolved;
        }
        // Loss can defuse individual timings (a dropped request breaks
        // the symmetry), but across the sweep the cycle must both form
        // and be resolved — through lost probes, thanks to re-chasing.
        assert!(deadlocks >= 1, "no seed ever formed the cycle");
    }

    #[test]
    fn wound_wait_survives_lost_wound_orders() {
        use crate::fault::FaultPlan;
        // Under wound-wait a lost Wound message would strand the elder in
        // the queue forever; the retransmitted elder request re-derives
        // and re-sends the wounds, so every seed completes.
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 1)]);
        for seed in 0..10 {
            let cfg = SimConfig {
                latency: LatencyModel::Fixed(5),
                resolution: crate::config::PreventionScheme::WoundWait.into(),
                invariant_audit: true,
                faults: FaultPlan::lossy(seed, 0.3, 0.1, 0.1),
                max_time: 500_000,
                ..Default::default()
            };
            let r = run(&sys, &cfg).unwrap();
            assert_eq!(r.outcome, RunOutcome::Completed, "fault seed {seed}");
            assert_eq!(r.metrics.deadlocks_resolved, 0);
            assert!(r.audit.serializable);
        }
    }

    #[test]
    fn unsafe_locking_can_commit_non_serializable_history() {
        // The classic unsafe pair. With asymmetric latencies, T2 slips its
        // y-section between T1's x- and y-sections. Search a few seeds.
        let sys = pair("Lx x Ux Ly y Uy", "Ly y Uy Lx x Ux", &[("x", 0), ("y", 0)]);
        let mut saw_anomaly = false;
        for seed in 0..200 {
            let cfg = SimConfig {
                latency: LatencyModel::Uniform(1, 50),
                seed,
                ..Default::default()
            };
            let r = run(&sys, &cfg).unwrap();
            assert!(r.finished());
            r.audit.legal.as_ref().unwrap();
            if !r.audit.serializable {
                saw_anomaly = true;
                break;
            }
        }
        assert!(
            saw_anomaly,
            "an unsafe system should exhibit a non-serializable committed history"
        );
    }

    #[test]
    fn delegation_halves_uncontested_lock_traffic() {
        use crate::config::Delegation;
        // Two disjoint transactions: every grant delegates and every
        // unlock is serviced from the coordinator's cache. The acquire/
        // release wire traffic must drop to at most half the remote
        // baseline (the unlock round-trip vanishes), without a single
        // revocation and without inflating site-side `lock_requests`.
        let sys = pair("Lx x Ux", "Ly y Uy", &[("x", 0), ("y", 1)]);
        let base = SimConfig {
            latency: LatencyModel::Fixed(5),
            invariant_audit: true,
            ..Default::default()
        };
        let off = run(&sys, &base).unwrap();
        let on_cfg = SimConfig {
            delegation: Delegation::On,
            ..base
        };
        let on = run(&sys, &on_cfg).unwrap();
        assert_eq!(on.outcome, RunOutcome::Completed);
        assert_eq!(on.metrics.committed, 2);
        assert!(on.metrics.cache_hits >= 2, "each unlock is a local hit");
        assert!(on.metrics.messages_saved >= 4, "2 wire messages per hit");
        assert_eq!(on.metrics.revocations, 0, "nothing ever conflicts");
        assert!(
            on.metrics.lock_traffic * 2 <= off.metrics.lock_traffic,
            "on {} vs off {}",
            on.metrics.lock_traffic,
            off.metrics.lock_traffic
        );
        assert!(on.metrics.messages < off.metrics.messages);
        // Cache hits are zero-message ops, not site work: the site never
        // saw the unlock, so it must not count anything for it.
        assert_eq!(on.metrics.lock_requests, off.metrics.lock_requests);
        on.audit.legal.as_ref().unwrap();
        assert!(on.audit.serializable);
        // The delegated path replays bit-identically like every arm.
        let on2 = run(&sys, &on_cfg).unwrap();
        assert_eq!(on.metrics, on2.metrics);
        assert_eq!(on.committed_epoch, on2.committed_epoch);
    }

    #[test]
    fn revocation_drains_the_delegated_entry_to_the_demander() {
        use crate::config::Delegation;
        // Both transactions want x. The first grant delegates; the second
        // request finds the entity delegated and the site demands it back
        // (one Revoke). The holder finishes its section, drains the entry
        // on unlock (the RevokeAck doubles as the release), and the
        // demander gets the lock — still serializable, still completing.
        let sys = pair("Lx x Ux", "Lx x Ux", &[("x", 0)]);
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(5),
            delegation: Delegation::On,
            invariant_audit: true,
            ..Default::default()
        };
        let r = run(&sys, &cfg).unwrap();
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert_eq!(r.metrics.committed, 2);
        assert!(
            r.metrics.revocations >= 1,
            "the conflicting request must demand the entity back"
        );
        r.audit.legal.as_ref().unwrap();
        assert!(r.audit.serializable);
        let r2 = run(&sys, &cfg).unwrap();
        assert_eq!(r.metrics, r2.metrics);
    }

    #[test]
    fn delegation_resolves_the_guaranteed_deadlock_on_every_arm() {
        use crate::config::{DeadlockResolution, Delegation, PreventionScheme};
        // The opposite-order deadlock with delegation on, across all six
        // resolution arms: revocation must interoperate with detection
        // aborts and with wounds/dies/rejections without wedging anything.
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 1)]);
        let arms: Vec<DeadlockResolution> = vec![
            DeadlockDetection::Periodic.into(),
            DeadlockDetection::OnBlock.into(),
            DeadlockDetection::Probe.into(),
            PreventionScheme::WoundWait.into(),
            PreventionScheme::WaitDie.into(),
            PreventionScheme::NoWait.into(),
        ];
        for resolution in arms {
            let cfg = SimConfig {
                latency: LatencyModel::Fixed(5),
                delegation: Delegation::On,
                resolution,
                invariant_audit: true,
                ..Default::default()
            };
            let r = run(&sys, &cfg).unwrap();
            assert_eq!(r.outcome, RunOutcome::Completed, "{resolution:?}");
            assert_eq!(r.metrics.committed, 2, "{resolution:?}");
            r.audit.legal.as_ref().unwrap();
            assert!(r.audit.serializable, "{resolution:?}");
            let r2 = run(&sys, &cfg).unwrap();
            assert_eq!(r.metrics, r2.metrics, "{resolution:?}");
        }
    }

    #[test]
    fn restart_retains_uncontested_delegations_for_free_reacquires() {
        use crate::config::{Delegation, VictimPolicy};
        // T2 holds an uncontested z (delegated) and then deadlocks with
        // T1 over x/y. When T2 is chosen as victim its z entry is neither
        // demanded nor revoking, so the abort re-keys it to the next
        // epoch in place: the restarted T2 re-acquires z from its own
        // cache, zero messages — a *lock-side* cache hit, which 2PL
        // scripts can otherwise never produce in a single epoch.
        let db = Database::from_spec(&[("x", 0), ("y", 1), ("z", 2)]);
        let mut b1 = TxnBuilder::new(&db, "T1");
        // The update on x delays T1's Ly past T2's, so the cycle forms.
        b1.script("Lx x Ly y Ux Uy").unwrap();
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "T2");
        b2.script("Lz Ly Lx z y x Uz Uy Ux").unwrap();
        let t2 = b2.build().unwrap();
        let sys = TxnSystem::new(db, vec![t1, t2]);
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(5),
            delegation: Delegation::On,
            victim_policy: VictimPolicy::Youngest,
            invariant_audit: true,
            ..Default::default()
        };
        let off = run(
            &sys,
            &SimConfig {
                delegation: Delegation::Off,
                ..cfg.clone()
            },
        )
        .unwrap();
        let r = run(&sys, &cfg).unwrap();
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert_eq!(r.metrics.committed, 2);
        assert!(r.metrics.deadlocks_resolved >= 1, "the cycle must form");
        assert!(
            r.metrics.cache_hits > r.metrics.committed as u64,
            "beyond the per-commit unlock hits there must be a retained \
             re-acquire: {} hits",
            r.metrics.cache_hits
        );
        assert!(r.metrics.lock_traffic < off.metrics.lock_traffic);
        r.audit.legal.as_ref().unwrap();
        assert!(r.audit.serializable);
    }

    #[test]
    fn crash_wipes_delegations_on_both_sides_and_the_run_recovers() {
        use crate::config::Delegation;
        use crate::fault::{FaultPlan, SiteCrash};
        // Site 0 crashes for longer than the lease ttl with delegation
        // on. The wipe must clear the site's delegation ledger AND the
        // coordinators' cache entries for site-0 entities together — a
        // survivor on either side alone would let recovery re-grant an
        // entity a dead cache still claims, or let a dead cache service
        // an entity the rebuilt table gave to someone else. The run must
        // complete with a clean per-step invariant audit either way.
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 1)]);
        for lease_ttl in [10, 0] {
            let cfg = SimConfig {
                latency: LatencyModel::Fixed(5),
                delegation: Delegation::On,
                invariant_audit: true,
                faults: FaultPlan {
                    retransmit_after: 100,
                    lease_ttl,
                    crashes: vec![SiteCrash {
                        site: 0,
                        at: 12,
                        down_for: 60,
                    }],
                    ..FaultPlan::none()
                },
                max_time: 500_000,
                ..Default::default()
            };
            let r = run(&sys, &cfg).unwrap();
            assert_eq!(r.outcome, RunOutcome::Completed, "ttl {lease_ttl}");
            assert_eq!(r.metrics.committed, 2, "ttl {lease_ttl}");
            assert_eq!(r.metrics.recoveries, 1, "ttl {lease_ttl}");
            r.audit.legal.as_ref().unwrap();
            assert!(r.audit.serializable, "ttl {lease_ttl}");
            let r2 = run(&sys, &cfg).unwrap();
            assert_eq!(r.metrics, r2.metrics, "ttl {lease_ttl}");
        }
    }
}
