//! The discrete-event simulation engine.
//!
//! Coordinators (one per transaction) exchange messages with sites over a
//! latency-modelled network; sites run reader–writer FIFO lock tables
//! (`kplock-dlm` under a thin wrapper); deadlocks are resolved by aborting
//! a victim — found either by the periodic global scan (default, the
//! paper-era scheme) or incrementally at block time
//! ([`crate::config::DeadlockDetection::OnBlock`]) — which releases its
//! locks and restarts after a backoff. All randomness comes from one
//! seeded RNG, so runs are reproducible.

use crate::config::{DeadlockDetection, SimConfig, VictimPolicy};
use crate::event::{EventKind, EventQueue, Instance, Payload, SimTime};
use crate::history::{audit, Audit, History};
use crate::lock_table::LockTable;
use crate::metrics::Metrics;
use kplock_dlm::WaitForGraph;
use kplock_graph::DiGraph;
use kplock_model::{ActionKind, EntityId, StepId, TxnId, TxnSystem};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Final report of a run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Collected counters.
    pub metrics: Metrics,
    /// Serializability audit of the committed schedule.
    pub audit: Audit,
    /// Epoch that committed, per transaction.
    pub committed_epoch: Vec<u32>,
    /// Whether every transaction committed before `max_time`.
    pub finished: bool,
}

struct Coordinator {
    epoch: u32,
    done: Vec<bool>,
    issued: Vec<bool>,
    committed: bool,
    /// Last (re)start time (metrics/diagnostics).
    started_at: SimTime,
    /// Original start time; survives restarts. Victim selection uses this
    /// timestamp, following Rosenkrantz, Stearns & Lewis: an aborted
    /// transaction keeps its age, or the oldest-victim policy livelocks by
    /// repeatedly killing whichever transaction is about to finish.
    birth: (SimTime, usize),
}

struct Engine<'a> {
    sys: &'a TxnSystem,
    cfg: &'a SimConfig,
    rng: StdRng,
    queue: EventQueue,
    sites: Vec<LockTable>,
    coords: Vec<Coordinator>,
    /// Lock step id for a queued lock request.
    pending_lock_step: HashMap<(Instance, EntityId), StepId>,
    /// When an instance started waiting for a lock.
    waiting_since: HashMap<(Instance, EntityId), SimTime>,
    /// Incrementally maintained wait-for graph (only under
    /// [`DeadlockDetection::OnBlock`]; stays empty in periodic mode).
    wfg: WaitForGraph<Instance>,
    /// Whether `wfg` changed since the last cycle check.
    wfg_dirty: bool,
    history: History,
    metrics: Metrics,
    now: SimTime,
}

/// Runs the system to completion (or `max_time`), all transactions
/// arriving at time 0.
pub fn run(sys: &TxnSystem, cfg: &SimConfig) -> SimReport {
    run_with_arrivals(sys, cfg, &vec![0; sys.len()])
}

/// Runs the system with per-transaction arrival times (an open-loop
/// workload): transaction `t` issues its first steps at `arrivals[t]`.
pub fn run_with_arrivals(sys: &TxnSystem, cfg: &SimConfig, arrivals: &[SimTime]) -> SimReport {
    assert_eq!(
        arrivals.len(),
        sys.len(),
        "one arrival time per transaction"
    );
    let mut eng = Engine {
        sys,
        cfg,
        rng: StdRng::seed_from_u64(cfg.seed),
        queue: EventQueue::new(),
        sites: vec![LockTable::new(); sys.db().site_count()],
        coords: sys
            .txns()
            .iter()
            .enumerate()
            .map(|(i, t)| Coordinator {
                epoch: 0,
                done: vec![false; t.len()],
                issued: vec![false; t.len()],
                committed: false,
                started_at: arrivals[i],
                birth: (arrivals[i], i),
            })
            .collect(),
        pending_lock_step: HashMap::new(),
        waiting_since: HashMap::new(),
        wfg: WaitForGraph::new(),
        wfg_dirty: false,
        history: History::default(),
        metrics: Metrics::default(),
        now: 0,
    };

    for (t, &arrival) in arrivals.iter().enumerate() {
        if arrival == 0 {
            eng.issue_ready(TxnId::from_idx(t));
        } else {
            eng.queue
                .push(arrival, EventKind::Restart(TxnId::from_idx(t)));
        }
    }
    if cfg.detection == DeadlockDetection::Periodic {
        eng.queue
            .push(cfg.deadlock_scan_interval, EventKind::DeadlockScan);
    }

    while let Some((t, ev)) = eng.queue.pop() {
        eng.now = t;
        if eng.now > cfg.max_time {
            break;
        }
        if eng.all_committed() {
            break;
        }
        match ev {
            EventKind::ToSite(site, payload) => {
                eng.on_site(site, payload);
                // Table state only changes inside site events. A cycle can
                // form not just when a request blocks but also when a
                // release *grants*: remaining waiters retarget onto the new
                // holder. Check after any site event that changed the
                // graph, so no formation path is missed (and update-only
                // events stay O(1)).
                if eng.cfg.detection == DeadlockDetection::OnBlock && eng.wfg_dirty {
                    eng.resolve_incremental();
                }
            }
            EventKind::ToCoordinator(txn, payload) => eng.on_coordinator(txn, payload),
            EventKind::DeadlockScan => {
                eng.deadlock_scan();
                if !eng.all_committed() {
                    eng.queue.push(
                        eng.now + cfg.deadlock_scan_interval,
                        EventKind::DeadlockScan,
                    );
                }
            }
            EventKind::Restart(txn) => {
                eng.coords[txn.idx()].started_at = eng.now;
                eng.issue_ready(txn);
            }
        }
    }

    let finished = eng.all_committed();
    let committed_epoch: Vec<u32> = eng.coords.iter().map(|c| c.epoch).collect();
    let audit = audit(sys, &eng.history, &committed_epoch);
    SimReport {
        metrics: eng.metrics,
        audit,
        committed_epoch,
        finished,
    }
}

impl Engine<'_> {
    fn all_committed(&self) -> bool {
        self.coords.iter().all(|c| c.committed)
    }

    fn latency(&mut self) -> u64 {
        self.cfg.latency.sample(&mut self.rng)
    }

    fn send_to_site(&mut self, site: kplock_model::SiteId, payload: Payload) {
        self.metrics.messages += 1;
        let at = self.now + self.latency();
        self.queue.push(at, EventKind::ToSite(site, payload));
    }

    fn send_to_coordinator(&mut self, txn: TxnId, payload: Payload) {
        self.metrics.messages += 1;
        let at = self.now + self.latency();
        self.queue.push(at, EventKind::ToCoordinator(txn, payload));
    }

    /// Issues every step whose predecessors are done and that has not been
    /// issued yet.
    fn issue_ready(&mut self, txn: TxnId) {
        let t = self.sys.txn(txn);
        let epoch = self.coords[txn.idx()].epoch;
        let inst = Instance { txn, epoch };
        let ready: Vec<usize> = (0..t.len())
            .filter(|&v| {
                let c = &self.coords[txn.idx()];
                !c.issued[v] && t.edge_graph().predecessors(v).iter().all(|&p| c.done[p])
            })
            .collect();
        for v in ready {
            self.coords[txn.idx()].issued[v] = true;
            let step = t.step(StepId::from_idx(v));
            let site = self.sys.db().site_of(step.entity);
            let payload = match step.kind {
                ActionKind::Lock => Payload::LockRequest {
                    inst,
                    entity: step.entity,
                    step: StepId::from_idx(v),
                },
                ActionKind::Update => Payload::UpdateRequest {
                    inst,
                    entity: step.entity,
                    step: StepId::from_idx(v),
                },
                ActionKind::Unlock => Payload::UnlockRequest {
                    inst,
                    entity: step.entity,
                    step: StepId::from_idx(v),
                },
            };
            self.send_to_site(site, payload);
        }
    }

    fn stale(&self, inst: Instance) -> bool {
        self.coords[inst.txn.idx()].epoch != inst.epoch
    }

    /// Refreshes `entity`'s contribution to the incremental wait-for graph
    /// (no-op under periodic detection, keeping that path untouched).
    fn wfg_refresh(&mut self, site: kplock_model::SiteId, entity: EntityId) {
        if self.cfg.detection == DeadlockDetection::OnBlock {
            let edges = self.sites[site.idx()].entity_waits_for(entity);
            self.wfg_dirty |= self.wfg.update_entity(entity, edges);
        }
    }

    fn on_site(&mut self, site: kplock_model::SiteId, payload: Payload) {
        match payload {
            Payload::LockRequest { inst, entity, step } => {
                if self.stale(inst) {
                    return;
                }
                let mode = self.sys.txn(inst.txn).step(step).mode;
                if self.sites[site.idx()].request(entity, inst, mode) {
                    self.history.record(self.now, inst, step);
                    self.send_to_coordinator(inst.txn, Payload::LockGranted { inst, entity, step });
                } else {
                    self.pending_lock_step.insert((inst, entity), step);
                    self.waiting_since.insert((inst, entity), self.now);
                    // The cycle check runs in the event loop right after
                    // this handler returns.
                    self.wfg_refresh(site, entity);
                }
            }
            Payload::UpdateRequest { inst, entity, step } => {
                if self.stale(inst) {
                    return;
                }
                debug_assert!(
                    {
                        let mode = self.sys.txn(inst.txn).step(step).mode;
                        self.sites[site.idx()]
                            .holds(entity, inst)
                            .is_some_and(|held| held.covers(mode))
                    },
                    "update without a covering lock"
                );
                self.history.record(self.now, inst, step);
                self.send_to_coordinator(inst.txn, Payload::UpdateDone { inst, step });
            }
            Payload::UnlockRequest { inst, entity, step } => {
                if self.stale(inst) {
                    return;
                }
                self.history.record(self.now, inst, step);
                let grants = self.sites[site.idx()].release(entity, inst);
                self.wfg_refresh(site, entity);
                self.send_to_coordinator(inst.txn, Payload::UnlockDone { inst, step });
                for (n, _) in grants {
                    self.grant_queued(n, entity);
                }
            }
            _ => unreachable!("coordinator payload at site"),
        }
    }

    /// A queued instance just received the lock on `entity`.
    fn grant_queued(&mut self, inst: Instance, entity: EntityId) {
        let step = self
            .pending_lock_step
            .remove(&(inst, entity))
            .expect("queued lock has a pending step");
        if let Some(since) = self.waiting_since.remove(&(inst, entity)) {
            self.metrics.lock_wait_ticks += self.now - since;
        }
        // The grant happens at the site; the wait in the queue means the
        // instance may have been aborted meanwhile — stale grants release
        // immediately.
        if self.stale(inst) {
            let site = self.sys.db().site_of(entity);
            let grants = self.sites[site.idx()].release(entity, inst);
            self.wfg_refresh(site, entity);
            for (n, _) in grants {
                self.grant_queued(n, entity);
            }
            return;
        }
        self.history.record(self.now, inst, step);
        self.send_to_coordinator(inst.txn, Payload::LockGranted { inst, entity, step });
    }

    fn on_coordinator(&mut self, txn: TxnId, payload: Payload) {
        let (inst, step) = match payload {
            Payload::LockGranted { inst, step, .. }
            | Payload::UpdateDone { inst, step }
            | Payload::UnlockDone { inst, step } => (inst, step),
            _ => unreachable!("site payload at coordinator"),
        };
        if self.stale(inst) {
            return;
        }
        let c = &mut self.coords[txn.idx()];
        c.done[step.idx()] = true;
        if c.done.iter().all(|&d| d) {
            c.committed = true;
            self.metrics.committed += 1;
            self.metrics.makespan = self.now;
            return;
        }
        self.issue_ready(txn);
    }

    /// Global deadlock scan (periodic mode): waits-for cycle detection +
    /// victim abort, repeated until no cycle remains.
    fn deadlock_scan(&mut self) {
        loop {
            let mut edges: Vec<(Instance, Instance)> = Vec::new();
            for site in &self.sites {
                edges.extend(site.waits_for());
            }
            if !self.resolve_one_cycle(&edges) {
                return;
            }
        }
    }

    /// OnBlock mode: detects and resolves cycles from the incrementally
    /// maintained graph, repeating until none remain (an abort's releases
    /// retarget edges and could expose another cycle).
    fn resolve_incremental(&mut self) {
        loop {
            self.wfg_dirty = false;
            if self.wfg.is_empty() {
                return;
            }
            let edges = self.wfg.edges();
            if !self.resolve_one_cycle(&edges) {
                return;
            }
        }
    }

    /// Builds the transaction-level graph from instance edges (current
    /// epochs only), aborts one victim if a cycle exists. Returns whether
    /// it did.
    fn resolve_one_cycle(&mut self, edges: &[(Instance, Instance)]) -> bool {
        let k = self.sys.len();
        let mut g = DiGraph::new(k);
        for &(w, h) in edges {
            if !self.stale(w) && !self.stale(h) {
                g.add_edge(w.txn.idx(), h.txn.idx());
            }
        }
        let Some(cycle) = kplock_graph::find_cycle(&g) else {
            return false;
        };
        let victim_txn = match self.cfg.victim_policy {
            VictimPolicy::Youngest => cycle
                .iter()
                .max_by_key(|&&t| (self.coords[t].started_at, self.coords[t].birth))
                .copied()
                .expect("cycle nonempty"),
            VictimPolicy::Oldest => cycle
                .iter()
                .min_by_key(|&&t| self.coords[t].birth)
                .copied()
                .expect("cycle nonempty"),
        };
        self.metrics.deadlocks_resolved += 1;
        self.abort(TxnId::from_idx(victim_txn));
        true
    }

    fn abort(&mut self, txn: TxnId) {
        let old = Instance {
            txn,
            epoch: self.coords[txn.idx()].epoch,
        };
        self.metrics.aborts += 1;
        // Drop waits and release locks at every site.
        for s in 0..self.sites.len() {
            let site_id = kplock_model::SiteId::from_idx(s);
            let cancelled = self.sites[s].cancel_waits(old);
            for &e in &cancelled.cancelled {
                self.pending_lock_step.remove(&(old, e));
                self.waiting_since.remove(&(old, e));
                self.wfg_refresh(site_id, e);
            }
            for (entity, grants) in cancelled
                .granted
                .into_iter()
                .chain(self.sites[s].release_all(old))
            {
                self.wfg_refresh(site_id, entity);
                for (n, _) in grants {
                    self.grant_queued(n, entity);
                }
            }
        }
        // Reset the coordinator for a fresh epoch.
        let t = self.sys.txn(txn);
        let c = &mut self.coords[txn.idx()];
        c.epoch += 1;
        c.done = vec![false; t.len()];
        c.issued = vec![false; t.len()];
        c.committed = false;
        // Jittered backoff (seeded, deterministic): without jitter,
        // symmetric workloads can re-collide forever under fixed latencies.
        let jitter = rand::Rng::gen_range(&mut self.rng, 0..=self.cfg.restart_backoff);
        self.queue.push(
            self.now + self.cfg.restart_backoff + jitter,
            EventKind::Restart(txn),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LatencyModel;
    use kplock_model::{Database, TxnBuilder};

    fn pair(s1: &str, s2: &str, spec: &[(&str, usize)]) -> TxnSystem {
        let db = Database::from_spec(spec);
        let mut b1 = TxnBuilder::new(&db, "T1");
        b1.script(s1).unwrap();
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "T2");
        b2.script(s2).unwrap();
        let t2 = b2.build().unwrap();
        TxnSystem::new(db, vec![t1, t2])
    }

    #[test]
    fn runs_non_conflicting_pair() {
        let sys = pair("Lx x Ux", "Ly y Uy", &[("x", 0), ("y", 1)]);
        let r = run(&sys, &SimConfig::default());
        assert!(r.finished);
        assert_eq!(r.metrics.committed, 2);
        assert_eq!(r.metrics.aborts, 0);
        r.audit.legal.as_ref().unwrap();
        assert!(r.audit.serializable);
    }

    #[test]
    fn serializes_conflicting_pair_via_locks() {
        let sys = pair("Lx x Ux", "Lx x Ux", &[("x", 0)]);
        let r = run(&sys, &SimConfig::default());
        assert!(r.finished);
        assert!(r.audit.serializable);
        assert!(r.metrics.lock_wait_ticks > 0 || r.metrics.committed == 2);
    }

    #[test]
    fn resolves_deadlock_and_commits() {
        // Opposite-order two-phase: guaranteed deadlock under fixed latency.
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 0)]);
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(5),
            ..Default::default()
        };
        let r = run(&sys, &cfg);
        assert!(r.finished, "deadlock resolution must unblock the run");
        assert!(r.metrics.deadlocks_resolved >= 1);
        assert!(r.metrics.aborts >= 1);
        r.audit.legal.as_ref().unwrap();
        assert!(r.audit.serializable, "2PL commits are serializable");
    }

    #[test]
    fn deterministic_across_runs() {
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 0)]);
        let cfg = SimConfig {
            latency: LatencyModel::Uniform(1, 20),
            seed: 7,
            ..Default::default()
        };
        let a = run(&sys, &cfg);
        let b = run(&sys, &cfg);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.committed_epoch, b.committed_epoch);
    }

    #[test]
    fn on_block_detection_resolves_deadlocks_immediately() {
        let sys = pair("Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", &[("x", 0), ("y", 0)]);
        let periodic = SimConfig {
            latency: LatencyModel::Fixed(5),
            ..Default::default()
        };
        let onblock = SimConfig {
            detection: crate::config::DeadlockDetection::OnBlock,
            ..periodic.clone()
        };
        let rp = run(&sys, &periodic);
        let rb = run(&sys, &onblock);
        assert!(rp.finished && rb.finished);
        assert!(rb.metrics.deadlocks_resolved >= 1);
        assert!(rb.audit.serializable);
        // The periodic scan waits out the scan interval before resolving;
        // on-block detection fires the moment the cycle forms.
        assert!(
            rb.metrics.makespan < rp.metrics.makespan,
            "on-block {} vs periodic {}",
            rb.metrics.makespan,
            rp.metrics.makespan
        );
        // Determinism holds in OnBlock mode too.
        let rb2 = run(&sys, &onblock);
        assert_eq!(rb.metrics, rb2.metrics);
    }

    #[test]
    fn on_block_catches_cycles_formed_by_grant_retargeting() {
        // A cycle can form at a *release*: granting e to the queue front
        // retargets the remaining waiters onto the new holder. T1 runs two
        // parallel per-site chains (so it can wait on x and y at once);
        // T2 and T3 create the opposing holds. Sweep arrival offsets so
        // some timing realizes the retargeting order; OnBlock must finish
        // (and agree with Periodic) for every timing.
        let db = Database::from_spec(&[("x", 0), ("y", 1)]);
        let mut b1 = TxnBuilder::new(&db, "T1");
        b1.script("Lx x Ux").unwrap();
        b1.script("Ly y Uy").unwrap(); // parallel chain: no cross edge
        let t1 = b1.build().unwrap();
        let mut b2 = TxnBuilder::new(&db, "T2");
        b2.script("Ly Lx y x Uy Ux").unwrap();
        let t2 = b2.build().unwrap();
        let mut b3 = TxnBuilder::new(&db, "T3");
        b3.script("Lx x Ux").unwrap();
        let t3 = b3.build().unwrap();
        let sys = TxnSystem::new(db, vec![t1, t2, t3]);
        let mut deadlocks = 0;
        for a1 in 0..4u64 {
            for a2 in 0..4u64 {
                for a3 in 0..4u64 {
                    let arrivals = vec![a1 * 3, a2 * 3, a3 * 3];
                    let periodic = SimConfig {
                        latency: LatencyModel::Fixed(5),
                        ..Default::default()
                    };
                    let onblock = SimConfig {
                        detection: crate::config::DeadlockDetection::OnBlock,
                        ..periodic.clone()
                    };
                    let rp = run_with_arrivals(&sys, &periodic, &arrivals);
                    let rb = run_with_arrivals(&sys, &onblock, &arrivals);
                    assert!(rp.finished, "periodic hung at {arrivals:?}");
                    assert!(rb.finished, "on-block hung at {arrivals:?}");
                    assert!(rb.audit.serializable);
                    deadlocks += rb.metrics.deadlocks_resolved;
                }
            }
        }
        assert!(deadlocks > 0, "sweep never provoked a deadlock");
    }

    #[test]
    fn shared_readers_run_without_waiting() {
        // Two pure readers of x under shared locks: no queueing at all.
        let sys = pair("SLx rx Ux", "SLx rx Ux", &[("x", 0)]);
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(5),
            ..Default::default()
        };
        let r = run(&sys, &cfg);
        assert!(r.finished);
        assert_eq!(r.metrics.lock_wait_ticks, 0, "S+S never queues");
        r.audit.legal.as_ref().unwrap(); // overlapping S sections are legal
        assert!(r.audit.serializable);
        // The same pair with exclusive locks serializes by waiting.
        let sys = pair("Lx x Ux", "Lx x Ux", &[("x", 0)]);
        let r = run(&sys, &cfg);
        assert!(r.metrics.lock_wait_ticks > 0, "X+X must queue");
    }

    #[test]
    fn reader_writer_mix_is_serializable() {
        // One reader, one writer of x; plus a disjoint write each.
        let sys = pair(
            "SLx rx Ux Ly y Uy",
            "Lx x Ux Lz z Uz",
            &[("x", 0), ("y", 0), ("z", 1)],
        );
        for seed in 0..20 {
            let cfg = SimConfig {
                latency: LatencyModel::Uniform(1, 20),
                seed,
                ..Default::default()
            };
            let r = run(&sys, &cfg);
            assert!(r.finished);
            r.audit.legal.as_ref().unwrap();
            assert!(r.audit.serializable);
        }
    }

    #[test]
    fn unsafe_locking_can_commit_non_serializable_history() {
        // The classic unsafe pair. With asymmetric latencies, T2 slips its
        // y-section between T1's x- and y-sections. Search a few seeds.
        let sys = pair("Lx x Ux Ly y Uy", "Ly y Uy Lx x Ux", &[("x", 0), ("y", 0)]);
        let mut saw_anomaly = false;
        for seed in 0..200 {
            let cfg = SimConfig {
                latency: LatencyModel::Uniform(1, 50),
                seed,
                ..Default::default()
            };
            let r = run(&sys, &cfg);
            assert!(r.finished);
            r.audit.legal.as_ref().unwrap();
            if !r.audit.serializable {
                saw_anomaly = true;
                break;
            }
        }
        assert!(
            saw_anomaly,
            "an unsafe system should exhibit a non-serializable committed history"
        );
    }
}
