//! Deterministic witness replay: the bridge from static verdicts to
//! dynamic confirmation.
//!
//! `kplock_core::sat_check` decides safety and deadlock reachability
//! symbolically and decodes SAT models into witness schedules. This
//! module replays those witnesses against the *real* lock-table
//! machinery — per-site [`SiteTable`]s, [`History`] recording, the
//! [`audit`] pass — so an `Unsafe` verdict is backed by an actual
//! non-serializable committed history and a deadlock verdict by an
//! actual total stall with a waits-for cycle, structural invariants
//! checked after every step (the static analogue of
//! [`crate::SimConfig::invariant_audit`]). Nothing here is random or
//! time-dependent: a witness either replays, or the replayer returns a
//! typed error naming the first step that disagreed.

use std::fmt;

use kplock_model::{ActionKind, EntityId, ModelError, Schedule, StepId, TxnId, TxnSystem};

use crate::config::TableSpec;
use crate::event::Instance;
use crate::history::{audit, Audit, History};
use crate::lock_table::SiteTable;

/// Why a witness failed to replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The schedule is not legal for the system in the first place.
    Illegal(ModelError),
    /// A lock step in the witness was not granted immediately — the
    /// schedule claims an interleaving the tables refuse.
    Blocked {
        /// The requesting transaction.
        txn: TxnId,
        /// Its lock step.
        step: StepId,
        /// The contended entity.
        entity: EntityId,
    },
    /// A site table failed its structural invariant check mid-replay.
    Invariant(String),
    /// A purported violation witness replayed to a serializable history.
    Serializable,
    /// A purported deadlock prefix left some step enabled.
    NotStalled(String),
    /// Every transaction stalled but the waits-for graph was acyclic
    /// (cannot happen for exclusive locks; indicates a table bug).
    NoWaitCycle,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Illegal(e) => write!(f, "witness schedule is illegal: {e}"),
            ReplayError::Blocked { txn, step, entity } => {
                write!(f, "lock step {step} of {txn} on {entity} was not granted")
            }
            ReplayError::Invariant(e) => write!(f, "table invariant violated mid-replay: {e}"),
            ReplayError::Serializable => {
                write!(f, "violation witness replayed to a serializable history")
            }
            ReplayError::NotStalled(why) => write!(f, "deadlock prefix is not a stall: {why}"),
            ReplayError::NoWaitCycle => write!(f, "total stall without a waits-for cycle"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// What a successfully replayed deadlock prefix proves.
#[derive(Clone, Debug)]
pub struct DeadlockEvidence {
    /// Transactions with remaining steps, all of them blocked.
    pub stalled: Vec<TxnId>,
    /// A directed cycle in the waits-for graph (each waits on the next;
    /// the last waits on the first).
    pub cycle: Vec<TxnId>,
}

/// One fresh FIFO table per site of `sys`.
fn tables(sys: &TxnSystem) -> Vec<SiteTable> {
    (0..sys.db().site_count())
        .map(|_| SiteTable::new(TableSpec::Fifo))
        .collect()
}

/// Drives `schedule` step-by-step through per-site tables, recording a
/// history. Every lock must be granted on the spot and every table must
/// hold its invariants after every step.
fn drive(
    sys: &TxnSystem,
    schedule: &Schedule,
    tables: &mut [SiteTable],
    history: &mut History,
) -> Result<(), ReplayError> {
    for (time, ss) in schedule.steps().iter().enumerate() {
        let t = sys.txn(ss.txn);
        let step = t.step(ss.step);
        let site = sys.db().site_of(step.entity).idx();
        let inst = Instance {
            txn: ss.txn,
            epoch: 0,
        };
        match step.kind {
            ActionKind::Lock => {
                if !tables[site].request(step.entity, inst, step.mode) {
                    return Err(ReplayError::Blocked {
                        txn: ss.txn,
                        step: ss.step,
                        entity: step.entity,
                    });
                }
            }
            ActionKind::Unlock => {
                tables[site].release(step.entity, inst);
            }
            ActionKind::Update => {}
        }
        history.record(time as u64, inst, ss.step);
        tables[site]
            .check_invariants()
            .map_err(ReplayError::Invariant)?;
    }
    Ok(())
}

/// Replays a complete unsafety witness and audits the committed history;
/// succeeds only if the history is legal and **non**-serializable.
pub fn replay_violation(sys: &TxnSystem, schedule: &Schedule) -> Result<Audit, ReplayError> {
    schedule
        .validate_complete(sys)
        .map_err(ReplayError::Illegal)?;
    let mut site_tables = tables(sys);
    let mut history = History::default();
    drive(sys, schedule, &mut site_tables, &mut history)?;
    let committed: Vec<Option<u32>> = vec![Some(0); sys.len()];
    let report = audit(sys, &history, &committed);
    if let Err(e) = &report.legal {
        return Err(ReplayError::Illegal(e.clone()));
    }
    if report.serializable {
        return Err(ReplayError::Serializable);
    }
    Ok(report)
}

/// Replays a deadlock prefix, then *submits every frontier lock request
/// for real*: each must queue behind a current holder, and the resulting
/// waits-for graph must contain a cycle through the stalled transactions.
pub fn replay_deadlock(
    sys: &TxnSystem,
    prefix: &Schedule,
) -> Result<DeadlockEvidence, ReplayError> {
    prefix.validate_prefix(sys).map_err(ReplayError::Illegal)?;
    let mut site_tables = tables(sys);
    let mut history = History::default();
    drive(sys, prefix, &mut site_tables, &mut history)?;

    let mut done: Vec<Vec<bool>> = sys.txns().iter().map(|t| vec![false; t.len()]).collect();
    for ss in prefix.steps() {
        done[ss.txn.idx()][ss.step.idx()] = true;
    }

    // Submit every enabled-by-precedence remaining step: for a genuine
    // stall each is a lock, and each must be refused and queued.
    let mut stalled = Vec::new();
    for (i, t) in sys.txns().iter().enumerate() {
        let mut remaining = false;
        for v in 0..t.len() {
            if done[i][v] {
                continue;
            }
            remaining = true;
            if t.edge_graph().predecessors(v).iter().any(|&p| !done[i][p]) {
                continue;
            }
            let s = StepId::from_idx(v);
            let step = t.step(s);
            if step.kind != ActionKind::Lock {
                return Err(ReplayError::NotStalled(format!(
                    "step {s} of T{i} ({:?}) is enabled",
                    step.kind
                )));
            }
            let site = sys.db().site_of(step.entity).idx();
            let inst = Instance {
                txn: TxnId::from_idx(i),
                epoch: 0,
            };
            if site_tables[site].request(step.entity, inst, step.mode) {
                return Err(ReplayError::NotStalled(format!(
                    "lock step {s} of T{i} on {} was granted",
                    step.entity
                )));
            }
            site_tables[site]
                .check_invariants()
                .map_err(ReplayError::Invariant)?;
        }
        if remaining {
            stalled.push(TxnId::from_idx(i));
        }
    }
    if stalled.is_empty() {
        return Err(ReplayError::NotStalled(
            "prefix is a complete schedule".into(),
        ));
    }

    // The queued requests induced real wait edges; find a cycle.
    let mut waits: Vec<Vec<usize>> = vec![Vec::new(); sys.len()];
    for table in &site_tables {
        for (waiter, holder) in table.waits_for() {
            waits[waiter.txn.idx()].push(holder.txn.idx());
        }
    }
    let cycle = find_cycle(&waits).ok_or(ReplayError::NoWaitCycle)?;
    Ok(DeadlockEvidence {
        stalled,
        cycle: cycle.into_iter().map(TxnId::from_idx).collect(),
    })
}

/// A directed cycle in `adj`, if any, as the list of its nodes in order.
fn find_cycle(adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    // Iterative DFS with a path stack; 0 = unvisited, 1 = on path, 2 = done.
    let n = adj.len();
    let mut state = vec![0u8; n];
    let mut path: Vec<usize> = Vec::new();
    for root in 0..n {
        if state[root] != 0 {
            continue;
        }
        // (node, next successor index) frames.
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        state[root] = 1;
        path.push(root);
        while let Some(&mut (node, ref mut next)) = frames.last_mut() {
            if *next < adj[node].len() {
                let succ = adj[node][*next];
                *next += 1;
                match state[succ] {
                    0 => {
                        state[succ] = 1;
                        path.push(succ);
                        frames.push((succ, 0));
                    }
                    1 => {
                        let start = path.iter().position(|&p| p == succ).expect("on path");
                        return Some(path[start..].to_vec());
                    }
                    _ => {}
                }
            } else {
                state[node] = 2;
                path.pop();
                frames.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_core::{check_deadlock, check_safety, SatSafety};
    use kplock_model::{Database, ScheduledStep, TxnBuilder};

    fn sys_of(scripts: &[&str]) -> TxnSystem {
        let db = Database::from_spec(&[("x", 0), ("y", 1)]);
        let txns = scripts
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut b = TxnBuilder::new(&db, format!("T{i}"));
                b.script(s).expect("script");
                b.build().expect("acyclic")
            })
            .collect();
        TxnSystem::new(db, txns)
    }

    #[test]
    fn sat_unsafety_witness_replays_to_a_nonserializable_audit() {
        let sys = sys_of(&["Lx x Ux Ly y Uy", "Lx x Ux Ly y Uy"]);
        let SatSafety::Unsafe(w) = check_safety(&sys).unwrap().verdict else {
            panic!("early-unlock pair is unsafe");
        };
        let report = replay_violation(&sys, &w).unwrap();
        assert!(report.legal.is_ok());
        assert!(!report.serializable);
    }

    #[test]
    fn sat_deadlock_witness_replays_to_a_real_wait_cycle() {
        let sys = sys_of(&["Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux"]);
        let prefix = check_deadlock(&sys).unwrap().deadlock.expect("deadlocks");
        let evidence = replay_deadlock(&sys, &prefix).unwrap();
        assert_eq!(evidence.stalled.len(), 2);
        assert_eq!(evidence.cycle.len(), 2);
    }

    #[test]
    fn serial_schedule_is_rejected_as_violation_witness() {
        let sys = sys_of(&["Lx x Ux Ly y Uy", "Lx x Ux Ly y Uy"]);
        let serial = Schedule::serial(&sys, &[TxnId(0), TxnId(1)]);
        assert!(matches!(
            replay_violation(&sys, &serial),
            Err(ReplayError::Serializable)
        ));
    }

    #[test]
    fn non_stalled_prefix_is_rejected_as_deadlock_witness() {
        let sys = sys_of(&["Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux"]);
        // T0 takes x only: T1 can still lock y, so nothing is stalled.
        let prefix = Schedule::new(vec![ScheduledStep {
            txn: TxnId(0),
            step: StepId(0),
        }]);
        assert!(matches!(
            replay_deadlock(&sys, &prefix),
            Err(ReplayError::NotStalled(_))
        ));
    }

    #[test]
    fn cycle_finder_sees_self_and_long_cycles() {
        assert_eq!(find_cycle(&[vec![0]]), Some(vec![0]));
        assert_eq!(
            find_cycle(&[vec![1], vec![2], vec![0]]),
            Some(vec![0, 1, 2])
        );
        assert_eq!(find_cycle(&[vec![1], vec![]]), None);
        assert_eq!(find_cycle(&[]), None);
    }
}
