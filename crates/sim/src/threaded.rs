//! A real-thread runner: the same lock-manager semantics executed by OS
//! threads instead of virtual time.
//!
//! One thread per transaction; locks live in a [`kplock_dlm::ShardedTable`]
//! (hash-partitioned, one `parking_lot` mutex per shard, so independent
//! entities never contend on one map) with a condvar per shard for grant
//! wakeups; a global atomic sequence numbers the applied steps so the
//! committed history can be audited exactly like the deterministic
//! simulator's. Deadlocks are broken by lock-wait timeouts (cancel the
//! queued request, release, randomized backoff, retry).
//!
//! This runner is *non*-deterministic by nature — it exists to show the
//! phenomena under genuine concurrency; the discrete-event engine in
//! [`crate::engine`] is the reproducible instrument.

use crate::config::ConfigError;
use crate::event::Instance;
use crate::history::History;
use crate::history::{audit, Audit};
use kplock_dlm::{Acquire, ShardedTable};
use kplock_model::{ActionKind, EntityId, StepId, TxnId, TxnSystem};
use parking_lot::Condvar;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Configuration for the threaded runner.
#[derive(Clone, Debug)]
pub struct ThreadedConfig {
    /// How long to wait on a lock before assuming deadlock and aborting.
    pub lock_timeout: Duration,
    /// Maximum abort/retry attempts per transaction.
    pub max_attempts: u32,
    /// Upper bound of the randomized backoff after an abort.
    pub max_backoff: Duration,
    /// Number of lock-table shards (entities hash across them).
    pub shards: usize,
}

impl ThreadedConfig {
    /// Checks the configuration for values that cannot run.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        Ok(())
    }
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            lock_timeout: Duration::from_millis(50),
            max_attempts: 64,
            max_backoff: Duration::from_millis(5),
            shards: 8,
        }
    }
}

/// Report of a threaded run.
#[derive(Debug)]
pub struct ThreadedReport {
    /// Serializability audit of the committed history.
    pub audit: Audit,
    /// Total aborts across all transactions.
    pub aborts: usize,
    /// Whether every transaction committed within its attempt budget.
    pub finished: bool,
}

struct Shared {
    table: ShardedTable<Instance>,
    /// One condvar per shard; waiters block on the shard's mutex guard.
    wakeups: Vec<Condvar>,
    seq: AtomicU64,
    events: parking_lot::Mutex<Vec<(u64, TxnId, u32, StepId)>>,
}

impl Shared {
    /// Records an applied step. Call while holding the shard guard of the
    /// step's entity so the global sequence respects per-entity
    /// grant/release order.
    fn record(&self, txn: TxnId, epoch: u32, step: StepId) {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        self.events.lock().push((seq, txn, epoch, step));
    }
}

/// Executes the system on real threads.
///
/// Returns [`ConfigError`] if `cfg` fails [`ThreadedConfig::validate`]
/// (e.g. zero shards), checked up front like [`crate::run`].
pub fn run_threaded(sys: &TxnSystem, cfg: &ThreadedConfig) -> Result<ThreadedReport, ConfigError> {
    cfg.validate()?;
    let shards = cfg.shards;
    let shared = Arc::new(Shared {
        table: ShardedTable::new(shards),
        wakeups: (0..shards).map(|_| Condvar::new()).collect(),
        seq: AtomicU64::new(0),
        events: parking_lot::Mutex::new(Vec::new()),
    });

    let results: Vec<(bool, u32)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..sys.len() {
            let shared = Arc::clone(&shared);
            let cfg = cfg.clone();
            handles.push(scope.spawn(move || run_txn(sys, TxnId::from_idx(t), &shared, &cfg)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("txn thread panicked"))
            .collect()
    });

    // Rebuild a History from the event log.
    let mut history = History::default();
    let mut events = shared.events.lock().clone();
    events.sort_by_key(|&(seq, ..)| seq);
    for (_, txn, epoch, step) in events {
        history.record(0, Instance { txn, epoch }, step);
    }
    let committed_epoch: Vec<u32> = results.iter().map(|&(_, e)| e).collect();
    let finished = results.iter().all(|&(ok, _)| ok);
    let aborts: usize = results.iter().map(|&(_, e)| e as usize).sum();
    Ok(ThreadedReport {
        audit: audit(sys, &history, &committed_epoch),
        aborts,
        finished,
    })
}

/// Runs one transaction to commit; returns `(committed, final_epoch)`.
fn run_txn(sys: &TxnSystem, txn: TxnId, shared: &Shared, cfg: &ThreadedConfig) -> (bool, u32) {
    let t = sys.txn(txn);
    let mut rng = rand::thread_rng();
    for epoch in 0..cfg.max_attempts {
        if attempt(txn, epoch, t, shared, cfg) {
            return (true, epoch);
        }
        // Aborted: back off and retry.
        std::thread::sleep(Duration::from_micros(
            rng.gen_range(0..=cfg.max_backoff.as_micros() as u64),
        ));
    }
    (false, cfg.max_attempts)
}

fn attempt(
    txn: TxnId,
    epoch: u32,
    t: &kplock_model::Transaction,
    shared: &Shared,
    cfg: &ThreadedConfig,
) -> bool {
    let inst = Instance { txn, epoch };
    let mut done = vec![false; t.len()];
    let mut held: Vec<EntityId> = Vec::new();
    let abort = |held: &mut Vec<EntityId>| {
        held.clear();
        // Wake only the shards whose waiters were actually granted
        // something — notifying every condvar would recreate the
        // thundering herd that sharding exists to avoid.
        for (e, grants) in shared.table.release_all(inst) {
            if !grants.is_empty() {
                shared.wakeups[shared.table.shard_index(e)].notify_all();
            }
        }
    };

    // Execute steps as they become ready (single-threaded within a
    // transaction; parallel across transactions).
    loop {
        let Some(v) = (0..t.len())
            .find(|&v| !done[v] && t.edge_graph().predecessors(v).iter().all(|&p| done[p]))
        else {
            return true; // all steps done
        };
        let step = t.step(StepId::from_idx(v));
        let shard = shared.table.shard_index(step.entity);
        match step.kind {
            ActionKind::Lock => {
                let mut st = shared.table.lock_shard_index(shard);
                match st.request(step.entity, inst, step.mode).expect("protocol") {
                    Acquire::Granted => {}
                    Acquire::Queued => {
                        // FIFO: a later release grants us in-queue; wait for
                        // it, bounded by the deadlock timeout.
                        let deadline = std::time::Instant::now() + cfg.lock_timeout;
                        loop {
                            if st.holds(step.entity, inst).is_some() {
                                break;
                            }
                            let left =
                                deadline.saturating_duration_since(std::time::Instant::now());
                            if left.is_zero()
                                || shared.wakeups[shard].wait_for(&mut st, left).timed_out()
                            {
                                if st.holds(step.entity, inst).is_some() {
                                    break; // granted in the same instant
                                }
                                // Presumed deadlock: cancel our queued
                                // request (may unblock readers behind us),
                                // then abort.
                                let cancelled = st.cancel_waits(inst);
                                drop(st);
                                if !cancelled.granted.is_empty() {
                                    shared.wakeups[shard].notify_all();
                                }
                                abort(&mut held);
                                return false;
                            }
                        }
                    }
                }
                held.push(step.entity);
                shared.record(txn, epoch, StepId::from_idx(v));
                drop(st);
            }
            ActionKind::Update => {
                let st = shared.table.lock_shard_index(shard);
                debug_assert!(
                    st.holds(step.entity, inst)
                        .is_some_and(|held| held.covers(step.mode)),
                    "update without a covering lock"
                );
                shared.record(txn, epoch, StepId::from_idx(v));
                drop(st);
            }
            ActionKind::Unlock => {
                let mut st = shared.table.lock_shard_index(shard);
                let grants = st.release(step.entity, inst).expect("we hold it");
                held.retain(|&e| e != step.entity);
                shared.record(txn, epoch, StepId::from_idx(v));
                drop(st);
                if !grants.is_empty() {
                    shared.wakeups[shard].notify_all();
                }
            }
        }
        done[v] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_model::{Database, TxnBuilder};

    fn sys(scripts: &[&str], spec: &[(&str, usize)]) -> TxnSystem {
        let db = Database::from_spec(spec);
        let txns = scripts
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut b = TxnBuilder::new(&db, format!("T{}", i + 1));
                b.script(s).unwrap();
                b.build().unwrap()
            })
            .collect();
        TxnSystem::new(db, txns)
    }

    #[test]
    fn threaded_conflicting_pair_commits_serializably() {
        let s = sys(
            &["Lx Ly x y Ux Uy", "Lx Ly x y Ux Uy"],
            &[("x", 0), ("y", 0)],
        );
        for _ in 0..5 {
            let r = run_threaded(&s, &ThreadedConfig::default()).unwrap();
            assert!(r.finished);
            r.audit.legal.as_ref().unwrap();
            assert!(r.audit.serializable, "2PL history must be serializable");
        }
    }

    #[test]
    fn threaded_deadlock_prone_pair_still_finishes() {
        let s = sys(
            &["Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux"],
            &[("x", 0), ("y", 0)],
        );
        let r = run_threaded(&s, &ThreadedConfig::default()).unwrap();
        assert!(r.finished, "timeout-abort must break deadlocks");
        r.audit.legal.as_ref().unwrap();
        assert!(r.audit.serializable);
    }

    #[test]
    fn threaded_many_transactions() {
        let s = sys(
            &[
                "Lx Ly x y Ux Uy",
                "Ly Lz y z Uy Uz",
                "Lz Lx z x Uz Ux",
                "Lx Lz x z Ux Uz",
            ],
            &[("x", 0), ("y", 1), ("z", 2)],
        );
        let r = run_threaded(&s, &ThreadedConfig::default()).unwrap();
        assert!(r.finished);
        r.audit.legal.as_ref().unwrap();
        assert!(r.audit.serializable);
    }

    #[test]
    fn threaded_shared_readers_and_a_writer() {
        let s = sys(&["SLx rx Ux", "SLx rx Ux", "Lx x Ux"], &[("x", 0)]);
        for _ in 0..5 {
            let r = run_threaded(&s, &ThreadedConfig::default()).unwrap();
            assert!(r.finished);
            r.audit.legal.as_ref().unwrap();
            assert!(r.audit.serializable);
        }
    }

    #[test]
    fn threaded_single_shard_still_works() {
        let s = sys(
            &["Lx Ly x y Ux Uy", "Lx Ly x y Ux Uy"],
            &[("x", 0), ("y", 1)],
        );
        let cfg = ThreadedConfig {
            shards: 1,
            ..Default::default()
        };
        let r = run_threaded(&s, &cfg).unwrap();
        assert!(r.finished);
        assert!(r.audit.serializable);
    }
}
