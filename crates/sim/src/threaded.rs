//! A real-thread runner: the same lock-manager semantics executed by OS
//! threads instead of virtual time.
//!
//! One thread per transaction; per-site lock tables behind `parking_lot`
//! mutexes with condvar wakeups; a global atomic sequence numbers the
//! applied steps so the committed history can be audited exactly like the
//! deterministic simulator's. Deadlocks are broken by lock-wait timeouts
//! (abort, release, randomized backoff, retry).
//!
//! This runner is *non*-deterministic by nature — it exists to show the
//! phenomena under genuine concurrency; the discrete-event engine in
//! [`crate::engine`] is the reproducible instrument.

use crate::history::History;
use crate::history::{audit, Audit};
use kplock_model::{ActionKind, EntityId, StepId, TxnId, TxnSystem};
use parking_lot::{Condvar, Mutex};
use rand::Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Configuration for the threaded runner.
#[derive(Clone, Debug)]
pub struct ThreadedConfig {
    /// How long to wait on a lock before assuming deadlock and aborting.
    pub lock_timeout: Duration,
    /// Maximum abort/retry attempts per transaction.
    pub max_attempts: u32,
    /// Upper bound of the randomized backoff after an abort.
    pub max_backoff: Duration,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            lock_timeout: Duration::from_millis(50),
            max_attempts: 64,
            max_backoff: Duration::from_millis(5),
        }
    }
}

/// Report of a threaded run.
#[derive(Debug)]
pub struct ThreadedReport {
    /// Serializability audit of the committed history.
    pub audit: Audit,
    /// Total aborts across all transactions.
    pub aborts: usize,
    /// Whether every transaction committed within its attempt budget.
    pub finished: bool,
}

struct SiteState {
    holder: HashMap<EntityId, (TxnId, u32)>,
}

struct Shared {
    sites: Vec<(Mutex<SiteState>, Condvar)>,
    seq: AtomicU64,
    events: Mutex<Vec<(u64, TxnId, u32, StepId)>>,
}

/// Executes the system on real threads.
pub fn run_threaded(sys: &TxnSystem, cfg: &ThreadedConfig) -> ThreadedReport {
    let shared = Arc::new(Shared {
        sites: (0..sys.db().site_count())
            .map(|_| {
                (
                    Mutex::new(SiteState {
                        holder: HashMap::new(),
                    }),
                    Condvar::new(),
                )
            })
            .collect(),
        seq: AtomicU64::new(0),
        events: Mutex::new(Vec::new()),
    });

    let results: Vec<(bool, u32)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..sys.len() {
            let shared = Arc::clone(&shared);
            let cfg = cfg.clone();
            handles.push(scope.spawn(move || run_txn(sys, TxnId::from_idx(t), &shared, &cfg)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("txn thread panicked"))
            .collect()
    });

    // Rebuild a History from the event log.
    let mut history = History::default();
    let mut events = shared.events.lock().clone();
    events.sort_by_key(|&(seq, ..)| seq);
    for (_, txn, epoch, step) in events {
        history.record(0, crate::event::Instance { txn, epoch }, step);
    }
    let committed_epoch: Vec<u32> = results.iter().map(|&(_, e)| e).collect();
    let finished = results.iter().all(|&(ok, _)| ok);
    let aborts: usize = results.iter().map(|&(_, e)| e as usize).sum();
    ThreadedReport {
        audit: audit(sys, &history, &committed_epoch),
        aborts,
        finished,
    }
}

/// Runs one transaction to commit; returns `(committed, final_epoch)`.
fn run_txn(sys: &TxnSystem, txn: TxnId, shared: &Shared, cfg: &ThreadedConfig) -> (bool, u32) {
    let t = sys.txn(txn);
    let mut rng = rand::thread_rng();
    for epoch in 0..cfg.max_attempts {
        if attempt(sys, txn, epoch, t, shared, cfg) {
            return (true, epoch);
        }
        // Aborted: back off and retry.
        std::thread::sleep(Duration::from_micros(
            rng.gen_range(0..=cfg.max_backoff.as_micros() as u64),
        ));
    }
    (false, cfg.max_attempts)
}

fn attempt(
    sys: &TxnSystem,
    txn: TxnId,
    epoch: u32,
    t: &kplock_model::Transaction,
    shared: &Shared,
    cfg: &ThreadedConfig,
) -> bool {
    let mut done = vec![false; t.len()];
    let mut held: Vec<EntityId> = Vec::new();
    let release_all = |held: &mut Vec<EntityId>| {
        for e in held.drain(..) {
            let site = sys.db().site_of(e).idx();
            let (m, cv) = &shared.sites[site];
            m.lock().holder.remove(&e);
            cv.notify_all();
        }
    };

    // Execute steps as they become ready (single-threaded within a
    // transaction; parallel across transactions).
    loop {
        let Some(v) = (0..t.len())
            .find(|&v| !done[v] && t.edge_graph().predecessors(v).iter().all(|&p| done[p]))
        else {
            return true; // all steps done
        };
        let step = t.step(StepId::from_idx(v));
        let site = sys.db().site_of(step.entity).idx();
        let (m, cv) = &shared.sites[site];
        // Record the applied step while still holding the site mutex, so
        // the global sequence respects per-entity grant/release order.
        let record = |epoch: u32| {
            let seq = shared.seq.fetch_add(1, Ordering::SeqCst);
            shared
                .events
                .lock()
                .push((seq, txn, epoch, StepId::from_idx(v)));
        };
        match step.kind {
            ActionKind::Lock => {
                let mut st = m.lock();
                let deadline = std::time::Instant::now() + cfg.lock_timeout;
                while st.holder.contains_key(&step.entity) {
                    let timeout = deadline.saturating_duration_since(std::time::Instant::now());
                    if (timeout.is_zero() || cv.wait_for(&mut st, timeout).timed_out())
                        && st.holder.contains_key(&step.entity)
                    {
                        drop(st);
                        release_all(&mut held);
                        return false; // presumed deadlock: abort
                    }
                }
                st.holder.insert(step.entity, (txn, epoch));
                held.push(step.entity);
                record(epoch);
                drop(st);
            }
            ActionKind::Update => {
                let st = m.lock();
                debug_assert_eq!(st.holder.get(&step.entity), Some(&(txn, epoch)));
                record(epoch);
                drop(st);
            }
            ActionKind::Unlock => {
                let mut st = m.lock();
                st.holder.remove(&step.entity);
                held.retain(|&e| e != step.entity);
                record(epoch);
                cv.notify_all();
                drop(st);
            }
        }
        done[v] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_model::{Database, TxnBuilder};

    fn sys(scripts: &[&str], spec: &[(&str, usize)]) -> TxnSystem {
        let db = Database::from_spec(spec);
        let txns = scripts
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut b = TxnBuilder::new(&db, format!("T{}", i + 1));
                b.script(s).unwrap();
                b.build().unwrap()
            })
            .collect();
        TxnSystem::new(db, txns)
    }

    #[test]
    fn threaded_conflicting_pair_commits_serializably() {
        let s = sys(
            &["Lx Ly x y Ux Uy", "Lx Ly x y Ux Uy"],
            &[("x", 0), ("y", 0)],
        );
        for _ in 0..5 {
            let r = run_threaded(&s, &ThreadedConfig::default());
            assert!(r.finished);
            r.audit.legal.as_ref().unwrap();
            assert!(r.audit.serializable, "2PL history must be serializable");
        }
    }

    #[test]
    fn threaded_deadlock_prone_pair_still_finishes() {
        let s = sys(
            &["Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux"],
            &[("x", 0), ("y", 0)],
        );
        let r = run_threaded(&s, &ThreadedConfig::default());
        assert!(r.finished, "timeout-abort must break deadlocks");
        r.audit.legal.as_ref().unwrap();
        assert!(r.audit.serializable);
    }

    #[test]
    fn threaded_many_transactions() {
        let s = sys(
            &[
                "Lx Ly x y Ux Uy",
                "Ly Lz y z Uy Uz",
                "Lz Lx z x Uz Ux",
                "Lx Lz x z Ux Uz",
            ],
            &[("x", 0), ("y", 1), ("z", 2)],
        );
        let r = run_threaded(&s, &ThreadedConfig::default());
        assert!(r.finished);
        r.audit.legal.as_ref().unwrap();
        assert!(r.audit.serializable);
    }
}
