//! A real-thread runner: the same lock-manager semantics executed by OS
//! threads instead of virtual time.
//!
//! One thread per transaction; locks live in a [`kplock_dlm::ShardedTable`]
//! (hash-partitioned, one `parking_lot` mutex per shard, so independent
//! entities never contend on one map) generic over the
//! [`kplock_dlm::LockTable`] implementation ([`ThreadedConfig::table`]
//! picks [`kplock_dlm::FifoTable`] or [`kplock_dlm::QueueTable`], each
//! monomorphized — no virtual dispatch on the lock hot path). Grant
//! wakeups are *targeted*: each transaction owns a waiter slot (a flag
//! under its own mutex plus a condvar), and whoever performs a grant
//! notifies exactly the granted transactions' slots with `notify_one` —
//! no per-shard broadcast, so a release never wakes the whole herd just
//! to re-park it. A global atomic sequence numbers the applied steps so
//! the committed history can be audited exactly like the deterministic
//! simulator's. Deadlocks are broken by lock-wait timeouts by default
//! (cancel the queued request, release, randomized backoff, retry), or —
//! under [`ThreadedResolution::Prevent`] — never allowed to form:
//! timestamp-ordering prevention decides wait/wound/die inside the shard,
//! wounds are delivered as per-transaction flags plus a targeted wakeup
//! of the victim's slot, and no timeout heuristic is needed. With
//! [`ThreadedConfig::delegation`] on, an aborting attempt retains every
//! uncontested hold and the retry re-owns each one with a single
//! shard-guarded re-key — the Lock step becomes a cache hit
//! ([`ThreadedReport::cache_hits`]) and the targeted-wakeup design is
//! untouched: surrendered entries wake exactly their grantees.
//!
//! This runner is *non*-deterministic by nature — it exists to show the
//! phenomena under genuine concurrency; the discrete-event engine in
//! [`crate::engine`] is the reproducible instrument.

use crate::config::{AvoidPlan, ConfigError};
use crate::event::Instance;
use crate::history::History;
use crate::history::{audit, Audit};
use kplock_dlm::{
    Acquire, FifoTable, LockTable, PreventionOutcome, PreventionScheme, Priority, QueueTable,
    ShardedTable, TableSpec,
};
use kplock_model::{ActionKind, EntityId, StepId, TxnId, TxnSystem};
use parking_lot::{Condvar, Mutex};
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How the threaded runner keeps deadlocks from wedging the threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ThreadedResolution {
    /// The original heuristic: presume deadlock after
    /// [`ThreadedConfig::lock_timeout`] and abort the waiter. Can
    /// false-positive under load (a slow grant looks like a cycle).
    #[default]
    TimeoutAbort,
    /// Timestamp-ordering prevention (see [`kplock_dlm::prevent`]): waits
    /// are admitted only in priority order, so no cycle can form and no
    /// wait is ever mistaken for one. Transaction index plays the birth
    /// stamp (a fixed total order that survives retries). Wounds are
    /// delivered through per-transaction flags and the victim's waiter
    /// slot.
    Prevent(PreventionScheme),
    /// Avoidance (see [`crate::DeadlockResolution::Avoid`]): an
    /// [`AvoidPlan`] supplied in [`ThreadedConfig::avoid`] certifies a
    /// subset of the transactions against a safe lock order. Certified
    /// transactions all carry the top admission priority `(0, 0)` — they
    /// queue FIFO among themselves (cycle-free by the certificate) and
    /// wound any uncertified transaction in their way; uncertified
    /// transactions fall back to wound-wait among themselves with their
    /// index order preserved, shifted below every certified transaction.
    /// Like `Prevent`, no timeout heuristic is needed.
    Avoid,
}

/// Configuration for the threaded runner.
#[derive(Clone, Debug)]
pub struct ThreadedConfig {
    /// How long to wait on a lock before assuming deadlock and aborting
    /// (under [`ThreadedResolution::Prevent`] the same duration is only a
    /// wound-flag polling interval — timeouts never abort there).
    pub lock_timeout: Duration,
    /// Maximum abort/retry attempts per transaction.
    pub max_attempts: u32,
    /// Upper bound of the randomized backoff after an abort.
    pub max_backoff: Duration,
    /// Number of lock-table shards (entities hash across them).
    pub shards: usize,
    /// Deadlock resolution: timeout heuristic (default) or prevention.
    pub resolution: ThreadedResolution,
    /// Which lock-table implementation backs the shards (see
    /// [`kplock_dlm::TableSpec`]); each choice is monomorphized into its
    /// own runner.
    pub table: TableSpec,
    /// The avoidance certificate, required under
    /// [`ThreadedResolution::Avoid`] (mirrors [`crate::SimConfig::avoid`];
    /// [`run_threaded`] additionally checks it covers exactly the system's
    /// transactions).
    pub avoid: Option<AvoidPlan>,
    /// Delegated ownership across attempts (the threaded analogue of
    /// [`crate::Delegation::On`]): an aborting attempt *retains* every
    /// hold nothing is queued behind, and the retry re-owns each retained
    /// entry with a single shard-guarded re-key instead of a fresh
    /// acquire — the Lock step becomes a cache hit
    /// ([`ThreadedReport::cache_hits`]). Contested entries are
    /// surrendered at abort (or at revalidation, if the demand arrived
    /// during backoff) with the usual *targeted* grantee wakeups — the
    /// fast path never broadcasts and never skips a `notify_one` a
    /// waiter is owed. Off (the default) is byte-for-byte the old
    /// release-everything behaviour.
    pub delegation: bool,
}

impl ThreadedConfig {
    /// Checks the configuration for values that cannot run.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if self.resolution == ThreadedResolution::Avoid && self.avoid.is_none() {
            return Err(ConfigError::AvoidWithoutPlan);
        }
        Ok(())
    }

    /// The scheme deciding lock admission inside the shards, if any:
    /// the configured scheme under `Prevent`, wound-wait (as the
    /// fallback discipline) under `Avoid`, `None` under the timeout
    /// heuristic.
    fn admission_scheme(&self) -> Option<PreventionScheme> {
        match self.resolution {
            ThreadedResolution::TimeoutAbort => None,
            ThreadedResolution::Prevent(p) => Some(p),
            ThreadedResolution::Avoid => Some(PreventionScheme::WoundWait),
        }
    }

    /// The avoidance plan in force: `Some` iff the resolution is `Avoid`
    /// and a plan was supplied.
    fn avoid_plan(&self) -> Option<&AvoidPlan> {
        match self.resolution {
            ThreadedResolution::Avoid => self.avoid.as_ref(),
            _ => None,
        }
    }
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            lock_timeout: Duration::from_millis(50),
            max_attempts: 64,
            max_backoff: Duration::from_millis(5),
            shards: 8,
            resolution: ThreadedResolution::default(),
            table: TableSpec::default(),
            avoid: None,
            delegation: false,
        }
    }
}

/// Report of a threaded run.
#[derive(Debug)]
pub struct ThreadedReport {
    /// Serializability audit of the committed history.
    pub audit: Audit,
    /// Total aborts across all transactions.
    pub aborts: usize,
    /// Whether every transaction committed within its attempt budget.
    pub finished: bool,
    /// Epoch at which each transaction committed, `None` for transactions
    /// that exhausted their attempt budget. This is exactly what the
    /// audit consumed — an unfinished transaction contributes no phantom
    /// epoch (the old report fed `max_attempts` in as if it were a
    /// committed epoch).
    pub committed_epoch: Vec<Option<u32>>,
    /// Lock steps satisfied from a retained (delegated) entry instead of
    /// a fresh table acquire. Zero unless [`ThreadedConfig::delegation`]
    /// is on and some attempt aborted with uncontested holds.
    pub cache_hits: u64,
}

/// A transaction's wakeup slot: granters set the flag and `notify_one`;
/// the owner parks on the condvar until the flag is set (or a timeout
/// paces it). The flag lives under its *own* mutex, never the shard's,
/// so delivering a wakeup does not contend with table operations.
struct Waiter {
    flag: Mutex<bool>,
    cv: Condvar,
}

struct Shared<T> {
    table: ShardedTable<Instance, T>,
    /// One slot per transaction; see [`Waiter`].
    waiters: Vec<Waiter>,
    /// Wound markers, one per transaction (prevention only): `epoch + 1`
    /// of the wounded instance, `0` for none. Epoch-tagged so a stale
    /// wound (the victim already committed or restarted) is ignored for
    /// free, exactly like the simulator's epoch validation.
    wounded: Vec<AtomicU64>,
    seq: AtomicU64,
    /// Lock steps served from retained (delegated) entries; see
    /// [`ThreadedReport::cache_hits`].
    cache_hits: AtomicU64,
    events: parking_lot::Mutex<Vec<(u64, TxnId, u32, StepId)>>,
}

impl<T: LockTable<Instance>> Shared<T> {
    /// Records an applied step. Call while holding the shard guard of the
    /// step's entity so the global sequence respects per-entity
    /// grant/release order.
    fn record(&self, txn: TxnId, epoch: u32, step: StepId) {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        self.events.lock().push((seq, txn, epoch, step));
    }

    /// Wakes exactly `who`'s thread: set its slot flag, notify its condvar.
    /// Call *after* dropping the shard guard that performed the grant, so
    /// the woken thread's authoritative holds-check does not immediately
    /// block on a mutex we still hold.
    fn notify(&self, who: Instance) {
        let w = &self.waiters[who.txn.idx()];
        let mut flag = w.flag.lock();
        *flag = true;
        w.cv.notify_one();
    }

    /// Notifies every grantee in a `(owner, mode)` grant list.
    fn notify_grants(&self, grants: &[(Instance, kplock_model::LockMode)]) {
        for &(who, _) in grants {
            self.notify(who);
        }
    }

    /// Delivers a wound to `victim`: set its flag, then wake its slot —
    /// the victim is either parked there or will poll the flag at its
    /// next step boundary.
    fn wound(&self, victim: Instance) {
        self.wounded[victim.txn.idx()].store(u64::from(victim.epoch) + 1, Ordering::SeqCst);
        self.notify(victim);
    }

    /// Whether a wound targeting exactly this instance's epoch is pending.
    fn is_wounded(&self, inst: Instance) -> bool {
        self.wounded[inst.txn.idx()].load(Ordering::SeqCst) == u64::from(inst.epoch) + 1
    }
}

/// The fixed prevention priority of an owner: its transaction index
/// (stable across retries — the threaded analogue of a birth stamp).
fn prio_of(o: Instance) -> Priority {
    (o.txn.idx() as u64, 0)
}

/// The admission priority under the configured resolution: the plain
/// index stamp for prevention; under avoidance, certified transactions
/// share the all-winning `(0, 0)` (equals never wound each other — they
/// queue FIFO, safe by the plan's lock order) and uncertified ones keep
/// their index order shifted one below every certified transaction
/// (mirrors the simulator's `admission_priority`).
fn threaded_priority(cfg: &ThreadedConfig, o: Instance) -> Priority {
    match cfg.avoid_plan() {
        Some(plan) if plan.is_certified(o.txn) => (0, 0),
        Some(_) => (o.txn.idx() as u64 + 1, 0),
        None => prio_of(o),
    }
}

/// Owner → cohort for [`TableSpec::Queue`] shards: transactions stripe
/// across cohorts by index, stable across retries.
fn txn_cohort(inst: Instance, cohorts: u32) -> u32 {
    inst.txn.idx() as u32 % cohorts
}

/// Executes the system on real threads.
///
/// Returns [`ConfigError`] if `cfg` fails [`ThreadedConfig::validate`]
/// (e.g. zero shards), checked up front like [`crate::run`].
pub fn run_threaded(sys: &TxnSystem, cfg: &ThreadedConfig) -> Result<ThreadedReport, ConfigError> {
    cfg.validate()?;
    if let Some(plan) = cfg.avoid_plan() {
        if plan.txn_count() != sys.len() {
            return Err(ConfigError::AvoidPlanMismatch {
                plan_txns: plan.txn_count(),
                system_txns: sys.len(),
            });
        }
    }
    match cfg.table {
        TableSpec::Fifo => run_generic(sys, cfg, FifoTable::new),
        TableSpec::Queue { bias, cohorts } => run_generic(sys, cfg, move || {
            QueueTable::new()
                .with_bias(bias)
                .with_topology(cohorts, txn_cohort)
        }),
    }
}

/// The monomorphized runner body: one instantiation per table type.
fn run_generic<T: LockTable<Instance> + Send>(
    sys: &TxnSystem,
    cfg: &ThreadedConfig,
    factory: impl FnMut() -> T,
) -> Result<ThreadedReport, ConfigError> {
    let shared = Arc::new(Shared {
        table: ShardedTable::with_tables(cfg.shards, factory),
        waiters: (0..sys.len())
            .map(|_| Waiter {
                flag: Mutex::new(false),
                cv: Condvar::new(),
            })
            .collect(),
        wounded: (0..sys.len()).map(|_| AtomicU64::new(0)).collect(),
        seq: AtomicU64::new(0),
        cache_hits: AtomicU64::new(0),
        events: parking_lot::Mutex::new(Vec::new()),
    });

    let results: Vec<(bool, u32)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..sys.len() {
            let shared = Arc::clone(&shared);
            let cfg = cfg.clone();
            handles.push(scope.spawn(move || run_txn(sys, TxnId::from_idx(t), &shared, &cfg)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("txn thread panicked"))
            .collect()
    });

    // Rebuild a History from the event log.
    let mut history = History::default();
    let mut events = shared.events.lock().clone();
    events.sort_by_key(|&(seq, ..)| seq);
    for (_, txn, epoch, step) in events {
        history.record(0, Instance { txn, epoch }, step);
    }
    // Unfinished transactions commit at no epoch; the audit skips them
    // explicitly instead of receiving `max_attempts` as a phantom epoch.
    let committed_epoch: Vec<Option<u32>> = results
        .iter()
        .map(|&(ok, e)| if ok { Some(e) } else { None })
        .collect();
    let finished = results.iter().all(|&(ok, _)| ok);
    let aborts: usize = results.iter().map(|&(_, e)| e as usize).sum();
    Ok(ThreadedReport {
        audit: audit(sys, &history, &committed_epoch),
        aborts,
        finished,
        committed_epoch,
        cache_hits: shared.cache_hits.load(Ordering::SeqCst),
    })
}

/// Runs one transaction to commit; returns `(committed, final_epoch)`.
fn run_txn<T: LockTable<Instance>>(
    sys: &TxnSystem,
    txn: TxnId,
    shared: &Shared<T>,
    cfg: &ThreadedConfig,
) -> (bool, u32) {
    let t = sys.txn(txn);
    let mut rng = rand::thread_rng();
    // Delegated entries retained across attempts: entities still held in
    // the table under the *previous* (aborted) epoch's instance, pending
    // revalidation by the next attempt. Empty unless `cfg.delegation`.
    let mut cache: Vec<EntityId> = Vec::new();
    for epoch in 0..cfg.max_attempts {
        if attempt(sys.db(), txn, epoch, t, shared, cfg, &mut cache) {
            return (true, epoch);
        }
        // Aborted: back off and retry.
        std::thread::sleep(Duration::from_micros(
            rng.gen_range(0..=cfg.max_backoff.as_micros() as u64),
        ));
    }
    if cfg.delegation && !cache.is_empty() {
        // Budget exhausted with retained residue: give it all back (the
        // entries are keyed under the final attempt's instance) so the
        // failure never strands a hold, waking exactly the grantees.
        let inst = Instance {
            txn,
            epoch: cfg.max_attempts - 1,
        };
        for (_e, grants) in shared.table.release_all(inst) {
            shared.notify_grants(&grants);
        }
    }
    (false, cfg.max_attempts)
}

/// Abort-time retention probe for one held entity: keep the hold —
/// still keyed under the aborting (now dead) instance — when nothing is
/// queued behind it, surrender it otherwise. Granted demanders get the
/// usual targeted wakeups once the shard guard drops; retention never
/// broadcasts.
fn retain_or_release<T: LockTable<Instance>>(
    shared: &Shared<T>,
    e: EntityId,
    inst: Instance,
) -> bool {
    let mut st = shared.table.lock_shard_index(shared.table.shard_index(e));
    if st.holds(e, inst).is_none() {
        return false;
    }
    if st.entity_waits_for(e).is_empty() {
        return true;
    }
    let grants = st.release(e, inst).expect("we hold it");
    drop(st);
    shared.notify_grants(&grants);
    false
}

/// Revalidates one retained entry at attempt start: re-keys the hold
/// from the aborted instance to the new one iff the entity is still
/// idle after our release (release + instant re-own under one shard
/// guard, so nobody can slip between). A contested entry — a demand
/// arrived during backoff — is surrendered instead and each grantee
/// woken individually, exactly like a release on the normal path.
fn rekey<T: LockTable<Instance>>(
    shared: &Shared<T>,
    cfg: &ThreadedConfig,
    e: EntityId,
    from: Instance,
    to: Instance,
) -> bool {
    let mut st = shared.table.lock_shard_index(shared.table.shard_index(e));
    let Some(mode) = st.holds(e, from) else {
        return false;
    };
    let grants = st.release(e, from).expect("retained hold");
    if grants.is_empty() && st.holders(e).is_empty() && st.entity_waits_for(e).is_empty() {
        // The entity is idle, so re-owning it is an instant grant under
        // either admission API: no wait is admitted and nobody wounded.
        let granted = match cfg.admission_scheme() {
            None => matches!(st.acquire(e, to, mode).expect("protocol"), Acquire::Granted),
            Some(scheme) => matches!(
                st.acquire_with_priority(e, to, mode, scheme, &|o| threaded_priority(cfg, o))
                    .expect("protocol"),
                PreventionOutcome::Granted
            ),
        };
        if granted {
            return true;
        }
        // Unreachable for an idle entity; surrender defensively rather
        // than leave a queued request we will never park on.
        let cancelled = st.cancel_waits(to);
        drop(st);
        for (_e, grants) in &cancelled.granted {
            shared.notify_grants(grants);
        }
        false
    } else {
        drop(st);
        shared.notify_grants(&grants);
        false
    }
}

/// Ends an attempt: under delegation, holds nothing is queued behind
/// are retained into `cache` (keyed under the dead instance until the
/// retry re-keys them); everything else — and, with delegation off,
/// everything — is released with a targeted notify per grantee.
fn abort_attempt<T: LockTable<Instance>>(
    shared: &Shared<T>,
    cfg: &ThreadedConfig,
    inst: Instance,
    held: &mut Vec<EntityId>,
    cache: &mut Vec<EntityId>,
) {
    if cfg.delegation {
        let candidates: Vec<EntityId> = cache.drain(..).chain(held.drain(..)).collect();
        for e in candidates {
            if retain_or_release(shared, e, inst) {
                cache.push(e);
            }
        }
    } else {
        held.clear();
        // Wake only the transactions actually granted something by our
        // releases — a targeted notify per grantee, never a broadcast.
        for (_e, grants) in shared.table.release_all(inst) {
            shared.notify_grants(&grants);
        }
    }
}

fn attempt<T: LockTable<Instance>>(
    db: &kplock_model::Database,
    txn: TxnId,
    epoch: u32,
    t: &kplock_model::Transaction,
    shared: &Shared<T>,
    cfg: &ThreadedConfig,
    cache: &mut Vec<EntityId>,
) -> bool {
    let inst = Instance { txn, epoch };
    // Revalidate the retained cache before anything can block: each
    // entry is re-keyed to this attempt's instance or surrendered, so
    // the attempt never waits while holding a dead-epoch entry (wounds
    // target live instances only — a stale hold that outlived a block
    // would be unwoundable and could wedge the prevention arms).
    if cfg.delegation && !cache.is_empty() {
        debug_assert!(epoch > 0, "nothing can be retained before the first abort");
        let old = Instance {
            txn,
            epoch: epoch - 1,
        };
        cache.retain(|&e| rekey(shared, cfg, e, old, inst));
    }
    let mut done = vec![false; t.len()];
    let mut held: Vec<EntityId> = Vec::new();

    // Execute steps as they become ready (single-threaded within a
    // transaction; parallel across transactions).
    loop {
        // A running victim notices its wound at step boundaries; a blocked
        // one is woken through its waiter slot by the wounder.
        if cfg.admission_scheme().is_some() && shared.is_wounded(inst) {
            abort_attempt(shared, cfg, inst, &mut held, cache);
            return false;
        }
        let Some(v) = (0..t.len())
            .find(|&v| !done[v] && t.edge_graph().predecessors(v).iter().all(|&p| done[p]))
        else {
            return true; // all steps done
        };
        let step = t.step(StepId::from_idx(v));
        let shard = shared.table.shard_index(step.entity);
        match step.kind {
            ActionKind::Lock => {
                // Delegated fast path: a retained entry revalidated at
                // attempt start is already held under this instance, so
                // the "acquire" is a record under the shard guard — no
                // queueing, and no wakeup owed to anyone.
                if cfg.delegation {
                    if let Some(pos) = cache.iter().position(|&e| e == step.entity) {
                        cache.swap_remove(pos);
                        let st = shared.table.lock_shard_index(shard);
                        let cached = st
                            .holds(step.entity, inst)
                            .is_some_and(|m| m.covers(step.mode));
                        if cached {
                            held.push(step.entity);
                            shared.record(txn, epoch, StepId::from_idx(v));
                            shared.cache_hits.fetch_add(1, Ordering::Relaxed);
                        }
                        drop(st);
                        if cached {
                            done[v] = true;
                            continue;
                        }
                    }
                }
                // Clear any stale wakeup before the request goes in: every
                // grant of *this* request happens under the shard guard we
                // are about to take, so it cannot race past this reset.
                *shared.waiters[txn.idx()].flag.lock() = false;
                let mut st = shared.table.lock_shard_index(shard);
                let queued = match cfg.admission_scheme() {
                    None => matches!(
                        st.acquire(step.entity, inst, step.mode).expect("protocol"),
                        Acquire::Queued
                    ),
                    Some(scheme) => {
                        match st
                            .acquire_with_priority(step.entity, inst, step.mode, scheme, &|o| {
                                threaded_priority(cfg, o)
                            })
                            .expect("protocol")
                        {
                            PreventionOutcome::Granted => false,
                            PreventionOutcome::Queued => true,
                            PreventionOutcome::Wounded(victims) => {
                                // Wound the younger owners (flag + targeted
                                // wakeup — real delivery, they abort
                                // themselves) and wait like anyone else.
                                drop(st);
                                for v in victims {
                                    shared.wound(v);
                                }
                                st = shared.table.lock_shard_index(shard);
                                true
                            }
                            PreventionOutcome::Rejected => {
                                // Wait-die / no-wait: we die, keeping our
                                // priority for the retry.
                                drop(st);
                                abort_attempt(shared, cfg, inst, &mut held, cache);
                                return false;
                            }
                        }
                    }
                };
                if !queued {
                    held.push(step.entity);
                    shared.record(txn, epoch, StepId::from_idx(v));
                    drop(st);
                } else {
                    // FIFO: a later release grants us in-queue and wakes
                    // our slot; park there. Under the timeout heuristic
                    // the wait is bounded and presumed deadlocked at the
                    // deadline; under prevention waits are cycle-free, and
                    // the same duration only paces wound-flag polling
                    // (covering a wound that fired before we parked).
                    drop(st);
                    let deadline = std::time::Instant::now() + cfg.lock_timeout;
                    loop {
                        {
                            let w = &shared.waiters[txn.idx()];
                            let mut flag = w.flag.lock();
                            if !*flag {
                                let pace = match cfg.admission_scheme() {
                                    None => deadline
                                        .saturating_duration_since(std::time::Instant::now()),
                                    Some(_) => cfg.lock_timeout,
                                };
                                if !pace.is_zero() {
                                    let _ = w.cv.wait_for(&mut flag, pace);
                                }
                            }
                            *flag = false; // consume the wakeup
                        }
                        // Authoritative checks happen under the shard
                        // guard — the flag is only a hint.
                        let mut st = shared.table.lock_shard_index(shard);
                        if cfg.admission_scheme().is_some() && shared.is_wounded(inst) {
                            let cancelled = st.cancel_waits(inst);
                            drop(st);
                            for (_e, grants) in &cancelled.granted {
                                shared.notify_grants(grants);
                            }
                            abort_attempt(shared, cfg, inst, &mut held, cache);
                            return false;
                        }
                        if st.holds(step.entity, inst).is_some() {
                            held.push(step.entity);
                            shared.record(txn, epoch, StepId::from_idx(v));
                            drop(st);
                            break;
                        }
                        if matches!(cfg.resolution, ThreadedResolution::TimeoutAbort)
                            && std::time::Instant::now() >= deadline
                        {
                            // Presumed deadlock: cancel our queued request
                            // (may unblock readers behind us), then abort.
                            let cancelled = st.cancel_waits(inst);
                            drop(st);
                            for (_e, grants) in &cancelled.granted {
                                shared.notify_grants(grants);
                            }
                            abort_attempt(shared, cfg, inst, &mut held, cache);
                            return false;
                        }
                        drop(st);
                    }
                }
            }
            ActionKind::Update => {
                let st = shared.table.lock_shard_index(shard);
                let covered = st
                    .holds(step.entity, inst)
                    .is_some_and(|held| held.covers(step.mode));
                shared.record(txn, epoch, StepId::from_idx(v));
                drop(st);
                // On a hierarchical database a coarse parent lock shields
                // the access instead; the parent may hash to another
                // shard, so this check runs after the child's guard drops.
                if cfg!(debug_assertions) && !covered {
                    let shielded = db.parent_of(step.entity).is_some_and(|p| {
                        let pst = shared.table.lock_shard_index(shared.table.shard_index(p));
                        pst.holds(p, inst)
                            .is_some_and(|m| m.shields_child(step.mode))
                    });
                    assert!(shielded, "update without a covering lock or parent shield");
                }
            }
            ActionKind::Unlock => {
                let mut st = shared.table.lock_shard_index(shard);
                let grants = st.release(step.entity, inst).expect("we hold it");
                held.retain(|&e| e != step.entity);
                shared.record(txn, epoch, StepId::from_idx(v));
                drop(st);
                shared.notify_grants(&grants);
            }
        }
        done[v] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_model::{Database, TxnBuilder};

    fn sys(scripts: &[&str], spec: &[(&str, usize)]) -> TxnSystem {
        let db = Database::from_spec(spec);
        let txns = scripts
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut b = TxnBuilder::new(&db, format!("T{}", i + 1));
                b.script(s).unwrap();
                b.build().unwrap()
            })
            .collect();
        TxnSystem::new(db, txns)
    }

    /// Both table implementations, for sweeping the same scenario.
    fn specs() -> [TableSpec; 2] {
        [TableSpec::Fifo, TableSpec::queue()]
    }

    #[test]
    fn threaded_conflicting_pair_commits_serializably() {
        let s = sys(
            &["Lx Ly x y Ux Uy", "Lx Ly x y Ux Uy"],
            &[("x", 0), ("y", 0)],
        );
        for table in specs() {
            let cfg = ThreadedConfig {
                table,
                ..Default::default()
            };
            for _ in 0..5 {
                let r = run_threaded(&s, &cfg).unwrap();
                assert!(r.finished);
                r.audit.legal.as_ref().unwrap();
                assert!(r.audit.serializable, "2PL history must be serializable");
            }
        }
    }

    #[test]
    fn threaded_deadlock_prone_pair_still_finishes() {
        let s = sys(
            &["Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux"],
            &[("x", 0), ("y", 0)],
        );
        for table in specs() {
            let cfg = ThreadedConfig {
                table,
                ..Default::default()
            };
            let r = run_threaded(&s, &cfg).unwrap();
            assert!(r.finished, "timeout-abort must break deadlocks");
            r.audit.legal.as_ref().unwrap();
            assert!(r.audit.serializable);
        }
    }

    #[test]
    fn threaded_many_transactions() {
        let s = sys(
            &[
                "Lx Ly x y Ux Uy",
                "Ly Lz y z Uy Uz",
                "Lz Lx z x Uz Ux",
                "Lx Lz x z Ux Uz",
            ],
            &[("x", 0), ("y", 1), ("z", 2)],
        );
        let r = run_threaded(&s, &ThreadedConfig::default()).unwrap();
        assert!(r.finished);
        r.audit.legal.as_ref().unwrap();
        assert!(r.audit.serializable);
    }

    #[test]
    fn threaded_shared_readers_and_a_writer() {
        let s = sys(&["SLx rx Ux", "SLx rx Ux", "Lx x Ux"], &[("x", 0)]);
        for table in specs() {
            let cfg = ThreadedConfig {
                table,
                ..Default::default()
            };
            for _ in 0..5 {
                let r = run_threaded(&s, &cfg).unwrap();
                assert!(r.finished);
                r.audit.legal.as_ref().unwrap();
                assert!(r.audit.serializable);
            }
        }
    }

    #[test]
    fn threaded_prevention_schemes_finish_without_timeout_heuristic() {
        // The deadlock-prone pair again, but with a lock timeout far
        // beyond the test budget: only prevention (not the timeout
        // heuristic) can be breaking the deadlocks here.
        let s = sys(
            &["Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux"],
            &[("x", 0), ("y", 0)],
        );
        for table in specs() {
            for scheme in [
                PreventionScheme::WoundWait,
                PreventionScheme::WaitDie,
                PreventionScheme::NoWait,
            ] {
                let cfg = ThreadedConfig {
                    resolution: ThreadedResolution::Prevent(scheme),
                    lock_timeout: Duration::from_millis(2),
                    max_attempts: 1000,
                    table,
                    ..Default::default()
                };
                for _ in 0..5 {
                    let r = run_threaded(&s, &cfg).unwrap();
                    assert!(r.finished, "{scheme:?} must not wedge");
                    r.audit.legal.as_ref().unwrap();
                    assert!(r.audit.serializable, "{scheme:?}");
                }
            }
        }
    }

    #[test]
    fn threaded_wound_wait_delivers_wounds_to_blocked_victims() {
        // Rotated lock orders force conflicts both ways; T1 (index 0,
        // highest priority) must always win under wound-wait — it is
        // never wounded and never rejected, so it commits at epoch 0
        // whenever no older transaction exists.
        let s = sys(
            &["Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", "Lx Ly x y Ux Uy"],
            &[("x", 0), ("y", 0)],
        );
        let cfg = ThreadedConfig {
            resolution: ThreadedResolution::Prevent(PreventionScheme::WoundWait),
            lock_timeout: Duration::from_millis(2),
            max_attempts: 1000,
            ..Default::default()
        };
        for _ in 0..10 {
            let r = run_threaded(&s, &cfg).unwrap();
            assert!(r.finished);
            assert_eq!(
                r.committed_epoch[0],
                Some(0),
                "the oldest transaction is invulnerable under wound-wait"
            );
            assert!(r.audit.serializable);
        }
    }

    #[test]
    fn unfinished_txn_contributes_no_phantom_epoch_to_the_audit() {
        // Zero attempts: every transaction is unfinished by construction.
        // The old report published `committed_epoch = max_attempts` (here
        // 0 — a *valid-looking* epoch) for them; the audit must instead
        // see `None` and an empty schedule.
        let s = sys(
            &["Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux"],
            &[("x", 0), ("y", 0)],
        );
        let cfg = ThreadedConfig {
            max_attempts: 0,
            ..Default::default()
        };
        let r = run_threaded(&s, &cfg).unwrap();
        assert!(!r.finished);
        assert_eq!(r.committed_epoch, vec![None, None]);
        assert_eq!(r.audit.schedule.len(), 0, "no phantom steps audited");

        // One attempt on a deadlock-prone pair with a tiny timeout: any
        // run where a transaction exhausts its budget must keep its
        // partial epoch-0 history out of the audited schedule, and a
        // committed claim must never point at an epoch that cannot have
        // run (the old code reported `max_attempts` — a forged epoch —
        // for every unfinished transaction). Thread scheduling decides
        // whether the collision happens; the property must hold either
        // way, so assert it on every run.
        let cfg = ThreadedConfig {
            max_attempts: 1,
            lock_timeout: Duration::from_millis(1),
            ..Default::default()
        };
        for _ in 0..25 {
            let r = run_threaded(&s, &cfg).unwrap();
            for (t, ep) in r.committed_epoch.iter().enumerate() {
                match ep {
                    Some(e) => assert!(
                        *e < cfg.max_attempts,
                        "T{} claims an epoch that never ran",
                        t + 1
                    ),
                    None => assert!(
                        r.audit.schedule.steps().iter().all(|s| s.txn.idx() != t),
                        "unfinished T{} leaked steps into the audit",
                        t + 1
                    ),
                }
            }
        }
    }

    #[test]
    fn threaded_avoid_certified_set_commits_first_try() {
        // Every transaction locks in ascending entity order: the whole set
        // certifies, so under Avoid nothing is ever wounded or rejected —
        // every transaction commits at epoch 0 (zero aborts), with a lock
        // timeout far beyond the test budget so the heuristic cannot be
        // credited.
        let s = sys(
            &["Lx Ly x y Ux Uy", "Lx Ly x y Ux Uy", "Ly Lz y z Uy Uz"],
            &[("x", 0), ("y", 1), ("z", 2)],
        );
        let plan = AvoidPlan::synthesize(&s);
        assert!(plan.fully_certified());
        for table in specs() {
            let cfg = ThreadedConfig {
                resolution: ThreadedResolution::Avoid,
                avoid: Some(plan.clone()),
                lock_timeout: Duration::from_millis(2),
                max_attempts: 1000,
                table,
                ..Default::default()
            };
            for _ in 0..5 {
                let r = run_threaded(&s, &cfg).unwrap();
                assert!(r.finished);
                assert_eq!(r.aborts, 0, "certified sets never restart");
                assert!(r.committed_epoch.iter().all(|&e| e == Some(0)));
                r.audit.legal.as_ref().unwrap();
                assert!(r.audit.serializable);
            }
        }
    }

    #[test]
    fn threaded_avoid_mixed_set_finishes_without_timeouts() {
        // T2 opposes the lock order and stays uncertified: the wound-wait
        // fallback meters it while the certified majority runs untouched.
        let s = sys(
            &["Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", "Lx Ly x y Ux Uy"],
            &[("x", 0), ("y", 0)],
        );
        let plan = AvoidPlan::synthesize(&s);
        assert!(plan.is_certified(TxnId(0)) && !plan.is_certified(TxnId(1)));
        let cfg = ThreadedConfig {
            resolution: ThreadedResolution::Avoid,
            avoid: Some(plan),
            lock_timeout: Duration::from_millis(2),
            max_attempts: 1000,
            ..Default::default()
        };
        for _ in 0..10 {
            let r = run_threaded(&s, &cfg).unwrap();
            assert!(r.finished, "avoidance must not wedge");
            r.audit.legal.as_ref().unwrap();
            assert!(r.audit.serializable);
        }
    }

    #[test]
    fn threaded_avoid_requires_a_matching_plan() {
        let s = sys(&["Lx x Ux"], &[("x", 0)]);
        let cfg = ThreadedConfig {
            resolution: ThreadedResolution::Avoid,
            ..Default::default()
        };
        assert_eq!(
            run_threaded(&s, &cfg).unwrap_err(),
            ConfigError::AvoidWithoutPlan
        );
        let other = sys(&["Lx x Ux", "Lx x Ux"], &[("x", 0)]);
        let cfg = ThreadedConfig {
            resolution: ThreadedResolution::Avoid,
            avoid: Some(AvoidPlan::synthesize(&other)),
            ..Default::default()
        };
        assert_eq!(
            run_threaded(&s, &cfg).unwrap_err(),
            ConfigError::AvoidPlanMismatch {
                plan_txns: 2,
                system_txns: 1
            }
        );
    }

    #[test]
    fn threaded_single_shard_still_works() {
        let s = sys(
            &["Lx Ly x y Ux Uy", "Lx Ly x y Ux Uy"],
            &[("x", 0), ("y", 1)],
        );
        let cfg = ThreadedConfig {
            shards: 1,
            ..Default::default()
        };
        let r = run_threaded(&s, &cfg).unwrap();
        assert!(r.finished);
        assert!(r.audit.serializable);
    }

    #[test]
    fn threaded_delegation_turns_retries_into_cache_hits() {
        // Each transaction locks a private entity first, then fights over
        // `x` under no-wait: every rejection aborts while holding the
        // private entity — always uncontested, so always retained — and
        // the retry's private Lock step must be a cache hit. The runner
        // is nondeterministic (the threads may simply never collide), so
        // the assertion is conditional: aborts imply hits.
        let s = sys(
            &["Lq Lx q x x x Uq Ux", "Lp Lx p x x x Up Ux"],
            &[("q", 0), ("p", 0), ("x", 0)],
        );
        for table in specs() {
            let cfg = ThreadedConfig {
                resolution: ThreadedResolution::Prevent(PreventionScheme::NoWait),
                lock_timeout: Duration::from_millis(2),
                max_attempts: 1000,
                delegation: true,
                table,
                ..Default::default()
            };
            for _ in 0..20 {
                let r = run_threaded(&s, &cfg).unwrap();
                assert!(r.finished);
                r.audit.legal.as_ref().unwrap();
                assert!(r.audit.serializable);
                if r.aborts > 0 {
                    assert!(
                        r.cache_hits >= 1,
                        "an abort retained the private entity, so the retry must hit"
                    );
                }
            }
        }
    }

    #[test]
    fn threaded_delegation_surrenders_contested_entries() {
        // The deadlock-prone pair plus private entities, on every
        // resolution flavour: retained entries the rival demands must be
        // surrendered (at abort or at revalidation), so delegation never
        // wedges a run that finished without it.
        let s = sys(
            &["Lq Lx Ly q x y Uq Ux Uy", "Lp Ly Lx p y x Up Uy Ux"],
            &[("q", 0), ("p", 0), ("x", 0), ("y", 0)],
        );
        let resolutions = [
            ThreadedResolution::TimeoutAbort,
            ThreadedResolution::Prevent(PreventionScheme::WoundWait),
            ThreadedResolution::Prevent(PreventionScheme::WaitDie),
        ];
        for table in specs() {
            for resolution in resolutions {
                let cfg = ThreadedConfig {
                    resolution,
                    lock_timeout: Duration::from_millis(5),
                    max_attempts: 1000,
                    delegation: true,
                    table,
                    ..Default::default()
                };
                for _ in 0..5 {
                    let r = run_threaded(&s, &cfg).unwrap();
                    assert!(r.finished, "{resolution:?} must not wedge under delegation");
                    r.audit.legal.as_ref().unwrap();
                    assert!(r.audit.serializable, "{resolution:?}");
                }
            }
        }
    }

    #[test]
    fn threaded_delegation_off_reports_no_hits() {
        let s = sys(
            &["Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux"],
            &[("x", 0), ("y", 0)],
        );
        let r = run_threaded(&s, &ThreadedConfig::default()).unwrap();
        assert!(r.finished);
        assert_eq!(r.cache_hits, 0, "the counter only moves with the knob on");
    }

    #[test]
    fn threaded_queue_table_with_cohorts_and_bias_finishes() {
        let s = sys(
            &["Lx Ly x y Ux Uy", "Ly Lx y x Uy Ux", "SLx rx Ux"],
            &[("x", 0), ("y", 0)],
        );
        for table in [
            TableSpec::Queue {
                bias: kplock_dlm::Bias::ReaderBatch,
                cohorts: 0,
            },
            TableSpec::Queue {
                bias: kplock_dlm::Bias::WriterPreference,
                cohorts: 2,
            },
        ] {
            let cfg = ThreadedConfig {
                table,
                ..Default::default()
            };
            let r = run_threaded(&s, &cfg).unwrap();
            assert!(r.finished);
            r.audit.legal.as_ref().unwrap();
            assert!(r.audit.serializable);
        }
    }
}
