//! Open-loop workload driver: transactions arriving over time.
//!
//! Real distributed databases do not start every transaction at the same
//! instant; the driver draws arrival times from a (seeded) geometric
//! approximation of a Poisson process and runs the engine with them, so
//! contention becomes a function of offered load rather than an artifact of
//! simultaneous starts.

use crate::config::{ConfigError, SimConfig};
use crate::engine::{run_with_arrivals, SimReport};
use crate::event::SimTime;
use kplock_model::TxnSystem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Arrival process configuration.
#[derive(Clone, Copy, Debug)]
pub struct ArrivalConfig {
    /// Mean inter-arrival gap in ticks (0 = all at once).
    pub mean_gap: u64,
    /// Seed for the arrival draw (separate from the engine's seed so load
    /// and timing vary independently).
    pub seed: u64,
}

/// Draws arrival times: cumulative sums of `Uniform(0, 2·mean_gap)` gaps
/// (mean `mean_gap`, bounded — adequate for load sweeps).
pub fn draw_arrivals(n: usize, cfg: &ArrivalConfig) -> Vec<SimTime> {
    if cfg.mean_gap == 0 {
        return vec![0; n];
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut now = 0u64;
    (0..n)
        .map(|i| {
            if i > 0 {
                now += rng.gen_range(0..=2 * cfg.mean_gap);
            }
            now
        })
        .collect()
}

/// Runs the system under the arrival process. Validates `sim` up front
/// like [`crate::run`].
pub fn run_open_loop(
    sys: &TxnSystem,
    sim: &SimConfig,
    arrivals: &ArrivalConfig,
) -> Result<SimReport, ConfigError> {
    let times = draw_arrivals(sys.len(), arrivals);
    run_with_arrivals(sys, sim, &times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LatencyModel;
    use kplock_model::{Database, TxnBuilder};

    fn sys() -> TxnSystem {
        let db = Database::from_spec(&[("x", 0), ("y", 1)]);
        let txns = (0..4)
            .map(|i| {
                let mut b = TxnBuilder::new(&db, format!("T{}", i + 1));
                b.script("Lx Ly x y Ux Uy").unwrap();
                b.build().unwrap()
            })
            .collect();
        TxnSystem::new(db, txns)
    }

    #[test]
    fn arrivals_are_monotone_and_deterministic() {
        let cfg = ArrivalConfig {
            mean_gap: 50,
            seed: 9,
        };
        let a = draw_arrivals(6, &cfg);
        let b = draw_arrivals(6, &cfg);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(a[0], 0);
        assert_eq!(
            draw_arrivals(
                3,
                &ArrivalConfig {
                    mean_gap: 0,
                    seed: 1
                }
            ),
            vec![0, 0, 0]
        );
    }

    #[test]
    fn open_loop_run_commits_everything() {
        let sys = sys();
        let r = run_open_loop(
            &sys,
            &SimConfig {
                latency: LatencyModel::Fixed(3),
                ..Default::default()
            },
            &ArrivalConfig {
                mean_gap: 40,
                seed: 5,
            },
        )
        .unwrap();
        assert!(r.finished());
        assert_eq!(r.metrics.committed, 4);
        r.audit.legal.as_ref().unwrap();
        assert!(r.audit.serializable);
    }

    #[test]
    fn spreading_arrivals_reduces_contention() {
        let sys = sys();
        let sim = SimConfig {
            latency: LatencyModel::Fixed(3),
            ..Default::default()
        };
        let burst = run_open_loop(
            &sys,
            &sim,
            &ArrivalConfig {
                mean_gap: 0,
                seed: 5,
            },
        )
        .unwrap();
        let spread = run_open_loop(
            &sys,
            &sim,
            &ArrivalConfig {
                mean_gap: 500,
                seed: 5,
            },
        )
        .unwrap();
        assert!(burst.finished() && spread.finished());
        assert!(
            spread.metrics.lock_wait_ticks <= burst.metrics.lock_wait_ticks,
            "spread {} vs burst {}",
            spread.metrics.lock_wait_ticks,
            burst.metrics.lock_wait_ticks
        );
    }
}
