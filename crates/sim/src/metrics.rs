//! Run metrics.

use crate::event::SimTime;

/// Counters collected during a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Committed transactions.
    pub committed: usize,
    /// Aborted instances (each restart counts one abort).
    pub aborts: usize,
    /// Total messages delivered.
    pub messages: u64,
    /// Total ticks instances spent queued for locks.
    pub lock_wait_ticks: u64,
    /// Lock requests serviced by sites (granted, queued, or rejected —
    /// every live `LockRequest` a table processed, across all epochs).
    /// The per-shard work hierarchical granularity trades away: a coarse
    /// parent lock replaces one request per touched child.
    pub lock_requests: u64,
    /// Deadlock cycles resolved.
    pub deadlocks_resolved: usize,
    /// Probe messages sent site-to-site ([`crate::DeadlockDetection::Probe`]
    /// only) — the network cost of *distributed* detection. These are
    /// **included** in [`Metrics::messages`] (every wire message is), so
    /// this counter isolates the detection share: coordinator↔site data
    /// traffic is `messages - probe_messages`; do not sum the two.
    pub probe_messages: u64,
    /// Total ticks between a cycle forming and the victim's abort
    /// executing, summed over resolved deadlocks. Under
    /// [`crate::DeadlockDetection::Probe`] the cycle is attributed to the
    /// *latest* appearance tick among its traversed wait-edges (each site
    /// timestamps its own edges; probes carry the running maximum), so an
    /// earlier-launched probe that closes a cycle in flight no longer
    /// charges the cycle for ticks before its last edge existed. Under
    /// `Periodic` and `OnBlock` formation is approximated by the youngest
    /// wait among the cycle's members — so `OnBlock` reads ~0 for
    /// block-formed cycles (resolved in their formation tick) but can
    /// overcount cycles formed by grant retargeting, whose members began
    /// waiting earlier. Expected magnitudes: ~0 for `OnBlock`, up to a
    /// scan interval for `Periodic`, roughly one network hop per cycle
    /// edge plus the abort order's hop for `Probe`.
    pub detection_latency_ticks: u64,
    /// Restarts ordered by a *prevention* scheme
    /// ([`crate::DeadlockResolution::Prevent`]): wait-die/no-wait
    /// rejections plus wound-wait wounds. Counted separately from
    /// deadlock-detection aborts — prevention trades exactly these
    /// restarts for the detector's probe messages and scan latency; both
    /// are included in [`Metrics::aborts`].
    pub prevention_restarts: usize,
    /// Probe-ordered aborts whose victim was no longer on any wait-for
    /// cycle when the abort executed. Only populated when
    /// [`crate::SimConfig::probe_audit`] is on; see that flag for why this
    /// is measurement, not protocol.
    pub phantom_probe_aborts: usize,
    /// Wire messages that never arrived: dropped by seeded loss
    /// ([`crate::fault::FaultPlan::loss`]) or addressed to a site that
    /// was down when they landed. A dropped message was still *sent* —
    /// it is included in [`Metrics::messages`], like every wire message.
    pub messages_dropped: u64,
    /// Extra copies injected by seeded duplication
    /// ([`crate::fault::FaultPlan::duplication`]). The copies are not
    /// separately counted in [`Metrics::messages`] (the sender paid for
    /// one send); this counter is the duplication overhead itself.
    pub messages_duplicated: u64,
    /// Acquire/release wire traffic: `LockRequest`, `LockGranted`,
    /// `LockRejected`, `UnlockRequest`, `UnlockDone`, `Revoke` and
    /// `RevokeAck` messages actually sent. A **subset** of
    /// [`Metrics::messages`] (which also counts updates, probes, wounds
    /// and aborts) — this is the quantity delegated ownership
    /// ([`crate::Delegation::On`]) reduces, and the one the D7 table and
    /// the `BENCH_10` gate compare across modes. Cache-hit operations
    /// contribute zero here by construction.
    pub lock_traffic: u64,
    /// Lock or unlock steps serviced from the coordinator's delegated
    /// cache ([`crate::Delegation::On`]): zero messages crossed the wire
    /// and no site table was consulted. Not counted in
    /// [`Metrics::lock_requests`] — no site serviced anything.
    pub cache_hits: u64,
    /// Revocations initiated by sites: a conflicting request demanded an
    /// entity whose grant was delegated, so a [`crate::Payload::Revoke`]
    /// was first sent (retransmissions of a still-pending revocation are
    /// not re-counted; they are still wire messages).
    pub revocations: u64,
    /// Wire messages the delegated cache avoided: 2 per cache-hit step
    /// (the request and its ack) minus any ack a drain piggybacked. A
    /// derived what-if counter — *not* included in [`Metrics::messages`],
    /// which only ever counts messages actually sent.
    pub messages_saved: u64,
    /// Holders that lost a lock to an outage: their lease
    /// ([`kplock_dlm::Lease`]) expired before the site recovered, so the
    /// rebuilt table excludes them and their instances are aborted.
    pub leases_expired: usize,
    /// Completed site recoveries (one per [`crate::fault::SiteCrash`]
    /// whose outage ended within the run).
    pub recoveries: usize,
    /// Transactions covered by the avoidance certificate
    /// ([`crate::DeadlockResolution::Avoid`]): admitted under the safe
    /// lock order, so they can never deadlock, never restart and generate
    /// zero deadlock-handling messages. Set once at run start from the
    /// plan; zero on every other arm.
    pub avoid_certified: usize,
    /// Transactions *outside* the avoidance certificate, metered by the
    /// wound-wait fallback instead (their restarts land in
    /// [`Metrics::prevention_restarts`]). Set once at run start; zero on
    /// every other arm. `avoid_certified + avoid_fallbacks` equals the
    /// declared transaction count of an Avoid run.
    pub avoid_fallbacks: usize,
    /// Completion time of the last commit.
    pub makespan: SimTime,
    /// Total simulated time the run observed: equal to `makespan` for
    /// [`crate::RunOutcome::Completed`] runs, the `max_time` budget for
    /// timeouts, and the drain tick for stalls. This is the honest
    /// throughput denominator — a timed-out run whose tail committed
    /// nothing used all its time, not just the slice up to its last
    /// commit.
    pub elapsed_ticks: SimTime,
}

impl Metrics {
    /// Throughput in commits per kilotick of *elapsed* simulated time.
    ///
    /// Dividing by `makespan` (the last commit tick) inflated throughput
    /// for `TimedOut` runs, whose unproductive tail vanished from the
    /// denominator; `elapsed_ticks` charges the whole observed time. For
    /// completed runs the two are equal. Falls back to `makespan` when
    /// `elapsed_ticks` is zero (hand-built metrics).
    pub fn throughput_per_kilotick(&self) -> f64 {
        let denom = if self.elapsed_ticks > 0 {
            self.elapsed_ticks
        } else {
            self.makespan
        };
        if denom == 0 {
            0.0
        } else {
            self.committed as f64 * 1000.0 / denom as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput() {
        let m = Metrics {
            committed: 10,
            makespan: 2000,
            ..Default::default()
        };
        assert!((m.throughput_per_kilotick() - 5.0).abs() < 1e-9);
        assert_eq!(Metrics::default().throughput_per_kilotick(), 0.0);
    }

    #[test]
    fn throughput_charges_elapsed_time_not_last_commit() {
        // A timed-out run: last commit at tick 2000, but the run burned
        // 10_000 ticks. The old makespan denominator said 5 commits per
        // kilotick; the elapsed denominator says 1.
        let m = Metrics {
            committed: 10,
            makespan: 2000,
            elapsed_ticks: 10_000,
            ..Default::default()
        };
        assert!((m.throughput_per_kilotick() - 1.0).abs() < 1e-9);
        // Completed runs set elapsed == makespan, preserving the old
        // reading exactly.
        let m = Metrics {
            committed: 10,
            makespan: 2000,
            elapsed_ticks: 2000,
            ..Default::default()
        };
        assert!((m.throughput_per_kilotick() - 5.0).abs() < 1e-9);
    }
}
