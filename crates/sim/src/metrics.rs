//! Run metrics.

use crate::event::SimTime;

/// Counters collected during a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Committed transactions.
    pub committed: usize,
    /// Aborted instances (each restart counts one abort).
    pub aborts: usize,
    /// Total messages delivered.
    pub messages: u64,
    /// Total ticks instances spent queued for locks.
    pub lock_wait_ticks: u64,
    /// Deadlock cycles resolved.
    pub deadlocks_resolved: usize,
    /// Completion time of the last commit.
    pub makespan: SimTime,
}

impl Metrics {
    /// Throughput in commits per kilotick.
    pub fn throughput_per_kilotick(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.committed as f64 * 1000.0 / self.makespan as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput() {
        let m = Metrics {
            committed: 10,
            makespan: 2000,
            ..Default::default()
        };
        assert!((m.throughput_per_kilotick() - 5.0).abs() < 1e-9);
        assert_eq!(Metrics::default().throughput_per_kilotick(), 0.0);
    }
}
