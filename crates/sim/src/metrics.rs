//! Run metrics.

use crate::event::SimTime;

/// Counters collected during a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Committed transactions.
    pub committed: usize,
    /// Aborted instances (each restart counts one abort).
    pub aborts: usize,
    /// Total messages delivered.
    pub messages: u64,
    /// Total ticks instances spent queued for locks.
    pub lock_wait_ticks: u64,
    /// Deadlock cycles resolved.
    pub deadlocks_resolved: usize,
    /// Probe messages sent site-to-site ([`crate::DeadlockDetection::Probe`]
    /// only) — the network cost of *distributed* detection. These are
    /// **included** in [`Metrics::messages`] (every wire message is), so
    /// this counter isolates the detection share: coordinator↔site data
    /// traffic is `messages - probe_messages`; do not sum the two.
    pub probe_messages: u64,
    /// Total ticks between a cycle forming and the victim's abort
    /// executing, summed over resolved deadlocks — an approximation under
    /// every scheme. Under [`crate::DeadlockDetection::Probe`] it is
    /// measured from the closing probe's launch tick: usually the cycle's
    /// final edge, but an earlier-launched probe that closes the cycle
    /// in flight attributes the cycle to its own (earlier) launch and
    /// overcounts. Under `Periodic` and `OnBlock` formation is
    /// approximated by the youngest wait among the cycle's members — so
    /// `OnBlock` reads ~0 for block-formed cycles (resolved in their
    /// formation tick) but can overcount cycles formed by grant
    /// retargeting, whose members began waiting earlier. Expected
    /// magnitudes: ~0 for `OnBlock`, up to a scan interval for
    /// `Periodic`, roughly one network hop per cycle edge plus the abort
    /// order's hop for `Probe`.
    pub detection_latency_ticks: u64,
    /// Probe-ordered aborts whose victim was no longer on any wait-for
    /// cycle when the abort executed. Only populated when
    /// [`crate::SimConfig::probe_audit`] is on; see that flag for why this
    /// is measurement, not protocol.
    pub phantom_probe_aborts: usize,
    /// Completion time of the last commit.
    pub makespan: SimTime,
}

impl Metrics {
    /// Throughput in commits per kilotick.
    pub fn throughput_per_kilotick(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.committed as f64 * 1000.0 / self.makespan as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput() {
        let m = Metrics {
            committed: 10,
            makespan: 2000,
            ..Default::default()
        };
        assert!((m.throughput_per_kilotick() - 5.0).abs() < 1e-9);
        assert_eq!(Metrics::default().throughput_per_kilotick(), 0.0);
    }
}
