//! A distributed lock-manager simulator for locked transaction systems.
//!
//! The paper proves static properties of locked distributed transactions;
//! this crate lets the same objects *execute*: coordinators drive each
//! transaction's partial order, per-site lock managers grant exclusive
//! locks FIFO, messages cross a latency-modelled network, deadlocks are
//! detected globally and resolved by victim abort + restart, and every
//! run's committed history is audited for conflict-serializability
//! (safe systems never fail the audit; unsafe ones do, for some timings).
//!
//! Two runners share the semantics:
//!
//! * [`engine::run`] — deterministic discrete-event simulation (seeded);
//! * [`threaded::run_threaded`] — real OS threads with timeout-based
//!   deadlock breaking, for demonstrations under genuine concurrency.

pub mod config;
pub mod driver;
pub mod engine;
pub mod event;
pub mod history;
pub mod lock_table;
pub mod metrics;
pub mod threaded;

pub use config::{LatencyModel, SimConfig, VictimPolicy};
pub use driver::{draw_arrivals, run_open_loop, ArrivalConfig};
pub use engine::{run, run_with_arrivals, SimReport};
pub use event::{EventKind, EventQueue, Instance, Payload, SimTime};
pub use history::{audit, Audit, History, HistoryEvent};
pub use lock_table::LockTable;
pub use metrics::Metrics;
pub use threaded::{run_threaded, ThreadedConfig, ThreadedReport};
