//! A distributed lock-manager simulator for locked transaction systems.
//!
//! The paper proves static properties of locked distributed transactions;
//! this crate lets the same objects *execute*: coordinators drive each
//! transaction's partial order, per-site lock managers grant exclusive
//! locks FIFO, messages cross a latency-modelled network, deadlocks are
//! detected globally and resolved by victim abort + restart, and every
//! run's committed history is audited for conflict-serializability
//! (safe systems never fail the audit; unsafe ones do, for some timings).
//!
//! Two runners share the semantics:
//!
//! * [`engine::run`] — deterministic discrete-event simulation (seeded);
//! * [`threaded::run_threaded`] — real OS threads over a sharded
//!   `kplock-dlm` table with timeout-based deadlock breaking, for
//!   demonstrations under genuine concurrency.
//!
//! Both sit on the `kplock-dlm` lock tables: reader–writer modes with
//! FIFO grants (exclusive-only by default, matching the paper). Deadlocks
//! are resolved along a three-way axis ([`DeadlockResolution`]):
//!
//! * **detect** — periodic global scan (default), incrementally at block
//!   time ([`DeadlockDetection::OnBlock`]), or fully distributed via
//!   Chandy–Misra–Haas probe messages ([`DeadlockDetection::Probe`], see
//!   [`probe`]) — the only scheme where detection itself pays network
//!   costs, metered in [`Metrics::probe_messages`] and
//!   [`Metrics::detection_latency_ticks`];
//! * **prevent** — timestamp-ordering schemes
//!   ([`PreventionScheme::WoundWait`] / [`PreventionScheme::WaitDie`] /
//!   [`PreventionScheme::NoWait`], see [`kplock_dlm::prevent`]) that never
//!   let a cycle form, trading the detector's messages for restarts
//!   ([`Metrics::prevention_restarts`]);
//! * **avoid** ([`DeadlockResolution::Avoid`]) — run the paper's static
//!   analysis at runtime: an [`AvoidPlan`] synthesized by `kplock-core`
//!   certifies the declared transaction set against a safe lock order
//!   (per-site local controllers), making cycles unreachable for
//!   certified transactions with *zero* messages and *zero* restarts;
//!   transactions outside the certificate fall back to wound-wait
//!   ([`Metrics::avoid_certified`] / [`Metrics::avoid_fallbacks`]).
//!
//! Orthogonal to both sits the **fault axis** ([`SimConfig::faults`],
//! [`fault::FaultPlan`]): seeded message loss, duplication and
//! reordering on every channel, plus scheduled site crashes whose
//! recovery rebuilds the lock table from surviving
//! [`kplock_dlm::Lease`]s. [`FaultPlan::none`] (the default) injects
//! nothing and keeps every run bit-identical to the fault-free engine.
//!
//! # Example
//!
//! A guaranteed deadlock, resolved and committed serializably — then
//! resolved with no global wait-for graph anywhere (probes), then never
//! allowed to form at all (wound-wait):
//!
//! ```
//! use kplock_model::{Database, TxnBuilder, TxnSystem};
//! use kplock_sim::{
//!     run, DeadlockDetection, DeadlockResolution, LatencyModel, PreventionScheme, SimConfig,
//! };
//!
//! let db = Database::from_spec(&[("x", 0), ("y", 1)]); // two sites
//! let mut b1 = TxnBuilder::new(&db, "T1");
//! b1.script("Lx Ly x y Ux Uy").unwrap(); // 2PL, x then y
//! let t1 = b1.build().unwrap();
//! let mut b2 = TxnBuilder::new(&db, "T2");
//! b2.script("Ly Lx y x Uy Ux").unwrap(); // 2PL, y then x
//! let t2 = b2.build().unwrap();
//! let sys = TxnSystem::new(db, vec![t1, t2]);
//!
//! let cfg = SimConfig { latency: LatencyModel::Fixed(5), ..Default::default() };
//! let report = run(&sys, &cfg).unwrap(); // bad configs are typed errors
//! assert!(report.finished());
//! assert!(report.metrics.deadlocks_resolved >= 1); // victim aborted + restarted
//! assert!(report.audit.serializable);              // 2PL commits serializably
//!
//! let probes = SimConfig {
//!     resolution: DeadlockResolution::Detect(DeadlockDetection::Probe),
//!     ..cfg.clone()
//! };
//! let report = run(&sys, &probes).unwrap();
//! assert!(report.finished());
//! assert!(report.metrics.probe_messages > 0); // detection crossed the wire
//!
//! let prevent = SimConfig {
//!     resolution: DeadlockResolution::Prevent(PreventionScheme::WoundWait),
//!     ..cfg
//! };
//! let report = run(&sys, &prevent).unwrap();
//! assert!(report.finished());
//! assert_eq!(report.metrics.deadlocks_resolved, 0); // no cycle ever formed
//! assert!(report.metrics.prevention_restarts >= 1); // the young were wounded
//!
//! // Finally, *avoidance*: the paper's analysis certifies what it can
//! // (T1 here) against a safe lock order and meters the rest (T2)
//! // through the wound-wait fallback.
//! let plan = kplock_sim::AvoidPlan::synthesize(&sys);
//! assert_eq!(plan.certified_count(), 1);
//! let avoid = SimConfig {
//!     resolution: DeadlockResolution::Avoid,
//!     avoid: Some(plan),
//!     ..prevent
//! };
//! let report = run(&sys, &avoid).unwrap();
//! assert!(report.finished());
//! assert_eq!(report.metrics.deadlocks_resolved, 0);
//! assert_eq!(report.metrics.avoid_certified, 1);
//! assert_eq!(report.metrics.avoid_fallbacks, 1);
//! ```

pub mod config;
pub mod driver;
pub mod engine;
pub mod event;
pub mod fault;
pub mod history;
pub mod lock_table;
pub mod metrics;
pub mod probe;
pub mod replay;
pub mod threaded;

pub use config::{
    AvoidPlan, Bias, ConfigError, DeadlockDetection, DeadlockResolution, Delegation, LatencyModel,
    PreventionScheme, SimConfig, TableSpec, VictimPolicy,
};
pub use driver::{draw_arrivals, run_open_loop, ArrivalConfig};
pub use engine::{run, run_with_arrivals, RunOutcome, SimReport};
pub use event::{DelegatedGrant, EventKind, EventQueue, Instance, Payload, SimTime};
pub use fault::{FaultPlan, FaultPlanError, SiteCrash};
pub use history::{audit, Audit, History, HistoryEvent};
pub use lock_table::SiteTable;
pub use metrics::Metrics;
pub use probe::{choose_victim, ProbeMsg, SiteProbeState, Stamp};
pub use replay::{replay_deadlock, replay_violation, DeadlockEvidence, ReplayError};
pub use threaded::{run_threaded, ThreadedConfig, ThreadedReport, ThreadedResolution};
