//! Per-site lock tables: a thin simulator-facing wrapper over the
//! `kplock-dlm` [`kplock_dlm::LockTable`] implementations.
//!
//! The table logic (modes, FIFO queues, grant-on-release, upgrades) lives
//! in `kplock-dlm`, where protocol violations are typed
//! [`kplock_dlm::LockError`]s a service caller can handle. *This* wrapper
//! is internal to the engine, whose message protocol guarantees it never
//! violates the locking protocol — so here violations are bugs, and the
//! wrapper turns them back into panics (see [`SiteTable::release`]).
//!
//! Which implementation backs a site is chosen by
//! [`kplock_dlm::TableSpec`] ([`crate::SimConfig::table`]):
//! [`kplock_dlm::FifoTable`] (the default) or the arena-allocated
//! [`kplock_dlm::QueueTable`] with its bias / cohort-handoff knobs. With
//! the default spec the behavior is bit-identical to the original
//! hand-rolled FIFO table (pinned by `tests/sim_regression.rs` at the
//! workspace root); a neutral-bias, topology-free `QueueTable` makes the
//! same grant decisions through a different data structure (pinned by
//! `tests/table_equivalence.rs`).

use crate::event::Instance;
use kplock_dlm::{
    CancelOutcome, FifoTable, LockTable, PreventionOutcome, PreventionScheme, Priority, QueueTable,
    TableSpec,
};
use kplock_model::{EntityId, LockMode};

/// Owner → cohort for [`TableSpec::Queue`] sites: transactions are
/// striped across cohorts by index (stable across restarts — an epoch
/// bump never migrates a transaction's cohort).
fn txn_cohort(inst: Instance, cohorts: u32) -> u32 {
    inst.txn.idx() as u32 % cohorts
}

/// A site's lock table: reader–writer locks, FIFO wait queues, with the
/// backing implementation chosen by [`TableSpec`].
#[derive(Clone, Debug)]
pub struct SiteTable {
    inner: Inner,
}

#[derive(Clone, Debug)]
enum Inner {
    Fifo(FifoTable<Instance>),
    Queue(QueueTable<Instance>),
}

impl Default for SiteTable {
    fn default() -> Self {
        Self::new(TableSpec::Fifo)
    }
}

impl SiteTable {
    /// Creates an empty table backed by the implementation `spec` names.
    pub fn new(spec: TableSpec) -> Self {
        let inner = match spec {
            TableSpec::Fifo => Inner::Fifo(FifoTable::new()),
            TableSpec::Queue { bias, cohorts } => Inner::Queue(
                QueueTable::new()
                    .with_bias(bias)
                    .with_topology(cohorts, txn_cohort),
            ),
        };
        SiteTable { inner }
    }

    fn as_dyn(&self) -> &dyn LockTable<Instance> {
        match &self.inner {
            Inner::Fifo(t) => t,
            Inner::Queue(t) => t,
        }
    }

    fn as_dyn_mut(&mut self) -> &mut dyn LockTable<Instance> {
        match &mut self.inner {
            Inner::Fifo(t) => t,
            Inner::Queue(t) => t,
        }
    }

    /// Requests the lock on `e` in `mode`. Returns `true` if granted
    /// immediately; otherwise the instance is queued.
    ///
    /// # Panics
    /// Panics if `inst` is already queued for `e` (a protocol bug: the
    /// engine never re-requests before the first request resolves).
    pub fn request(&mut self, e: EntityId, inst: Instance, mode: LockMode) -> bool {
        match self.as_dyn_mut().acquire(e, inst, mode) {
            Ok(kplock_dlm::Acquire::Granted) => true,
            Ok(kplock_dlm::Acquire::Queued) => false,
            Err(err) => panic!("{err}"),
        }
    }

    /// Requests the lock on `e` in `mode` under a timestamp-ordering
    /// prevention scheme; `prio` maps any involved instance to its
    /// priority (the coordinator's birth stamp). See
    /// [`kplock_dlm::FifoTable::request_with_priority`].
    ///
    /// # Panics
    /// Panics if `inst` is already queued for `e` (a protocol bug, as in
    /// [`SiteTable::request`]).
    pub fn request_with_priority(
        &mut self,
        e: EntityId,
        inst: Instance,
        mode: LockMode,
        scheme: PreventionScheme,
        prio: impl Fn(Instance) -> Priority,
    ) -> PreventionOutcome<Instance> {
        match self
            .as_dyn_mut()
            .acquire_with_priority(e, inst, mode, scheme, &prio)
        {
            Ok(outcome) => outcome,
            Err(err) => panic!("{err}"),
        }
    }

    /// Releases the lock held by `inst` on `e`; returns the instances the
    /// release unblocked, in FIFO grant order (the grants are performed
    /// here). Exclusive-only tables grant at most one.
    ///
    /// # Panics
    /// Panics if `inst` does not hold the lock (a protocol bug). The
    /// service-layer twin, [`kplock_dlm::FifoTable::release`], returns
    /// [`kplock_dlm::LockError::NotHolder`] instead.
    pub fn release(&mut self, e: EntityId, inst: Instance) -> Vec<(Instance, LockMode)> {
        match self.as_dyn_mut().release(e, inst) {
            Ok(grants) => grants,
            Err(err) => panic!("release by non-holder: {err}"),
        }
    }

    /// The mode `inst` holds on `e`, if any.
    pub fn holds(&self, e: EntityId, inst: Instance) -> Option<LockMode> {
        self.as_dyn().holds(e, inst)
    }

    /// Current sole exclusive holder of `e` (compatibility accessor for
    /// exclusive-only callers).
    pub fn holder(&self, e: EntityId) -> Option<Instance> {
        self.as_dyn().exclusive_holder(e)
    }

    /// All holders of `e` with modes.
    pub fn holders(&self, e: EntityId) -> Vec<(Instance, LockMode)> {
        self.as_dyn().holders(e)
    }

    /// Entities currently held by `inst`, ascending.
    pub fn held_by(&self, inst: Instance) -> Vec<EntityId> {
        self.as_dyn().held_by(inst)
    }

    /// Removes `inst` from all wait queues (and pending upgrades); returns
    /// the entities it stopped waiting on plus any grants the cancellation
    /// unblocked (possible only with shared modes in play).
    pub fn cancel_waits(&mut self, inst: Instance) -> CancelOutcome<Instance> {
        self.as_dyn_mut().cancel_waits(inst)
    }

    /// Releases everything `inst` holds; returns `(entity, grants)` pairs
    /// in ascending entity order.
    pub fn release_all(&mut self, inst: Instance) -> Vec<(EntityId, Vec<(Instance, LockMode)>)> {
        self.as_dyn_mut().release_all(inst)
    }

    /// The waits-for edges at this site: `(waiter, holder)` pairs,
    /// ascending.
    pub fn waits_for(&self) -> Vec<(Instance, Instance)> {
        self.as_dyn().waits_for()
    }

    /// The waits-for edges contributed by `e` alone (incremental deadlock
    /// detection reads exactly the entity that changed).
    pub fn entity_waits_for(&self, e: EntityId) -> Vec<(Instance, Instance)> {
        self.as_dyn().entity_waits_for(e)
    }

    /// The holders `inst` waits on at this site, ascending and
    /// deduplicated — the site-local answer a Chandy–Misra–Haas probe
    /// needs ("is this instance blocked here, and on whom?"); see
    /// [`crate::probe`].
    pub fn waits_of(&self, inst: Instance) -> Vec<Instance> {
        self.as_dyn().waits_of(inst)
    }

    /// True when `inst` is queued (or upgrade-pending) on `e` — how the
    /// fault-injection engine recognizes a *retransmitted* request whose
    /// original is already waiting, where [`SiteTable::request`] would
    /// panic on the duplicate.
    pub fn is_waiting(&self, e: EntityId, inst: Instance) -> bool {
        self.as_dyn().is_waiting(e, inst)
    }

    /// Releases `inst`'s lock on `e` if it holds one, a no-op otherwise —
    /// the duplicated-release-safe twin of [`SiteTable::release`], used
    /// only on fault-injected runs where a release message can legally
    /// arrive twice (see [`kplock_dlm::FifoTable::release_idempotent`]).
    pub fn release_idempotent(&mut self, e: EntityId, inst: Instance) -> Vec<(Instance, LockMode)> {
        self.as_dyn_mut().release_idempotent(e, inst)
    }

    /// The owners a re-submitted request on `e` by `inst` would be
    /// admitted against (holders and upgraders; queued waiters only when
    /// `inst` is not itself a pending upgrader), ascending — what a
    /// retransmitted wound-wait request re-derives its wound victims
    /// from (see [`kplock_dlm::FifoTable::conflicts_of`]).
    pub fn conflicts_of(&self, e: EntityId, inst: Instance) -> Vec<Instance> {
        self.as_dyn().conflicts_of(e, inst)
    }

    /// Structural invariant check (S/X exclusion, single exclusive
    /// holder, upgraders hold, no holder-and-waiter owners), forwarded
    /// from the backing table's `check_invariants` for the
    /// [`crate::SimConfig::invariant_audit`] harness.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.as_dyn().check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_model::TxnId;

    fn inst(t: u32) -> Instance {
        Instance {
            txn: TxnId(t),
            epoch: 0,
        }
    }

    const X: LockMode = LockMode::Exclusive;

    fn both() -> [SiteTable; 2] {
        [
            SiteTable::new(TableSpec::Fifo),
            SiteTable::new(TableSpec::queue()),
        ]
    }

    #[test]
    fn grant_queue_release() {
        for mut lt in both() {
            let e = EntityId(0);
            assert!(lt.request(e, inst(0), X));
            assert!(!lt.request(e, inst(1), X));
            assert!(!lt.request(e, inst(2), X));
            assert_eq!(lt.holder(e), Some(inst(0)));
            assert_eq!(lt.waits_for(), vec![(inst(1), inst(0)), (inst(2), inst(0))]);
            // FIFO: 1 gets it next.
            assert_eq!(lt.release(e, inst(0)), vec![(inst(1), X)]);
            assert_eq!(lt.holder(e), Some(inst(1)));
            assert_eq!(lt.release(e, inst(1)), vec![(inst(2), X)]);
            assert_eq!(lt.release(e, inst(2)), vec![]);
            assert_eq!(lt.holder(e), None);
        }
    }

    #[test]
    #[should_panic(expected = "release by non-holder")]
    fn release_by_non_holder_panics() {
        let mut lt = SiteTable::default();
        let e = EntityId(0);
        lt.request(e, inst(0), X);
        lt.release(e, inst(1));
    }

    #[test]
    fn abort_helpers() {
        for mut lt in both() {
            let (x, y) = (EntityId(0), EntityId(1));
            lt.request(x, inst(0), X);
            lt.request(y, inst(0), X);
            lt.request(x, inst(1), X);
            assert_eq!(lt.held_by(inst(0)), vec![x, y]);
            assert_eq!(lt.cancel_waits(inst(1)).cancelled, vec![x]);
            let released = lt.release_all(inst(0));
            assert_eq!(released, vec![(x, vec![]), (y, vec![])]);
            assert!(lt.holder(x).is_none());
        }
    }

    #[test]
    fn shared_grants_coexist() {
        for mut lt in both() {
            let e = EntityId(0);
            assert!(lt.request(e, inst(0), LockMode::Shared));
            assert!(lt.request(e, inst(1), LockMode::Shared));
            assert!(!lt.request(e, inst(2), X));
            assert_eq!(lt.holder(e), None, "no sole exclusive holder");
            assert_eq!(lt.holds(e, inst(1)), Some(LockMode::Shared));
            lt.release(e, inst(0));
            assert_eq!(lt.release(e, inst(1)), vec![(inst(2), X)]);
        }
    }

    #[test]
    fn cohort_spec_routes_transactions_by_index() {
        // Two cohorts: even txn indexes in 0, odd in 1. Holder from
        // cohort 0 releases with waiters [odd, even] queued; the even
        // waiter (same cohort as the releaser) is granted first.
        let mut lt = SiteTable::new(TableSpec::Queue {
            bias: kplock_dlm::Bias::Neutral,
            cohorts: 2,
        });
        let e = EntityId(0);
        assert!(lt.request(e, inst(0), X));
        assert!(!lt.request(e, inst(1), X));
        assert!(!lt.request(e, inst(2), X));
        assert_eq!(lt.release(e, inst(0)), vec![(inst(2), X)]);
        assert_eq!(lt.release(e, inst(2)), vec![(inst(1), X)]);
    }
}
