//! Per-site lock tables with FIFO queueing.

use crate::event::Instance;
use kplock_model::EntityId;
use std::collections::{HashMap, VecDeque};

/// A site's lock table: exclusive locks, FIFO wait queues.
#[derive(Clone, Debug, Default)]
pub struct LockTable {
    holder: HashMap<EntityId, Instance>,
    queue: HashMap<EntityId, VecDeque<Instance>>,
}

impl LockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests the lock on `e`. Returns `true` if granted immediately;
    /// otherwise the instance is queued.
    pub fn request(&mut self, e: EntityId, inst: Instance) -> bool {
        if let std::collections::hash_map::Entry::Vacant(e) = self.holder.entry(e) {
            e.insert(inst);
            true
        } else {
            self.queue.entry(e).or_default().push_back(inst);
            false
        }
    }

    /// Releases the lock held by `inst` on `e`; returns the next instance
    /// to grant to, if any (the grant is performed here).
    ///
    /// # Panics
    /// Panics if `inst` does not hold the lock (a protocol bug).
    pub fn release(&mut self, e: EntityId, inst: Instance) -> Option<Instance> {
        let holder = self.holder.remove(&e);
        assert_eq!(holder, Some(inst), "release by non-holder");
        let next = self.queue.get_mut(&e).and_then(|q| q.pop_front());
        if let Some(n) = next {
            self.holder.insert(e, n);
        }
        next
    }

    /// Current holder of `e`.
    pub fn holder(&self, e: EntityId) -> Option<Instance> {
        self.holder.get(&e).copied()
    }

    /// Entities currently held by `inst`.
    pub fn held_by(&self, inst: Instance) -> Vec<EntityId> {
        let mut v: Vec<EntityId> = self
            .holder
            .iter()
            .filter(|&(_, &h)| h == inst)
            .map(|(&e, _)| e)
            .collect();
        v.sort();
        v
    }

    /// Removes `inst` from all wait queues; returns entities it was
    /// waiting on.
    pub fn cancel_waits(&mut self, inst: Instance) -> Vec<EntityId> {
        let mut out = Vec::new();
        for (&e, q) in self.queue.iter_mut() {
            let before = q.len();
            q.retain(|&i| i != inst);
            if q.len() != before {
                out.push(e);
            }
        }
        out.sort();
        out
    }

    /// Releases everything `inst` holds; returns `(entity, next_grantee)`
    /// pairs.
    pub fn release_all(&mut self, inst: Instance) -> Vec<(EntityId, Option<Instance>)> {
        let held = self.held_by(inst);
        held.into_iter()
            .map(|e| (e, self.release(e, inst)))
            .collect()
    }

    /// The waits-for edges at this site: `(waiter, holder)` pairs.
    pub fn waits_for(&self) -> Vec<(Instance, Instance)> {
        let mut out = Vec::new();
        for (e, q) in &self.queue {
            if let Some(&h) = self.holder.get(e) {
                for &w in q {
                    out.push((w, h));
                }
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplock_model::TxnId;

    fn inst(t: u32) -> Instance {
        Instance {
            txn: TxnId(t),
            epoch: 0,
        }
    }

    #[test]
    fn grant_queue_release() {
        let mut lt = LockTable::new();
        let e = EntityId(0);
        assert!(lt.request(e, inst(0)));
        assert!(!lt.request(e, inst(1)));
        assert!(!lt.request(e, inst(2)));
        assert_eq!(lt.holder(e), Some(inst(0)));
        assert_eq!(lt.waits_for(), vec![(inst(1), inst(0)), (inst(2), inst(0))]);
        // FIFO: 1 gets it next.
        assert_eq!(lt.release(e, inst(0)), Some(inst(1)));
        assert_eq!(lt.holder(e), Some(inst(1)));
        assert_eq!(lt.release(e, inst(1)), Some(inst(2)));
        assert_eq!(lt.release(e, inst(2)), None);
        assert_eq!(lt.holder(e), None);
    }

    #[test]
    #[should_panic]
    fn release_by_non_holder_panics() {
        let mut lt = LockTable::new();
        let e = EntityId(0);
        lt.request(e, inst(0));
        lt.release(e, inst(1));
    }

    #[test]
    fn abort_helpers() {
        let mut lt = LockTable::new();
        let (x, y) = (EntityId(0), EntityId(1));
        lt.request(x, inst(0));
        lt.request(y, inst(0));
        lt.request(x, inst(1));
        assert_eq!(lt.held_by(inst(0)), vec![x, y]);
        assert_eq!(lt.cancel_waits(inst(1)), vec![x]);
        let released = lt.release_all(inst(0));
        assert_eq!(released, vec![(x, None), (y, None)]);
        assert!(lt.holder(x).is_none());
    }
}
