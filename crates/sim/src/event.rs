//! The deterministic event queue.

use crate::probe::ProbeMsg;
use kplock_dlm::Lease;
use kplock_model::{EntityId, LockMode, SiteId, StepId, TxnId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time, in abstract ticks.
pub type SimTime = u64;

/// A transaction *instance*: a transaction plus its restart epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Instance {
    /// The transaction.
    pub txn: TxnId,
    /// Restart count (0 for the first attempt).
    pub epoch: u32,
}

/// A delegated grant riding on [`Payload::LockGranted`]
/// ([`crate::Delegation::On`] only): the coordinator may cache it and
/// service later re-acquires and releases of the entity locally, with
/// zero messages, until the site revokes ([`Payload::Revoke`]) or the
/// lease expires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DelegatedGrant {
    /// The delegated (held) mode — local re-acquires must be covered.
    pub mode: LockMode,
    /// The lease fencing the delegation; its clock keys off the
    /// *original* grant, so a duplicated grant message advertises the
    /// same expiry as the first.
    pub lease: Lease,
    /// The owning site's boot epoch at grant time. A coordinator only
    /// caches a grant from the site's **current** boot: a crash wipes the
    /// site's delegation ledger, so a delegated ack that was in flight
    /// across the outage must degrade to a plain grant — the rebuilt
    /// (or expired) hold follows the ordinary remote lifecycle.
    pub boot: u32,
}

/// Messages between coordinators and sites.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// Coordinator asks the site to lock an entity for a step.
    LockRequest {
        /// Requesting instance.
        inst: Instance,
        /// Entity to lock.
        entity: EntityId,
        /// The lock step id.
        step: StepId,
    },
    /// Site notifies the coordinator that the lock was granted.
    LockGranted {
        /// Granted instance.
        inst: Instance,
        /// Locked entity.
        entity: EntityId,
        /// The lock step id.
        step: StepId,
        /// `Some` when the grant is *delegated* ([`crate::Delegation::On`],
        /// uncontested entity); see [`DelegatedGrant`]. `None` is a plain
        /// remote grant and *clears* any stale cache entry for `entity`
        /// (e.g. after a contested re-grant).
        delegated: Option<DelegatedGrant>,
    },
    /// Coordinator asks the site to apply an update step.
    UpdateRequest {
        /// Instance.
        inst: Instance,
        /// Updated entity.
        entity: EntityId,
        /// The update step id.
        step: StepId,
    },
    /// Site confirms an applied update.
    UpdateDone {
        /// Instance.
        inst: Instance,
        /// Step id.
        step: StepId,
    },
    /// Coordinator asks the site to release a lock.
    UnlockRequest {
        /// Instance.
        inst: Instance,
        /// Entity to unlock.
        entity: EntityId,
        /// The unlock step id.
        step: StepId,
    },
    /// Site confirms the release.
    UnlockDone {
        /// Instance.
        inst: Instance,
        /// Step id.
        step: StepId,
    },
    /// Site → site: a Chandy–Misra–Haas deadlock probe
    /// ([`crate::DeadlockDetection::Probe`] only) — the one message class
    /// that never involves a coordinator.
    Probe(ProbeMsg),
    /// Site → coordinator: a probe closed a wait-for cycle; the victim's
    /// coordinator must abort it.
    Abort {
        /// The chosen victim.
        victim: Instance,
        /// The full cycle the closing site assembled; the coordinator
        /// drops the abort if any member has already been aborted (its
        /// epoch moved on), since that cycle is broken.
        members: Vec<Instance>,
        /// When the cycle formed: the latest appearance tick among its
        /// traversed wait-edges (for detection-latency accounting).
        formed_at: SimTime,
    },
    /// Site → coordinator ([`crate::DeadlockResolution::Prevent`] only):
    /// the prevention scheme refused the wait (wait-die saw a younger
    /// requester, no-wait saw any conflict). The requester was not queued;
    /// its coordinator must abort it and retry after a backoff — a restart
    /// decided from purely table-local knowledge, with no detection
    /// protocol anywhere.
    LockRejected {
        /// The refused instance.
        inst: Instance,
        /// The entity whose lock was refused.
        entity: EntityId,
        /// The lock step id (for diagnostics; the whole instance restarts).
        step: StepId,
    },
    /// Site → coordinator (wound-wait only): an older requester wounded
    /// this younger lock owner; its coordinator must abort it so the
    /// elder's wait cannot become a cycle. Dropped if the victim's epoch
    /// has already moved on (it committed or was wounded twice).
    Wound {
        /// The wounded instance.
        victim: Instance,
    },
    /// Site → coordinator ([`crate::Delegation::On`] only): another
    /// instance demands `entity`, so the delegated cache entry must
    /// drain back. Delivered like wounds — retransmitted while the
    /// demand persists under loss, idempotent on duplication (a
    /// coordinator with no matching entry acks anyway) — and epoch-free:
    /// revocation targets the cache slot, which outlives commits and
    /// restarts, so even a committed coordinator's residue must drain.
    Revoke {
        /// The delegate holding the cached grant.
        inst: Instance,
        /// The demanded entity.
        entity: EntityId,
    },
    /// Coordinator → site: the cache entry for `entity` is gone (drained
    /// on revocation, or never existed — the idempotent ack to a
    /// duplicated [`Payload::Revoke`]); the site may release the
    /// underlying hold and grant the demanding waiter.
    RevokeAck {
        /// The (former) delegate.
        inst: Instance,
        /// The drained entity.
        entity: EntityId,
    },
}

/// What happens at a point in simulated time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A message arrives at a site.
    ToSite(SiteId, Payload),
    /// A message arrives at a coordinator.
    ToCoordinator(TxnId, Payload),
    /// Periodic global deadlock scan.
    DeadlockScan,
    /// An aborted transaction restarts.
    Restart(TxnId),
    /// A scheduled site outage begins ([`crate::fault::FaultPlan`]): the
    /// site's volatile lock table is wiped and deliveries to it are
    /// dropped until the matching [`EventKind::SiteRecover`].
    SiteCrash(SiteId),
    /// A crashed site comes back: its table is rebuilt from the holders
    /// whose leases survived the outage, expired holders are aborted, and
    /// coordinators re-deliver their un-acknowledged requests.
    SiteRecover(SiteId),
    /// Coordinator retransmission timer (fault plans with
    /// [`crate::fault::FaultPlan::retransmit_after`] > 0): re-send every
    /// issued-but-unacknowledged step request of the tagged epoch. Fires
    /// only while the epoch is current and the transaction uncommitted.
    RetransmitCheck(TxnId, u32),
}

/// The queue: events ordered by `(time, seq)`, `seq` assigned at insertion
/// so ties resolve deterministically in insertion order.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventOrd)>>,
    next_seq: u64,
}

/// Wrapper giving `EventKind` an arbitrary (unused) ordering for the heap.
#[derive(Debug, PartialEq, Eq)]
struct EventOrd(EventKind);

impl Ord for EventOrd {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl PartialOrd for EventOrd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq, EventOrd(kind))));
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        self.heap.pop().map(|Reverse((t, _, e))| (t, e.0))
    }

    /// True if no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.push(10, EventKind::DeadlockScan);
        q.push(5, EventKind::Restart(TxnId(0)));
        q.push(10, EventKind::Restart(TxnId(1)));
        assert_eq!(q.len(), 3);
        let (t1, e1) = q.pop().unwrap();
        assert_eq!((t1, &e1), (5, &EventKind::Restart(TxnId(0))));
        let (t2, e2) = q.pop().unwrap();
        assert_eq!(t2, 10);
        assert_eq!(e2, EventKind::DeadlockScan); // inserted before the tie
        let (_, e3) = q.pop().unwrap();
        assert_eq!(e3, EventKind::Restart(TxnId(1)));
        assert!(q.is_empty());
    }
}
