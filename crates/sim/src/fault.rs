//! The fault-injection axis: unreliable channels and mortal sites.
//!
//! Every run so far assumed a lossless network and immortal sites — the
//! one regime where distributed locking is *easy*. A [`FaultPlan`] makes
//! the conditions the paper actually argues about injectable and
//! seed-deterministic:
//!
//! * **message loss / duplication / reordering** — applied at one
//!   chokepoint to *every* wire message (data traffic, probes, abort
//!   orders, wounds, rejections alike), from a dedicated fault RNG so
//!   [`FaultPlan::none`] leaves the main RNG stream — and therefore every
//!   fixed-seed regression pin — bit-identical;
//! * **site crashes** — scheduled [`SiteCrash`] outages wipe the site's
//!   lock table (volatile state) and drop everything delivered while
//!   down; recovery rebuilds the table from the holders whose
//!   [`kplock_dlm::Lease`]s survived the outage, aborts the holders whose
//!   leases expired, and re-delivers the coordinators' un-acknowledged
//!   requests so wait edges re-form (and re-launch probes);
//! * **retransmission** — with lossy channels somebody must retry:
//!   coordinators re-send every issued-but-unacknowledged step request
//!   every [`FaultPlan::retransmit_after`] ticks. Sites treat the
//!   duplicates idempotently (see the idempotency table in
//!   ARCHITECTURE.md §7), and a retransmitted *blocked* request doubles
//!   as a probe re-trigger, so lost probes are eventually re-chased.
//!
//! All decisions draw from a fault RNG seeded by [`FaultPlan::seed`],
//! never from the engine's latency RNG: a faulty run is exactly as
//! reproducible as a clean one, and the clean path never consults the
//! fault RNG at all.

use std::fmt;

/// One scheduled site outage: the site crashes at `at` (losing its
/// volatile lock table and every message delivered while down) and
/// recovers at `at + down_for`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteCrash {
    /// The site that crashes (index into the database's site space).
    pub site: usize,
    /// Crash tick.
    pub at: u64,
    /// Outage length; recovery fires at `at + down_for`. A zero-length
    /// outage still wipes the table (a crash-restart faster than the
    /// network can notice).
    pub down_for: u64,
}

/// A seed-deterministic fault plan for one run.
///
/// Rates are probabilities in `[0, 1]` applied independently per message.
/// [`FaultPlan::none`] (the [`Default`]) injects nothing and keeps the
/// engine's default path bit-identical to the fault-free engine — pinned
/// by `tests/fault_equivalence.rs`.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the dedicated fault RNG (independent of
    /// [`crate::SimConfig::seed`], which keeps driving latency).
    pub seed: u64,
    /// Per-message drop probability.
    pub loss: f64,
    /// Per-message duplication probability: a second copy is delivered
    /// after the original (never before — a duplicate of a message that
    /// was never delivered is a retransmission, not a duplication).
    pub duplication: f64,
    /// Per-message reorder probability: the delivery is delayed by an
    /// extra `1..=reorder_window` ticks, letting later sends overtake it.
    pub reorder: f64,
    /// Maximum extra delay (ticks) for reordered deliveries and the lag
    /// of duplicated copies. Ignored when both rates are zero.
    pub reorder_window: u64,
    /// Coordinator retransmission interval: every this many ticks, each
    /// live coordinator re-sends its issued-but-unacknowledged step
    /// requests. `0` disables retransmission (loss then strands work, and
    /// the run honestly reports `TimedOut`/`Stalled`).
    pub retransmit_after: u64,
    /// Lease validity window stamped on every grant (see
    /// [`kplock_dlm::Lease`]); decides which holders survive an outage.
    /// `0` = unbounded leases: every holder survives every outage.
    pub lease_ttl: u64,
    /// Scheduled site outages.
    pub crashes: Vec<SiteCrash>,
}

impl FaultPlan {
    /// The empty plan: no loss, no duplication, no reordering, no
    /// crashes, no retransmission. Runs are bit-identical to the
    /// fault-free engine.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            loss: 0.0,
            duplication: 0.0,
            reorder: 0.0,
            reorder_window: 0,
            retransmit_after: 0,
            lease_ttl: 0,
            crashes: Vec::new(),
        }
    }

    /// A lossy-channel plan (loss/dup/reorder at the given rates, jitter
    /// window 8) with retransmission every `retransmit_after` ticks and
    /// no crashes — the common sweep shape.
    pub fn lossy(seed: u64, loss: f64, duplication: f64, reorder: f64) -> Self {
        FaultPlan {
            seed,
            loss,
            duplication,
            reorder,
            reorder_window: 8,
            retransmit_after: 120,
            ..FaultPlan::none()
        }
    }

    /// True when the plan injects anything at all — the engine's gate for
    /// every fault code path, so `none()` stays off the clean path
    /// entirely.
    pub fn any(&self) -> bool {
        self.loss > 0.0
            || self.duplication > 0.0
            || self.reorder > 0.0
            || self.retransmit_after > 0
            || !self.crashes.is_empty()
    }

    /// True when any channel fault (loss/dup/reorder) is configured.
    pub fn channel_faults(&self) -> bool {
        self.loss > 0.0 || self.duplication > 0.0 || self.reorder > 0.0
    }

    /// Checks rates are valid probabilities and that no site's scheduled
    /// outages overlap (an outage may begin exactly when the previous one
    /// ends, but two concurrent outages of one site have no coherent
    /// crash anchor for lease survival). Crash site indices are validated
    /// against the actual site count by the run entry points (the plan
    /// alone cannot know it).
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        for (which, rate) in [
            ("loss", self.loss),
            ("duplication", self.duplication),
            ("reorder", self.reorder),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(FaultPlanError::RateOutOfRange { which });
            }
        }
        let mut outages: Vec<(usize, u64, u64)> = self
            .crashes
            .iter()
            .map(|c| (c.site, c.at, c.at.saturating_add(c.down_for)))
            .collect();
        outages.sort();
        for w in outages.windows(2) {
            let ((s1, _, end1), (s2, at2, _)) = (w[0], w[1]);
            if s1 == s2 && at2 < end1 {
                return Err(FaultPlanError::OverlappingCrashes { site: s1 });
            }
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// A [`FaultPlan`] that cannot be run (surfaced through
/// [`crate::ConfigError::BadFaultPlan`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPlanError {
    /// A loss/duplication/reorder rate outside `[0, 1]` (or NaN).
    RateOutOfRange {
        /// Which rate field is invalid.
        which: &'static str,
    },
    /// A scheduled crash names a site the database does not have.
    CrashSiteOutOfRange {
        /// The offending site index.
        site: usize,
        /// How many sites the system actually has.
        sites: usize,
    },
    /// Two outages of the same site overlap in time: the second crash
    /// would overwrite the first's crash anchor and its recovery would
    /// revive the site early, silently under-charging lease expiry.
    OverlappingCrashes {
        /// The site with concurrent outages.
        site: usize,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultPlanError::RateOutOfRange { which } => {
                write!(f, "fault rate `{which}` must be a probability in [0, 1]")
            }
            FaultPlanError::CrashSiteOutOfRange { site, sites } => {
                write!(
                    f,
                    "crash schedules site {site}, but only {sites} sites exist"
                )
            }
            FaultPlanError::OverlappingCrashes { site } => {
                write!(f, "site {site} has overlapping scheduled outages")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_injects_nothing() {
        let p = FaultPlan::none();
        assert!(!p.any());
        assert!(!p.channel_faults());
        p.validate().unwrap();
        assert_eq!(p, FaultPlan::default());
    }

    #[test]
    fn any_is_true_for_each_axis_alone() {
        for p in [
            FaultPlan {
                loss: 0.1,
                ..FaultPlan::none()
            },
            FaultPlan {
                duplication: 0.1,
                ..FaultPlan::none()
            },
            FaultPlan {
                reorder: 0.1,
                ..FaultPlan::none()
            },
            FaultPlan {
                retransmit_after: 50,
                ..FaultPlan::none()
            },
            FaultPlan {
                crashes: vec![SiteCrash {
                    site: 0,
                    at: 10,
                    down_for: 5,
                }],
                ..FaultPlan::none()
            },
        ] {
            assert!(p.any(), "{p:?}");
            p.validate().unwrap();
        }
    }

    #[test]
    fn rates_outside_unit_interval_are_rejected() {
        let p = FaultPlan {
            loss: 1.5,
            ..FaultPlan::none()
        };
        assert_eq!(
            p.validate().unwrap_err(),
            FaultPlanError::RateOutOfRange { which: "loss" }
        );
        let p = FaultPlan {
            duplication: -0.1,
            ..FaultPlan::none()
        };
        assert_eq!(
            p.validate().unwrap_err(),
            FaultPlanError::RateOutOfRange {
                which: "duplication"
            }
        );
        let p = FaultPlan {
            reorder: f64::NAN,
            ..FaultPlan::none()
        };
        assert_eq!(
            p.validate().unwrap_err(),
            FaultPlanError::RateOutOfRange { which: "reorder" }
        );
    }

    #[test]
    fn overlapping_outages_of_one_site_are_rejected() {
        let outage = |site, at, down_for| SiteCrash { site, at, down_for };
        // Overlap on the same site: rejected.
        let p = FaultPlan {
            crashes: vec![outage(0, 10, 100), outage(0, 50, 20)],
            ..FaultPlan::none()
        };
        assert_eq!(
            p.validate().unwrap_err(),
            FaultPlanError::OverlappingCrashes { site: 0 }
        );
        // Back-to-back (recovery tick == next crash tick) is fine, and so
        // are concurrent outages of *different* sites.
        let p = FaultPlan {
            crashes: vec![outage(0, 10, 40), outage(1, 20, 100), outage(0, 50, 20)],
            ..FaultPlan::none()
        };
        p.validate().unwrap();
    }

    #[test]
    fn errors_display() {
        assert!(FaultPlanError::RateOutOfRange { which: "loss" }
            .to_string()
            .contains("loss"));
        assert!(FaultPlanError::CrashSiteOutOfRange { site: 7, sites: 3 }
            .to_string()
            .contains("site 7"));
    }

    #[test]
    fn lossy_builder_sets_retransmission() {
        let p = FaultPlan::lossy(9, 0.2, 0.1, 0.05);
        assert!(p.any() && p.channel_faults());
        assert!(p.retransmit_after > 0, "lossy plans must retry");
        assert!(p.crashes.is_empty());
        p.validate().unwrap();
    }
}
