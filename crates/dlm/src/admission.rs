//! Mode-admission helpers shared by [`crate::FifoTable`] and
//! [`crate::QueueTable`].
//!
//! Every "can this request be granted next to those holders?" question in
//! both tables routes through these two functions, which in turn route
//! through the **one** compatibility matrix on
//! [`kplock_model::LockMode`] — so the two implementations cannot drift
//! from each other or from the matrix. Before the mode lattice this logic
//! was written out twice as `mode == Shared && holders all Shared`; the
//! helpers reduce to exactly that on the `S`/`X` fragment.

use kplock_model::LockMode;

/// True iff `mode` is compatible with every mode in `holders` — the
/// admission test for a fresh request (and, with the requester's own
/// entry excluded, for an in-place upgrade). On the `S`/`X` fragment this
/// is the old `mode == Shared && holders.iter().all(Shared)` check.
pub(crate) fn compatible_with_all(
    mode: LockMode,
    holders: impl IntoIterator<Item = LockMode>,
) -> bool {
    holders.into_iter().all(|m| mode.compatible_with(m))
}

/// True iff `target` could be granted to holder `owner` right now: it is
/// compatible with every *other* holder's mode. The in-place-upgrade and
/// upgrade-promotion test; for an `S → X` upgrade this reduces to "sole
/// holder", the pre-lattice rule.
pub(crate) fn upgrade_admissible<O: Copy + Eq>(
    owner: O,
    target: LockMode,
    holders: impl IntoIterator<Item = (O, LockMode)>,
) -> bool {
    holders
        .into_iter()
        .all(|(h, m)| h == owner || target.compatible_with(m))
}

/// The first pairwise-incompatible pair of co-held modes, if any — the
/// full-matrix structural invariant (catches `S+IX`, `SIX+SIX`,
/// `X+anything`, not just `S+X` and double-`X`).
pub(crate) fn incompatible_pair(modes: &[LockMode]) -> Option<(LockMode, LockMode)> {
    for (i, &a) in modes.iter().enumerate() {
        for &b in &modes[i + 1..] {
            if !a.compatible_with(b) {
                return Some((a, b));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::*;

    #[test]
    fn fresh_admission_reduces_to_the_sx_rule() {
        assert!(compatible_with_all(Shared, [Shared, Shared]));
        assert!(!compatible_with_all(Shared, [Shared, Exclusive]));
        assert!(!compatible_with_all(Exclusive, [Shared]));
        assert!(compatible_with_all(Exclusive, []));
        // Intention rows come straight from the matrix.
        assert!(compatible_with_all(
            IntentionExclusive,
            [IntentionShared, IntentionExclusive]
        ));
        assert!(!compatible_with_all(IntentionExclusive, [Shared]));
        assert!(compatible_with_all(
            SharedIntentionExclusive,
            [IntentionShared]
        ));
    }

    #[test]
    fn upgrade_admissibility_reduces_to_sole_holder_for_sx() {
        assert!(upgrade_admissible(1u32, Exclusive, [(1, Shared)]));
        assert!(!upgrade_admissible(
            1u32,
            Exclusive,
            [(1, Shared), (2, Shared)]
        ));
        // IS → IX next to another IS holder is admissible in place.
        assert!(upgrade_admissible(
            1u32,
            IntentionExclusive,
            [(1, IntentionShared), (2, IntentionShared)]
        ));
        // IS → S next to an IX holder is not.
        assert!(!upgrade_admissible(
            1u32,
            Shared,
            [(1, IntentionShared), (2, IntentionExclusive)]
        ));
    }

    #[test]
    fn incompatible_pair_sees_the_full_matrix() {
        assert_eq!(incompatible_pair(&[Shared, Shared, IntentionShared]), None);
        assert_eq!(
            incompatible_pair(&[Shared, IntentionExclusive]),
            Some((Shared, IntentionExclusive))
        );
        assert_eq!(
            incompatible_pair(&[IntentionShared, Exclusive]),
            Some((IntentionShared, Exclusive))
        );
        assert_eq!(
            incompatible_pair(&[SharedIntentionExclusive, SharedIntentionExclusive]),
            Some((SharedIntentionExclusive, SharedIntentionExclusive))
        );
        assert_eq!(incompatible_pair(&[Exclusive]), None);
    }
}
