//! The lock-manager service layer: sharded tables + incremental deadlock
//! detection behind one thread-safe facade.
//!
//! [`LockManager`] is what a site (or a whole deployment, with entity ids
//! spanning sites) runs: every operation that changes an entity's wait
//! state updates the wait-for graph for exactly that entity and
//! immediately checks for a cycle, so deadlocks are reported at the
//! instant they form — no periodic scan, no detection latency. Cycles
//! form in two ways: a request *blocks* (closing an edge from the
//! requester), or a release *grants* and the remaining waiters retarget
//! onto the new holder — so [`LockManager::release`] and friends report
//! cycles too, not just [`LockManager::acquire`]. The caller picks the
//! victim (the manager has no notion of transaction age) and calls
//! [`LockManager::abort`].
//!
//! Lock ordering: the wait-for graph mutex is taken *before* the shard
//! mutex inside it, always in that order, so the manager adds no deadlock
//! of its own. Detection is exact under single-threaded use (the
//! discrete-event engine) and conservative under concurrency: the graph is
//! re-read under the graph lock, so a reported cycle was real at the time
//! it was read; resolving one that a concurrent release just broke merely
//! wastes an abort, never loses one.

use crate::deadlock::WaitForGraph;
use crate::error::LockError;
use crate::sharded::ShardedTable;
use crate::table::{Acquire, CancelOutcome, EntityGrants, Grants};
use kplock_model::{EntityId, LockMode};
use parking_lot::Mutex;
use std::hash::Hash;

/// Outcome of a lock acquisition through the manager.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ManagedAcquire<O> {
    /// Granted immediately.
    Granted,
    /// Queued; the owner will appear in a later release's grant list.
    Queued,
    /// Queued, and doing so completed a deadlock cycle: the returned
    /// owners form it (the requester is among them). The caller must
    /// abort one of them.
    Deadlock(Vec<O>),
}

/// Outcome of a release through the manager: the grants it performed and
/// the deadlock it exposed, if granting retargeted the remaining waiters
/// into a cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Released<O> {
    /// Owners granted the lock by this release, in FIFO order.
    pub granted: Grants<O>,
    /// A wait-for cycle now present among the remaining waiters, if any.
    /// The caller must abort one of its members.
    pub deadlock: Option<Vec<O>>,
}

/// Outcome of a batch release: per-entity grants plus any deadlock the
/// retargeting exposed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchReleased<O> {
    /// `(entity, grants)` pairs in ascending `(shard, entity)` order.
    pub granted: EntityGrants<O>,
    /// A wait-for cycle now present, if any.
    pub deadlock: Option<Vec<O>>,
}

/// Outcome of aborting an owner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Aborted<O> {
    /// The waits that were cancelled (and grants that unblocked).
    pub cancelled: CancelOutcome<O>,
    /// Everything the victim held, with the grants each release performed.
    pub released: EntityGrants<O>,
    /// A wait-for cycle *still* present after the abort (disjoint from the
    /// one the victim belonged to), if any.
    pub deadlock: Option<Vec<O>>,
}

/// A concurrent lock-manager service: sharded reader–writer tables plus an
/// incrementally maintained wait-for graph.
#[derive(Debug)]
pub struct LockManager<O> {
    table: ShardedTable<O>,
    wfg: Mutex<WaitForGraph<O>>,
}

impl<O: Copy + Eq + Ord + Hash> LockManager<O> {
    /// Creates a manager with `shards` table partitions.
    pub fn new(shards: usize) -> Self {
        LockManager {
            table: ShardedTable::new(shards),
            wfg: Mutex::new(WaitForGraph::new()),
        }
    }

    /// The underlying sharded table (read-side queries).
    pub fn table(&self) -> &ShardedTable<O> {
        &self.table
    }

    /// Refreshes entity `e`'s contribution to the wait-for graph from the
    /// table's current state. Caller must hold the graph lock.
    fn refresh(&self, wfg: &mut WaitForGraph<O>, e: EntityId) {
        wfg.update_entity(e, self.table.entity_waits_for(e));
    }

    /// Requests `mode` on `e` for `o`, detecting deadlock on block.
    pub fn acquire(
        &self,
        e: EntityId,
        o: O,
        mode: LockMode,
    ) -> Result<ManagedAcquire<O>, LockError> {
        match self.table.acquire(e, o, mode)? {
            Acquire::Granted => Ok(ManagedAcquire::Granted),
            Acquire::Queued => {
                let mut wfg = self.wfg.lock();
                self.refresh(&mut wfg, e);
                match wfg.find_cycle() {
                    Some(cycle) => Ok(ManagedAcquire::Deadlock(cycle)),
                    None => Ok(ManagedAcquire::Queued),
                }
            }
        }
    }

    /// Acquires a batch (sorted by shard; see
    /// [`ShardedTable::acquire_batch`]), then runs one deadlock check for
    /// all the requests that blocked.
    pub fn acquire_batch(
        &self,
        o: O,
        reqs: &[(EntityId, LockMode)],
    ) -> Result<Vec<(EntityId, ManagedAcquire<O>)>, LockError> {
        let outcomes = self.table.acquire_batch(o, reqs)?;
        let queued: Vec<EntityId> = outcomes
            .iter()
            .filter(|&&(_, a)| a == Acquire::Queued)
            .map(|&(e, _)| e)
            .collect();
        let cycle = if queued.is_empty() {
            None
        } else {
            let mut wfg = self.wfg.lock();
            for &e in &queued {
                self.refresh(&mut wfg, e);
            }
            wfg.find_cycle()
        };
        Ok(outcomes
            .into_iter()
            .map(|(e, a)| {
                let m = match a {
                    Acquire::Granted => ManagedAcquire::Granted,
                    // Attribute the cycle to the first blocked request.
                    Acquire::Queued => match (&cycle, queued.first()) {
                        (Some(c), Some(&first)) if first == e => {
                            ManagedAcquire::Deadlock(c.clone())
                        }
                        _ => ManagedAcquire::Queued,
                    },
                };
                (e, m)
            })
            .collect())
    }

    /// Releases `o`'s lock on `e`. Granting can close a cycle among the
    /// remaining waiters (they retarget onto the new holder), so the
    /// outcome carries any deadlock found alongside the grants.
    pub fn release(&self, e: EntityId, o: O) -> Result<Released<O>, LockError> {
        let granted = self.table.release(e, o)?;
        let mut wfg = self.wfg.lock();
        self.refresh(&mut wfg, e);
        let deadlock = wfg.find_cycle();
        Ok(Released { granted, deadlock })
    }

    /// Releases a batch; like [`Self::release`], reports any deadlock the
    /// grants' retargeting closed.
    pub fn release_batch(
        &self,
        o: O,
        entities: &[EntityId],
    ) -> Result<BatchReleased<O>, LockError> {
        let granted = self.table.release_batch(o, entities)?;
        let mut wfg = self.wfg.lock();
        for &(e, _) in &granted {
            self.refresh(&mut wfg, e);
        }
        let deadlock = wfg.find_cycle();
        Ok(BatchReleased { granted, deadlock })
    }

    /// Aborts `o`: cancels all its waits and releases all its holds,
    /// returning what that unblocked. This is how a caller resolves a
    /// reported deadlock. If a *different* cycle survives the abort, it is
    /// reported in [`Aborted::deadlock`] — resolve it the same way.
    pub fn abort(&self, o: O) -> Aborted<O> {
        let cancelled = self.table.cancel_waits(o);
        let released = self.table.release_all(o);
        let mut wfg = self.wfg.lock();
        for &e in cancelled
            .cancelled
            .iter()
            .chain(cancelled.granted.iter().map(|(e, _)| e))
            .chain(released.iter().map(|(e, _)| e))
        {
            self.refresh(&mut wfg, e);
        }
        let deadlock = wfg.find_cycle();
        Aborted {
            cancelled,
            released,
            deadlock,
        }
    }

    /// The current deadlocked owner groups (a from-scratch SCC pass over
    /// the maintained graph; used by tests and monitoring).
    pub fn deadlocked_groups(&self) -> Vec<Vec<O>> {
        self.wfg.lock().deadlocked_groups()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> LockMode {
        LockMode::Exclusive
    }
    fn s() -> LockMode {
        LockMode::Shared
    }
    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn detects_deadlock_at_block_time() {
        let m: LockManager<u32> = LockManager::new(4);
        assert_eq!(m.acquire(e(0), 1, x()).unwrap(), ManagedAcquire::Granted);
        assert_eq!(m.acquire(e(1), 2, x()).unwrap(), ManagedAcquire::Granted);
        assert_eq!(m.acquire(e(1), 1, x()).unwrap(), ManagedAcquire::Queued);
        // 2 -> 1 closes the cycle; it is reported immediately.
        match m.acquire(e(0), 2, x()).unwrap() {
            ManagedAcquire::Deadlock(mut c) => {
                c.sort();
                assert_eq!(c, vec![1, 2]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        // Aborting the victim clears the graph and unblocks the survivor.
        let out = m.abort(2);
        assert_eq!(out.cancelled.cancelled, vec![e(0)]);
        assert_eq!(out.deadlock, None);
        let granted: Vec<u32> = out
            .released
            .iter()
            .flat_map(|(_, g)| g.iter().map(|&(o, _)| o))
            .collect();
        assert_eq!(granted, vec![1], "survivor granted e1 on victim release");
        assert!(m.deadlocked_groups().is_empty());
    }

    #[test]
    fn shared_requests_do_not_fabricate_deadlocks() {
        let m: LockManager<u32> = LockManager::new(2);
        assert_eq!(m.acquire(e(0), 1, s()).unwrap(), ManagedAcquire::Granted);
        assert_eq!(m.acquire(e(0), 2, s()).unwrap(), ManagedAcquire::Granted);
        assert_eq!(m.acquire(e(0), 3, x()).unwrap(), ManagedAcquire::Queued);
        assert!(m.deadlocked_groups().is_empty());
        m.release(e(0), 1).unwrap();
        let out = m.release(e(0), 2).unwrap();
        assert_eq!(out.granted, vec![(3, x())]);
        assert_eq!(out.deadlock, None);
    }

    #[test]
    fn upgrade_deadlock_between_two_readers_is_caught() {
        let m: LockManager<u32> = LockManager::new(1);
        m.acquire(e(0), 1, s()).unwrap();
        m.acquire(e(0), 2, s()).unwrap();
        assert_eq!(m.acquire(e(0), 1, x()).unwrap(), ManagedAcquire::Queued);
        match m.acquire(e(0), 2, x()).unwrap() {
            ManagedAcquire::Deadlock(mut c) => {
                c.sort();
                assert_eq!(c, vec![1, 2], "classic dual-upgrade deadlock");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn batch_acquire_detects_cycles_too() {
        let m: LockManager<u32> = LockManager::new(4);
        m.acquire_batch(1, &[(e(0), x()), (e(2), x())]).unwrap();
        m.acquire(e(1), 2, x()).unwrap();
        // 2 queues behind 1 on e0; then 1 queues behind 2 on e1: cycle.
        let out = m.acquire_batch(2, &[(e(0), x())]).unwrap();
        assert_eq!(out, vec![(e(0), ManagedAcquire::Queued)]);
        let out = m.acquire_batch(1, &[(e(1), x())]).unwrap();
        match &out[0].1 {
            ManagedAcquire::Deadlock(c) => {
                let mut c = c.clone();
                c.sort();
                assert_eq!(c, vec![1, 2]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn release_that_retargets_waiters_reports_the_cycle() {
        // A holds e0; W holds e1. D queues on e0 (behind A) then on e1
        // (behind W); W queues on e0 (behind A, after D). Releasing e0
        // grants it to D — and retargets W onto D, closing W <-> D with
        // no block event. The release must report it.
        let (a, w, d) = (1u32, 2u32, 3u32);
        let m: LockManager<u32> = LockManager::new(4);
        assert_eq!(m.acquire(e(0), a, x()).unwrap(), ManagedAcquire::Granted);
        assert_eq!(m.acquire(e(1), w, x()).unwrap(), ManagedAcquire::Granted);
        assert_eq!(m.acquire(e(0), d, x()).unwrap(), ManagedAcquire::Queued);
        assert_eq!(m.acquire(e(1), d, x()).unwrap(), ManagedAcquire::Queued);
        assert_eq!(m.acquire(e(0), w, x()).unwrap(), ManagedAcquire::Queued);
        let out = m.release(e(0), a).unwrap();
        assert_eq!(out.granted, vec![(d, x())]);
        let mut cycle = out.deadlock.expect("retargeted cycle must be reported");
        cycle.sort();
        assert_eq!(cycle, vec![w, d]);
        // Resolving it the documented way clears everything.
        let aborted = m.abort(d);
        assert_eq!(aborted.deadlock, None);
        assert!(m.deadlocked_groups().is_empty());
    }

    #[test]
    fn release_updates_the_graph() {
        let m: LockManager<u32> = LockManager::new(2);
        m.acquire(e(0), 1, x()).unwrap();
        m.acquire(e(0), 2, x()).unwrap();
        m.release(e(0), 1).unwrap(); // grants 2
                                     // No stale 2 -> 1 edge: a later 1 -> 2 wait is acyclic.
        assert_eq!(m.acquire(e(0), 1, x()).unwrap(), ManagedAcquire::Queued);
    }
}
