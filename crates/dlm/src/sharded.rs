//! Hash-sharded lock tables.
//!
//! A single mutex-guarded lock table serializes *every* request, even for
//! unrelated entities; under multi-core load the mutex, not the lock logic,
//! becomes the bottleneck. [`ShardedTable`] hash-partitions the entity
//! space into `n` independent tables (default [`FifoTable`], or any
//! [`LockTable`] impl), each behind its own
//! `parking_lot::Mutex`, so requests for entities in different shards never
//! contend. `crates/bench/benches/dlm.rs` measures the effect (see
//! ARCHITECTURE.md for numbers).
//!
//! Batched entry points ([`ShardedTable::acquire_batch`],
//! [`ShardedTable::release_batch`]) sort requests by shard and lock each
//! shard exactly once per batch, the lock-manager analogue of the paper's
//! per-site total order: one round-trip per shard instead of one per
//! entity.

use crate::error::LockError;
use crate::lock_table::LockTable;
use crate::prevent::{PreventionOutcome, PreventionScheme, Priority};
use crate::table::{Acquire, CancelOutcome, EntityGrants, FifoTable, Grants};
use kplock_model::{EntityId, LockMode};
use parking_lot::{Mutex, MutexGuard};
use std::hash::Hash;
use std::marker::PhantomData;

/// A sharded reader–writer lock table: `shards` independent
/// [`LockTable`] engines, each guarded by its own mutex.
///
/// The engine defaults to [`FifoTable`] (so `ShardedTable<O>` keeps its
/// historical meaning); pass [`crate::QueueTable`] — or anything else
/// implementing [`LockTable`] — as `T` to swap the data structure under
/// an unchanged protocol.
#[derive(Debug)]
pub struct ShardedTable<O, T = FifoTable<O>> {
    shards: Vec<Mutex<T>>,
    _owner: PhantomData<fn(O)>,
}

impl<O: Copy + Eq + Ord + Hash, T: LockTable<O>> ShardedTable<O, T> {
    /// Creates a table with `shards` partitions (at least 1) of a
    /// default-constructed engine.
    pub fn new(shards: usize) -> Self
    where
        T: Default,
    {
        Self::with_tables(shards, T::default)
    }

    /// Creates a table with `shards` partitions (at least 1), building
    /// each shard's engine with `factory` — how configured
    /// [`crate::QueueTable`]s (bias, topology) are installed per shard.
    pub fn with_tables(shards: usize, mut factory: impl FnMut() -> T) -> Self {
        let n = shards.max(1);
        ShardedTable {
            shards: (0..n).map(|_| Mutex::new(factory())).collect(),
            _owner: PhantomData,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard an entity maps to (Fibonacci multiplicative hash — entity
    /// ids are dense small integers, so modulo alone would put consecutive
    /// entities in consecutive shards and correlated workloads in one).
    pub fn shard_index(&self, e: EntityId) -> usize {
        let h = (e.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (h as usize) % self.shards.len()
    }

    /// Locks the shard owning `e` and returns the guard. For callers (like
    /// the real-thread runner) that must compose several table calls with
    /// external bookkeeping atomically.
    pub fn lock_shard(&self, e: EntityId) -> MutexGuard<'_, T> {
        self.shards[self.shard_index(e)].lock()
    }

    /// Locks shard `idx` directly.
    pub fn lock_shard_index(&self, idx: usize) -> MutexGuard<'_, T> {
        self.shards[idx].lock()
    }

    /// Requests `mode` on `e` for `o`. See [`FifoTable::request`].
    pub fn acquire(&self, e: EntityId, o: O, mode: LockMode) -> Result<Acquire, LockError> {
        self.lock_shard(e).acquire(e, o, mode)
    }

    /// Requests `mode` on `e` for `o` under a timestamp-ordering deadlock
    /// prevention scheme. See [`FifoTable::request_with_priority`]; only
    /// `e`'s shard is locked — prevention needs no cross-shard state.
    pub fn acquire_with_priority(
        &self,
        e: EntityId,
        o: O,
        mode: LockMode,
        scheme: PreventionScheme,
        prio: impl Fn(O) -> Priority,
    ) -> Result<PreventionOutcome<O>, LockError> {
        self.lock_shard(e)
            .acquire_with_priority(e, o, mode, scheme, &prio)
    }

    /// Releases `o`'s lock on `e`; returns the grants this unblocked.
    /// See [`FifoTable::release`].
    pub fn release(&self, e: EntityId, o: O) -> Result<Grants<O>, LockError> {
        self.lock_shard(e).release(e, o)
    }

    /// Releases `o`'s lock on `e`, appending unblocked grants to `out` —
    /// the zero-allocation hot path when `T` supports it (see
    /// [`LockTable::release_into`]).
    pub fn release_into(&self, e: EntityId, o: O, out: &mut Grants<O>) -> Result<(), LockError> {
        self.lock_shard(e).release_into(e, o, out)
    }

    /// Acquires a batch of locks for `o`, locking every touched shard only
    /// once, in ascending `(shard, entity)` order. Note the batch *queues
    /// and continues* on conflict rather than blocking per resource, so —
    /// unlike classic ordered blocking acquisition — the canonical order
    /// does **not** rule out deadlock between two batch clients (A granted
    /// `e0` / queued on `e1`, B granted `e1` / queued on `e0` is still
    /// possible); run batches through [`crate::LockManager`] for
    /// detection. Returns per-entity outcomes in the *input* order. Fails
    /// atomically-per-request: earlier grants *and queued requests* stay
    /// in place if a later request errors — to abort, call
    /// [`Self::cancel_waits`] (drops the queued ones) and then
    /// [`Self::release_all`] (drops the holds), in that order.
    pub fn acquire_batch(
        &self,
        o: O,
        reqs: &[(EntityId, LockMode)],
    ) -> Result<Vec<(EntityId, Acquire)>, LockError> {
        let mut order: Vec<usize> = (0..reqs.len()).collect();
        order.sort_by_key(|&i| (self.shard_index(reqs[i].0), reqs[i].0));
        let mut out = vec![None; reqs.len()];
        let mut i = 0;
        while i < order.len() {
            let shard = self.shard_index(reqs[order[i]].0);
            let mut guard = self.shards[shard].lock();
            while i < order.len() && self.shard_index(reqs[order[i]].0) == shard {
                let (e, mode) = reqs[order[i]];
                out[order[i]] = Some(guard.acquire(e, o, mode)?);
                i += 1;
            }
        }
        Ok(reqs
            .iter()
            .zip(out)
            .map(|(&(e, _), a)| (e, a.expect("every request processed")))
            .collect())
    }

    /// Releases a batch of locks for `o`, locking every touched shard only
    /// once; returns `(entity, grants)` in ascending `(shard, entity)`
    /// order.
    pub fn release_batch(&self, o: O, entities: &[EntityId]) -> Result<EntityGrants<O>, LockError> {
        let mut sorted: Vec<EntityId> = entities.to_vec();
        sorted.sort_by_key(|&e| (self.shard_index(e), e));
        let mut out = Vec::with_capacity(sorted.len());
        let mut i = 0;
        while i < sorted.len() {
            let shard = self.shard_index(sorted[i]);
            let mut guard = self.shards[shard].lock();
            while i < sorted.len() && self.shard_index(sorted[i]) == shard {
                let e = sorted[i];
                out.push((e, guard.release(e, o)?));
                i += 1;
            }
        }
        Ok(out)
    }

    /// The mode `o` holds on `e`, if any.
    pub fn holds(&self, e: EntityId, o: O) -> Option<LockMode> {
        self.lock_shard(e).holds(e, o)
    }

    /// Current holders of `e` with their modes.
    pub fn holders(&self, e: EntityId) -> Vec<(O, LockMode)> {
        self.lock_shard(e).holders(e)
    }

    /// Entities held by `o` across all shards, ascending.
    pub fn held_by(&self, o: O) -> Vec<EntityId> {
        let mut v = Vec::new();
        for s in &self.shards {
            v.extend(s.lock().held_by(o));
        }
        v.sort();
        v
    }

    /// Cancels `o`'s waits across all shards; outcomes are merged in
    /// ascending entity order.
    pub fn cancel_waits(&self, o: O) -> CancelOutcome<O> {
        let mut out = CancelOutcome::default();
        for s in &self.shards {
            let co = s.lock().cancel_waits(o);
            out.cancelled.extend(co.cancelled);
            out.granted.extend(co.granted);
        }
        out.cancelled.sort();
        out.granted.sort_by_key(|&(e, _)| e);
        out
    }

    /// Releases everything `o` holds across all shards; `(entity, grants)`
    /// pairs ascending by entity.
    pub fn release_all(&self, o: O) -> EntityGrants<O> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.lock().release_all(o));
        }
        out.sort_by_key(|&(e, _)| e);
        out
    }

    /// The waits-for edges induced by entity `e`.
    pub fn entity_waits_for(&self, e: EntityId) -> Vec<(O, O)> {
        self.lock_shard(e).entity_waits_for(e)
    }

    /// All waits-for edges across all shards, ascending.
    ///
    /// Not an atomic snapshot: shards are read one at a time, so a
    /// concurrent release can be seen by one shard and not another. Fine
    /// for periodic detection (a stale edge only delays or repeats a
    /// finding); the incremental [`crate::LockManager`] avoids the issue.
    pub fn waits_for(&self) -> Vec<(O, O)> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.lock().waits_for());
        }
        out.sort();
        out
    }

    /// True when no shard holds or queues anything.
    pub fn is_idle(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_idle())
    }

    /// Checks every shard's structural invariants plus the sharding
    /// invariant (each entity's state lives in its hash shard only).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, s) in self.shards.iter().enumerate() {
            let t = s.lock();
            t.check_invariants()?;
            for e in t.active_entities() {
                if self.shard_index(e) != i {
                    return Err(format!("{e} stored in shard {i}, hashes to {}", {
                        self.shard_index(e)
                    }));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> LockMode {
        LockMode::Exclusive
    }
    fn s() -> LockMode {
        LockMode::Shared
    }

    #[test]
    fn shard_routing_is_stable_and_total() {
        let t: ShardedTable<u32> = ShardedTable::new(16);
        for i in 0..1000 {
            let e = EntityId(i);
            let idx = t.shard_index(e);
            assert!(idx < 16);
            assert_eq!(idx, t.shard_index(e));
        }
        // Shard count 0 is clamped to 1.
        let t: ShardedTable<u32> = ShardedTable::new(0);
        assert_eq!(t.shard_count(), 1);
    }

    #[test]
    fn acquire_release_across_shards() {
        let t: ShardedTable<u32> = ShardedTable::new(4);
        for i in 0..64 {
            assert_eq!(t.acquire(EntityId(i), 0, x()).unwrap(), Acquire::Granted);
        }
        assert_eq!(t.held_by(0).len(), 64);
        t.check_invariants().unwrap();
        for (e, grants) in t.release_all(0) {
            assert!(grants.is_empty(), "{e} had no waiters");
        }
        assert!(t.is_idle());
    }

    #[test]
    fn batch_acquire_locks_each_shard_once_and_reports_input_order() {
        let t: ShardedTable<u32> = ShardedTable::new(4);
        let reqs: Vec<(EntityId, LockMode)> = (0..32).map(|i| (EntityId(i), s())).collect();
        let out = t.acquire_batch(7, &reqs).unwrap();
        assert_eq!(out.len(), 32);
        for (i, &(e, a)) in out.iter().enumerate() {
            assert_eq!(e, EntityId(i as u32));
            assert_eq!(a, Acquire::Granted);
        }
        // A conflicting exclusive batch queues everywhere.
        let out = t.acquire_batch(8, &reqs.iter().map(|&(e, _)| (e, x())).collect::<Vec<_>>());
        assert!(out.unwrap().iter().all(|&(_, a)| a == Acquire::Queued));
        let entities: Vec<EntityId> = reqs.iter().map(|&(e, _)| e).collect();
        let grants = t.release_batch(7, &entities).unwrap();
        let total: usize = grants.iter().map(|(_, g)| g.len()).sum();
        assert_eq!(total, 32, "every queued request granted on release");
        assert!(grants
            .iter()
            .all(|(_, g)| g.iter().all(|&(o, m)| o == 8 && m == x())));
        t.check_invariants().unwrap();
    }

    #[test]
    fn batch_errors_surface() {
        let t: ShardedTable<u32> = ShardedTable::new(2);
        assert_eq!(
            t.release_batch(1, &[EntityId(0)]).unwrap_err(),
            LockError::NotHolder {
                entity: EntityId(0)
            }
        );
    }

    #[test]
    fn cross_shard_waits_for_aggregates() {
        let t: ShardedTable<u32> = ShardedTable::new(4);
        for i in 0..8 {
            t.acquire(EntityId(i), 0, x()).unwrap();
            t.acquire(EntityId(i), 1, x()).unwrap();
        }
        assert_eq!(t.waits_for(), vec![(1, 0); 8]);
        let co = t.cancel_waits(1);
        assert_eq!(co.cancelled.len(), 8);
        assert!(t.waits_for().is_empty());
    }
}
