//! A sharded reader–writer distributed lock-manager service layer.
//!
//! The paper's model — and the simulator's original table — is one
//! exclusive lock table per site with FIFO queues. This crate generalizes
//! it along the two axes that dominate real lock-manager throughput:
//!
//! * **Modes** ([`kplock_model::LockMode`]): shared/exclusive grants with
//!   FIFO fairness and in-place upgrade ([`ModeTable`]);
//! * **Sharding** ([`ShardedTable`]): hash-partitioned tables, one mutex
//!   per shard, so independent entities never contend, plus batched
//!   acquire/release that locks each shard once per batch;
//!
//! and replaces the engine's periodic global deadlock scan with
//! **incremental wait-for-graph detection** ([`WaitForGraph`],
//! [`LockManager`]) built on `kplock-graph`'s cycle/SCC machinery: the
//! graph is updated per entity as requests block and checked exactly when
//! a block occurs, so a deadlock is reported the moment it forms.
//!
//! Detection's counterpart is timestamp-ordering **prevention**
//! ([`prevent`], [`ModeTable::request_with_priority`]): wound-wait,
//! wait-die and no-wait decide at request time — from birth-stamp
//! priorities, with no graph at all — whether a wait may exist, so no
//! cycle can ever form and there is nothing left to detect.
//!
//! A service that can *crash* also needs a recovery contract: [`lease`]
//! stamps every grant with a [`Lease`] and mirrors the holder set in a
//! [`LeaseTable`], so a recovering shard can rebuild exactly the grants
//! whose leases survived the outage — and the caller knows which holders
//! to fence or abort. The same module's [`DelegationLedger`] records
//! which grants have been handed to a remote cache as *delegated
//! ownership* (the DLM-side half of client-side lock caching: the hold
//! stays in the table, release authority moves to the delegate until a
//! conflicting request revokes it). [`ModeTable::is_waiting`] and
//! [`ModeTable::release_idempotent`] make duplicated or retransmitted
//! request/release messages safe, the table-side half of running over an
//! unreliable network.
//!
//! Exclusive-only, single-shard use reproduces the simulator's original
//! semantics bit-for-bit — `kplock-sim`'s table is now a thin wrapper over
//! [`ModeTable`] — while protocol violations surface as typed
//! [`LockError`]s at this API boundary instead of panics.
//!
//! # Example
//!
//! Two readers share an entity; a writer queues behind them; releasing the
//! readers grants the writer; a wait-for cycle is detected the instant it
//! forms:
//!
//! ```
//! use kplock_dlm::{LockManager, ManagedAcquire};
//! use kplock_model::{EntityId, LockMode};
//!
//! let m: LockManager<u32> = LockManager::new(16); // 16 shards
//! let (a, b) = (EntityId(0), EntityId(1));
//!
//! // Shared access coexists; exclusive queues FIFO behind it.
//! assert_eq!(m.acquire(a, 1, LockMode::Shared).unwrap(), ManagedAcquire::Granted);
//! assert_eq!(m.acquire(a, 2, LockMode::Shared).unwrap(), ManagedAcquire::Granted);
//! assert_eq!(m.acquire(a, 3, LockMode::Exclusive).unwrap(), ManagedAcquire::Queued);
//! m.release(a, 1).unwrap();
//! assert_eq!(m.release(a, 2).unwrap().granted, vec![(3, LockMode::Exclusive)]);
//!
//! // Deadlock: 3 holds a; 4 holds b; they request each other's entity.
//! assert_eq!(m.acquire(b, 4, LockMode::Exclusive).unwrap(), ManagedAcquire::Granted);
//! assert_eq!(m.acquire(b, 3, LockMode::Exclusive).unwrap(), ManagedAcquire::Queued);
//! match m.acquire(a, 4, LockMode::Exclusive).unwrap() {
//!     ManagedAcquire::Deadlock(mut cycle) => {
//!         cycle.sort();
//!         assert_eq!(cycle, vec![3, 4]); // found at block time, no scan
//!     }
//!     other => panic!("expected a deadlock, got {other:?}"),
//! }
//! let _ = m.abort(4); // victim out; 3 is granted b
//! assert_eq!(m.table().holds(b, 3), Some(LockMode::Exclusive));
//! ```

mod admission;
pub mod deadlock;
pub mod error;
pub mod lease;
pub mod lock_table;
pub mod manager;
pub mod prevent;
pub mod queue_table;
pub mod sharded;
pub mod table;

pub use deadlock::WaitForGraph;
pub use error::LockError;
pub use lease::{DelegationEntry, DelegationLedger, Lease, LeaseTable};
pub use lock_table::{Bias, LockTable, TableSpec};
pub use manager::{Aborted, BatchReleased, LockManager, ManagedAcquire, Released};
pub use prevent::{PreventionOutcome, PreventionScheme, Priority};
pub use queue_table::QueueTable;
pub use sharded::ShardedTable;
pub use table::{Acquire, CancelOutcome, EntityGrants, FifoTable, Grants, ModeTable};
