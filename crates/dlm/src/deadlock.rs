//! Incremental wait-for-graph deadlock detection.
//!
//! The simulator's engine scans all sites periodically, rebuilding the full
//! waits-for relation every `deadlock_scan_interval` ticks; a cycle can
//! therefore sit undetected for up to a full interval. [`WaitForGraph`]
//! instead keeps the relation *materialized*, updated per entity as
//! requests block, grant, release or cancel. Two events can close a
//! cycle: a request *blocking* (adding edges from the requester), and a
//! release *granting* (the entity's remaining waiters retarget onto the
//! new holder) — so detection must run after both, which is exactly what
//! [`crate::LockManager`] and the simulator's on-block mode do; every
//! deadlock is then found at the moment it forms.
//!
//! Cycle search and strongly-connected-component analysis reuse
//! `kplock-graph` ([`kplock_graph::find_cycle`], [`kplock_graph::tarjan_scc`])
//! — the same machinery behind the paper's Theorem 1/2 deciders — rather
//! than reimplementing graph walks here.

use kplock_graph::DiGraph;
use kplock_model::EntityId;
use std::collections::HashMap;
use std::hash::Hash;

/// A wait-for graph over owners, maintained incrementally per entity.
///
/// Each entity contributes the bipartite edge set *waiters × holders*; the
/// graph is their union. [`WaitForGraph::update_entity`] replaces one
/// entity's contribution in `O(edges of e)`, so the caller pays only for
/// the entity whose lock state just changed.
#[derive(Clone, Debug)]
pub struct WaitForGraph<O> {
    per_entity: HashMap<EntityId, Vec<(O, O)>>,
}

impl<O> Default for WaitForGraph<O> {
    fn default() -> Self {
        WaitForGraph {
            per_entity: HashMap::new(),
        }
    }
}

impl<O: Copy + Eq + Ord + Hash> WaitForGraph<O> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces entity `e`'s contribution with `edges` (typically
    /// `ModeTable::entity_waits_for(e)` after a state change). An empty
    /// `edges` removes the entity. Returns whether the contribution
    /// actually changed — callers gate their cycle checks on it.
    pub fn update_entity(&mut self, e: EntityId, edges: Vec<(O, O)>) -> bool {
        if edges.is_empty() {
            self.per_entity.remove(&e).is_some()
        } else if self.per_entity.get(&e) == Some(&edges) {
            false
        } else {
            self.per_entity.insert(e, edges);
            true
        }
    }

    /// Forgets everything.
    pub fn clear(&mut self) {
        self.per_entity.clear();
    }

    /// All edges `(waiter, holder)`, ascending and deduplicated (two
    /// entities may induce the same owner pair).
    pub fn edges(&self) -> Vec<(O, O)> {
        let mut out: Vec<(O, O)> = self.per_entity.values().flatten().copied().collect();
        out.sort();
        out.dedup();
        out
    }

    /// True when no one waits on anyone.
    pub fn is_empty(&self) -> bool {
        self.per_entity.is_empty()
    }

    /// Interns owners (sorted, so results are deterministic regardless of
    /// hash-map iteration order) and builds the [`DiGraph`].
    fn build(&self) -> (Vec<O>, DiGraph) {
        let edges = self.edges();
        let mut owners: Vec<O> = edges.iter().flat_map(|&(w, h)| [w, h]).collect();
        owners.sort();
        owners.dedup();
        let index: HashMap<O, usize> = owners.iter().enumerate().map(|(i, &o)| (o, i)).collect();
        let mut g = DiGraph::new(owners.len());
        for &(w, h) in &edges {
            if w != h {
                g.add_edge(index[&w], index[&h]);
            }
        }
        (owners, g)
    }

    /// Finds one deadlock cycle, as the owners along it, if any exists.
    pub fn find_cycle(&self) -> Option<Vec<O>> {
        let (owners, g) = self.build();
        kplock_graph::find_cycle(&g).map(|c| c.into_iter().map(|i| owners[i]).collect())
    }

    /// Every deadlocked owner group: the nontrivial strongly connected
    /// components of the graph, each sorted, the list sorted by first
    /// member. Exactly what a global periodic scan would report, so
    /// incremental maintenance can be checked against a from-scratch scan.
    pub fn deadlocked_groups(&self) -> Vec<Vec<O>> {
        let (owners, g) = self.build();
        let sccs = kplock_graph::tarjan_scc(&g);
        let mut out: Vec<Vec<O>> = sccs
            .members
            .iter()
            .filter(|c| c.len() > 1)
            .map(|c| {
                let mut grp: Vec<O> = c.iter().map(|&i| owners[i]).collect();
                grp.sort();
                grp
            })
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn no_cycle_on_chains() {
        let mut g: WaitForGraph<u32> = WaitForGraph::new();
        g.update_entity(e(0), vec![(1, 0)]);
        g.update_entity(e(1), vec![(2, 1)]);
        assert_eq!(g.find_cycle(), None);
        assert!(g.deadlocked_groups().is_empty());
    }

    #[test]
    fn detects_and_clears_a_two_cycle() {
        let mut g: WaitForGraph<u32> = WaitForGraph::new();
        g.update_entity(e(0), vec![(1, 0)]);
        g.update_entity(e(1), vec![(0, 1)]);
        let mut c = g.find_cycle().unwrap();
        c.sort();
        assert_eq!(c, vec![0, 1]);
        assert_eq!(g.deadlocked_groups(), vec![vec![0, 1]]);
        // The victim's edges disappear; so does the cycle.
        g.update_entity(e(1), vec![]);
        assert_eq!(g.find_cycle(), None);
    }

    #[test]
    fn duplicate_edges_from_two_entities_survive_one_removal() {
        let mut g: WaitForGraph<u32> = WaitForGraph::new();
        // Entities 0 and 1 both induce the edge (1, 0).
        g.update_entity(e(0), vec![(1, 0)]);
        g.update_entity(e(1), vec![(1, 0), (0, 1)]);
        assert!(g.find_cycle().is_some());
        g.update_entity(e(1), vec![]);
        assert_eq!(g.edges(), vec![(1, 0)]);
        assert_eq!(g.find_cycle(), None);
    }

    #[test]
    fn self_edges_are_ignored() {
        let mut g: WaitForGraph<u32> = WaitForGraph::new();
        g.update_entity(e(0), vec![(0, 0)]);
        assert_eq!(g.find_cycle(), None);
    }

    #[test]
    fn multiple_disjoint_deadlocks_reported() {
        let mut g: WaitForGraph<u32> = WaitForGraph::new();
        g.update_entity(e(0), vec![(0, 1), (1, 0)]);
        g.update_entity(e(1), vec![(2, 3), (3, 2)]);
        assert_eq!(g.deadlocked_groups(), vec![vec![0, 1], vec![2, 3]]);
    }
}
