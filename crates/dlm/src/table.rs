//! The mode-aware FIFO lock table (one partition).
//!
//! [`FifoTable`] (formerly `ModeTable`; the alias remains) generalizes the
//! simulator's exclusive-only table to reader–writer locks while keeping
//! its grant discipline *bit-identical* in the exclusive-only case:
//! requests queue strictly FIFO (no waiter is ever overtaken by a later
//! request, so writers never starve), and grants happen inside
//! [`FifoTable::release`] so the caller can forward them.
//!
//! Owner- and entity-keyed queries used to be O(entities) sorted scans;
//! the table now maintains three reverse indexes — `owned` (per-owner held
//! entities), `active` (entities with any state) and `contended` (entities
//! with waiters) — so [`FifoTable::held_by`] is O(held),
//! [`FifoTable::active_entities`] is a copy, and
//! [`FifoTable::waits_for`]/[`FifoTable::waits_of`]/
//! [`FifoTable::cancel_waits`] visit only contended entities. The indexes
//! are pure acceleration: every result is identical to the scans they
//! replaced (pinned by a proptest in `tests/properties.rs` and verified
//! wholesale by [`FifoTable::check_invariants`]).
//!
//! # Invariants
//!
//! * At most one [`LockMode::Exclusive`] holder per entity, and never
//!   alongside a shared holder (the S/X compatibility matrix).
//! * The wait queue is FIFO: a queued request is granted only when it is at
//!   the front and compatible with the current holders; runs of adjacent
//!   shared requests are granted together.
//! * An upgrade (a shared holder requesting exclusive) takes priority over
//!   the queue but must wait until it is the sole holder. Two concurrent
//!   upgraders deadlock by construction — that is the caller's problem to
//!   detect (see [`crate::WaitForGraph`]) and resolve by aborting one.
//! * Protocol violations return [`LockError`]; nothing panics.

use crate::admission;
use crate::error::LockError;
use crate::prevent::{PreventionOutcome, PreventionScheme, Priority};
use kplock_model::{EntityId, LockMode};
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// Inserts `v` into a sorted vector if absent (no-op when present).
fn sorted_insert<T: Ord + Copy>(vec: &mut Vec<T>, v: T) {
    if let Err(i) = vec.binary_search(&v) {
        vec.insert(i, v);
    }
}

/// Removes `v` from a sorted vector if present (no-op when absent).
fn sorted_remove<T: Ord + Copy>(vec: &mut Vec<T>, v: T) {
    if let Ok(i) = vec.binary_search(&v) {
        vec.remove(i);
    }
}

/// Grants unblocked by one release/cancel at one entity: the granted
/// owners with their granted modes, in FIFO order.
pub type Grants<O> = Vec<(O, LockMode)>;

/// Per-entity grant lists, ascending by entity — what the bulk operations
/// (`release_all`, batch release) report.
pub type EntityGrants<O> = Vec<(EntityId, Grants<O>)>;

/// Outcome of a lock request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Acquire {
    /// The lock was granted immediately.
    Granted,
    /// The request was queued; it will appear in a later release's grant
    /// list (or be cancelled).
    Queued,
}

/// Per-entity lock state.
#[derive(Clone, Debug)]
struct LockState<O> {
    /// Current holders with their modes (one exclusive, or any number
    /// shared).
    holders: Vec<(O, LockMode)>,
    /// Holders waiting to upgrade, with the lattice-join target mode
    /// each will be granted (for an `S → X` upgrade: `X`).
    upgrades: Vec<(O, LockMode)>,
    /// FIFO wait queue.
    queue: VecDeque<(O, LockMode)>,
}

impl<O> LockState<O> {
    fn new() -> Self {
        LockState {
            holders: Vec::new(),
            upgrades: Vec::new(),
            queue: VecDeque::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.holders.is_empty() && self.upgrades.is_empty() && self.queue.is_empty()
    }
}

/// Result of cancelling an owner's waits: which entities it stopped waiting
/// on, and any grants the cancellation unblocked (e.g. a cancelled upgrade
/// letting queued readers through).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CancelOutcome<O> {
    /// Entities the owner was queued (or upgrade-pending) on, ascending.
    pub cancelled: Vec<EntityId>,
    /// Grants performed as a consequence, in ascending entity order.
    pub granted: EntityGrants<O>,
}

impl<O> Default for CancelOutcome<O> {
    fn default() -> Self {
        CancelOutcome {
            cancelled: Vec::new(),
            granted: Vec::new(),
        }
    }
}

/// A reader–writer FIFO lock table over one partition of the entity space.
///
/// `O` is the owner handle (a transaction instance, a session id, …); it
/// must be cheap to copy and totally ordered so every query can return
/// deterministic, sorted results.
#[derive(Clone, Debug)]
pub struct FifoTable<O> {
    states: HashMap<EntityId, LockState<O>>,
    /// Per-owner reverse index: entities the owner holds, ascending.
    owned: HashMap<O, Vec<EntityId>>,
    /// Entities with any state, ascending (mirrors `states.keys()`).
    active: Vec<EntityId>,
    /// Entities with a nonempty queue or pending upgrade, ascending.
    contended: Vec<EntityId>,
}

/// Original name of [`FifoTable`], kept for downstream callers.
pub type ModeTable<O> = FifoTable<O>;

impl<O> Default for FifoTable<O> {
    fn default() -> Self {
        FifoTable {
            states: HashMap::new(),
            owned: HashMap::new(),
            active: Vec::new(),
            contended: Vec::new(),
        }
    }
}

/// What the shared admission step decided about a request: granted on the
/// spot (including re-entrant and sole-holder-upgrade grants, already
/// applied to the state), or forced to wait — as a fresh queued request or
/// as a pending upgrade by an existing holder.
enum Admission {
    Granted {
        /// True when the grant added a *new* holder entry (as opposed to a
        /// covered re-request or an in-place upgrade) — the caller must
        /// mirror it into the `owned` reverse index.
        newly: bool,
    },
    MustWait {
        /// `Some(target)` when `o` already holds the lock and is upgrading
        /// to the lattice join `target`: it would join `upgrades`, not the
        /// queue, and is served ahead of it.
        upgrade: Option<LockMode>,
    },
}

impl<O: Copy + Eq + Ord + Hash> FifoTable<O> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The admission step shared by [`ModeTable::request`] and
    /// [`ModeTable::request_with_priority`], so the two paths can never
    /// diverge on what is grantable: rejects duplicates, grants covered
    /// re-requests, sole-holder upgrades and compatible fresh requests in
    /// place, and otherwise reports that the request must wait (without
    /// enqueueing it — whether and where it waits is the caller's policy).
    fn try_admit(
        st: &mut LockState<O>,
        e: EntityId,
        o: O,
        mode: LockMode,
    ) -> Result<Admission, LockError> {
        if st.queue.iter().any(|&(w, _)| w == o) || st.upgrades.iter().any(|&(u, _)| u == o) {
            return Err(LockError::AlreadyQueued { entity: e });
        }
        if let Some(held) = st.holders.iter().find(|&&(h, _)| h == o).map(|&(_, m)| m) {
            if held.covers(mode) {
                return Ok(Admission::Granted { newly: false });
            }
            // Upgrade to the lattice join, in place when the target is
            // compatible with every *other* holder (for `S → X`: sole
            // holder; for e.g. `IS → IX` next to `IS` co-holders: always).
            let target = held.join(mode);
            if admission::upgrade_admissible(o, target, st.holders.iter().copied()) {
                for h in st.holders.iter_mut().filter(|h| h.0 == o) {
                    h.1 = target;
                }
                return Ok(Admission::Granted { newly: false });
            }
            return Ok(Admission::MustWait {
                upgrade: Some(target),
            });
        }
        let grantable = if st.holders.is_empty() {
            st.queue.is_empty()
        } else {
            st.upgrades.is_empty()
                && st.queue.is_empty()
                && admission::compatible_with_all(mode, st.holders.iter().map(|&(_, m)| m))
        };
        if grantable {
            st.holders.push((o, mode));
            Ok(Admission::Granted { newly: true })
        } else {
            Ok(Admission::MustWait { upgrade: None })
        }
    }

    /// Re-syncs the `active`/`contended` indexes for `e` after a mutation,
    /// pruning the state entirely when it went empty. Must be called after
    /// every operation that can change `e`'s waiter sets or emptiness.
    fn sync_entity(&mut self, e: EntityId) {
        match self.states.get(&e) {
            Some(st) if !st.is_empty() => {
                sorted_insert(&mut self.active, e);
                if st.queue.is_empty() && st.upgrades.is_empty() {
                    sorted_remove(&mut self.contended, e);
                } else {
                    sorted_insert(&mut self.contended, e);
                }
            }
            Some(_) => {
                self.states.remove(&e);
                sorted_remove(&mut self.active, e);
                sorted_remove(&mut self.contended, e);
            }
            None => {
                sorted_remove(&mut self.active, e);
                sorted_remove(&mut self.contended, e);
            }
        }
    }

    /// Records `o` as holding `e` in the per-owner reverse index
    /// (idempotent — upgrade grants re-report an existing holder).
    fn owned_insert(owned: &mut HashMap<O, Vec<EntityId>>, o: O, e: EntityId) {
        sorted_insert(owned.entry(o).or_default(), e);
    }

    /// Removes `e` from `o`'s reverse-index entry, dropping the entry when
    /// it empties so the map does not accumulate dead owners.
    fn owned_remove(owned: &mut HashMap<O, Vec<EntityId>>, o: O, e: EntityId) {
        if let Some(v) = owned.get_mut(&o) {
            sorted_remove(v, e);
            if v.is_empty() {
                owned.remove(&o);
            }
        }
    }

    /// Requests `mode` on `e` for `o`.
    ///
    /// Re-requesting a mode already covered by the held one returns
    /// [`Acquire::Granted`] without changing state. A shared holder
    /// requesting exclusive starts an *upgrade*: granted immediately if it
    /// is the sole holder, otherwise pending until the other holders
    /// release (reported as `Queued`).
    pub fn request(&mut self, e: EntityId, o: O, mode: LockMode) -> Result<Acquire, LockError> {
        let st = self.states.entry(e).or_insert_with(LockState::new);
        let out = match Self::try_admit(st, e, o, mode) {
            Err(err) => {
                // AlreadyQueued implies waiters exist, so the state cannot
                // have been freshly created here; still, resync to be safe.
                self.sync_entity(e);
                return Err(err);
            }
            Ok(Admission::Granted { newly }) => {
                if newly {
                    Self::owned_insert(&mut self.owned, o, e);
                }
                Acquire::Granted
            }
            Ok(Admission::MustWait {
                upgrade: Some(target),
            }) => {
                st.upgrades.push((o, target));
                Acquire::Queued
            }
            Ok(Admission::MustWait { upgrade: None }) => {
                st.queue.push_back((o, mode));
                Acquire::Queued
            }
        };
        self.sync_entity(e);
        Ok(out)
    }

    /// Requests `mode` on `e` for `o` under a timestamp-ordering deadlock
    /// *prevention* scheme (see [`crate::prevent`]). Behaves exactly like
    /// [`ModeTable::request`] when the lock is grantable; when the request
    /// would have to wait, the scheme decides from priorities alone:
    ///
    /// * [`PreventionScheme::NoWait`] — [`PreventionOutcome::Rejected`].
    /// * [`PreventionScheme::WaitDie`] — queued iff `o` is older than
    ///   every conflicting owner; otherwise rejected.
    /// * [`PreventionScheme::WoundWait`] — always queued; every younger
    ///   conflicting owner is returned as a wound victim the caller must
    ///   abort ([`PreventionOutcome::Wounded`]).
    ///
    /// The conflicting owners a fresh request is tested against are the
    /// current holders **and** the queued waiters and pending upgraders —
    /// the waiters are tomorrow's holders under FIFO retargeting, and
    /// admitting against all of them is what keeps the scheme's no-cycle
    /// invariant stable for the lifetime of the wait. A contended
    /// *upgrade* is tested against the other holders and upgraders only:
    /// [`ModeTable::release`]'s grant step serves a pending upgrade before
    /// any queue entry, so queued waiters can never become holders ahead
    /// of it and are not obstacles (treating them as such inflates
    /// restarts for waits that cannot exist).
    ///
    /// `prio` maps any owner at this entity to its [`Priority`] (smaller =
    /// older); priorities must be distinct per owner and stable across
    /// restarts. The table stores none of this — prevention is stateless
    /// local arithmetic, which is the entire point of the schemes.
    ///
    /// A sole-holder upgrade is granted in place as usual.
    pub fn request_with_priority(
        &mut self,
        e: EntityId,
        o: O,
        mode: LockMode,
        scheme: PreventionScheme,
        prio: impl Fn(O) -> Priority,
    ) -> Result<PreventionOutcome<O>, LockError> {
        let st = self.states.entry(e).or_insert_with(LockState::new);
        let upgrade = match Self::try_admit(st, e, o, mode) {
            Err(err) => {
                self.sync_entity(e);
                return Err(err);
            }
            Ok(Admission::Granted { newly }) => {
                if newly {
                    Self::owned_insert(&mut self.owned, o, e);
                }
                self.sync_entity(e);
                return Ok(PreventionOutcome::Granted);
            }
            Ok(Admission::MustWait { upgrade }) => upgrade,
        };
        let st = self.states.get_mut(&e).expect("state exists: must-wait");
        let mut obstacles: Vec<O> = st
            .holders
            .iter()
            .map(|&(h, _)| h)
            .chain(st.upgrades.iter().map(|&(u, _)| u))
            .collect();
        if upgrade.is_none() {
            // An upgrader only ever waits on the other holders (and
            // competing upgraders — a genuine upgrade-vs-upgrade cycle);
            // the queue is served after it, so queued waiters are
            // obstacles for fresh requests only.
            obstacles.extend(st.queue.iter().map(|&(w, _)| w));
        }
        obstacles.retain(|&x| x != o);
        obstacles.sort();
        obstacles.dedup();
        let mine = prio(o);
        let admit = |st: &mut LockState<O>| {
            if let Some(target) = upgrade {
                st.upgrades.push((o, target));
            } else {
                st.queue.push_back((o, mode));
            }
        };
        let outcome = match scheme {
            PreventionScheme::NoWait => PreventionOutcome::Rejected,
            PreventionScheme::WaitDie => {
                if obstacles.iter().all(|&x| mine < prio(x)) {
                    admit(st);
                    PreventionOutcome::Queued
                } else {
                    PreventionOutcome::Rejected
                }
            }
            PreventionScheme::WoundWait => {
                let victims: Vec<O> = obstacles.into_iter().filter(|&x| prio(x) > mine).collect();
                admit(st);
                if victims.is_empty() {
                    PreventionOutcome::Queued
                } else {
                    PreventionOutcome::Wounded(victims)
                }
            }
        };
        self.sync_entity(e);
        Ok(outcome)
    }

    /// Grants whatever the state now admits: admissible pending upgrades
    /// first (an upgrade is grantable when its join target is compatible
    /// with every *other* holder — for `S → X`, when the upgrader is the
    /// sole holder), then the longest compatible prefix of the FIFO queue.
    fn promote(st: &mut LockState<O>) -> Grants<O> {
        let mut out = Vec::new();
        loop {
            if let Some(i) = (0..st.upgrades.len()).find(|&i| {
                let (u, target) = st.upgrades[i];
                admission::upgrade_admissible(u, target, st.holders.iter().copied())
            }) {
                let (u, target) = st.upgrades.remove(i);
                for h in st.holders.iter_mut().filter(|h| h.0 == u) {
                    h.1 = target;
                }
                out.push((u, target));
                continue;
            }
            let Some(&(w, m)) = st.queue.front() else {
                break;
            };
            let ok = if st.holders.is_empty() {
                true
            } else {
                st.upgrades.is_empty()
                    && admission::compatible_with_all(m, st.holders.iter().map(|&(_, hm)| hm))
            };
            if !ok {
                break;
            }
            st.queue.pop_front();
            st.holders.push((w, m));
            out.push((w, m));
        }
        out
    }

    /// Releases `o`'s lock on `e`; returns the grants this unblocked, in
    /// FIFO order. A pending upgrade by `o` is cancelled alongside.
    ///
    /// Returns [`LockError::NotHolder`] if `o` holds no lock on `e` — the
    /// typed twin of the simulator table's "release by non-holder" panic.
    pub fn release(&mut self, e: EntityId, o: O) -> Result<Grants<O>, LockError> {
        let Some(st) = self.states.get_mut(&e) else {
            return Err(LockError::NotHolder { entity: e });
        };
        let before = st.holders.len();
        st.holders.retain(|&(h, _)| h != o);
        if st.holders.len() == before {
            return Err(LockError::NotHolder { entity: e });
        }
        st.upgrades.retain(|&(u, _)| u != o);
        let grants = Self::promote(st);
        Self::owned_remove(&mut self.owned, o, e);
        for &(w, _) in &grants {
            // Idempotent: an upgrade grant re-reports an existing holder.
            Self::owned_insert(&mut self.owned, w, e);
        }
        self.sync_entity(e);
        Ok(grants)
    }

    /// The mode `o` holds on `e`, if any.
    pub fn holds(&self, e: EntityId, o: O) -> Option<LockMode> {
        self.states
            .get(&e)?
            .holders
            .iter()
            .find(|&&(h, _)| h == o)
            .map(|&(_, m)| m)
    }

    /// Current holders of `e` with their modes (unspecified order).
    pub fn holders(&self, e: EntityId) -> Vec<(O, LockMode)> {
        self.states
            .get(&e)
            .map(|st| st.holders.clone())
            .unwrap_or_default()
    }

    /// Sole exclusive holder of `e`, if the lock is held exclusively.
    pub fn exclusive_holder(&self, e: EntityId) -> Option<O> {
        let st = self.states.get(&e)?;
        match st.holders.as_slice() {
            [(h, LockMode::Exclusive)] => Some(*h),
            _ => None,
        }
    }

    /// Entities currently held by `o`, ascending — an O(held) copy out of
    /// the reverse index (previously an O(entities) scan + sort).
    pub fn held_by(&self, o: O) -> Vec<EntityId> {
        self.owned.get(&o).cloned().unwrap_or_default()
    }

    /// Removes `o` from every wait queue and pending-upgrade slot. Grants
    /// unblocked by the cancellation are performed and reported. Only
    /// contended entities are visited (previously every entity was
    /// scanned); the output is unchanged, since an entity with no waiters
    /// can never contribute a cancellation.
    pub fn cancel_waits(&mut self, o: O) -> CancelOutcome<O> {
        let entities: Vec<EntityId> = self.contended.clone();
        let mut out = CancelOutcome::default();
        for e in entities {
            let st = self.states.get_mut(&e).expect("contended index entry");
            let before = st.queue.len() + st.upgrades.len();
            st.queue.retain(|&(w, _)| w != o);
            st.upgrades.retain(|&(u, _)| u != o);
            if st.queue.len() + st.upgrades.len() == before {
                continue;
            }
            out.cancelled.push(e);
            let grants = Self::promote(st);
            for &(w, _) in &grants {
                Self::owned_insert(&mut self.owned, w, e);
            }
            if !grants.is_empty() {
                out.granted.push((e, grants));
            }
            self.sync_entity(e);
        }
        out
    }

    /// Releases everything `o` holds; returns `(entity, grants)` pairs in
    /// ascending entity order.
    pub fn release_all(&mut self, o: O) -> EntityGrants<O> {
        self.held_by(o)
            .into_iter()
            .map(|e| {
                let grants = self.release(e, o).expect("held_by listed the entity");
                (e, grants)
            })
            .collect()
    }

    /// The waits-for edges `(waiter, holder)` induced by `e` alone:
    /// queued requests wait on every holder; pending upgraders wait on
    /// every *other* holder.
    pub fn entity_waits_for(&self, e: EntityId) -> Vec<(O, O)> {
        let Some(st) = self.states.get(&e) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for &(w, _) in &st.queue {
            for &(h, _) in &st.holders {
                out.push((w, h));
            }
        }
        for &(u, _) in &st.upgrades {
            for &(h, _) in &st.holders {
                if h != u {
                    out.push((u, h));
                }
            }
        }
        out.sort();
        out
    }

    /// All waits-for edges `(waiter, holder)` at this table, ascending.
    /// Visits only contended entities — entities without waiters
    /// contribute no edges.
    pub fn waits_for(&self) -> Vec<(O, O)> {
        let mut out = Vec::new();
        for &e in &self.contended {
            out.extend(self.entity_waits_for(e));
        }
        out.sort();
        out
    }

    /// The holders `o` waits on at *this* table — `o`'s outgoing wait-for
    /// edges in the site-local view, ascending and deduplicated. This is
    /// what a distributed edge-chasing detector asks a site when a probe
    /// arrives: "is this owner blocked here, and on whom?" — answerable
    /// from local state alone, with no global wait-for graph.
    pub fn waits_of(&self, o: O) -> Vec<O> {
        let mut out = Vec::new();
        for e in &self.contended {
            let st = &self.states[e];
            if st.queue.iter().any(|&(w, _)| w == o) {
                out.extend(st.holders.iter().map(|&(h, _)| h));
            } else if st.upgrades.iter().any(|&(u, _)| u == o) {
                out.extend(st.holders.iter().filter(|&&(h, _)| h != o).map(|&(h, _)| h));
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// True when `o` is waiting at `e` — queued, or a holder with a
    /// pending upgrade. The duplicate-detection primitive a caller facing
    /// an unreliable network needs: a *retransmitted* lock request whose
    /// original is already queued must be recognized and dropped (the
    /// grant will come through the queue), where [`ModeTable::request`]
    /// would report it as a protocol error.
    pub fn is_waiting(&self, e: EntityId, o: O) -> bool {
        self.states.get(&e).is_some_and(|st| {
            st.queue.iter().any(|&(w, _)| w == o) || st.upgrades.iter().any(|&(u, _)| u == o)
        })
    }

    /// Releases `o`'s lock on `e` if it holds one; a no-op (empty grant
    /// list) otherwise. The idempotent twin of [`ModeTable::release`] for
    /// callers whose release messages can be duplicated or retransmitted:
    /// the first copy releases, every later copy finds no hold and does
    /// nothing — in particular it can never release a *subsequent*
    /// holder's lock, because release is keyed by owner.
    pub fn release_idempotent(&mut self, e: EntityId, o: O) -> Grants<O> {
        self.release(e, o).unwrap_or_default()
    }

    /// The owners a re-submitted request by `o` on `e` would be admitted
    /// against under [`ModeTable::request_with_priority`], ascending and
    /// deduplicated: holders and pending upgraders always; queued waiters
    /// only when `o` is *not* itself a pending upgrader — an upgrade is
    /// served ahead of the queue, so queued waiters are never its
    /// obstacles (mirroring the admission path's obstacle set exactly).
    /// A caller re-delivering a wound-wait request whose original wound
    /// orders may have been lost re-derives its victim set from exactly
    /// this list — the table stays policy-free, the caller re-applies the
    /// priority filter.
    pub fn conflicts_of(&self, e: EntityId, o: O) -> Vec<O> {
        let Some(st) = self.states.get(&e) else {
            return Vec::new();
        };
        let mut out: Vec<O> = st
            .holders
            .iter()
            .map(|&(h, _)| h)
            .chain(st.upgrades.iter().map(|&(u, _)| u))
            .collect();
        if !st.upgrades.iter().any(|&(u, _)| u == o) {
            out.extend(st.queue.iter().map(|&(w, _)| w));
        }
        out.retain(|&x| x != o);
        out.sort();
        out.dedup();
        out
    }

    /// Entities with any lock state (held or queued), ascending — a copy
    /// of the `active` index (previously an O(entities) collect + sort).
    pub fn active_entities(&self) -> Vec<EntityId> {
        self.active.clone()
    }

    /// True when nothing is held or queued anywhere.
    pub fn is_idle(&self) -> bool {
        self.states.is_empty()
    }

    /// Checks the table's structural invariants (for tests): pairwise
    /// mode compatibility of all co-held locks (the full IS/IX/S/SIX/X
    /// matrix — catches `S+IX` and `SIX+SIX` as well as `S+X` and
    /// double-`X`), upgraders are holders with strictly stronger targets,
    /// no holder-and-waiter owners.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (e, st) in &self.states {
            let modes: Vec<LockMode> = st.holders.iter().map(|&(_, m)| m).collect();
            if let Some((a, b)) = admission::incompatible_pair(&modes) {
                return Err(format!("{e}: incompatible co-held modes {a}+{b}"));
            }
            for &(u, target) in &st.upgrades {
                let Some(&(_, held)) = st.holders.iter().find(|&&(h, _)| h == u) else {
                    return Err(format!("{e}: upgrader is not a holder"));
                };
                if held.covers(target) {
                    return Err(format!(
                        "{e}: pending upgrade to {target} already covered by held {held}"
                    ));
                }
            }
            for &(w, _) in &st.queue {
                if st.holders.iter().any(|&(h, _)| h == w) {
                    return Err(format!("{e}: owner both holds and waits"));
                }
            }
            if st.is_empty() {
                return Err(format!("{e}: empty state not pruned"));
            }
            if self.active.binary_search(e).is_err() {
                return Err(format!("{e}: missing from active index"));
            }
            let waiting = !st.queue.is_empty() || !st.upgrades.is_empty();
            if waiting != self.contended.binary_search(e).is_ok() {
                return Err(format!("{e}: contended index disagrees"));
            }
            for &(h, _) in &st.holders {
                let indexed = self
                    .owned
                    .get(&h)
                    .is_some_and(|v| v.binary_search(e).is_ok());
                if !indexed {
                    return Err(format!("{e}: holder missing from owned index"));
                }
            }
        }
        // No stale index entries: every indexed item must exist in states.
        if self.active.len() != self.states.len() {
            return Err(format!(
                "active index has {} entries, states has {}",
                self.active.len(),
                self.states.len()
            ));
        }
        for &e in &self.contended {
            if !self.states.contains_key(&e) {
                return Err(format!("{e}: stale contended index entry"));
            }
        }
        for (o, entities) in &self.owned {
            if entities.is_empty() {
                return Err("empty owned index entry not pruned".to_string());
            }
            if !entities.windows(2).all(|w| w[0] < w[1]) {
                return Err("owned index entry not strictly ascending".to_string());
            }
            for e in entities {
                let holds = self
                    .states
                    .get(e)
                    .is_some_and(|st| st.holders.iter().any(|&(h, _)| h == *o));
                if !holds {
                    return Err(format!("{e}: stale owned index entry"));
                }
            }
        }
        Ok(())
    }
}

impl<O: Copy + Eq + Ord + Hash> crate::lock_table::LockTable<O> for FifoTable<O> {
    fn acquire(&mut self, e: EntityId, o: O, mode: LockMode) -> Result<Acquire, LockError> {
        self.request(e, o, mode)
    }

    fn acquire_with_priority(
        &mut self,
        e: EntityId,
        o: O,
        mode: LockMode,
        scheme: PreventionScheme,
        prio: &dyn Fn(O) -> Priority,
    ) -> Result<PreventionOutcome<O>, LockError> {
        self.request_with_priority(e, o, mode, scheme, prio)
    }

    fn release_into(&mut self, e: EntityId, o: O, out: &mut Grants<O>) -> Result<(), LockError> {
        out.extend(self.release(e, o)?);
        Ok(())
    }

    fn release(&mut self, e: EntityId, o: O) -> Result<Grants<O>, LockError> {
        FifoTable::release(self, e, o)
    }

    fn release_idempotent(&mut self, e: EntityId, o: O) -> Grants<O> {
        FifoTable::release_idempotent(self, e, o)
    }

    fn cancel_waits(&mut self, o: O) -> CancelOutcome<O> {
        FifoTable::cancel_waits(self, o)
    }

    fn release_all(&mut self, o: O) -> EntityGrants<O> {
        FifoTable::release_all(self, o)
    }

    fn holds(&self, e: EntityId, o: O) -> Option<LockMode> {
        FifoTable::holds(self, e, o)
    }

    fn holders(&self, e: EntityId) -> Vec<(O, LockMode)> {
        FifoTable::holders(self, e)
    }

    fn exclusive_holder(&self, e: EntityId) -> Option<O> {
        FifoTable::exclusive_holder(self, e)
    }

    fn held_by(&self, o: O) -> Vec<EntityId> {
        FifoTable::held_by(self, o)
    }

    fn waits_for(&self) -> Vec<(O, O)> {
        FifoTable::waits_for(self)
    }

    fn entity_waits_for(&self, e: EntityId) -> Vec<(O, O)> {
        FifoTable::entity_waits_for(self, e)
    }

    fn waits_of(&self, o: O) -> Vec<O> {
        FifoTable::waits_of(self, o)
    }

    fn is_waiting(&self, e: EntityId, o: O) -> bool {
        FifoTable::is_waiting(self, e, o)
    }

    fn conflicts_of(&self, e: EntityId, o: O) -> Vec<O> {
        FifoTable::conflicts_of(self, e, o)
    }

    fn active_entities(&self) -> Vec<EntityId> {
        FifoTable::active_entities(self)
    }

    fn is_idle(&self) -> bool {
        FifoTable::is_idle(self)
    }

    fn check_invariants(&self) -> Result<(), String> {
        FifoTable::check_invariants(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> LockMode {
        LockMode::Exclusive
    }
    fn s() -> LockMode {
        LockMode::Shared
    }

    #[test]
    fn exclusive_fifo_grant_queue_release() {
        let mut t: ModeTable<u32> = ModeTable::new();
        let e = EntityId(0);
        assert_eq!(t.request(e, 0, x()).unwrap(), Acquire::Granted);
        assert_eq!(t.request(e, 1, x()).unwrap(), Acquire::Queued);
        assert_eq!(t.request(e, 2, x()).unwrap(), Acquire::Queued);
        assert_eq!(t.holds(e, 0), Some(x()));
        assert_eq!(t.waits_for(), vec![(1, 0), (2, 0)]);
        assert_eq!(t.release(e, 0).unwrap(), vec![(1, x())]);
        assert_eq!(t.release(e, 1).unwrap(), vec![(2, x())]);
        assert_eq!(t.release(e, 2).unwrap(), vec![]);
        assert!(t.is_idle());
    }

    #[test]
    fn shared_holders_coexist_and_block_writers() {
        let mut t: ModeTable<u32> = ModeTable::new();
        let e = EntityId(0);
        assert_eq!(t.request(e, 0, s()).unwrap(), Acquire::Granted);
        assert_eq!(t.request(e, 1, s()).unwrap(), Acquire::Granted);
        assert_eq!(t.request(e, 2, x()).unwrap(), Acquire::Queued);
        // FIFO: a reader arriving after the writer must not overtake it.
        assert_eq!(t.request(e, 3, s()).unwrap(), Acquire::Queued);
        t.check_invariants().unwrap();
        assert_eq!(t.release(e, 0).unwrap(), vec![]);
        // Last reader leaves: writer goes first, reader 3 still waits.
        assert_eq!(t.release(e, 1).unwrap(), vec![(2, x())]);
        assert_eq!(t.holds(e, 2), Some(x()));
        assert_eq!(t.release(e, 2).unwrap(), vec![(3, s())]);
        assert_eq!(t.release(e, 3).unwrap(), vec![]);
    }

    #[test]
    fn adjacent_readers_granted_together() {
        let mut t: ModeTable<u32> = ModeTable::new();
        let e = EntityId(0);
        t.request(e, 0, x()).unwrap();
        t.request(e, 1, s()).unwrap();
        t.request(e, 2, s()).unwrap();
        t.request(e, 3, x()).unwrap();
        assert_eq!(t.release(e, 0).unwrap(), vec![(1, s()), (2, s())]);
        assert_eq!(t.release(e, 1).unwrap(), vec![]);
        assert_eq!(t.release(e, 2).unwrap(), vec![(3, x())]);
    }

    #[test]
    fn reentrant_covered_request_is_granted() {
        let mut t: ModeTable<u32> = ModeTable::new();
        let e = EntityId(0);
        t.request(e, 0, x()).unwrap();
        assert_eq!(t.request(e, 0, s()).unwrap(), Acquire::Granted);
        assert_eq!(t.request(e, 0, x()).unwrap(), Acquire::Granted);
        assert_eq!(t.holds(e, 0), Some(x()));
    }

    #[test]
    fn sole_holder_upgrade_is_immediate() {
        let mut t: ModeTable<u32> = ModeTable::new();
        let e = EntityId(0);
        t.request(e, 0, s()).unwrap();
        assert_eq!(t.request(e, 0, x()).unwrap(), Acquire::Granted);
        assert_eq!(t.holds(e, 0), Some(x()));
        assert_eq!(t.exclusive_holder(e), Some(0));
    }

    #[test]
    fn contended_upgrade_waits_for_other_readers() {
        let mut t: ModeTable<u32> = ModeTable::new();
        let e = EntityId(0);
        t.request(e, 0, s()).unwrap();
        t.request(e, 1, s()).unwrap();
        assert_eq!(t.request(e, 0, x()).unwrap(), Acquire::Queued);
        // The upgrader waits on the other holder only.
        assert_eq!(t.waits_for(), vec![(0, 1)]);
        // A new reader must not sneak in past the pending upgrade.
        assert_eq!(t.request(e, 2, s()).unwrap(), Acquire::Queued);
        assert_eq!(t.release(e, 1).unwrap(), vec![(0, x())]);
        assert_eq!(t.holds(e, 0), Some(x()));
        assert_eq!(t.release(e, 0).unwrap(), vec![(2, s())]);
    }

    #[test]
    fn release_by_non_holder_is_a_typed_error() {
        let mut t: ModeTable<u32> = ModeTable::new();
        let e = EntityId(0);
        assert_eq!(
            t.release(e, 9).unwrap_err(),
            LockError::NotHolder { entity: e }
        );
        t.request(e, 0, x()).unwrap();
        assert_eq!(
            t.release(e, 1).unwrap_err(),
            LockError::NotHolder { entity: e }
        );
        // Waiters are not holders.
        t.request(e, 1, x()).unwrap();
        assert_eq!(
            t.release(e, 1).unwrap_err(),
            LockError::NotHolder { entity: e }
        );
    }

    #[test]
    fn duplicate_queued_request_is_an_error() {
        let mut t: ModeTable<u32> = ModeTable::new();
        let e = EntityId(0);
        t.request(e, 0, x()).unwrap();
        t.request(e, 1, x()).unwrap();
        assert_eq!(
            t.request(e, 1, x()).unwrap_err(),
            LockError::AlreadyQueued { entity: e }
        );
    }

    #[test]
    fn cancel_waits_unblocks_readers_behind_cancelled_writer() {
        let mut t: ModeTable<u32> = ModeTable::new();
        let e = EntityId(0);
        t.request(e, 0, s()).unwrap();
        t.request(e, 1, x()).unwrap();
        t.request(e, 2, s()).unwrap();
        let out = t.cancel_waits(1);
        assert_eq!(out.cancelled, vec![e]);
        assert_eq!(out.granted, vec![(e, vec![(2, s())])]);
        assert_eq!(t.holds(e, 2), Some(s()));
    }

    #[test]
    fn waits_of_is_the_per_owner_local_view() {
        let mut t: ModeTable<u32> = ModeTable::new();
        let (a, b, c) = (EntityId(0), EntityId(1), EntityId(2));
        t.request(a, 0, x()).unwrap();
        t.request(b, 1, x()).unwrap();
        t.request(a, 2, x()).unwrap(); // 2 waits on 0
        t.request(b, 2, x()).unwrap(); // 2 waits on 1
        t.request(c, 2, x()).unwrap(); // granted, no wait
        assert_eq!(t.waits_of(2), vec![0, 1]);
        assert_eq!(t.waits_of(0), vec![]);
        // Shared holders: a waiter waits on all of them, deduplicated
        // against other entities.
        let mut t: ModeTable<u32> = ModeTable::new();
        t.request(a, 0, s()).unwrap();
        t.request(a, 1, s()).unwrap();
        t.request(a, 2, x()).unwrap();
        t.request(b, 1, x()).unwrap();
        t.request(b, 2, x()).unwrap();
        assert_eq!(t.waits_of(2), vec![0, 1]);
        // An upgrader waits on the other holders only.
        let mut t: ModeTable<u32> = ModeTable::new();
        t.request(a, 0, s()).unwrap();
        t.request(a, 1, s()).unwrap();
        t.request(a, 0, x()).unwrap(); // pending upgrade
        assert_eq!(t.waits_of(0), vec![1]);
    }

    /// Owner id doubles as age: smaller id = older transaction.
    fn by_id(o: u32) -> Priority {
        (o as u64, 0)
    }

    #[test]
    fn no_wait_rejects_any_conflict_without_queueing() {
        let mut t: ModeTable<u32> = ModeTable::new();
        let e = EntityId(0);
        assert_eq!(
            t.request_with_priority(e, 5, x(), PreventionScheme::NoWait, by_id)
                .unwrap(),
            PreventionOutcome::Granted
        );
        assert_eq!(
            t.request_with_priority(e, 1, x(), PreventionScheme::NoWait, by_id)
                .unwrap(),
            PreventionOutcome::Rejected,
            "older or not, nobody waits"
        );
        assert!(t.waits_for().is_empty(), "rejected requests leave no state");
        // Shared readers still coexist: no conflict, no rejection.
        let mut t: ModeTable<u32> = ModeTable::new();
        t.request_with_priority(e, 1, s(), PreventionScheme::NoWait, by_id)
            .unwrap();
        assert_eq!(
            t.request_with_priority(e, 2, s(), PreventionScheme::NoWait, by_id)
                .unwrap(),
            PreventionOutcome::Granted
        );
    }

    #[test]
    fn wait_die_admits_older_rejects_younger() {
        let mut t: ModeTable<u32> = ModeTable::new();
        let e = EntityId(0);
        t.request_with_priority(e, 5, x(), PreventionScheme::WaitDie, by_id)
            .unwrap();
        // Older than the holder: may wait.
        assert_eq!(
            t.request_with_priority(e, 3, x(), PreventionScheme::WaitDie, by_id)
                .unwrap(),
            PreventionOutcome::Queued
        );
        // Younger than the holder: dies.
        assert_eq!(
            t.request_with_priority(e, 9, x(), PreventionScheme::WaitDie, by_id)
                .unwrap(),
            PreventionOutcome::Rejected
        );
        // Younger than the holder but older than the queued waiter is
        // still a death: the waiter is a future holder under FIFO.
        assert_eq!(
            t.request_with_priority(e, 4, x(), PreventionScheme::WaitDie, by_id)
                .unwrap(),
            PreventionOutcome::Rejected
        );
        // Older than holder *and* every waiter: admitted.
        assert_eq!(
            t.request_with_priority(e, 1, x(), PreventionScheme::WaitDie, by_id)
                .unwrap(),
            PreventionOutcome::Queued
        );
        assert_eq!(t.waits_for(), vec![(1, 5), (3, 5)]);
        // FIFO retargeting keeps the invariant: 5 releases, 3 holds, and
        // the remaining waiter 1 is older than the new holder.
        assert_eq!(t.release(e, 5).unwrap(), vec![(3, x())]);
        assert_eq!(t.waits_for(), vec![(1, 3)]);
    }

    #[test]
    fn wound_wait_wounds_younger_holders_and_waiters() {
        let mut t: ModeTable<u32> = ModeTable::new();
        let e = EntityId(0);
        t.request_with_priority(e, 2, s(), PreventionScheme::WoundWait, by_id)
            .unwrap();
        t.request_with_priority(e, 8, s(), PreventionScheme::WoundWait, by_id)
            .unwrap();
        // Younger requester waits without wounding anybody.
        assert_eq!(
            t.request_with_priority(e, 9, x(), PreventionScheme::WoundWait, by_id)
                .unwrap(),
            PreventionOutcome::Queued
        );
        // Older requester wounds every younger owner — the shared holder 8
        // and the queued writer 9 — and waits behind the older holder 2.
        assert_eq!(
            t.request_with_priority(e, 5, x(), PreventionScheme::WoundWait, by_id)
                .unwrap(),
            PreventionOutcome::Wounded(vec![8, 9])
        );
        // Victims keep their state until the caller aborts them.
        assert_eq!(t.holds(e, 8), Some(s()));
        let co = t.cancel_waits(9);
        assert_eq!(co.cancelled, vec![e]);
        t.release(e, 8).unwrap();
        // Only the old holder is left ahead of the admitted waiter.
        assert_eq!(t.waits_for(), vec![(5, 2)]);
        assert_eq!(t.release(e, 2).unwrap(), vec![(5, x())]);
    }

    #[test]
    fn prevention_grants_without_conflict_never_consult_priorities() {
        let mut t: ModeTable<u32> = ModeTable::new();
        let e = EntityId(0);
        let panic_prio = |_: u32| -> Priority { panic!("no conflict, no timestamp") };
        for scheme in [
            PreventionScheme::WoundWait,
            PreventionScheme::WaitDie,
            PreventionScheme::NoWait,
        ] {
            let mut fresh: ModeTable<u32> = ModeTable::new();
            assert_eq!(
                fresh
                    .request_with_priority(e, 7, x(), scheme, panic_prio)
                    .unwrap(),
                PreventionOutcome::Granted
            );
        }
        // Re-entrant covered requests are also free.
        t.request_with_priority(e, 7, x(), PreventionScheme::WaitDie, by_id)
            .unwrap();
        assert_eq!(
            t.request_with_priority(e, 7, s(), PreventionScheme::WaitDie, panic_prio)
                .unwrap(),
            PreventionOutcome::Granted
        );
    }

    #[test]
    fn prevention_contended_upgrade_applies_the_scheme() {
        // Two shared holders; the older one upgrades: wound-wait wounds
        // the younger co-holder, wait-die admits the pending upgrade.
        for (scheme, expect) in [
            (
                PreventionScheme::WoundWait,
                PreventionOutcome::Wounded(vec![6]),
            ),
            (PreventionScheme::WaitDie, PreventionOutcome::Queued),
        ] {
            let mut t: ModeTable<u32> = ModeTable::new();
            let e = EntityId(0);
            t.request_with_priority(e, 2, s(), scheme, by_id).unwrap();
            t.request_with_priority(e, 6, s(), scheme, by_id).unwrap();
            assert_eq!(
                t.request_with_priority(e, 2, x(), scheme, by_id).unwrap(),
                expect
            );
            assert_eq!(
                t.waits_for(),
                vec![(2, 6)],
                "upgrade pending on the other holder"
            );
        }
        // The younger co-holder upgrading under wait-die dies instead.
        let mut t: ModeTable<u32> = ModeTable::new();
        let e = EntityId(0);
        t.request_with_priority(e, 2, s(), PreventionScheme::WaitDie, by_id)
            .unwrap();
        t.request_with_priority(e, 6, s(), PreventionScheme::WaitDie, by_id)
            .unwrap();
        assert_eq!(
            t.request_with_priority(e, 6, x(), PreventionScheme::WaitDie, by_id)
                .unwrap(),
            PreventionOutcome::Rejected
        );
        // A sole holder upgrades in place under any scheme.
        let mut t: ModeTable<u32> = ModeTable::new();
        t.request_with_priority(e, 6, s(), PreventionScheme::NoWait, by_id)
            .unwrap();
        assert_eq!(
            t.request_with_priority(e, 6, x(), PreventionScheme::NoWait, by_id)
                .unwrap(),
            PreventionOutcome::Granted
        );
    }

    #[test]
    fn contended_upgrade_ignores_queued_waiters_it_outranks() {
        // Holders {2(S), 6(S)}, queue [1(X)] — the queued writer is older
        // than everyone. An upgrade by holder 2 only ever waits on the
        // *other holder* 6 (promote serves upgrades before the queue), so
        // under wait-die the older queued writer must not count as an
        // obstacle and the upgrade is admitted.
        let mut t: ModeTable<u32> = ModeTable::new();
        let e = EntityId(0);
        t.request_with_priority(e, 2, s(), PreventionScheme::WaitDie, by_id)
            .unwrap();
        t.request_with_priority(e, 6, s(), PreventionScheme::WaitDie, by_id)
            .unwrap();
        assert_eq!(
            t.request_with_priority(e, 1, x(), PreventionScheme::WaitDie, by_id)
                .unwrap(),
            PreventionOutcome::Queued
        );
        assert_eq!(
            t.request_with_priority(e, 2, x(), PreventionScheme::WaitDie, by_id)
                .unwrap(),
            PreventionOutcome::Queued,
            "queued waiters are not upgrade obstacles"
        );
        // The upgrade is indeed served before the older queued writer.
        assert_eq!(t.release(e, 6).unwrap(), vec![(2, x())]);
        assert_eq!(t.release(e, 2).unwrap(), vec![(1, x())]);
        // Same shape under wound-wait: the upgrader wounds nobody in the
        // queue (it will never wait on them), only younger co-holders.
        let mut t: ModeTable<u32> = ModeTable::new();
        t.request_with_priority(e, 2, s(), PreventionScheme::WoundWait, by_id)
            .unwrap();
        t.request_with_priority(e, 6, s(), PreventionScheme::WoundWait, by_id)
            .unwrap();
        t.request_with_priority(e, 9, x(), PreventionScheme::WoundWait, by_id)
            .unwrap();
        assert_eq!(
            t.request_with_priority(e, 2, x(), PreventionScheme::WoundWait, by_id)
                .unwrap(),
            PreventionOutcome::Wounded(vec![6]),
            "only the younger co-holder is wounded, not the queued writer"
        );
    }

    #[test]
    fn prevention_duplicate_queued_request_is_an_error() {
        let mut t: ModeTable<u32> = ModeTable::new();
        let e = EntityId(0);
        t.request_with_priority(e, 5, x(), PreventionScheme::WaitDie, by_id)
            .unwrap();
        t.request_with_priority(e, 3, x(), PreventionScheme::WaitDie, by_id)
            .unwrap();
        assert_eq!(
            t.request_with_priority(e, 3, x(), PreventionScheme::WaitDie, by_id)
                .unwrap_err(),
            LockError::AlreadyQueued { entity: e }
        );
    }

    #[test]
    fn wound_wait_wounds_a_pending_upgrader() {
        // Holders {2(S), 6(S)}; the younger co-holder 6 starts an upgrade
        // and goes pending on 2. Requester 3 — older than the upgrader,
        // younger than the other holder — arrives for X: its obstacle set
        // is both holders *and* the upgrader entry, so 6 is wounded
        // exactly once (obstacles are deduplicated, not once per role), 2
        // is spared, and 3 waits. Aborting 6 — cancel its upgrade,
        // release its hold — must leave 2 then 3 as the FIFO future.
        let mut t: ModeTable<u32> = ModeTable::new();
        let e = EntityId(0);
        t.request_with_priority(e, 2, s(), PreventionScheme::WoundWait, by_id)
            .unwrap();
        t.request_with_priority(e, 6, s(), PreventionScheme::WoundWait, by_id)
            .unwrap();
        assert_eq!(
            t.request_with_priority(e, 6, x(), PreventionScheme::WoundWait, by_id)
                .unwrap(),
            PreventionOutcome::Queued,
            "younger upgrader waits on the older co-holder without wounding"
        );
        assert_eq!(
            t.request_with_priority(e, 3, x(), PreventionScheme::WoundWait, by_id)
                .unwrap(),
            PreventionOutcome::Wounded(vec![6]),
            "only the younger upgrader is wounded, and only once"
        );
        // Execute the wound: 6 loses its pending upgrade and its hold.
        let co = t.cancel_waits(6);
        assert_eq!(co.cancelled, vec![e]);
        assert_eq!(t.release(e, 6).unwrap(), vec![]);
        // 2 is sole holder; releasing it grants the admitted requester.
        assert_eq!(t.release(e, 2).unwrap(), vec![(3, x())]);
    }

    #[test]
    fn upgrader_dies_against_an_older_upgrader_under_wait_die() {
        // Two co-holders both upgrading is a genuine upgrade-vs-upgrade
        // cycle; prevention must refuse the one that would wait on an
        // older pending upgrader. 2 upgrades first (pending on 6); then 6
        // tries: its obstacles are the other holder 2 *and* upgrader 2 —
        // younger 6 dies rather than completing the cycle.
        let mut t: ModeTable<u32> = ModeTable::new();
        let e = EntityId(0);
        t.request_with_priority(e, 2, s(), PreventionScheme::WaitDie, by_id)
            .unwrap();
        t.request_with_priority(e, 6, s(), PreventionScheme::WaitDie, by_id)
            .unwrap();
        assert_eq!(
            t.request_with_priority(e, 2, x(), PreventionScheme::WaitDie, by_id)
                .unwrap(),
            PreventionOutcome::Queued
        );
        assert_eq!(
            t.request_with_priority(e, 6, x(), PreventionScheme::WaitDie, by_id)
                .unwrap(),
            PreventionOutcome::Rejected,
            "the younger upgrader must die, or the upgrade cycle deadlocks"
        );
        // The dead upgrader aborts: its hold releases, 2 upgrades in place.
        assert_eq!(t.release(e, 6).unwrap(), vec![(2, x())]);
        assert_eq!(t.holds(e, 2), Some(x()));
    }

    #[test]
    fn co_holder_upgrade_conflicts_with_queued_waiter_it_cannot_outrank() {
        // Wound-wait upgrade by the *younger* co-holder: it waits on the
        // older co-holder (young → old, admissible) and wounds nobody —
        // in particular not the queued writer it will be served before.
        let mut t: ModeTable<u32> = ModeTable::new();
        let e = EntityId(0);
        t.request_with_priority(e, 2, s(), PreventionScheme::WoundWait, by_id)
            .unwrap();
        t.request_with_priority(e, 6, s(), PreventionScheme::WoundWait, by_id)
            .unwrap();
        t.request_with_priority(e, 9, x(), PreventionScheme::WoundWait, by_id)
            .unwrap();
        assert_eq!(
            t.request_with_priority(e, 6, x(), PreventionScheme::WoundWait, by_id)
                .unwrap(),
            PreventionOutcome::Queued,
            "younger upgrader: waits on 2, wounds neither 2 nor the queue"
        );
        assert_eq!(t.waits_for(), vec![(6, 2), (9, 2), (9, 6)]);
        // FIFO future: 2 releases → 6 upgrades; 6 releases → 9 gets X.
        assert_eq!(t.release(e, 2).unwrap(), vec![(6, x())]);
        assert_eq!(t.release(e, 6).unwrap(), vec![(9, x())]);
    }

    #[test]
    fn is_waiting_sees_queued_and_upgrading_owners() {
        let mut t: ModeTable<u32> = ModeTable::new();
        let e = EntityId(0);
        t.request(e, 0, s()).unwrap();
        t.request(e, 1, s()).unwrap();
        t.request(e, 0, x()).unwrap(); // pending upgrade
        t.request(e, 2, x()).unwrap(); // queued
        assert!(t.is_waiting(e, 0), "pending upgraders are waiting");
        assert!(t.is_waiting(e, 2), "queued requests are waiting");
        assert!(!t.is_waiting(e, 1), "plain holders are not");
        assert!(!t.is_waiting(EntityId(9), 0), "unknown entity: nobody");
    }

    #[test]
    fn release_idempotent_tolerates_duplicates_and_spares_new_holders() {
        let mut t: ModeTable<u32> = ModeTable::new();
        let e = EntityId(0);
        t.request(e, 0, x()).unwrap();
        t.request(e, 1, x()).unwrap();
        // First copy releases and grants the waiter.
        assert_eq!(t.release_idempotent(e, 0), vec![(1, x())]);
        // The duplicate finds no hold by 0 — and must not evict 1.
        assert_eq!(t.release_idempotent(e, 0), vec![]);
        assert_eq!(t.holds(e, 1), Some(x()));
        // Releasing something never held is equally a no-op.
        assert_eq!(t.release_idempotent(EntityId(7), 0), vec![]);
    }

    #[test]
    fn conflicts_of_lists_the_admission_obstacle_set() {
        let mut t: ModeTable<u32> = ModeTable::new();
        let e = EntityId(0);
        assert_eq!(t.conflicts_of(e, 9), Vec::<u32>::new());
        t.request(e, 2, s()).unwrap();
        t.request(e, 6, s()).unwrap();
        t.request(e, 6, x()).unwrap(); // 6 also pending upgrade: deduped
        t.request(e, 9, x()).unwrap(); // queued
                                       // A fresh (or queued) requester is admitted against everyone.
        assert_eq!(t.conflicts_of(e, 5), vec![2, 6, 9]);
        assert_eq!(t.conflicts_of(e, 9), vec![2, 6]);
        // A pending *upgrader*'s obstacle set excludes the queue (the
        // upgrade is served first), exactly as the admission path does —
        // a re-derived wound-wait victim set must not wound the queued
        // writer 9, which was never an obstacle.
        assert_eq!(t.conflicts_of(e, 6), vec![2]);
    }

    #[test]
    fn abort_helpers_match_old_table_semantics() {
        let mut t: ModeTable<u32> = ModeTable::new();
        let (a, b) = (EntityId(0), EntityId(1));
        t.request(a, 0, x()).unwrap();
        t.request(b, 0, x()).unwrap();
        t.request(a, 1, x()).unwrap();
        assert_eq!(t.held_by(0), vec![a, b]);
        assert_eq!(t.cancel_waits(1).cancelled, vec![a]);
        let released = t.release_all(0);
        assert_eq!(released, vec![(a, vec![]), (b, vec![])]);
        assert!(t.is_idle());
    }
}
