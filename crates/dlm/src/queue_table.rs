//! [`QueueTable`]: the arena-allocated, zero-steady-state-allocation
//! lock-table engine.
//!
//! The reference [`FifoTable`](crate::FifoTable) keeps per-entity
//! `Vec`/`VecDeque` holder and waiter lists: simple, but every contended
//! acquire/release churns heap allocations (queue buffers, holder vectors,
//! hash-map states created and dropped per entity lifetime). This engine
//! follows the MCS/CLH queue-lock design from *High-Performance
//! Distributed RMA Locks*: each request is an **intrusive queue node** in
//! a single arena, addressed by `u32` slot id and threaded through
//! doubly-linked `prev`/`next` ids, with freed nodes recycled through a
//! free list — so once the arenas are warm, the acquire → release → grant
//! hot path performs **zero heap allocations** (verified by the
//! counting-allocator test in `crates/dlm/tests/zero_alloc.rs`).
//!
//! Layout (one arena for nodes, one for entity states):
//!
//! ```text
//!  nodes: [ n0 | n1 | n2 | n3 | n4 | ... ]      free ──▶ n4 ──▶ ...
//!            ▲         ▲    │
//!            │prev/next│    │ (owner, mode, prev, next)
//!            ╰────═────╯    ▼
//!  estates: [ holders ⇄ … | queue ⇄ … | upgrades ⇄ … | streak ]
//!               ▲ per-entity state, slot id recycled via efree
//!  slots:  EntityId ─▶ estate id      owned: O ─▶ [EntityId] (held)
//! ```
//!
//! Protocol semantics (admission, prevention obstacle sets, upgrades,
//! errors) are **identical** to [`FifoTable`](crate::FifoTable) — the
//! workspace proptest `tests/table_equivalence.rs` drives both engines
//! with the same operation streams and requires identical outputs. The
//! engine adds two *promotion-order* knobs the reference table lacks:
//!
//! * a reader/writer [`Bias`] (see [`crate::lock_table::Bias`]), and
//! * **topology-aware cohort handoff** ([`QueueTable::with_topology`]):
//!   owners are grouped into cohorts (e.g. by home site), and when a
//!   release frees the lock, the grant prefers a waiter from the
//!   *releasing owner's* cohort — bounded by a handoff cap so remote
//!   cohorts cannot starve — amortizing cross-site lock migration the way
//!   cohort locks amortize cross-NUMA-node handoff.
//!
//! Both knobs are off by default; a default-constructed `QueueTable` is
//! FIFO-equivalent by construction.

use crate::admission;
use crate::error::LockError;
use crate::lock_table::{Bias, LockTable};
use crate::prevent::{PreventionOutcome, PreventionScheme, Priority};
use crate::table::{Acquire, CancelOutcome, EntityGrants, Grants};
use kplock_model::{EntityId, LockMode};
use std::collections::HashMap;
use std::hash::Hash;

/// Sentinel "null" slot id for intrusive links.
const NIL: u32 = u32::MAX;

/// Cohort topology: how many cohorts exist and how many consecutive
/// in-cohort handoffs are allowed before the grant must fall back to
/// strict FIFO (the anti-starvation bound).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Topology {
    cohorts: u32,
    handoff_cap: u32,
}

/// Default consecutive in-cohort handoffs before forced FIFO fallback.
const DEFAULT_HANDOFF_CAP: u32 = 8;

/// One arena-allocated request node: an (owner, mode) pair threaded into
/// exactly one of its entity's intrusive lists (holders, queue, or
/// upgrades) — or into the global free list via `next`.
#[derive(Clone, Copy, Debug)]
struct Node<O> {
    owner: O,
    mode: LockMode,
    prev: u32,
    next: u32,
}

/// An intrusive doubly-linked list: head/tail slot ids plus a length so
/// emptiness and count checks never walk the chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct List {
    head: u32,
    tail: u32,
    len: u32,
}

impl List {
    const EMPTY: List = List {
        head: NIL,
        tail: NIL,
        len: 0,
    };
}

/// Which of an entity's three lists an operation targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Part {
    Holders,
    Queue,
    Upgrades,
}

/// Per-entity state: three intrusive lists into the node arena plus the
/// cohort-handoff streak counter.
#[derive(Clone, Copy, Debug)]
struct EState {
    holders: List,
    queue: List,
    upgrades: List,
    /// Consecutive in-cohort handoffs performed at this entity.
    streak: u32,
}

impl EState {
    const EMPTY: EState = EState {
        holders: List::EMPTY,
        queue: List::EMPTY,
        upgrades: List::EMPTY,
        streak: 0,
    };

    fn is_empty(&self) -> bool {
        self.holders.len == 0 && self.queue.len == 0 && self.upgrades.len == 0
    }
}

/// Arena-backed reader–writer FIFO lock table with free-list node reuse:
/// zero heap allocation on the steady-state acquire/release path.
///
/// See the module docs for layout and semantics; construct via
/// [`QueueTable::new`], then optionally [`QueueTable::with_bias`] /
/// [`QueueTable::with_topology`].
#[derive(Clone, Debug)]
pub struct QueueTable<O> {
    /// Request-node arena; freed nodes are chained through `next`.
    nodes: Vec<Node<O>>,
    /// Head of the node free list (`NIL` when empty).
    free: u32,
    /// Entity → estate slot.
    slots: HashMap<EntityId, u32>,
    /// Entity-state arena.
    estates: Vec<EState>,
    /// Recycled estate slots.
    efree: Vec<u32>,
    /// Per-owner reverse index: held entities, ascending. Entries are
    /// kept (emptied, not removed) so steady-state churn never drops and
    /// reallocates their buffers.
    owned: HashMap<O, Vec<EntityId>>,
    bias: Bias,
    topology: Option<Topology>,
    /// Maps an owner to its cohort in `0..cohorts`; meaningful only when
    /// `topology` is set. A plain `fn` pointer keeps the table `Copy`-ish
    /// cheap to clone and free of boxed closures.
    cohort_of: fn(O, u32) -> u32,
    /// Reusable obstacle buffer for the prevention admission path.
    scratch: Vec<O>,
}

fn cohort_unused<O>(_o: O, _n: u32) -> u32 {
    0
}

impl<O> Default for QueueTable<O> {
    fn default() -> Self {
        QueueTable {
            nodes: Vec::new(),
            free: NIL,
            slots: HashMap::new(),
            estates: Vec::new(),
            efree: Vec::new(),
            owned: HashMap::new(),
            bias: Bias::Neutral,
            topology: None,
            cohort_of: cohort_unused::<O>,
            scratch: Vec::new(),
        }
    }
}

impl<O: Copy + Eq + Ord + Hash> QueueTable<O> {
    /// Creates an empty, neutral-bias, topology-free table — the
    /// FIFO-equivalent configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the reader/writer promotion bias (builder-style).
    pub fn with_bias(mut self, bias: Bias) -> Self {
        self.bias = bias;
        self
    }

    /// Enables cohort handoff: owners map to cohorts `0..cohorts` via
    /// `cohort_of`, and a release prefers granting a queued waiter from
    /// the releasing owner's cohort (up to a consecutive-handoff cap,
    /// after which strict FIFO resumes so no cohort starves). `cohorts ==
    /// 0` disables the feature.
    pub fn with_topology(mut self, cohorts: u32, cohort_of: fn(O, u32) -> u32) -> Self {
        self.topology = (cohorts > 0).then_some(Topology {
            cohorts,
            handoff_cap: DEFAULT_HANDOFF_CAP,
        });
        self.cohort_of = cohort_of;
        self
    }

    // ------------------------------------------------------------------
    // Arena plumbing.
    // ------------------------------------------------------------------

    fn alloc_node(&mut self, owner: O, mode: LockMode) -> u32 {
        if self.free != NIL {
            let id = self.free;
            let n = &mut self.nodes[id as usize];
            self.free = n.next;
            n.owner = owner;
            n.mode = mode;
            n.prev = NIL;
            n.next = NIL;
            id
        } else {
            self.nodes.push(Node {
                owner,
                mode,
                prev: NIL,
                next: NIL,
            });
            (self.nodes.len() - 1) as u32
        }
    }

    fn free_node(&mut self, id: u32) {
        let n = &mut self.nodes[id as usize];
        n.prev = NIL;
        n.next = self.free;
        self.free = id;
    }

    fn list(&self, si: u32, part: Part) -> List {
        let st = &self.estates[si as usize];
        match part {
            Part::Holders => st.holders,
            Part::Queue => st.queue,
            Part::Upgrades => st.upgrades,
        }
    }

    fn list_mut(&mut self, si: u32, part: Part) -> &mut List {
        let st = &mut self.estates[si as usize];
        match part {
            Part::Holders => &mut st.holders,
            Part::Queue => &mut st.queue,
            Part::Upgrades => &mut st.upgrades,
        }
    }

    fn push_back(&mut self, si: u32, part: Part, id: u32) {
        let tail = self.list(si, part).tail;
        {
            let n = &mut self.nodes[id as usize];
            n.prev = tail;
            n.next = NIL;
        }
        if tail != NIL {
            self.nodes[tail as usize].next = id;
        }
        let list = self.list_mut(si, part);
        if list.head == NIL {
            list.head = id;
        }
        list.tail = id;
        list.len += 1;
    }

    fn unlink(&mut self, si: u32, part: Part, id: u32) {
        let (prev, next) = {
            let n = &self.nodes[id as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        }
        let list = self.list_mut(si, part);
        if list.head == id {
            list.head = next;
        }
        if list.tail == id {
            list.tail = prev;
        }
        list.len -= 1;
        let n = &mut self.nodes[id as usize];
        n.prev = NIL;
        n.next = NIL;
    }

    /// Finds the node in `list` owned by `o`, walking the chain.
    fn find_in(&self, list: List, o: O) -> Option<u32> {
        let mut id = list.head;
        while id != NIL {
            let n = &self.nodes[id as usize];
            if n.owner == o {
                return Some(id);
            }
            id = n.next;
        }
        None
    }

    fn slot_of(&self, e: EntityId) -> Option<u32> {
        self.slots.get(&e).copied()
    }

    fn slot_for(&mut self, e: EntityId) -> u32 {
        if let Some(&si) = self.slots.get(&e) {
            return si;
        }
        let si = if let Some(si) = self.efree.pop() {
            self.estates[si as usize] = EState::EMPTY;
            si
        } else {
            self.estates.push(EState::EMPTY);
            (self.estates.len() - 1) as u32
        };
        self.slots.insert(e, si);
        si
    }

    fn prune_if_empty(&mut self, e: EntityId, si: u32) {
        if self.estates[si as usize].is_empty() {
            self.slots.remove(&e);
            self.efree.push(si);
        }
    }

    fn owned_insert(&mut self, o: O, e: EntityId) {
        let v = self.owned.entry(o).or_default();
        if let Err(i) = v.binary_search(&e) {
            v.insert(i, e);
        }
    }

    fn owned_remove(&mut self, o: O, e: EntityId) {
        // Keep the (now possibly empty) entry: dropping it would free its
        // buffer and force a reallocation on the owner's next grant.
        if let Some(v) = self.owned.get_mut(&o) {
            if let Ok(i) = v.binary_search(&e) {
                v.remove(i);
            }
        }
    }

    /// True iff `mode` is compatible with every current holder — the
    /// arena-cursor twin of the shared admission helper; every question
    /// still routes through the one matrix
    /// ([`LockMode::compatible_with`]). On the `S`/`X` fragment this is
    /// the old `all_holders_shared` check.
    fn holders_compatible_with(&self, si: u32, mode: LockMode) -> bool {
        let mut id = self.estates[si as usize].holders.head;
        while id != NIL {
            let n = &self.nodes[id as usize];
            if !mode.compatible_with(n.mode) {
                return false;
            }
            id = n.next;
        }
        true
    }

    /// True iff holder `owner` could be granted `target` right now: the
    /// join target is compatible with every *other* holder (for `S → X`:
    /// sole holder).
    fn upgrade_admissible(&self, si: u32, owner: O, target: LockMode) -> bool {
        let mut id = self.estates[si as usize].holders.head;
        while id != NIL {
            let n = &self.nodes[id as usize];
            if n.owner != owner && !target.compatible_with(n.mode) {
                return false;
            }
            id = n.next;
        }
        true
    }

    // ------------------------------------------------------------------
    // Admission (mirrors `FifoTable::try_admit` exactly).
    // ------------------------------------------------------------------

    /// `Ok(None)` = granted; `Ok(Some(None))` = must wait as a fresh
    /// request; `Ok(Some(Some(target)))` = must wait as an upgrade to the
    /// lattice-join `target`.
    fn try_admit(
        &mut self,
        si: u32,
        e: EntityId,
        o: O,
        mode: LockMode,
    ) -> Result<Option<Option<LockMode>>, LockError> {
        let st = self.estates[si as usize];
        if self.find_in(st.queue, o).is_some() || self.find_in(st.upgrades, o).is_some() {
            return Err(LockError::AlreadyQueued { entity: e });
        }
        if let Some(hid) = self.find_in(st.holders, o) {
            let held = self.nodes[hid as usize].mode;
            if held.covers(mode) {
                return Ok(None);
            }
            // Upgrade to the lattice join, in place when the target is
            // compatible with every *other* holder (for `S → X`: sole
            // holder).
            let target = held.join(mode);
            if self.upgrade_admissible(si, o, target) {
                self.nodes[hid as usize].mode = target;
                return Ok(None);
            }
            return Ok(Some(Some(target)));
        }
        let grantable = if st.holders.len == 0 {
            st.queue.len == 0
        } else {
            st.upgrades.len == 0 && st.queue.len == 0 && self.holders_compatible_with(si, mode)
        };
        if grantable {
            let id = self.alloc_node(o, mode);
            self.push_back(si, Part::Holders, id);
            self.owned_insert(o, e);
            Ok(None)
        } else {
            Ok(Some(None))
        }
    }

    // ------------------------------------------------------------------
    // Promotion.
    // ------------------------------------------------------------------

    /// Whether the queue node `id` could be granted *now* if it were at
    /// the front (the FIFO compatibility rule).
    fn compatible_now(&self, si: u32, id: u32) -> bool {
        let st = self.estates[si as usize];
        if st.holders.len == 0 {
            true
        } else {
            st.upgrades.len == 0 && self.holders_compatible_with(si, self.nodes[id as usize].mode)
        }
    }

    /// Picks the next queue node to grant, or `None` to stop promoting.
    /// Neutral bias + no topology reduces to "the front, iff compatible"
    /// — exactly [`FifoTable`](crate::FifoTable)'s rule.
    fn pick_candidate(&mut self, si: u32, from_cohort: Option<u32>) -> Option<u32> {
        let st = self.estates[si as usize];
        let front = (st.queue.head != NIL).then_some(st.queue.head)?;

        // Cohort handoff: only when the lock is free (so any mode can be
        // granted) and the consecutive-handoff cap is not exhausted.
        if let (Some(topo), Some(from)) = (self.topology, from_cohort) {
            if st.holders.len == 0 {
                if st.streak < topo.handoff_cap {
                    let mut id = st.queue.head;
                    while id != NIL {
                        let n = &self.nodes[id as usize];
                        if (self.cohort_of)(n.owner, topo.cohorts) == from {
                            // Granting the front is a plain FIFO grant,
                            // not a handoff: only skips spend the budget.
                            if id == front {
                                self.estates[si as usize].streak = 0;
                            } else {
                                self.estates[si as usize].streak += 1;
                            }
                            return Some(id);
                        }
                        id = n.next;
                    }
                }
                // No local candidate (or cap exhausted): the FIFO grant
                // below crosses cohorts, so the streak restarts.
                self.estates[si as usize].streak = 0;
            }
        }

        match self.bias {
            Bias::Neutral => self.compatible_now(si, front).then_some(front),
            Bias::WriterPreference => {
                // When the lock falls free, serve the first queued writer
                // even past earlier readers; otherwise strict FIFO.
                if st.holders.len == 0 && self.nodes[front as usize].mode != LockMode::Exclusive {
                    let mut id = st.queue.head;
                    while id != NIL {
                        let n = &self.nodes[id as usize];
                        if n.mode == LockMode::Exclusive {
                            return Some(id);
                        }
                        id = n.next;
                    }
                    Some(front) // no writer queued: FIFO
                } else {
                    self.compatible_now(si, front).then_some(front)
                }
            }
            Bias::ReaderBatch => {
                if self.compatible_now(si, front) {
                    return Some(front);
                }
                // Front is blocked (a writer, typically): pull any later
                // compatible request forward while the holder set admits
                // it (for `S`/`X`: later readers past a queued writer).
                if st.upgrades.len == 0 && st.holders.len > 0 {
                    let mut id = st.queue.head;
                    while id != NIL {
                        let m = self.nodes[id as usize].mode;
                        if self.holders_compatible_with(si, m) {
                            return Some(id);
                        }
                        id = self.nodes[id as usize].next;
                    }
                }
                None
            }
        }
    }

    /// Grants whatever the state now admits: admissible pending upgrades
    /// first (for `S → X`: a sole-holder upgrade), then queue candidates
    /// per bias/topology (strict FIFO by default). Appends
    /// `(owner, mode)` grants to `out`.
    fn promote(&mut self, si: u32, e: EntityId, from_cohort: Option<u32>, out: &mut Grants<O>) {
        loop {
            let st = self.estates[si as usize];
            // Admissible upgrades are always served first, FIFO among
            // themselves; upgrade nodes carry their join target as mode.
            if st.upgrades.len > 0 {
                let mut uid = st.upgrades.head;
                let mut served = false;
                while uid != NIL {
                    let (uowner, target) = {
                        let n = &self.nodes[uid as usize];
                        (n.owner, n.mode)
                    };
                    if self.upgrade_admissible(si, uowner, target) {
                        if let Some(hid) = self.find_in(st.holders, uowner) {
                            self.nodes[hid as usize].mode = target;
                        }
                        self.unlink(si, Part::Upgrades, uid);
                        self.free_node(uid);
                        out.push((uowner, target));
                        served = true;
                        break;
                    }
                    uid = self.nodes[uid as usize].next;
                }
                if served {
                    continue;
                }
            }
            let Some(id) = self.pick_candidate(si, from_cohort) else {
                break;
            };
            let (owner, mode) = {
                let n = &self.nodes[id as usize];
                (n.owner, n.mode)
            };
            self.unlink(si, Part::Queue, id);
            self.push_back(si, Part::Holders, id);
            self.owned_insert(owner, e);
            out.push((owner, mode));
        }
    }

    /// The releasing owner's cohort, when topology is enabled.
    fn cohort_hint(&self, o: O) -> Option<u32> {
        self.topology.map(|t| (self.cohort_of)(o, t.cohorts))
    }

    // ------------------------------------------------------------------
    // Public protocol surface (inherent twins of the trait methods, so
    // non-dyn callers keep static dispatch).
    // ------------------------------------------------------------------

    /// Requests `mode` on `e` for `o`.
    /// See [`FifoTable::request`](crate::FifoTable::request).
    pub fn request(&mut self, e: EntityId, o: O, mode: LockMode) -> Result<Acquire, LockError> {
        let si = self.slot_for(e);
        let out = match self.try_admit(si, e, o, mode) {
            Err(err) => {
                self.prune_if_empty(e, si);
                return Err(err);
            }
            Ok(None) => Acquire::Granted,
            Ok(Some(Some(target))) => {
                // Upgrade nodes carry the join target being requested.
                let id = self.alloc_node(o, target);
                self.push_back(si, Part::Upgrades, id);
                Acquire::Queued
            }
            Ok(Some(None)) => {
                let id = self.alloc_node(o, mode);
                self.push_back(si, Part::Queue, id);
                Acquire::Queued
            }
        };
        Ok(out)
    }

    /// Requests `mode` on `e` for `o` under a prevention scheme.
    /// See [`FifoTable::request_with_priority`](crate::FifoTable::request_with_priority).
    pub fn request_with_priority(
        &mut self,
        e: EntityId,
        o: O,
        mode: LockMode,
        scheme: PreventionScheme,
        prio: impl Fn(O) -> Priority,
    ) -> Result<PreventionOutcome<O>, LockError> {
        let si = self.slot_for(e);
        let upgrade = match self.try_admit(si, e, o, mode) {
            Err(err) => {
                self.prune_if_empty(e, si);
                return Err(err);
            }
            Ok(None) => return Ok(PreventionOutcome::Granted),
            Ok(Some(upgrade)) => upgrade,
        };
        let mut obstacles = std::mem::take(&mut self.scratch);
        obstacles.clear();
        let st = self.estates[si as usize];
        let mut id = st.holders.head;
        while id != NIL {
            obstacles.push(self.nodes[id as usize].owner);
            id = self.nodes[id as usize].next;
        }
        let mut id = st.upgrades.head;
        while id != NIL {
            obstacles.push(self.nodes[id as usize].owner);
            id = self.nodes[id as usize].next;
        }
        if upgrade.is_none() {
            // Queued waiters are obstacles for fresh requests only; an
            // upgrade is served ahead of the queue (see FifoTable docs).
            let mut id = st.queue.head;
            while id != NIL {
                obstacles.push(self.nodes[id as usize].owner);
                id = self.nodes[id as usize].next;
            }
        }
        obstacles.retain(|&x| x != o);
        obstacles.sort();
        obstacles.dedup();
        let mine = prio(o);
        let admit = |table: &mut Self| {
            if let Some(target) = upgrade {
                let id = table.alloc_node(o, target);
                table.push_back(si, Part::Upgrades, id);
            } else {
                let id = table.alloc_node(o, mode);
                table.push_back(si, Part::Queue, id);
            }
        };
        let outcome = match scheme {
            PreventionScheme::NoWait => PreventionOutcome::Rejected,
            PreventionScheme::WaitDie => {
                if obstacles.iter().all(|&x| mine < prio(x)) {
                    admit(self);
                    PreventionOutcome::Queued
                } else {
                    PreventionOutcome::Rejected
                }
            }
            PreventionScheme::WoundWait => {
                let victims: Vec<O> = obstacles
                    .iter()
                    .copied()
                    .filter(|&x| prio(x) > mine)
                    .collect();
                admit(self);
                if victims.is_empty() {
                    PreventionOutcome::Queued
                } else {
                    PreventionOutcome::Wounded(victims)
                }
            }
        };
        obstacles.clear();
        self.scratch = obstacles;
        self.prune_if_empty(e, si);
        Ok(outcome)
    }

    /// Releases `o`'s lock on `e`, appending unblocked grants to `out` —
    /// the zero-allocation hot path when the caller reuses the buffer.
    pub fn release_into(
        &mut self,
        e: EntityId,
        o: O,
        out: &mut Grants<O>,
    ) -> Result<(), LockError> {
        let Some(si) = self.slot_of(e) else {
            return Err(LockError::NotHolder { entity: e });
        };
        let st = self.estates[si as usize];
        let Some(hid) = self.find_in(st.holders, o) else {
            return Err(LockError::NotHolder { entity: e });
        };
        self.unlink(si, Part::Holders, hid);
        self.free_node(hid);
        self.owned_remove(o, e);
        // A pending upgrade by `o` is cancelled alongside.
        if let Some(uid) = self.find_in(self.estates[si as usize].upgrades, o) {
            self.unlink(si, Part::Upgrades, uid);
            self.free_node(uid);
        }
        let hint = self.cohort_hint(o);
        self.promote(si, e, hint, out);
        self.prune_if_empty(e, si);
        Ok(())
    }

    /// Allocating convenience over [`QueueTable::release_into`].
    pub fn release(&mut self, e: EntityId, o: O) -> Result<Grants<O>, LockError> {
        let mut out = Grants::new();
        self.release_into(e, o, &mut out)?;
        Ok(out)
    }

    /// See [`FifoTable::release_idempotent`](crate::FifoTable::release_idempotent).
    pub fn release_idempotent(&mut self, e: EntityId, o: O) -> Grants<O> {
        self.release(e, o).unwrap_or_default()
    }

    /// See [`FifoTable::cancel_waits`](crate::FifoTable::cancel_waits).
    pub fn cancel_waits(&mut self, o: O) -> CancelOutcome<O> {
        let mut entities: Vec<EntityId> = self
            .slots
            .iter()
            .filter(|&(_, &si)| {
                let st = self.estates[si as usize];
                self.find_in(st.queue, o).is_some() || self.find_in(st.upgrades, o).is_some()
            })
            .map(|(&e, _)| e)
            .collect();
        entities.sort();
        let mut out = CancelOutcome::default();
        for e in entities {
            let si = self.slot_of(e).expect("entity just listed");
            let mut changed = false;
            if let Some(id) = self.find_in(self.estates[si as usize].queue, o) {
                self.unlink(si, Part::Queue, id);
                self.free_node(id);
                changed = true;
            }
            if let Some(id) = self.find_in(self.estates[si as usize].upgrades, o) {
                self.unlink(si, Part::Upgrades, id);
                self.free_node(id);
                changed = true;
            }
            if !changed {
                continue;
            }
            out.cancelled.push(e);
            let mut grants = Grants::new();
            self.promote(si, e, None, &mut grants);
            if !grants.is_empty() {
                out.granted.push((e, grants));
            }
            self.prune_if_empty(e, si);
        }
        out
    }

    /// See [`FifoTable::release_all`](crate::FifoTable::release_all).
    pub fn release_all(&mut self, o: O) -> EntityGrants<O> {
        self.held_by(o)
            .into_iter()
            .map(|e| {
                let grants = self.release(e, o).expect("held_by listed the entity");
                (e, grants)
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Queries (identical results to FifoTable's).
    // ------------------------------------------------------------------

    /// The mode `o` holds on `e`, if any.
    pub fn holds(&self, e: EntityId, o: O) -> Option<LockMode> {
        let si = self.slot_of(e)?;
        self.find_in(self.estates[si as usize].holders, o)
            .map(|id| self.nodes[id as usize].mode)
    }

    /// Current holders of `e` with their modes (list order).
    pub fn holders(&self, e: EntityId) -> Vec<(O, LockMode)> {
        let Some(si) = self.slot_of(e) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut id = self.estates[si as usize].holders.head;
        while id != NIL {
            let n = &self.nodes[id as usize];
            out.push((n.owner, n.mode));
            id = n.next;
        }
        out
    }

    /// Sole exclusive holder of `e`, if held exclusively.
    pub fn exclusive_holder(&self, e: EntityId) -> Option<O> {
        let si = self.slot_of(e)?;
        let st = self.estates[si as usize];
        if st.holders.len == 1 {
            let n = &self.nodes[st.holders.head as usize];
            (n.mode == LockMode::Exclusive).then_some(n.owner)
        } else {
            None
        }
    }

    /// Entities currently held by `o`, ascending (O(held), from the
    /// reverse index).
    pub fn held_by(&self, o: O) -> Vec<EntityId> {
        self.owned.get(&o).cloned().unwrap_or_default()
    }

    /// The waits-for edges induced by `e` alone, ascending.
    pub fn entity_waits_for(&self, e: EntityId) -> Vec<(O, O)> {
        let Some(si) = self.slot_of(e) else {
            return Vec::new();
        };
        let st = self.estates[si as usize];
        let mut out = Vec::new();
        let mut w = st.queue.head;
        while w != NIL {
            let waiter = self.nodes[w as usize].owner;
            let mut h = st.holders.head;
            while h != NIL {
                out.push((waiter, self.nodes[h as usize].owner));
                h = self.nodes[h as usize].next;
            }
            w = self.nodes[w as usize].next;
        }
        let mut u = st.upgrades.head;
        while u != NIL {
            let upgrader = self.nodes[u as usize].owner;
            let mut h = st.holders.head;
            while h != NIL {
                let holder = self.nodes[h as usize].owner;
                if holder != upgrader {
                    out.push((upgrader, holder));
                }
                h = self.nodes[h as usize].next;
            }
            u = self.nodes[u as usize].next;
        }
        out.sort();
        out
    }

    /// All waits-for edges at this table, ascending.
    pub fn waits_for(&self) -> Vec<(O, O)> {
        let mut out = Vec::new();
        for &e in self.slots.keys() {
            out.extend(self.entity_waits_for(e));
        }
        out.sort();
        out
    }

    /// The holders `o` waits on here, ascending, deduplicated.
    pub fn waits_of(&self, o: O) -> Vec<O> {
        let mut out = Vec::new();
        for &si in self.slots.values() {
            let st = self.estates[si as usize];
            if self.find_in(st.queue, o).is_some() {
                let mut h = st.holders.head;
                while h != NIL {
                    out.push(self.nodes[h as usize].owner);
                    h = self.nodes[h as usize].next;
                }
            } else if self.find_in(st.upgrades, o).is_some() {
                let mut h = st.holders.head;
                while h != NIL {
                    let holder = self.nodes[h as usize].owner;
                    if holder != o {
                        out.push(holder);
                    }
                    h = self.nodes[h as usize].next;
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// True when `o` is queued or upgrade-pending on `e`.
    pub fn is_waiting(&self, e: EntityId, o: O) -> bool {
        self.slot_of(e).is_some_and(|si| {
            let st = self.estates[si as usize];
            self.find_in(st.queue, o).is_some() || self.find_in(st.upgrades, o).is_some()
        })
    }

    /// See [`FifoTable::conflicts_of`](crate::FifoTable::conflicts_of).
    pub fn conflicts_of(&self, e: EntityId, o: O) -> Vec<O> {
        let Some(si) = self.slot_of(e) else {
            return Vec::new();
        };
        let st = self.estates[si as usize];
        let mut out = Vec::new();
        let mut id = st.holders.head;
        while id != NIL {
            out.push(self.nodes[id as usize].owner);
            id = self.nodes[id as usize].next;
        }
        let mut id = st.upgrades.head;
        while id != NIL {
            out.push(self.nodes[id as usize].owner);
            id = self.nodes[id as usize].next;
        }
        if self.find_in(st.upgrades, o).is_none() {
            let mut id = st.queue.head;
            while id != NIL {
                out.push(self.nodes[id as usize].owner);
                id = self.nodes[id as usize].next;
            }
        }
        out.retain(|&x| x != o);
        out.sort();
        out.dedup();
        out
    }

    /// Entities with any lock state, ascending.
    pub fn active_entities(&self) -> Vec<EntityId> {
        let mut v: Vec<EntityId> = self.slots.keys().copied().collect();
        v.sort();
        v
    }

    /// True when nothing is held or queued anywhere.
    pub fn is_idle(&self) -> bool {
        self.slots.is_empty()
    }

    /// Structural invariant check: the FifoTable invariants plus arena
    /// integrity (list links consistent, lengths correct, freed nodes
    /// never reachable, `owned` index exact).
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut reachable = 0u32;
        for (&e, &si) in &self.slots {
            let st = self.estates[si as usize];
            if st.is_empty() {
                return Err(format!("{e}: empty state not pruned"));
            }
            for part in [Part::Holders, Part::Queue, Part::Upgrades] {
                let list = self.list(si, part);
                let mut id = list.head;
                let mut prev = NIL;
                let mut count = 0u32;
                while id != NIL {
                    let n = &self.nodes[id as usize];
                    if n.prev != prev {
                        return Err(format!("{e}: broken prev link in {part:?}"));
                    }
                    prev = id;
                    id = n.next;
                    count += 1;
                    if count > self.nodes.len() as u32 {
                        return Err(format!("{e}: cycle in {part:?} list"));
                    }
                }
                if list.tail != prev {
                    return Err(format!("{e}: tail mismatch in {part:?}"));
                }
                if list.len != count {
                    return Err(format!("{e}: length mismatch in {part:?}"));
                }
                reachable += count;
            }
            let mut modes = Vec::new();
            let mut id = st.holders.head;
            while id != NIL {
                modes.push(self.nodes[id as usize].mode);
                id = self.nodes[id as usize].next;
            }
            if let Some((a, b)) = admission::incompatible_pair(&modes) {
                return Err(format!("{e}: incompatible co-held modes {a}+{b}"));
            }
            let mut id = st.upgrades.head;
            while id != NIL {
                let (u, target) = {
                    let n = &self.nodes[id as usize];
                    (n.owner, n.mode)
                };
                let Some(hid) = self.find_in(st.holders, u) else {
                    return Err(format!("{e}: upgrader is not a holder"));
                };
                let held = self.nodes[hid as usize].mode;
                if held.covers(target) {
                    return Err(format!(
                        "{e}: pending upgrade to {target} already covered by held {held}"
                    ));
                }
                id = self.nodes[id as usize].next;
            }
            let mut id = st.queue.head;
            while id != NIL {
                let w = self.nodes[id as usize].owner;
                if self.find_in(st.holders, w).is_some() {
                    return Err(format!("{e}: owner both holds and waits"));
                }
                id = self.nodes[id as usize].next;
            }
            let mut id = st.holders.head;
            while id != NIL {
                let h = self.nodes[id as usize].owner;
                let indexed = self
                    .owned
                    .get(&h)
                    .is_some_and(|v| v.binary_search(&e).is_ok());
                if !indexed {
                    return Err(format!("{e}: holder missing from owned index"));
                }
                id = self.nodes[id as usize].next;
            }
        }
        // Free list + reachable nodes partition the arena exactly.
        let mut free_count = 0u32;
        let mut id = self.free;
        while id != NIL {
            free_count += 1;
            if free_count > self.nodes.len() as u32 {
                return Err("cycle in node free list".to_string());
            }
            id = self.nodes[id as usize].next;
        }
        if reachable + free_count != self.nodes.len() as u32 {
            return Err(format!(
                "arena leak: {} reachable + {} free != {} nodes",
                reachable,
                free_count,
                self.nodes.len()
            ));
        }
        for (o, entities) in &self.owned {
            if !entities.windows(2).all(|w| w[0] < w[1]) {
                return Err("owned index entry not strictly ascending".to_string());
            }
            for e in entities {
                let holds = self.slot_of(*e).is_some_and(|si| {
                    self.find_in(self.estates[si as usize].holders, *o)
                        .is_some()
                });
                if !holds {
                    return Err(format!("{e}: stale owned index entry"));
                }
            }
        }
        Ok(())
    }
}

impl<O: Copy + Eq + Ord + Hash> LockTable<O> for QueueTable<O> {
    fn acquire(&mut self, e: EntityId, o: O, mode: LockMode) -> Result<Acquire, LockError> {
        self.request(e, o, mode)
    }

    fn acquire_with_priority(
        &mut self,
        e: EntityId,
        o: O,
        mode: LockMode,
        scheme: PreventionScheme,
        prio: &dyn Fn(O) -> Priority,
    ) -> Result<PreventionOutcome<O>, LockError> {
        self.request_with_priority(e, o, mode, scheme, prio)
    }

    fn release_into(&mut self, e: EntityId, o: O, out: &mut Grants<O>) -> Result<(), LockError> {
        QueueTable::release_into(self, e, o, out)
    }

    fn release(&mut self, e: EntityId, o: O) -> Result<Grants<O>, LockError> {
        QueueTable::release(self, e, o)
    }

    fn release_idempotent(&mut self, e: EntityId, o: O) -> Grants<O> {
        QueueTable::release_idempotent(self, e, o)
    }

    fn cancel_waits(&mut self, o: O) -> CancelOutcome<O> {
        QueueTable::cancel_waits(self, o)
    }

    fn release_all(&mut self, o: O) -> EntityGrants<O> {
        QueueTable::release_all(self, o)
    }

    fn holds(&self, e: EntityId, o: O) -> Option<LockMode> {
        QueueTable::holds(self, e, o)
    }

    fn holders(&self, e: EntityId) -> Vec<(O, LockMode)> {
        QueueTable::holders(self, e)
    }

    fn exclusive_holder(&self, e: EntityId) -> Option<O> {
        QueueTable::exclusive_holder(self, e)
    }

    fn held_by(&self, o: O) -> Vec<EntityId> {
        QueueTable::held_by(self, o)
    }

    fn waits_for(&self) -> Vec<(O, O)> {
        QueueTable::waits_for(self)
    }

    fn entity_waits_for(&self, e: EntityId) -> Vec<(O, O)> {
        QueueTable::entity_waits_for(self, e)
    }

    fn waits_of(&self, o: O) -> Vec<O> {
        QueueTable::waits_of(self, o)
    }

    fn is_waiting(&self, e: EntityId, o: O) -> bool {
        QueueTable::is_waiting(self, e, o)
    }

    fn conflicts_of(&self, e: EntityId, o: O) -> Vec<O> {
        QueueTable::conflicts_of(self, e, o)
    }

    fn active_entities(&self) -> Vec<EntityId> {
        QueueTable::active_entities(self)
    }

    fn is_idle(&self) -> bool {
        QueueTable::is_idle(self)
    }

    fn check_invariants(&self) -> Result<(), String> {
        QueueTable::check_invariants(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> LockMode {
        LockMode::Exclusive
    }
    fn s() -> LockMode {
        LockMode::Shared
    }

    #[test]
    fn exclusive_fifo_grant_queue_release() {
        let mut t: QueueTable<u32> = QueueTable::new();
        let e = EntityId(0);
        assert_eq!(t.request(e, 0, x()).unwrap(), Acquire::Granted);
        assert_eq!(t.request(e, 1, x()).unwrap(), Acquire::Queued);
        assert_eq!(t.request(e, 2, x()).unwrap(), Acquire::Queued);
        assert_eq!(t.holds(e, 0), Some(x()));
        assert_eq!(t.waits_for(), vec![(1, 0), (2, 0)]);
        assert_eq!(t.release(e, 0).unwrap(), vec![(1, x())]);
        assert_eq!(t.release(e, 1).unwrap(), vec![(2, x())]);
        assert_eq!(t.release(e, 2).unwrap(), vec![]);
        assert!(t.is_idle());
        t.check_invariants().unwrap();
    }

    #[test]
    fn nodes_are_recycled_not_grown() {
        let mut t: QueueTable<u32> = QueueTable::new();
        let e = EntityId(0);
        for round in 0..100 {
            t.request(e, 0, x()).unwrap();
            t.request(e, 1, x()).unwrap();
            assert_eq!(t.release(e, 0).unwrap(), vec![(1, x())]);
            assert_eq!(t.release(e, 1).unwrap(), vec![]);
            t.check_invariants()
                .unwrap_or_else(|err| panic!("round {round}: {err}"));
        }
        assert!(
            t.nodes.len() <= 2,
            "arena grew to {} nodes for a 2-owner workload",
            t.nodes.len()
        );
        assert!(t.estates.len() <= 1, "estate arena grew");
    }

    #[test]
    fn shared_batch_and_upgrade_follow_fifo_rules() {
        let mut t: QueueTable<u32> = QueueTable::new();
        let e = EntityId(0);
        t.request(e, 0, x()).unwrap();
        t.request(e, 1, s()).unwrap();
        t.request(e, 2, s()).unwrap();
        t.request(e, 3, x()).unwrap();
        assert_eq!(t.release(e, 0).unwrap(), vec![(1, s()), (2, s())]);
        // Contended upgrade: 1 upgrades, waits on 2.
        assert_eq!(t.request(e, 1, x()).unwrap(), Acquire::Queued);
        assert_eq!(t.waits_for(), vec![(1, 2), (3, 1), (3, 2)]);
        assert_eq!(t.release(e, 2).unwrap(), vec![(1, x())]);
        assert_eq!(t.holds(e, 1), Some(x()));
        assert_eq!(t.release(e, 1).unwrap(), vec![(3, x())]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn sole_holder_upgrade_in_place() {
        let mut t: QueueTable<u32> = QueueTable::new();
        let e = EntityId(0);
        t.request(e, 7, s()).unwrap();
        assert_eq!(t.request(e, 7, x()).unwrap(), Acquire::Granted);
        assert_eq!(t.exclusive_holder(e), Some(7));
        t.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_and_nonholder_errors_match_fifo() {
        let mut t: QueueTable<u32> = QueueTable::new();
        let e = EntityId(0);
        t.request(e, 0, x()).unwrap();
        t.request(e, 1, x()).unwrap();
        assert_eq!(
            t.request(e, 1, x()).unwrap_err(),
            LockError::AlreadyQueued { entity: e }
        );
        assert_eq!(
            t.release(e, 9).unwrap_err(),
            LockError::NotHolder { entity: e }
        );
        assert_eq!(
            t.release(EntityId(5), 0).unwrap_err(),
            LockError::NotHolder {
                entity: EntityId(5)
            }
        );
    }

    #[test]
    fn prevention_schemes_match_fifo_semantics() {
        let by_id = |o: u32| -> Priority { (o as u64, 0) };
        let mut t: QueueTable<u32> = QueueTable::new();
        let e = EntityId(0);
        t.request_with_priority(e, 5, x(), PreventionScheme::WaitDie, by_id)
            .unwrap();
        assert_eq!(
            t.request_with_priority(e, 3, x(), PreventionScheme::WaitDie, by_id)
                .unwrap(),
            PreventionOutcome::Queued
        );
        assert_eq!(
            t.request_with_priority(e, 9, x(), PreventionScheme::WaitDie, by_id)
                .unwrap(),
            PreventionOutcome::Rejected
        );
        assert_eq!(t.waits_for(), vec![(3, 5)]);
        t.check_invariants().unwrap();

        let mut t: QueueTable<u32> = QueueTable::new();
        t.request_with_priority(e, 2, s(), PreventionScheme::WoundWait, by_id)
            .unwrap();
        t.request_with_priority(e, 8, s(), PreventionScheme::WoundWait, by_id)
            .unwrap();
        t.request_with_priority(e, 9, x(), PreventionScheme::WoundWait, by_id)
            .unwrap();
        assert_eq!(
            t.request_with_priority(e, 5, x(), PreventionScheme::WoundWait, by_id)
                .unwrap(),
            PreventionOutcome::Wounded(vec![8, 9])
        );
        t.check_invariants().unwrap();
    }

    #[test]
    fn cancel_waits_unblocks_and_recycles() {
        let mut t: QueueTable<u32> = QueueTable::new();
        let e = EntityId(0);
        t.request(e, 0, s()).unwrap();
        t.request(e, 1, x()).unwrap();
        t.request(e, 2, s()).unwrap();
        let out = t.cancel_waits(1);
        assert_eq!(out.cancelled, vec![e]);
        assert_eq!(out.granted, vec![(e, vec![(2, s())])]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn release_all_and_held_by_use_the_reverse_index() {
        let mut t: QueueTable<u32> = QueueTable::new();
        let (a, b) = (EntityId(0), EntityId(1));
        t.request(a, 0, x()).unwrap();
        t.request(b, 0, x()).unwrap();
        t.request(a, 1, x()).unwrap();
        assert_eq!(t.held_by(0), vec![a, b]);
        let released = t.release_all(0);
        assert_eq!(released, vec![(a, vec![(1, x())]), (b, vec![])]);
        assert_eq!(t.held_by(0), Vec::<EntityId>::new());
        t.check_invariants().unwrap();
    }

    #[test]
    fn writer_preference_serves_first_writer_past_readers() {
        let mut t: QueueTable<u32> = QueueTable::new().with_bias(Bias::WriterPreference);
        let e = EntityId(0);
        t.request(e, 0, x()).unwrap();
        t.request(e, 1, s()).unwrap();
        t.request(e, 2, s()).unwrap();
        t.request(e, 3, x()).unwrap();
        // Lock falls free: the writer 3 overtakes readers 1 and 2.
        assert_eq!(t.release(e, 0).unwrap(), vec![(3, x())]);
        assert_eq!(t.release(e, 3).unwrap(), vec![(1, s()), (2, s())]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn reader_batch_pulls_readers_past_a_blocked_writer() {
        let mut t: QueueTable<u32> = QueueTable::new().with_bias(Bias::ReaderBatch);
        let e = EntityId(0);
        t.request(e, 0, s()).unwrap();
        t.request(e, 1, s()).unwrap();
        t.request(e, 2, x()).unwrap();
        t.request(e, 3, s()).unwrap();
        // Releasing one reader leaves an all-shared holder set; neutral
        // FIFO would grant nothing (the writer blocks the front), but
        // reader batching pulls reader 3 forward.
        assert_eq!(t.release(e, 0).unwrap(), vec![(3, s())]);
        assert_eq!(t.release(e, 1).unwrap(), vec![]);
        assert_eq!(t.release(e, 3).unwrap(), vec![(2, x())]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn cohort_handoff_prefers_the_releasers_cohort() {
        // Cohort = owner parity. Queue: [1 (odd), 2 (even), 3 (odd)].
        // Odd releaser 9 hands off within its cohort: 1 first (front,
        // also local), then — releasing 1 — 3 skips past 2.
        let mut t: QueueTable<u32> = QueueTable::new().with_topology(2, |o, n| o % n);
        let e = EntityId(0);
        t.request(e, 9, x()).unwrap();
        t.request(e, 1, x()).unwrap();
        t.request(e, 2, x()).unwrap();
        t.request(e, 3, x()).unwrap();
        assert_eq!(t.release(e, 9).unwrap(), vec![(1, x())]);
        assert_eq!(t.release(e, 1).unwrap(), vec![(3, x())]);
        // Only the remote waiter is left.
        assert_eq!(t.release(e, 3).unwrap(), vec![(2, x())]);
        assert_eq!(t.release(e, 2).unwrap(), vec![]);
        assert!(t.is_idle());
        t.check_invariants().unwrap();
    }

    #[test]
    fn cohort_handoff_cap_prevents_starvation() {
        // One even waiter behind a stream of odd handoffs: after
        // DEFAULT_HANDOFF_CAP consecutive skips the table must fall back
        // to FIFO and serve the front (even) waiter.
        let mut t: QueueTable<u64> =
            QueueTable::new().with_topology(2, |o, n| (o % n as u64) as u32);
        let e = EntityId(0);
        t.request(e, 1, x()).unwrap(); // odd holder
        t.request(e, 2, x()).unwrap(); // even waiter at the front
        let mut next_odd = 3u64;
        let mut served_even = false;
        for _ in 0..(DEFAULT_HANDOFF_CAP + 2) {
            // Keep one odd waiter behind the even front at all times.
            t.request(e, next_odd, x()).unwrap();
            let holder = t
                .holders(e)
                .first()
                .map(|&(h, _)| h)
                .expect("lock always held");
            let grants = t.release(e, holder).unwrap();
            assert_eq!(grants.len(), 1);
            if grants[0].0 == 2 {
                served_even = true;
                break;
            }
            next_odd += 2;
        }
        assert!(served_even, "handoff cap failed: even waiter starved");
        t.check_invariants().unwrap();
    }
}
