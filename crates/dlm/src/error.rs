//! Typed errors for the lock-manager API boundary.
//!
//! The simulator's internal table treats protocol violations as bugs and
//! panics (its callers are the engine itself); this crate is a *service*
//! layer, so the same violations surface as values a caller can handle.

use kplock_model::EntityId;
use std::fmt;

/// A protocol violation reported by the lock-manager API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockError {
    /// `release(e, o)` was called but `o` does not hold a lock on `e`.
    NotHolder {
        /// The entity whose release was attempted.
        entity: EntityId,
    },
    /// `acquire(e, o, _)` was called while `o` is already queued for `e`
    /// (a well-formed client waits for its first request to resolve).
    AlreadyQueued {
        /// The entity requested twice.
        entity: EntityId,
    },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::NotHolder { entity } => {
                write!(f, "release of {entity} by an owner that does not hold it")
            }
            LockError::AlreadyQueued { entity } => {
                write!(f, "duplicate lock request for {entity} while still queued")
            }
        }
    }
}

impl std::error::Error for LockError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_entity() {
        let e = LockError::NotHolder {
            entity: EntityId(3),
        };
        assert!(e.to_string().contains("e3"));
        let e = LockError::AlreadyQueued {
            entity: EntityId(7),
        };
        assert!(e.to_string().contains("e7"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
