//! The [`LockTable`] abstraction: one interface, two engines.
//!
//! Everything above the table — the sharding layer, the simulator's
//! per-site wrapper, the threaded runner, the bench driver — talks to a
//! lock table through this trait, so the *protocol* (FIFO fairness,
//! upgrade rules, prevention schemes) is fixed while the *data structure*
//! is swappable:
//!
//! * [`FifoTable`](crate::FifoTable) — the reference implementation:
//!   per-entity `Vec`/`VecDeque` holder and waiter lists. Simple, and
//!   bit-identical to the simulator's original table in the
//!   exclusive-only case.
//! * [`QueueTable`](crate::QueueTable) — arena-allocated intrusive queue
//!   nodes (u32 slot ids, free-list reuse) in the style of MCS/CLH queue
//!   locks: zero allocation in the steady-state acquire/release path,
//!   plus a reader/writer [`Bias`] knob and topology-aware cohort
//!   handoff.
//!
//! The trait is **object-safe** (`&dyn LockTable<O>` works): the priority
//! oracle is passed as `&dyn Fn(O) -> Priority`, and the hot-path release
//! writes grants into a caller-supplied buffer
//! ([`LockTable::release_into`]) so implementations that can avoid
//! allocating are not forced to return a fresh `Vec`.
//!
//! [`TableSpec`] is the serializable selector the simulator, the threaded
//! runner and the bench driver share to pick an implementation uniformly.

use crate::error::LockError;
use crate::prevent::{PreventionOutcome, PreventionScheme, Priority};
use crate::table::{Acquire, CancelOutcome, EntityGrants, Grants};
use kplock_model::{EntityId, LockMode};
use std::hash::Hash;

/// Reader/writer scheduling bias for [`QueueTable`](crate::QueueTable)
/// grant promotion.
///
/// The bias never changes *admission* (who may be granted immediately,
/// who must wait, what prevention sees as obstacles) — only the order in
/// which *queued* waiters are promoted when a release frees capacity:
///
/// * [`Bias::Neutral`] — strict FIFO, exactly the
///   [`FifoTable`](crate::FifoTable) discipline (this is what the
///   equivalence proptests pin).
/// * [`Bias::ReaderBatch`] — after the FIFO-compatible prefix is granted,
///   every *other* queued reader compatible with the holder set is pulled
///   forward too, maximizing reader concurrency at the cost of delaying
///   writers behind larger batches.
/// * [`Bias::WriterPreference`] — when the lock falls free, the first
///   queued writer is granted even if readers queued ahead of it,
///   bounding writer latency at the cost of reader reordering.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Bias {
    /// Strict FIFO; bit-identical to [`FifoTable`](crate::FifoTable).
    #[default]
    Neutral,
    /// Batch compatible readers from anywhere in the queue.
    ReaderBatch,
    /// Serve the first queued writer ahead of earlier readers.
    WriterPreference,
}

/// Which [`LockTable`] implementation a runner should build — the one
/// knob the sim, the threaded runner and `kplock-bench` sweep uniformly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TableSpec {
    /// The `Vec`-list [`FifoTable`](crate::FifoTable) (the default: all
    /// fixed-seed regression pins run against this).
    #[default]
    Fifo,
    /// The arena [`QueueTable`](crate::QueueTable).
    Queue {
        /// Promotion bias (see [`Bias`]).
        bias: Bias,
        /// Number of topology cohorts for locality-aware handoff;
        /// `0` disables cohort handoff entirely.
        cohorts: u32,
    },
}

impl TableSpec {
    /// A neutral, topology-free queue table — FIFO-equivalent by
    /// construction, differing from [`TableSpec::Fifo`] only in data
    /// structure.
    pub fn queue() -> Self {
        TableSpec::Queue {
            bias: Bias::Neutral,
            cohorts: 0,
        }
    }

    /// Short stable label for bench records and logs.
    pub fn label(&self) -> &'static str {
        match self {
            TableSpec::Fifo => "fifo",
            TableSpec::Queue {
                bias: Bias::Neutral,
                cohorts: 0,
            } => "queue",
            TableSpec::Queue {
                bias: Bias::Neutral,
                ..
            } => "queue+cohort",
            TableSpec::Queue {
                bias: Bias::ReaderBatch,
                ..
            } => "queue+rbatch",
            TableSpec::Queue {
                bias: Bias::WriterPreference,
                ..
            } => "queue+wpref",
        }
    }
}

/// A reader–writer FIFO lock table over one partition of the entity
/// space, as a swappable engine.
///
/// All implementations must agree on the *protocol*: the admission rules,
/// prevention obstacle sets, upgrade handling and error cases documented
/// on [`FifoTable`](crate::FifoTable) — `tests/table_equivalence.rs` at
/// the workspace root holds them to it property-by-property. They may
/// differ in promotion *order* only where an explicit [`Bias`] or
/// topology says so.
pub trait LockTable<O: Copy + Eq + Ord + Hash> {
    /// Requests `mode` on `e` for `o`.
    /// See [`FifoTable::request`](crate::FifoTable::request).
    fn acquire(&mut self, e: EntityId, o: O, mode: LockMode) -> Result<Acquire, LockError>;

    /// Requests `mode` on `e` for `o` under a timestamp-ordering
    /// prevention scheme. `prio` is a dyn closure for object safety.
    /// See [`FifoTable::request_with_priority`](crate::FifoTable::request_with_priority).
    fn acquire_with_priority(
        &mut self,
        e: EntityId,
        o: O,
        mode: LockMode,
        scheme: PreventionScheme,
        prio: &dyn Fn(O) -> Priority,
    ) -> Result<PreventionOutcome<O>, LockError>;

    /// Releases `o`'s lock on `e`, appending unblocked grants (in
    /// promotion order) to `out` — the zero-allocation hot path when the
    /// caller reuses the buffer. `out` is *not* cleared first.
    fn release_into(&mut self, e: EntityId, o: O, out: &mut Grants<O>) -> Result<(), LockError>;

    /// Releases `o`'s lock on `e`; returns the grants this unblocked.
    /// Allocating convenience over [`LockTable::release_into`].
    fn release(&mut self, e: EntityId, o: O) -> Result<Grants<O>, LockError> {
        let mut out = Grants::new();
        self.release_into(e, o, &mut out)?;
        Ok(out)
    }

    /// Releases `o`'s lock on `e` if it holds one; a no-op otherwise.
    fn release_idempotent(&mut self, e: EntityId, o: O) -> Grants<O> {
        self.release(e, o).unwrap_or_default()
    }

    /// Removes `o` from every wait queue and pending-upgrade slot.
    fn cancel_waits(&mut self, o: O) -> CancelOutcome<O>;

    /// Releases everything `o` holds; `(entity, grants)` pairs ascending.
    fn release_all(&mut self, o: O) -> EntityGrants<O>;

    /// The mode `o` holds on `e`, if any.
    fn holds(&self, e: EntityId, o: O) -> Option<LockMode>;

    /// Current holders of `e` with their modes (unspecified order).
    fn holders(&self, e: EntityId) -> Vec<(O, LockMode)>;

    /// Sole exclusive holder of `e`, if held exclusively.
    fn exclusive_holder(&self, e: EntityId) -> Option<O>;

    /// Entities currently held by `o`, ascending.
    fn held_by(&self, o: O) -> Vec<EntityId>;

    /// All waits-for edges `(waiter, holder)`, ascending.
    fn waits_for(&self) -> Vec<(O, O)>;

    /// The waits-for edges induced by `e` alone, ascending.
    fn entity_waits_for(&self, e: EntityId) -> Vec<(O, O)>;

    /// The holders `o` waits on here, ascending, deduplicated.
    fn waits_of(&self, o: O) -> Vec<O>;

    /// True when `o` is queued or upgrade-pending on `e`.
    fn is_waiting(&self, e: EntityId, o: O) -> bool;

    /// The owners a re-submitted request by `o` on `e` would be admitted
    /// against, ascending, deduplicated.
    fn conflicts_of(&self, e: EntityId, o: O) -> Vec<O>;

    /// Entities with any lock state, ascending.
    fn active_entities(&self) -> Vec<EntityId>;

    /// True when nothing is held or queued anywhere.
    fn is_idle(&self) -> bool;

    /// Structural invariant check (for tests and audits).
    fn check_invariants(&self) -> Result<(), String>;

    /// Acquires a batch of `(entity, mode)` requests for one owner,
    /// returning the per-request outcomes in order. Single-table default;
    /// [`ShardedTable`](crate::ShardedTable) has the shard-aware version.
    fn acquire_batch(
        &mut self,
        o: O,
        requests: &[(EntityId, LockMode)],
    ) -> Vec<Result<Acquire, LockError>> {
        requests
            .iter()
            .map(|&(e, m)| self.acquire(e, o, m))
            .collect()
    }

    /// Releases a batch of entities for one owner, appending every
    /// unblocked grant (tagged with its entity) to `out`. Entities not
    /// held are skipped, mirroring [`LockTable::release_idempotent`].
    fn release_batch_into(&mut self, o: O, entities: &[EntityId], out: &mut EntityGrants<O>) {
        for &e in entities {
            let mut grants = Grants::new();
            if self.release_into(e, o, &mut grants).is_ok() {
                out.push((e, grants));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::FifoTable;

    #[test]
    fn trait_is_object_safe_and_defaults_work() {
        let mut t: FifoTable<u32> = FifoTable::new();
        let table: &mut dyn LockTable<u32> = &mut t;
        let e = EntityId(7);
        assert_eq!(
            table.acquire(e, 1, LockMode::Exclusive).unwrap(),
            Acquire::Granted
        );
        assert_eq!(
            table.acquire(e, 2, LockMode::Exclusive).unwrap(),
            Acquire::Queued
        );
        let mut out = Grants::new();
        table.release_into(e, 1, &mut out).unwrap();
        assert_eq!(out, vec![(2, LockMode::Exclusive)]);
        assert_eq!(table.release(e, 2).unwrap(), vec![]);
        assert!(table.is_idle());
    }

    #[test]
    fn dyn_priority_closure_dispatches() {
        let mut t: FifoTable<u32> = FifoTable::new();
        let table: &mut dyn LockTable<u32> = &mut t;
        let e = EntityId(0);
        let prio = |o: u32| -> Priority { (o as u64, 0) };
        table
            .acquire_with_priority(e, 5, LockMode::Exclusive, PreventionScheme::WaitDie, &prio)
            .unwrap();
        assert_eq!(
            table
                .acquire_with_priority(e, 9, LockMode::Exclusive, PreventionScheme::WaitDie, &prio)
                .unwrap(),
            PreventionOutcome::Rejected
        );
    }

    #[test]
    fn batch_defaults_round_trip() {
        let mut t: FifoTable<u32> = FifoTable::new();
        let table: &mut dyn LockTable<u32> = &mut t;
        let reqs = [
            (EntityId(0), LockMode::Exclusive),
            (EntityId(1), LockMode::Shared),
        ];
        let outcomes = table.acquire_batch(1, &reqs);
        assert!(outcomes.iter().all(|r| matches!(r, Ok(Acquire::Granted))));
        let mut out = EntityGrants::new();
        table.release_batch_into(1, &[EntityId(0), EntityId(1), EntityId(9)], &mut out);
        assert_eq!(out, vec![(EntityId(0), vec![]), (EntityId(1), vec![])]);
        assert!(table.is_idle());
    }

    #[test]
    fn table_spec_labels_are_stable() {
        assert_eq!(TableSpec::Fifo.label(), "fifo");
        assert_eq!(TableSpec::queue().label(), "queue");
        assert_eq!(
            TableSpec::Queue {
                bias: Bias::Neutral,
                cohorts: 4
            }
            .label(),
            "queue+cohort"
        );
        assert_eq!(
            TableSpec::Queue {
                bias: Bias::WriterPreference,
                cohorts: 0
            }
            .label(),
            "queue+wpref"
        );
        assert_eq!(TableSpec::default(), TableSpec::Fifo);
    }
}
