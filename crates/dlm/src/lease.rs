//! Lock leases: the crash-recovery contract between a lock service and
//! its clients.
//!
//! A sharded lock manager that can *crash* needs an answer to the
//! question "who still holds what when the shard comes back?". The
//! classic answer (Gray's leases, and every production DLM since) is to
//! stamp each grant with a **lease**: the holder owns the lock for `ttl`
//! ticks past its last renewal, renewals are implicit while the service
//! is healthy, and a crash freezes renewal — so after an outage a grant
//! has survived exactly when the outage was shorter than its ttl. Holders
//! whose leases expired during the outage must be treated as having lost
//! the lock (the recovering shard will not re-grant it to them), and it
//! is the *caller's* job to abort or fence them.
//!
//! This module is deliberately mechanism-only: a [`Lease`] is arithmetic
//! over ticks, and a [`LeaseTable`] is the per-shard mirror of
//! grants — inserted on grant, removed on release, queried at recovery.
//! Policy (what to do with an expired holder) stays with the caller,
//! exactly like [`crate::prevent`] keeps wound delivery with the caller.

use kplock_model::{EntityId, LockMode};
use std::collections::HashMap;
use std::hash::Hash;

/// A lock lease: granted at a tick, valid for `ttl` ticks past the last
/// renewal. `ttl == 0` means *unbounded* — the lease never expires and
/// every outage is survivable (the right default for simulations that
/// model crashes but not lease economics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lease {
    /// Tick the lock was granted (diagnostics; survival depends on the
    /// renewal clock, not the grant tick).
    pub granted_at: u64,
    /// Validity window past the last renewal; `0` = never expires.
    pub ttl: u64,
}

impl Lease {
    /// A lease granted at `granted_at` with validity `ttl`.
    pub fn new(granted_at: u64, ttl: u64) -> Self {
        Lease { granted_at, ttl }
    }

    /// Did this lease survive an outage that started at `crash_at` and
    /// ended at `recovery_at`? Renewal is implicit while the service is
    /// up, so the last renewal is the crash tick itself (but never before
    /// the grant): the lease survives iff the outage it actually sat
    /// through is no longer than its ttl.
    pub fn survives_outage(&self, crash_at: u64, recovery_at: u64) -> bool {
        if self.ttl == 0 {
            return true;
        }
        let last_renewal = crash_at.max(self.granted_at);
        recovery_at.saturating_sub(last_renewal) <= self.ttl
    }
}

/// The per-shard lease ledger: one entry per live grant, keyed by
/// `(owner, entity)`. Mirrors the shard's holder set — insert on grant,
/// remove on release, drop an owner wholesale on abort — so at recovery
/// the surviving holder state can be read back out without consulting the
/// (lost) lock table.
#[derive(Clone, Debug)]
pub struct LeaseTable<O> {
    grants: HashMap<(O, EntityId), (LockMode, Lease)>,
}

impl<O> Default for LeaseTable<O> {
    fn default() -> Self {
        LeaseTable {
            grants: HashMap::new(),
        }
    }
}

impl<O: Copy + Eq + Ord + Hash> LeaseTable<O> {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the lease backing `o`'s grant on `e`. An upgrade overwrites
    /// the *mode* of an existing entry (shared → exclusive), and a changed
    /// ttl takes effect — but the renewal clock keys off the **original**
    /// grant tick: a duplicated or retransmitted grant message re-landing
    /// here must not slide `granted_at` forward, or every duplication
    /// silently extends the holder's outage survival (see
    /// [`Lease::survives_outage`], whose last-renewal floor is the grant
    /// tick).
    pub fn grant(&mut self, o: O, e: EntityId, mode: LockMode, lease: Lease) {
        self.grants
            .entry((o, e))
            .and_modify(|(m, l)| {
                *m = mode;
                l.ttl = lease.ttl;
            })
            .or_insert((mode, lease));
    }

    /// The lease backing `o`'s grant on `e`, if one is recorded.
    pub fn lease_of(&self, o: O, e: EntityId) -> Option<Lease> {
        self.grants.get(&(o, e)).map(|&(_, l)| l)
    }

    /// Removes the lease backing `o`'s grant on `e` (a release). Missing
    /// entries are fine — duplicated release messages are idempotent.
    pub fn release(&mut self, o: O, e: EntityId) {
        self.grants.remove(&(o, e));
    }

    /// Drops every lease `o` holds (an abort scrubbing a dead owner).
    pub fn drop_owner(&mut self, o: O) {
        self.grants.retain(|&(h, _), _| h != o);
    }

    /// The full ledger in deterministic `(entity, owner)` order — what a
    /// recovering shard replays to rebuild its holder set. Each entry is
    /// `(owner, entity, mode, lease)`; the caller partitions by
    /// [`Lease::survives_outage`].
    pub fn entries(&self) -> Vec<(O, EntityId, LockMode, Lease)> {
        let mut v: Vec<(O, EntityId, LockMode, Lease)> = self
            .grants
            .iter()
            .map(|(&(o, e), &(m, l))| (o, e, m, l))
            .collect();
        v.sort_by_key(|&(o, e, _, _)| (e, o));
        v
    }

    /// Number of live leases.
    pub fn len(&self) -> usize {
        self.grants.len()
    }

    /// True when no lease is live.
    pub fn is_empty(&self) -> bool {
        self.grants.is_empty()
    }

    /// Forgets everything (a fresh run).
    pub fn clear(&mut self) {
        self.grants.clear();
    }
}

/// One delegated grant in a [`DelegationLedger`]: the lease the owner
/// handed out with the cached grant, and whether a revocation is in
/// flight for it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DelegationEntry {
    /// The lease stamped on the delegated grant — the fence a crashed or
    /// unresponsive delegate is bounded by. Preserved across re-grants
    /// like [`LeaseTable::grant`] preserves its clock: a duplicated grant
    /// message must not extend the delegation.
    pub lease: Lease,
    /// A revocation has been sent and its acknowledgement is pending; the
    /// entry drains when the ack lands (or the delegate aborts).
    pub revoking: bool,
}

/// The owning site's half of delegated lock ownership: which grants have
/// been handed to a remote cache under a [`Lease`], keyed by
/// `(delegate, entity)` like the [`LeaseTable`] it complements.
///
/// A delegated grant stays *held* in the owner's lock table (the hold is
/// the cache's collateral); this ledger records that the release
/// authority moved to the delegate, so a later conflicting request knows
/// to send a revocation — and a crash knows which holds are cache
/// residue nobody will ever release (see the engine's crash path). Like
/// [`LeaseTable`], this is mechanism only: *when* to delegate, revoke or
/// drain is the caller's policy.
#[derive(Clone, Debug)]
pub struct DelegationLedger<O> {
    entries: HashMap<(O, EntityId), DelegationEntry>,
}

impl<O> Default for DelegationLedger<O> {
    fn default() -> Self {
        DelegationLedger {
            entries: HashMap::new(),
        }
    }
}

impl<O: Copy + Eq + Ord + Hash> DelegationLedger<O> {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `o`'s grant on `e` is delegated under `lease`, and
    /// returns the lease actually in force. A fresh delegation stores
    /// `lease` as given; a re-delegation (a duplicated or retransmitted
    /// grant re-landing) keeps the **original** `granted_at` — the
    /// returned lease is what the grant message should carry, so every
    /// delivery of the same delegation advertises the same clock — and
    /// clears no revocation state (a revoke in flight stays in flight).
    pub fn delegate(&mut self, o: O, e: EntityId, lease: Lease) -> Lease {
        let entry = self
            .entries
            .entry((o, e))
            .and_modify(|d| d.lease.ttl = lease.ttl)
            .or_insert(DelegationEntry {
                lease,
                revoking: false,
            });
        entry.lease
    }

    /// True when `o`'s grant on `e` is delegated (revoking or not).
    pub fn is_delegated(&self, o: O, e: EntityId) -> bool {
        self.entries.contains_key(&(o, e))
    }

    /// True when a revocation for `o`'s delegation on `e` is in flight.
    pub fn is_revoking(&self, o: O, e: EntityId) -> bool {
        self.entries.get(&(o, e)).is_some_and(|d| d.revoking)
    }

    /// Marks `o`'s delegation on `e` as revoking. Returns `true` when
    /// this call newly started the revocation — the caller should send
    /// the revoke message exactly when it gets `true` (re-sends under
    /// loss are the caller's retransmission policy, keyed off
    /// [`DelegationLedger::is_revoking`]). `false` for an absent entry.
    pub fn start_revoke(&mut self, o: O, e: EntityId) -> bool {
        match self.entries.get_mut(&(o, e)) {
            Some(d) if !d.revoking => {
                d.revoking = true;
                true
            }
            _ => false,
        }
    }

    /// Removes `o`'s delegation on `e` (the drain: a revoke ack landed,
    /// the delegate aborted, or the owner re-granted without delegating).
    /// Returns whether an entry existed — duplicated acks are no-ops.
    pub fn remove(&mut self, o: O, e: EntityId) -> bool {
        self.entries.remove(&(o, e)).is_some()
    }

    /// Re-keys `o`'s delegation on `e` to `new` (the delegate restarted
    /// and kept its uncontested cache across the epoch bump), preserving
    /// the lease. Returns whether an entry moved; revoking entries are
    /// the caller's responsibility to drain, not re-key.
    pub fn rekey(&mut self, o: O, new: O, e: EntityId) -> bool {
        match self.entries.remove(&(o, e)) {
            Some(d) => {
                debug_assert!(!d.revoking, "revoking delegations drain, not re-key");
                self.entries.insert((new, e), d);
                true
            }
            None => false,
        }
    }

    /// Drops every delegation held by `o` (the delegate aborted without
    /// retention, or a crash scrubbed it).
    pub fn drop_owner(&mut self, o: O) {
        self.entries.retain(|&(h, _), _| h != o);
    }

    /// The full ledger in deterministic `(entity, owner)` order, each
    /// entry `(owner, entity, lease, revoking)` — what a crash walks to
    /// clear both sides.
    pub fn entries(&self) -> Vec<(O, EntityId, Lease, bool)> {
        let mut v: Vec<(O, EntityId, Lease, bool)> = self
            .entries
            .iter()
            .map(|(&(o, e), &d)| (o, e, d.lease, d.revoking))
            .collect();
        v.sort_by_key(|&(o, e, _, _)| (e, o));
        v
    }

    /// Number of live delegations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is delegated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Forgets everything (a crash wiping the owner's soft state).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: LockMode = LockMode::Exclusive;
    const S: LockMode = LockMode::Shared;

    #[test]
    fn unbounded_leases_survive_any_outage() {
        let l = Lease::new(5, 0);
        assert!(l.survives_outage(10, u64::MAX));
    }

    #[test]
    fn survival_is_outage_length_vs_ttl() {
        let l = Lease::new(5, 100);
        // Outage of exactly ttl ticks: survives.
        assert!(l.survives_outage(50, 150));
        // One tick longer: expired.
        assert!(!l.survives_outage(50, 151));
        // Renewal never predates the grant: a lock granted just before
        // the crash is charged only the time it actually sat through.
        let late = Lease::new(49, 100);
        assert!(late.survives_outage(40, 149));
        assert!(!late.survives_outage(40, 150));
    }

    #[test]
    fn ledger_mirrors_grant_release_abort() {
        let mut t: LeaseTable<u32> = LeaseTable::new();
        let (a, b) = (EntityId(0), EntityId(1));
        t.grant(1, a, X, Lease::new(0, 10));
        t.grant(1, b, S, Lease::new(2, 10));
        t.grant(2, b, S, Lease::new(3, 10));
        assert_eq!(t.len(), 3);
        // Deterministic (entity, owner) order.
        let owners: Vec<(u32, EntityId)> = t.entries().iter().map(|&(o, e, _, _)| (o, e)).collect();
        assert_eq!(owners, vec![(1, a), (1, b), (2, b)]);
        // Release is per (owner, entity); duplicates are no-ops.
        t.release(1, b);
        t.release(1, b);
        assert_eq!(t.len(), 2);
        // An upgrade re-modes in place but keeps the original grant tick:
        // the renewal clock never slides forward on a re-grant.
        t.grant(2, b, X, Lease::new(9, 10));
        assert_eq!(t.entries()[1], (2, b, X, Lease::new(3, 10)));
        assert_eq!(t.lease_of(2, b), Some(Lease::new(3, 10)));
        // Abort scrubs the owner everywhere.
        t.drop_owner(1);
        assert_eq!(t.entries(), vec![(2, b, X, Lease::new(3, 10))]);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.lease_of(2, b), None);
    }

    #[test]
    fn duplicated_grants_do_not_extend_the_lease() {
        // The outage-survival bug this guards: a grant at tick 0 with
        // ttl 100 is duplicated on the wire and the copy re-lands at
        // tick 90, *after* an outage began at 85. If the re-grant
        // re-stamped `granted_at`, the renewal floor would move to 90
        // and an outage of 85..190 (survival charged from the floor:
        // 100 ticks against a 100-tick ttl) would be survived — the
        // duplicate manufactured 5 ticks of validity out of thin air.
        // The renewal clock must key off the original grant.
        let mut t: LeaseTable<u32> = LeaseTable::new();
        let a = EntityId(0);
        t.grant(1, a, X, Lease::new(0, 100));
        t.grant(1, a, X, Lease::new(90, 100)); // the duplicate re-lands
        let lease = t.lease_of(1, a).unwrap();
        assert_eq!(lease, Lease::new(0, 100));
        assert!(
            Lease::new(90, 100).survives_outage(85, 190),
            "the slid clock would survive"
        );
        assert!(!lease.survives_outage(85, 190), "no manufactured renewal");
        // A release followed by a *fresh* grant is a new lease, though:
        // renewal by explicit re-acquire is the legitimate path.
        t.release(1, a);
        t.grant(1, a, X, Lease::new(90, 100));
        assert_eq!(t.lease_of(1, a), Some(Lease::new(90, 100)));
        assert!(t.lease_of(1, a).unwrap().survives_outage(85, 190));
    }

    #[test]
    fn delegation_ledger_lifecycle() {
        let mut d: DelegationLedger<u32> = DelegationLedger::new();
        let (a, b) = (EntityId(0), EntityId(1));
        assert!(d.is_empty());
        // Delegate: fresh entries store the given lease.
        assert_eq!(d.delegate(1, a, Lease::new(5, 50)), Lease::new(5, 50));
        assert_eq!(d.delegate(2, b, Lease::new(7, 50)), Lease::new(7, 50));
        assert!(d.is_delegated(1, a) && !d.is_revoking(1, a));
        assert!(!d.is_delegated(1, b));
        assert_eq!(d.len(), 2);
        // A re-delegation (duplicated grant) keeps the original clock and
        // hands it back for the wire.
        assert_eq!(d.delegate(1, a, Lease::new(40, 50)), Lease::new(5, 50));
        // Revocation: started exactly once; re-starts report false so the
        // caller knows the first send already happened.
        assert!(d.start_revoke(1, a));
        assert!(!d.start_revoke(1, a), "already revoking");
        assert!(d.is_revoking(1, a));
        assert!(!d.start_revoke(9, a), "absent entries cannot revoke");
        // A re-delegation mid-revoke does not cancel the revoke.
        d.delegate(1, a, Lease::new(45, 50));
        assert!(d.is_revoking(1, a));
        // Drain: removal is idempotent.
        assert!(d.remove(1, a));
        assert!(!d.remove(1, a));
        assert!(!d.is_delegated(1, a));
        // Deterministic (entity, owner) order.
        d.delegate(3, a, Lease::new(9, 0));
        assert_eq!(
            d.entries(),
            vec![
                (3, a, Lease::new(9, 0), false),
                (2, b, Lease::new(7, 50), false)
            ]
        );
        d.drop_owner(2);
        assert_eq!(d.len(), 1);
        d.clear();
        assert!(d.is_empty());
    }

    #[test]
    fn delegation_rekey_preserves_the_lease() {
        // The abort-retention path: the delegate restarts (epoch bump)
        // and keeps its uncontested cache; the ledger follows the new
        // owner key without touching the lease clock.
        let mut d: DelegationLedger<u32> = DelegationLedger::new();
        let a = EntityId(0);
        d.delegate(1, a, Lease::new(5, 50));
        assert!(d.rekey(1, 2, a));
        assert!(!d.is_delegated(1, a));
        assert!(d.is_delegated(2, a));
        assert_eq!(d.delegate(2, a, Lease::new(99, 50)), Lease::new(5, 50));
        assert!(!d.rekey(1, 3, a), "old key is gone");
    }
}
