//! Lock leases: the crash-recovery contract between a lock service and
//! its clients.
//!
//! A sharded lock manager that can *crash* needs an answer to the
//! question "who still holds what when the shard comes back?". The
//! classic answer (Gray's leases, and every production DLM since) is to
//! stamp each grant with a **lease**: the holder owns the lock for `ttl`
//! ticks past its last renewal, renewals are implicit while the service
//! is healthy, and a crash freezes renewal — so after an outage a grant
//! has survived exactly when the outage was shorter than its ttl. Holders
//! whose leases expired during the outage must be treated as having lost
//! the lock (the recovering shard will not re-grant it to them), and it
//! is the *caller's* job to abort or fence them.
//!
//! This module is deliberately mechanism-only: a [`Lease`] is arithmetic
//! over ticks, and a [`LeaseTable`] is the per-shard mirror of
//! grants — inserted on grant, removed on release, queried at recovery.
//! Policy (what to do with an expired holder) stays with the caller,
//! exactly like [`crate::prevent`] keeps wound delivery with the caller.

use kplock_model::{EntityId, LockMode};
use std::collections::HashMap;
use std::hash::Hash;

/// A lock lease: granted at a tick, valid for `ttl` ticks past the last
/// renewal. `ttl == 0` means *unbounded* — the lease never expires and
/// every outage is survivable (the right default for simulations that
/// model crashes but not lease economics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lease {
    /// Tick the lock was granted (diagnostics; survival depends on the
    /// renewal clock, not the grant tick).
    pub granted_at: u64,
    /// Validity window past the last renewal; `0` = never expires.
    pub ttl: u64,
}

impl Lease {
    /// A lease granted at `granted_at` with validity `ttl`.
    pub fn new(granted_at: u64, ttl: u64) -> Self {
        Lease { granted_at, ttl }
    }

    /// Did this lease survive an outage that started at `crash_at` and
    /// ended at `recovery_at`? Renewal is implicit while the service is
    /// up, so the last renewal is the crash tick itself (but never before
    /// the grant): the lease survives iff the outage it actually sat
    /// through is no longer than its ttl.
    pub fn survives_outage(&self, crash_at: u64, recovery_at: u64) -> bool {
        if self.ttl == 0 {
            return true;
        }
        let last_renewal = crash_at.max(self.granted_at);
        recovery_at.saturating_sub(last_renewal) <= self.ttl
    }
}

/// The per-shard lease ledger: one entry per live grant, keyed by
/// `(owner, entity)`. Mirrors the shard's holder set — insert on grant,
/// remove on release, drop an owner wholesale on abort — so at recovery
/// the surviving holder state can be read back out without consulting the
/// (lost) lock table.
#[derive(Clone, Debug)]
pub struct LeaseTable<O> {
    grants: HashMap<(O, EntityId), (LockMode, Lease)>,
}

impl<O> Default for LeaseTable<O> {
    fn default() -> Self {
        LeaseTable {
            grants: HashMap::new(),
        }
    }
}

impl<O: Copy + Eq + Ord + Hash> LeaseTable<O> {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records (or re-stamps — duplicated grant messages are idempotent
    /// here) the lease backing `o`'s grant on `e`. An upgrade overwrites
    /// the shared-mode entry with the exclusive one.
    pub fn grant(&mut self, o: O, e: EntityId, mode: LockMode, lease: Lease) {
        self.grants.insert((o, e), (mode, lease));
    }

    /// Removes the lease backing `o`'s grant on `e` (a release). Missing
    /// entries are fine — duplicated release messages are idempotent.
    pub fn release(&mut self, o: O, e: EntityId) {
        self.grants.remove(&(o, e));
    }

    /// Drops every lease `o` holds (an abort scrubbing a dead owner).
    pub fn drop_owner(&mut self, o: O) {
        self.grants.retain(|&(h, _), _| h != o);
    }

    /// The full ledger in deterministic `(entity, owner)` order — what a
    /// recovering shard replays to rebuild its holder set. Each entry is
    /// `(owner, entity, mode, lease)`; the caller partitions by
    /// [`Lease::survives_outage`].
    pub fn entries(&self) -> Vec<(O, EntityId, LockMode, Lease)> {
        let mut v: Vec<(O, EntityId, LockMode, Lease)> = self
            .grants
            .iter()
            .map(|(&(o, e), &(m, l))| (o, e, m, l))
            .collect();
        v.sort_by_key(|&(o, e, _, _)| (e, o));
        v
    }

    /// Number of live leases.
    pub fn len(&self) -> usize {
        self.grants.len()
    }

    /// True when no lease is live.
    pub fn is_empty(&self) -> bool {
        self.grants.is_empty()
    }

    /// Forgets everything (a fresh run).
    pub fn clear(&mut self) {
        self.grants.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: LockMode = LockMode::Exclusive;
    const S: LockMode = LockMode::Shared;

    #[test]
    fn unbounded_leases_survive_any_outage() {
        let l = Lease::new(5, 0);
        assert!(l.survives_outage(10, u64::MAX));
    }

    #[test]
    fn survival_is_outage_length_vs_ttl() {
        let l = Lease::new(5, 100);
        // Outage of exactly ttl ticks: survives.
        assert!(l.survives_outage(50, 150));
        // One tick longer: expired.
        assert!(!l.survives_outage(50, 151));
        // Renewal never predates the grant: a lock granted just before
        // the crash is charged only the time it actually sat through.
        let late = Lease::new(49, 100);
        assert!(late.survives_outage(40, 149));
        assert!(!late.survives_outage(40, 150));
    }

    #[test]
    fn ledger_mirrors_grant_release_abort() {
        let mut t: LeaseTable<u32> = LeaseTable::new();
        let (a, b) = (EntityId(0), EntityId(1));
        t.grant(1, a, X, Lease::new(0, 10));
        t.grant(1, b, S, Lease::new(2, 10));
        t.grant(2, b, S, Lease::new(3, 10));
        assert_eq!(t.len(), 3);
        // Deterministic (entity, owner) order.
        let owners: Vec<(u32, EntityId)> = t.entries().iter().map(|&(o, e, _, _)| (o, e)).collect();
        assert_eq!(owners, vec![(1, a), (1, b), (2, b)]);
        // Release is per (owner, entity); duplicates are no-ops.
        t.release(1, b);
        t.release(1, b);
        assert_eq!(t.len(), 2);
        // An upgrade re-stamps in place.
        t.grant(2, b, X, Lease::new(9, 10));
        assert_eq!(t.entries()[1], (2, b, X, Lease::new(9, 10)));
        // Abort scrubs the owner everywhere.
        t.drop_owner(1);
        assert_eq!(t.entries(), vec![(2, b, X, Lease::new(9, 10))]);
        t.clear();
        assert!(t.is_empty());
    }
}
