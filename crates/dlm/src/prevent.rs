//! Timestamp-ordered deadlock *prevention* (Rosenkrantz–Stearns–Lewis).
//!
//! Detection ([`crate::WaitForGraph`], the simulator's scan/probe schemes)
//! lets wait-for cycles form and then finds and breaks them. Prevention
//! never lets them form: every owner carries a fixed [`Priority`] — its
//! birth timestamp, kept across restarts — and a request that would have
//! to wait is admitted, wounded through, or refused by comparing
//! timestamps **locally at the table**, with no wait-for graph, no scan,
//! and no cross-site protocol anywhere:
//!
//! * **Wound-Wait** — an *older* requester wounds (forces the abort of)
//!   every younger conflicting owner and then waits; a *younger* requester
//!   simply waits. Waits therefore only ever point young → old.
//! * **Wait-Die** — an *older* requester may wait; a *younger* one dies
//!   (aborts and retries with its original timestamp). Waits only ever
//!   point old → young.
//! * **No-Wait** — nobody waits: any conflict refuses the request and the
//!   requester retries after a backoff. The degenerate scheme, maximal
//!   restarts for zero waiting.
//!
//! In all three the waits-for relation is (a subset of) a strict order on
//! timestamps, so it cannot contain a cycle; and because a transaction
//! keeps its birth timestamp across restarts, it eventually becomes the
//! oldest in the system and cannot be wounded or refused — no livelock.
//!
//! One subtlety is owed to the FIFO queue: grants *retarget* the remaining
//! waiters onto new holders, so a wait admitted against today's holders
//! can face different holders tomorrow. [`ModeTable::request_with_priority`]
//! therefore applies the timestamp test against the holders **and** the
//! queued waiters (who are tomorrow's holders): under Wait-Die a waiter is
//! admitted only if older than everyone it could ever retarget onto, and
//! under Wound-Wait everyone younger — queued or holding — is wounded.
//! Both invariants are then stable under FIFO grant order (each grant
//! hands the lock to a front-of-queue owner that every remaining waiter
//! was already checked against), which is what makes the no-cycle
//! guarantee hold for the *lifetime* of a wait, not just its admission.
//! See `tests/prevention_props.rs` at the workspace root for the
//! property-based version of that argument.
//!
//! [`ModeTable::request_with_priority`]: crate::ModeTable::request_with_priority

/// A prevention priority: smaller is older is stronger. The first
/// component is a birth timestamp (ticks, a ticket counter, …) that must
/// survive restarts — or the schemes livelock by repeatedly killing
/// whichever transaction is about to finish — and the second breaks ties,
/// so every owner's priority is distinct.
pub type Priority = (u64, u64);

/// Which timestamp-ordering prevention scheme a table applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PreventionScheme {
    /// Older requesters wound younger conflicting owners and wait; younger
    /// requesters wait. Restarts are paid by the *holders*.
    WoundWait,
    /// Older requesters wait; younger requesters die and retry. Restarts
    /// are paid by the *requesters*.
    WaitDie,
    /// Any conflict dies. No waiting at all, maximal restart churn.
    NoWait,
}

/// Outcome of a [`crate::ModeTable::request_with_priority`] call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PreventionOutcome<O> {
    /// Granted immediately — no conflict, no timestamp consulted.
    Granted,
    /// The wait is permitted by the scheme; the request is queued exactly
    /// as a plain [`crate::ModeTable::request`] would queue it.
    Queued,
    /// Wound-Wait admitted the wait but the listed younger owners must be
    /// aborted by the caller (they are *not* removed here: a wound is an
    /// order to whoever owns the victims' lifecycle, and the victims keep
    /// their table state until that abort executes).
    Wounded(Vec<O>),
    /// The scheme refuses the wait: the requester was not queued and must
    /// abort and retry later, keeping its priority.
    Rejected,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_order_older_first() {
        let older: Priority = (5, 0);
        let younger: Priority = (9, 0);
        assert!(older < younger);
        // Ties on the timestamp break on the second component.
        assert!((5u64, 1u64) > older);
    }

    #[test]
    fn outcome_equality() {
        let a: PreventionOutcome<u32> = PreventionOutcome::Wounded(vec![3]);
        assert_eq!(a, PreventionOutcome::Wounded(vec![3]));
        assert_ne!(a, PreventionOutcome::Queued);
        assert_ne!(
            PreventionOutcome::<u32>::Rejected,
            PreventionOutcome::Granted
        );
    }
}
