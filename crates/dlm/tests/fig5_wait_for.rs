//! The incremental wait-for graph finds exactly the cycles a periodic
//! global scan finds, exercised on the paper's Fig. 5 system.
//!
//! Fig. 5 is the four-site, two-transaction system showing Theorem 1's
//! condition is not necessary; both transactions lock all four entities
//! with crossing precedence constraints, so executing them step-by-step
//! against a real lock table produces genuine waits and (for opposed
//! interleavings) genuine deadlock cycles. We drive every pair of linear
//! extensions in lockstep and, after *every* table mutation, compare
//!
//! * the incrementally maintained [`WaitForGraph`] (updated only for the
//!   entity whose state changed), against
//! * a from-scratch "periodic scan" graph rebuilt from the full table
//!   state, the way `kplock-sim`'s engine scans all sites.
//!
//! They must agree on the deadlocked owner groups at every instant.

use kplock_dlm::{Acquire, ShardedTable, WaitForGraph};
use kplock_model::{ActionKind, EntityId, StepId};
use kplock_workload::fig5;

/// A from-scratch scan of the whole table: what the engine's periodic
/// deadlock scan sees.
fn periodic_scan(t: &ShardedTable<usize>, entities: &[EntityId]) -> Vec<Vec<usize>> {
    let mut g: WaitForGraph<usize> = WaitForGraph::new();
    for &e in entities {
        g.update_entity(e, t.entity_waits_for(e));
    }
    g.deadlocked_groups()
}

#[test]
fn incremental_matches_periodic_scan_on_fig5() {
    let sys = fig5();
    let entities: Vec<EntityId> = (0..4).map(EntityId).collect();
    let t0 = sys.txn(kplock_model::TxnId(0));
    let t1 = sys.txn(kplock_model::TxnId(1));
    // Each transaction has 269 793 linear extensions; sample a
    // deterministic spread across the whole enumeration (the extremes are
    // near-opposite lock orders, which is what provokes deadlocks).
    let sample = |t: &kplock_model::Transaction| -> Vec<Vec<StepId>> {
        let all = kplock_model::linear_extensions(t);
        let n = all.len();
        (0..8).map(|i| all[i * (n - 1) / 7].clone()).collect()
    };
    let e0 = sample(t0);
    let e1 = sample(t1);

    let mut comparisons = 0usize;
    let mut deadlocks_seen = 0usize;
    for o0 in &e0 {
        for o1 in &e1 {
            let orders = [o0.as_slice(), o1.as_slice()];
            let txns = [t0, t1];
            let table: ShardedTable<usize> = ShardedTable::new(4);
            let mut wfg: WaitForGraph<usize> = WaitForGraph::new();
            let mut pos = [0usize, 0usize];
            let mut blocked = [None::<EntityId>, None::<EntityId>];
            let mut aborted = [false, false];

            // Round-robin the two transactions until both finish or abort.
            let mut idle_rounds = 0;
            while idle_rounds < 2 {
                idle_rounds = 0;
                for o in 0..2 {
                    if aborted[o] || pos[o] >= orders[o].len() || blocked[o].is_some() {
                        idle_rounds += 1;
                        continue;
                    }
                    let step = txns[o].step(orders[o][pos[o]]);
                    match step.kind {
                        ActionKind::Update => {
                            pos[o] += 1;
                        }
                        ActionKind::Lock => {
                            match table.acquire(step.entity, o, step.mode).unwrap() {
                                Acquire::Granted => pos[o] += 1,
                                Acquire::Queued => blocked[o] = Some(step.entity),
                            }
                            wfg.update_entity(step.entity, table.entity_waits_for(step.entity));
                        }
                        ActionKind::Unlock => {
                            let grants = table.release(step.entity, o).unwrap();
                            wfg.update_entity(step.entity, table.entity_waits_for(step.entity));
                            pos[o] += 1;
                            for (w, _) in grants {
                                assert_eq!(blocked[w], Some(step.entity), "grant to non-waiter");
                                blocked[w] = None;
                                pos[w] += 1;
                            }
                        }
                    }
                    // The heart of the test: incremental == from-scratch.
                    let inc = wfg.deadlocked_groups();
                    let scan = periodic_scan(&table, &entities);
                    assert_eq!(inc, scan, "incremental and periodic scans diverged");
                    comparisons += 1;

                    if let Some(cycle) = inc.first() {
                        deadlocks_seen += 1;
                        // Resolve like the engine: abort the higher-numbered
                        // owner, release everything, keep comparing.
                        let victim = *cycle.iter().max().unwrap();
                        let cancelled = table.cancel_waits(victim);
                        for &e in &cancelled.cancelled {
                            wfg.update_entity(e, table.entity_waits_for(e));
                        }
                        for (e, grants) in cancelled
                            .granted
                            .into_iter()
                            .chain(table.release_all(victim))
                        {
                            wfg.update_entity(e, table.entity_waits_for(e));
                            for (w, _) in grants {
                                if blocked[w] == Some(e) {
                                    blocked[w] = None;
                                    pos[w] += 1;
                                }
                            }
                        }
                        blocked[victim] = None;
                        aborted[victim] = true;
                        assert_eq!(
                            wfg.deadlocked_groups(),
                            periodic_scan(&table, &entities),
                            "scans diverged after victim abort"
                        );
                    }
                }
            }
            // Anyone not aborted must have finished all steps.
            for o in 0..2 {
                assert!(aborted[o] || pos[o] == orders[o].len(), "owner {o} stuck");
            }
        }
    }
    assert!(comparisons > 1000, "only {comparisons} comparisons ran");
    assert!(
        deadlocks_seen > 0,
        "fig5 opposed extensions must produce at least one deadlock"
    );
}
