//! Property tests for the sharded reader–writer table.
//!
//! Invariants under random interleavings of acquire/release/abort:
//!
//! * never S+X (or X+X) granted on one entity at once — via
//!   `check_invariants` after every operation;
//! * no queued waiter is ever lost: every request that queued is either
//!   granted by a later release or explicitly cancelled, and draining the
//!   table grants everything that is still pending;
//! * exclusive-only behavior is step-for-step identical to the paper
//!   simulator's original FIFO table (reimplemented here as the reference
//!   model).

use kplock_dlm::{Acquire, ShardedTable};
use kplock_model::{EntityId, LockMode};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};

const OWNERS: u32 = 6;
const ENTITIES: u32 = 8;

/// Applies a random operation; returns grants performed.
fn random_op(
    rng: &mut StdRng,
    t: &ShardedTable<u32>,
    pending: &mut HashSet<(EntityId, u32)>,
) -> Result<(), String> {
    let o = rng.gen_range(0..OWNERS);
    let e = EntityId(rng.gen_range(0..ENTITIES));
    match rng.gen_range(0u32..10) {
        // Acquire (weighted toward it so queues actually build up).
        0..=5 => {
            let mode = if rng.gen_range(0u32..2) == 0 {
                LockMode::Shared
            } else {
                LockMode::Exclusive
            };
            // Skip protocol violations the API rejects.
            if pending.contains(&(e, o)) {
                return Ok(());
            }
            match t.acquire(e, o, mode) {
                Ok(Acquire::Granted) => {}
                Ok(Acquire::Queued) => {
                    pending.insert((e, o));
                }
                Err(err) => return Err(format!("acquire: {err}")),
            }
        }
        // Release one held entity. Releasing also cancels the releaser's
        // own pending upgrade on that entity, so clear it from `pending`.
        6..=7 => {
            if let Some(&h) = t.held_by(o).first() {
                let grants = t.release(h, o).map_err(|err| format!("release: {err}"))?;
                pending.remove(&(h, o));
                for (w, _) in grants {
                    if !pending.remove(&(h, w)) {
                        return Err(format!("grant of {h} to {w} was never pending"));
                    }
                }
            }
        }
        // Abort: cancel waits + release everything.
        _ => {
            let cancelled = t.cancel_waits(o);
            for &e in &cancelled.cancelled {
                if !pending.remove(&(e, o)) {
                    return Err(format!("cancelled wait ({e},{o}) was never pending"));
                }
            }
            for (e, grants) in cancelled.granted {
                for (w, _) in grants {
                    if !pending.remove(&(e, w)) {
                        return Err(format!("cancel-grant of {e} to {w} was never pending"));
                    }
                }
            }
            for (e, grants) in t.release_all(o) {
                pending.remove(&(e, o)); // a pending upgrade dies with the hold
                for (w, _) in grants {
                    if !pending.remove(&(e, w)) {
                        return Err(format!("abort-grant of {e} to {w} was never pending"));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Releases everything until the table is empty; every still-pending
/// request must be granted along the way (no waiter lost).
fn drain(t: &ShardedTable<u32>, pending: &mut HashSet<(EntityId, u32)>) -> Result<(), String> {
    for _ in 0..10_000 {
        if t.is_idle() {
            if pending.is_empty() {
                return Ok(());
            }
            return Err(format!(
                "table idle but {} requests never granted",
                pending.len()
            ));
        }
        let mut progressed = false;
        for o in 0..OWNERS {
            for (e, grants) in t.release_all(o) {
                progressed = true;
                pending.remove(&(e, o)); // a pending upgrade dies with the hold
                for (w, _) in grants {
                    if !pending.remove(&(e, w)) {
                        return Err(format!("drain-grant of {e} to {w} was never pending"));
                    }
                }
            }
        }
        if !progressed {
            // Only waiters left whose holders released: impossible unless a
            // waiter was deadlocked on itself — cancel the rest explicitly.
            return Err("no release possible but table not idle".into());
        }
    }
    Err("drain did not converge".into())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// S/X exclusion and structural invariants hold after every operation,
    /// for every shard count.
    #[test]
    fn never_grants_incompatible_modes(seed in 0u64..10_000) {
        for shards in [1usize, 4, 16] {
            let mut rng = StdRng::seed_from_u64(seed);
            let t: ShardedTable<u32> = ShardedTable::new(shards);
            let mut pending = HashSet::new();
            for step in 0..120 {
                if let Err(e) = random_op(&mut rng, &t, &mut pending) {
                    prop_assert!(false, "seed {} shards {} step {}: {}", seed, shards, step, e);
                }
                if let Err(e) = t.check_invariants() {
                    prop_assert!(false, "seed {} shards {} step {}: {}", seed, shards, step, e);
                }
            }
        }
    }

    /// Every queued waiter is eventually granted (or was explicitly
    /// cancelled): drain the table and demand the pending set empties.
    #[test]
    fn no_queued_waiter_is_lost(seed in 0u64..10_000) {
        for shards in [1usize, 16] {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
            let t: ShardedTable<u32> = ShardedTable::new(shards);
            let mut pending = HashSet::new();
            for step in 0..150 {
                if let Err(e) = random_op(&mut rng, &t, &mut pending) {
                    prop_assert!(false, "seed {} shards {} step {}: {}", seed, shards, step, e);
                }
            }
            if let Err(e) = drain(&t, &mut pending) {
                prop_assert!(false, "seed {} shards {}: {}", seed, shards, e);
            }
        }
    }

    /// The per-owner reverse index behind `held_by` (and the entity
    /// indexes behind `active_entities`/`waits_for`) return exactly what
    /// the O(entities) scans they replaced would have: recompute held_by
    /// by scanning `active_entities() × holders()` and demand equality
    /// after every random operation.
    #[test]
    fn reverse_indexes_match_the_scans_they_replaced(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(3));
        let t: ShardedTable<u32> = ShardedTable::new(4);
        let mut pending = HashSet::new();
        for step in 0..150 {
            if let Err(e) = random_op(&mut rng, &t, &mut pending) {
                prop_assert!(false, "seed {} step {}: {}", seed, step, e);
            }
            // check_invariants cross-validates every index against a
            // direct scan of the states map; do the held_by comparison
            // here explicitly as well.
            if let Err(e) = t.check_invariants() {
                prop_assert!(false, "seed {} step {}: {}", seed, step, e);
            }
            let mut by_scan: HashMap<u32, Vec<EntityId>> = HashMap::new();
            for shard in 0..t.shard_count() {
                let guard = t.lock_shard_index(shard);
                for e in kplock_dlm::LockTable::active_entities(&*guard) {
                    for (h, _) in guard.holders(e) {
                        by_scan.entry(h).or_default().push(e);
                    }
                }
            }
            for o in 0..OWNERS {
                let mut expect = by_scan.remove(&o).unwrap_or_default();
                expect.sort();
                prop_assert_eq!(
                    t.held_by(o),
                    expect,
                    "seed {} step {}: held_by({}) diverged from scan",
                    seed,
                    step,
                    o
                );
            }
        }
    }

    /// Exclusive-only requests through the new table behave exactly like
    /// the original simulator FIFO table (modelled here): same grant
    /// decisions, same grantees on release, same waits-for edges.
    #[test]
    fn exclusive_only_matches_the_original_fifo_table(seed in 0u64..10_000) {
        // Reference model: the pre-refactor `sim::LockTable` semantics.
        #[derive(Default)]
        struct OldTable {
            holder: HashMap<EntityId, u32>,
            queue: HashMap<EntityId, VecDeque<u32>>,
        }
        impl OldTable {
            fn request(&mut self, e: EntityId, o: u32) -> bool {
                if let std::collections::hash_map::Entry::Vacant(v) = self.holder.entry(e) {
                    v.insert(o);
                    true
                } else {
                    self.queue.entry(e).or_default().push_back(o);
                    false
                }
            }
            fn release(&mut self, e: EntityId, o: u32) -> Option<u32> {
                assert_eq!(self.holder.remove(&e), Some(o));
                let next = self.queue.get_mut(&e).and_then(|q| q.pop_front());
                if let Some(n) = next {
                    self.holder.insert(e, n);
                }
                next
            }
        }

        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2));
        let t: ShardedTable<u32> = ShardedTable::new(4);
        let mut old = OldTable::default();
        let mut queued: HashSet<(EntityId, u32)> = HashSet::new();
        for step in 0..200 {
            let o = rng.gen_range(0..OWNERS);
            let e = EntityId(rng.gen_range(0..ENTITIES));
            if rng.gen_range(0u32..3) < 2 {
                // Skip requests the old table would self-deadlock on and
                // the new one rejects or short-circuits.
                if old.holder.get(&e) == Some(&o) || queued.contains(&(e, o)) {
                    continue;
                }
                let new_granted =
                    t.acquire(e, o, LockMode::Exclusive).unwrap() == Acquire::Granted;
                let old_granted = old.request(e, o);
                prop_assert_eq!(new_granted, old_granted, "seed {} step {}", seed, step);
                if !new_granted {
                    queued.insert((e, o));
                }
            } else if old.holder.get(&e) == Some(&o) {
                let new_grants = t.release(e, o).unwrap();
                let old_next = old.release(e, o);
                let expect: Vec<(u32, LockMode)> =
                    old_next.into_iter().map(|n| (n, LockMode::Exclusive)).collect();
                prop_assert_eq!(&new_grants, &expect, "seed {} step {}", seed, step);
                for (w, _) in new_grants {
                    queued.remove(&(e, w));
                }
            }
            // Waits-for edges agree too.
            let mut old_edges: Vec<(u32, u32)> = old
                .queue
                .iter()
                .filter_map(|(e, q)| old.holder.get(e).map(|&h| (q, h)))
                .flat_map(|(q, h)| q.iter().map(move |&w| (w, h)))
                .collect();
            old_edges.sort();
            prop_assert_eq!(t.waits_for(), old_edges, "seed {} step {}", seed, step);
        }
    }
}
