//! Proof of the `QueueTable` zero-allocation claim: a counting global
//! allocator wraps `System`, the table is warmed through every code
//! path the steady-state loop will take (so arenas, free lists, hash
//! maps and the per-owner index reach their high-water capacity), and
//! then a thousand more contended lock/unlock rounds must perform *no*
//! heap allocation at all.
//!
//! This lives in its own integration-test binary because a global
//! allocator is process-wide: sharing a binary with other tests would
//! let their allocations race the measurement.

use kplock_dlm::{Acquire, LockTable, PreventionScheme, QueueTable};
use kplock_model::{EntityId, LockMode};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation (alloc, alloc_zeroed, and growth reallocs);
/// frees are uncounted — the claim is about acquiring memory.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const X: LockMode = LockMode::Exclusive;
const S: LockMode = LockMode::Shared;

/// One steady-state round over `ents`: an exclusive holder, a queued
/// second writer granted by the first's release, a shared pair, and a
/// priority-path grant — every hot-path shape the table serves.
fn round(t: &mut QueueTable<u32>, ents: &[EntityId], buf: &mut Vec<(u32, LockMode)>) {
    for &e in ents {
        // Contended exclusive hand-off.
        assert_eq!(t.request(e, 1, X).unwrap(), Acquire::Granted);
        assert_eq!(t.request(e, 2, X).unwrap(), Acquire::Queued);
        buf.clear();
        t.release_into(e, 1, buf).unwrap();
        assert_eq!(buf.as_slice(), &[(2, X)]);
        buf.clear();
        t.release_into(e, 2, buf).unwrap();
        assert!(buf.is_empty());

        // Shared coexistence.
        assert_eq!(t.request(e, 1, S).unwrap(), Acquire::Granted);
        assert_eq!(t.request(e, 2, S).unwrap(), Acquire::Granted);
        buf.clear();
        t.release_into(e, 1, buf).unwrap();
        buf.clear();
        t.release_into(e, 2, buf).unwrap();

        // The prevention admission path (uncontended: Granted, and the
        // obstacle scratch buffer is reused).
        let outcome = t
            .request_with_priority(e, 3, X, PreventionScheme::WoundWait, |o| (u64::from(o), 0))
            .unwrap();
        assert!(matches!(outcome, kplock_dlm::PreventionOutcome::Granted));
        buf.clear();
        t.release_into(e, 3, buf).unwrap();
    }
}

#[test]
fn queue_table_steady_state_performs_zero_allocations() {
    let mut t: QueueTable<u32> = QueueTable::new();
    let ents: Vec<EntityId> = (0..8).map(EntityId).collect();
    let mut buf: Vec<(u32, LockMode)> = Vec::with_capacity(8);

    // Warm-up: drive every path until all capacities hit steady state.
    for _ in 0..50 {
        round(&mut t, &ents, &mut buf);
    }
    t.check_invariants().unwrap();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..1_000 {
        round(&mut t, &ents, &mut buf);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "QueueTable allocated {} times across 1000 steady-state rounds",
        after - before
    );
    t.check_invariants().unwrap();
}

#[test]
fn fifo_table_allocates_in_the_same_loop() {
    // The contrast measurement: the map-of-vecs FifoTable deallocates a
    // state's buffers when an entity goes idle and reallocates them on
    // the next request, so the identical loop must allocate — this is
    // exactly the churn the arena exists to remove. (If this ever goes
    // to zero, FifoTable learned the same trick and the QueueTable test
    // above is no longer the distinguishing measurement.)
    let mut t: kplock_dlm::FifoTable<u32> = kplock_dlm::FifoTable::new();
    let ents: Vec<EntityId> = (0..8).map(EntityId).collect();
    let mut buf: Vec<(u32, LockMode)> = Vec::with_capacity(8);
    let round = |t: &mut kplock_dlm::FifoTable<u32>, buf: &mut Vec<(u32, LockMode)>| {
        for &e in &ents {
            assert_eq!(t.request(e, 1, X).unwrap(), Acquire::Granted);
            assert_eq!(t.request(e, 2, X).unwrap(), Acquire::Queued);
            buf.clear();
            t.release_into(e, 1, buf).unwrap();
            buf.clear();
            t.release_into(e, 2, buf).unwrap();
        }
    };
    for _ in 0..50 {
        round(&mut t, &mut buf);
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..1_000 {
        round(&mut t, &mut buf);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(
        after - before > 0,
        "expected the FIFO map-of-vecs table to allocate in steady state"
    );
}
