//! Experiment C2: centralized (total-order) safety — the geometric method
//! (Proposition 1, after [5, 14]) versus the graph-theoretic method the
//! paper introduces as "an alternative to geometric methods".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kplock_bench::{centralized_pair, STEP_SWEEP};
use kplock_core::decide_total_pair;
use kplock_geometry::{plane_is_safe, PlanePicture};
use kplock_model::TxnId;

fn bench_centralized(c: &mut Criterion) {
    let mut graph_group = c.benchmark_group("centralized_graph_method");
    for &n in STEP_SWEEP {
        let sys = centralized_pair(11, n);
        graph_group.bench_with_input(BenchmarkId::new("d_scc", n), &sys, |b, sys| {
            b.iter(|| decide_total_pair(std::hint::black_box(sys), TxnId(0), TxnId(1)))
        });
    }
    graph_group.finish();

    let mut geo_group = c.benchmark_group("centralized_geometric_method");
    for &n in STEP_SWEEP {
        let sys = centralized_pair(11, n);
        geo_group.bench_with_input(BenchmarkId::new("separation", n), &sys, |b, sys| {
            b.iter(|| {
                let plane = PlanePicture::new(std::hint::black_box(sys), TxnId(0), TxnId(1))
                    .expect("total orders");
                plane_is_safe(&plane)
            })
        });
    }
    geo_group.finish();
}

criterion_group!(benches, bench_centralized);
criterion_main!(benches);
