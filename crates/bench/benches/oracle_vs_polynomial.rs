//! Experiment C4: the "qualitative jump" made measurable — exhaustive
//! product-space search (exponential in concurrent steps) versus the
//! polynomial Theorem-2 test, on identical two-site instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kplock_bench::two_site_pair;
use kplock_core::{decide_exhaustive, decide_two_site_system, OracleOptions};

fn bench_oracle_vs_polynomial(c: &mut Criterion) {
    // Keep n small: the oracle blows up quickly.
    let sweep = [3usize, 4, 5, 6];
    let mut group = c.benchmark_group("oracle_exhaustive");
    for &n in &sweep {
        let sys = two_site_pair(3, n);
        group.bench_with_input(BenchmarkId::new("product_bfs", n), &sys, |b, sys| {
            b.iter(|| {
                decide_exhaustive(
                    std::hint::black_box(sys),
                    &OracleOptions {
                        max_states: 10_000_000,
                    },
                )
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("polynomial_theorem2");
    for &n in &sweep {
        let sys = two_site_pair(3, n);
        group.bench_with_input(BenchmarkId::new("decide", n), &sys, |b, sys| {
            b.iter(|| decide_two_site_system(std::hint::black_box(sys)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_oracle_vs_polynomial);
criterion_main!(benches);
