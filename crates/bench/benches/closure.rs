//! Ablation: dominator choice in the closure certificate construction.
//!
//! Theorem 2 allows any dominator; this bench compares certificate
//! construction from the source-SCC dominator against the largest
//! enumerated dominator, and measures closure cost on reduction instances
//! (where closures do real work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kplock_bench::two_site_pair;
use kplock_core::closure::try_unsafety_via_dominator;
use kplock_core::reduction::reduce;
use kplock_core::ConflictDigraph;
use kplock_graph::{enumerate_dominators, find_dominator};
use kplock_model::{EntityId, TxnId};
use kplock_sat::{solve, SatResult};
use kplock_workload::random_instance;

fn bench_closure(c: &mut Criterion) {
    // Find an unsafe two-site instance with several dominators.
    let sys = (0..100)
        .map(|seed| two_site_pair(seed, 12))
        .find(|sys| {
            let d = ConflictDigraph::build(sys, TxnId(0), TxnId(1));
            if d.is_strongly_connected() || d.entities.len() < 3 {
                return false;
            }
            enumerate_dominators(&d.graph, 64).0.len() >= 2
        })
        .expect("an unsafe multi-dominator instance exists");
    let d = ConflictDigraph::build(&sys, TxnId(0), TxnId(1));
    let source: Vec<EntityId> = find_dominator(&d.graph)
        .unwrap()
        .iter()
        .map(|i| d.entities[i])
        .collect();
    let (all, _) = enumerate_dominators(&d.graph, 64);
    let largest: Vec<EntityId> = all
        .iter()
        .max_by_key(|b| b.count())
        .unwrap()
        .iter()
        .map(|i| d.entities[i])
        .collect();

    let mut group = c.benchmark_group("closure_dominator_choice");
    group.bench_function("source_scc", |b| {
        b.iter(|| {
            try_unsafety_via_dominator(std::hint::black_box(&sys), TxnId(0), TxnId(1), &source)
        })
    });
    group.bench_function("largest", |b| {
        b.iter(|| {
            try_unsafety_via_dominator(std::hint::black_box(&sys), TxnId(0), TxnId(1), &largest)
        })
    });
    group.finish();

    // Closure workload on reduction instances (iterative edge additions).
    let mut group = c.benchmark_group("closure_on_reduction");
    group.sample_size(10);
    for (vars, clauses) in [(4usize, 3usize), (6, 5)] {
        let f = random_instance(2, vars, clauses);
        let r = reduce(&f).unwrap();
        if let SatResult::Sat(model) = solve(&f) {
            let dom = r.dominator_for_assignment(&model);
            group.bench_with_input(
                BenchmarkId::new("desirable", format!("{vars}v{clauses}c")),
                &(r, dom),
                |b, (r, dom)| {
                    b.iter(|| {
                        try_unsafety_via_dominator(
                            std::hint::black_box(&r.sys),
                            TxnId(0),
                            TxnId(1),
                            dom,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_closure);
criterion_main!(benches);
