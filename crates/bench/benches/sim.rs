//! Experiment S1: simulator throughput across locking strategies and
//! contention levels (the intro's correctness-vs-parallelism trade-off),
//! plus the victim-policy ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kplock_core::policy::LockStrategy;
use kplock_sim::{run, LatencyModel, SimConfig, VictimPolicy};
use kplock_workload::{random_system, WorkloadParams};

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_strategy");
    group.sample_size(20);
    for strategy in [
        LockStrategy::Minimal,
        LockStrategy::TwoPhaseLoose,
        LockStrategy::TwoPhaseSync,
    ] {
        let sys = random_system(&WorkloadParams {
            seed: 21,
            sites: 3,
            entities_per_site: 2,
            transactions: 4,
            steps_per_txn: 6,
            strategy,
            ..Default::default()
        });
        group.bench_with_input(
            BenchmarkId::new("run", format!("{strategy:?}")),
            &sys,
            |b, sys| {
                b.iter(|| {
                    run(
                        std::hint::black_box(sys),
                        &SimConfig {
                            latency: LatencyModel::Uniform(1, 20),
                            ..Default::default()
                        },
                    )
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("sim_victim_policy");
    group.sample_size(20);
    let sys = random_system(&WorkloadParams {
        seed: 23,
        sites: 2,
        entities_per_site: 2,
        transactions: 4,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    });
    for policy in [VictimPolicy::Youngest, VictimPolicy::Oldest] {
        group.bench_with_input(
            BenchmarkId::new("deadlocks", format!("{policy:?}")),
            &sys,
            |b, sys| {
                b.iter(|| {
                    run(
                        std::hint::black_box(sys),
                        &SimConfig {
                            latency: LatencyModel::Fixed(5),
                            victim_policy: policy,
                            ..Default::default()
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
