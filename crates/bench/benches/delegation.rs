//! Experiment D7 (timing side): delegated ownership — simulator cost of
//! skewed read-heavy traffic with delegation off vs on, plus the price
//! of a revocation-heavy handoff chain.
//!
//! The acquire/release message *counts* behind the D7 table are
//! deterministic and pinned by the `kplock-bench` `--check` gate; this
//! bench tracks the wall-clock side on a smaller workload so the smoke
//! run stays fast. Delegation trades messages for ledger bookkeeping —
//! the off/on pair shows the engine-time cost of that trade.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kplock_core::policy::LockStrategy;
use kplock_sim::{run, DeadlockResolution, Delegation, LatencyModel, PreventionScheme, SimConfig};
use kplock_workload::{hot_site_sweep, zipf_sweep, WorkloadParams};

fn bench_delegation(c: &mut Criterion) {
    let base = WorkloadParams {
        seed: 42,
        sites: 3,
        entities_per_site: 12,
        transactions: 6,
        steps_per_txn: 8,
        read_percent: 90,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    };
    let workloads = [
        ("hot95", hot_site_sweep(&base, &[95]).pop().expect("one")),
        ("zipf09", zipf_sweep(&base, &[0.9]).pop().expect("one")),
    ];

    let mut group = c.benchmark_group("delegation_sim");
    group.sample_size(20);
    for (wlabel, sc) in &workloads {
        for (dlabel, delegation) in [("off", Delegation::Off), ("on", Delegation::On)] {
            let cfg = SimConfig {
                seed: 7,
                latency: LatencyModel::Fixed(5),
                resolution: DeadlockResolution::Prevent(PreventionScheme::WoundWait),
                delegation,
                max_time: 2_000_000,
                ..Default::default()
            };
            group.bench_with_input(
                BenchmarkId::new(*wlabel, dlabel),
                &(&sc.system, cfg),
                |b, (sys, cfg)| b.iter(|| run(std::hint::black_box(sys), cfg)),
            );
        }
    }
    group.finish();

    // The worst case for the ledger: every transaction wants the same
    // write-hot entities, so retained grants are demanded back almost as
    // soon as they are cached and the run is revocation-bound.
    let storm = WorkloadParams {
        seed: 42,
        sites: 3,
        entities_per_site: 2,
        transactions: 6,
        steps_per_txn: 6,
        read_percent: 0,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    };
    let sc = hot_site_sweep(&storm, &[100]).pop().expect("one");
    let mut group = c.benchmark_group("delegation_revocation_storm");
    group.sample_size(20);
    for (dlabel, delegation) in [("off", Delegation::Off), ("on", Delegation::On)] {
        let cfg = SimConfig {
            seed: 7,
            latency: LatencyModel::Fixed(5),
            resolution: DeadlockResolution::Prevent(PreventionScheme::WoundWait),
            delegation,
            max_time: 2_000_000,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("run", dlabel),
            &(&sc.system, cfg),
            |b, (sys, cfg)| b.iter(|| run(std::hint::black_box(sys), cfg)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_delegation);
criterion_main!(benches);
