//! Experiment C3 (Theorem 3): cost of the SAT reduction pipeline —
//! construction of T1(F), T2(F); DPLL on F; and the certificate search via
//! dominator closures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kplock_core::closure::try_unsafety_via_dominator;
use kplock_core::reduction::reduce;
use kplock_model::TxnId;
use kplock_sat::{solve, SatResult};
use kplock_workload::random_instance;

fn bench_reduction(c: &mut Criterion) {
    let sweep = [(4usize, 3usize), (6, 5), (8, 7), (12, 10)];

    let mut group = c.benchmark_group("reduction_construct");
    for &(vars, clauses) in &sweep {
        let f = random_instance(1, vars, clauses);
        group.bench_with_input(
            BenchmarkId::new("build", format!("{vars}v{clauses}c")),
            &f,
            |b, f| b.iter(|| reduce(std::hint::black_box(f)).unwrap()),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("reduction_dpll");
    for &(vars, clauses) in &sweep {
        let f = random_instance(1, vars, clauses);
        group.bench_with_input(
            BenchmarkId::new("solve", format!("{vars}v{clauses}c")),
            &f,
            |b, f| b.iter(|| solve(std::hint::black_box(f))),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("reduction_certificate");
    group.sample_size(10);
    for &(vars, clauses) in &sweep[..3] {
        let f = random_instance(1, vars, clauses);
        let r = reduce(&f).unwrap();
        let SatResult::Sat(model) = solve(&f) else {
            continue;
        };
        let dom = r.dominator_for_assignment(&model);
        group.bench_with_input(
            BenchmarkId::new("closure_certificate", format!("{vars}v{clauses}c")),
            &(r, dom),
            |b, (r, dom)| {
                b.iter(|| {
                    try_unsafety_via_dominator(
                        std::hint::black_box(&r.sys),
                        TxnId(0),
                        TxnId(1),
                        dom,
                    )
                    .expect("desirable dominator closes")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
