//! Experiment D3's wall-clock companion and CI's fault-matrix smoke: the
//! fault axis crossed with the resolution arms it stresses hardest.
//!
//! Three rungs of the [`kplock_workload::fault_plan_ladder`] — `clean`
//! (the bit-identical baseline), `mixed` (loss + duplication + reorder
//! with retransmission), and `crash` (two scheduled outages with lease
//! recovery) — each run under distributed probes, wound-wait prevention,
//! and the avoidance arm on the rotated-lock-order workload (whose
//! pairwise-opposed orders leave exactly one transaction certifiable —
//! the certificate *boundary* under faults). The companion table
//! (`cargo run --release --bin experiments`, table D3) reports the
//! simulated units (drops, duplicates, recoveries, detection latency,
//! restarts); here the host cost of whole faulty runs is timed — and
//! `cargo bench --bench fault -- --test` is CI's one-iteration proof
//! that every (plan, arm) pair still reaches a sane outcome: clean and
//! crash rungs complete, nothing ever stalls, and completed runs audit
//! serializable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kplock_sim::{run, RunOutcome, SimConfig};
use kplock_workload::{fault_sweep, FAULT_ARMS_WITH_AVOID};

fn bench_fault(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_matrix");
    group.sample_size(20);
    let smoke_plans = ["clean", "mixed=0.10", "crash"];
    for sc in fault_sweep(6, 4, 3, &[0.10], &FAULT_ARMS_WITH_AVOID) {
        if !smoke_plans.contains(&sc.plan_name.as_str()) {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::new(sc.resolution_name.clone(), sc.plan_name.clone()),
            &sc,
            |b, sc| {
                b.iter(|| {
                    let cfg = SimConfig {
                        invariant_audit: true,
                        max_time: 500_000,
                        ..sc.config(5)
                    };
                    let r = run(std::hint::black_box(&sc.system), &cfg).expect("valid config");
                    assert_ne!(r.outcome, RunOutcome::Stalled, "{} must not stall", sc.name);
                    if sc.plan_name == "clean" || sc.plan_name == "crash" {
                        assert_eq!(
                            r.outcome,
                            RunOutcome::Completed,
                            "{} must complete",
                            sc.name
                        );
                    }
                    if r.outcome == RunOutcome::Completed {
                        assert!(r.audit.serializable, "{} must audit clean", sc.name);
                    }
                    r
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fault);
criterion_main!(benches);
