//! Experiment C1 (Corollary 1): the O(n²) two-site safety test.
//!
//! Sweeps the per-transaction step count and measures the full decision —
//! building D(T1,T2), the SCC test, and (when unsafe) the closure
//! certificate. The paper's claim: polynomial, quadratic in n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kplock_bench::{two_site_pair, STEP_SWEEP};
use kplock_core::decide_two_site_system;

fn bench_two_site(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_site_decision");
    for &n in STEP_SWEEP {
        let sys = two_site_pair(7, n);
        group.bench_with_input(BenchmarkId::new("decide", n), &sys, |b, sys| {
            b.iter(|| decide_two_site_system(std::hint::black_box(sys)).unwrap())
        });
    }
    group.finish();

    // Decision only (no certificate construction): the pure Corollary-1
    // test, on safe (strongly connected) instances.
    let mut group = c.benchmark_group("two_site_scc_only");
    for &n in STEP_SWEEP {
        let sys = two_site_pair(7, n);
        group.bench_with_input(BenchmarkId::new("d_graph_scc", n), &sys, |b, sys| {
            b.iter(|| {
                let d = kplock_core::ConflictDigraph::build(
                    std::hint::black_box(sys),
                    kplock_model::TxnId(0),
                    kplock_model::TxnId(1),
                );
                d.is_strongly_connected()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_two_site);
criterion_main!(benches);
