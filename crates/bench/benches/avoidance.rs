//! Experiment D4's wall-clock companion and CI's avoidance smoke: what
//! does running the paper's static analysis *at runtime* cost?
//!
//! Two measurements on the certified-mix family
//! ([`kplock_workload::avoid_mix_sweep`]):
//!
//! * `synthesize` — plan construction alone (the greedy certification
//!   plus topological safe-order extraction), the price paid once per
//!   declared transaction set, before anything runs;
//! * `run` — whole avoidance-arm simulations across the certified
//!   fraction, from pure fallback (wound-wait-shaped) to fully certified
//!   (the silent regime).
//!
//! The companion table (`cargo run --release --bin experiments`, table
//! D4) reports the simulated units (restarts, messages, makespan); here
//! the host cost is timed — and `cargo bench --bench avoidance -- --test`
//! is CI's one-iteration proof that every rung still completes with zero
//! resolved deadlocks and a serializable audit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kplock_sim::{run, AvoidPlan, RunOutcome};
use kplock_workload::{avoid_mix_sweep, certified_mix};

fn bench_avoidance(c: &mut Criterion) {
    let mut group = c.benchmark_group("avoidance");
    group.sample_size(20);

    for (certified, fallback) in [(6usize, 0usize), (3, 3), (0, 6)] {
        let sys = certified_mix(6, certified, fallback, 3);
        group.bench_with_input(
            BenchmarkId::new("synthesize", format!("certified={certified}/6")),
            &sys,
            |b, sys| {
                b.iter(|| {
                    let plan = AvoidPlan::synthesize(std::hint::black_box(sys));
                    assert!(plan.verify(sys).is_ok());
                    plan
                })
            },
        );
    }

    for sc in avoid_mix_sweep(6, 4, 3, &[0, 2, 4]) {
        group.bench_with_input(BenchmarkId::new("run", sc.name.clone()), &sc, |b, sc| {
            b.iter(|| {
                let r = run(std::hint::black_box(&sc.system), &sc.config(5)).expect("valid config");
                assert_eq!(
                    r.outcome,
                    RunOutcome::Completed,
                    "{} must complete",
                    sc.name
                );
                assert_eq!(
                    r.metrics.deadlocks_resolved, 0,
                    "{} must never resolve a deadlock",
                    sc.name
                );
                assert!(r.audit.serializable, "{} must audit clean", sc.name);
                r
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_avoidance);
criterion_main!(benches);
