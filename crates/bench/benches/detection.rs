//! Experiment D1: what does *distributed* deadlock detection cost?
//!
//! Sweeps the three detection schemes (Periodic global scan, OnBlock
//! incremental, Chandy–Misra–Haas probes) across network latency and site
//! count on the same seeded workloads, timing whole simulator runs. The
//! companion table (`cargo run --release --bin experiments`) reports the
//! probe-message and detection-latency metrics; here the wall-clock cost
//! of simulating each scheme is what's measured — and the bench doubles
//! as the smoke test that every scheme still completes on every topology
//! (`cargo bench --bench detection -- --test` runs one iteration of each).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kplock_core::policy::LockStrategy;
use kplock_sim::{run, DeadlockDetection, LatencyModel, SimConfig};
use kplock_workload::{site_count_sweep, WorkloadParams};

const SCHEMES: [(DeadlockDetection, &str); 3] = [
    (DeadlockDetection::Periodic, "periodic"),
    (DeadlockDetection::OnBlock, "onblock"),
    (DeadlockDetection::Probe, "probe"),
];

fn bench_detection(c: &mut Criterion) {
    // Latency sweep: one deadlock-prone topology, slower and slower wires.
    let mut group = c.benchmark_group("detection_latency");
    group.sample_size(20);
    let sys = kplock_workload::random_system(&WorkloadParams {
        seed: 23,
        sites: 2,
        entities_per_site: 2,
        transactions: 4,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    });
    for latency in [2u64, 10, 40] {
        for (detection, tag) in SCHEMES {
            group.bench_with_input(
                BenchmarkId::new(tag, format!("lat={latency}")),
                &sys,
                |b, sys| {
                    b.iter(|| {
                        let r = run(
                            std::hint::black_box(sys),
                            &SimConfig {
                                latency: LatencyModel::Fixed(latency),
                                resolution: detection.into(),
                                ..Default::default()
                            },
                        )
                        .expect("valid config");
                        assert!(r.finished(), "{tag} must resolve all deadlocks");
                        r
                    })
                },
            );
        }
    }
    group.finish();

    // Site-count sweep: same data and offered work, spread over more
    // sites — the "is distributed locking harder?" axis, measured.
    let mut group = c.benchmark_group("detection_sites");
    group.sample_size(20);
    let base = WorkloadParams {
        seed: 31,
        transactions: 5,
        steps_per_txn: 6,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    };
    for sc in site_count_sweep(&base, 6, &[1, 2, 3, 6]) {
        for (detection, tag) in SCHEMES {
            group.bench_with_input(BenchmarkId::new(tag, &sc.name), &sc.system, |b, sys| {
                b.iter(|| {
                    let r = run(
                        std::hint::black_box(sys),
                        &SimConfig {
                            latency: LatencyModel::Fixed(10),
                            resolution: detection.into(),
                            ..Default::default()
                        },
                    )
                    .expect("valid config");
                    assert!(r.finished());
                    r
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
