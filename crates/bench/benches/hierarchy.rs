//! Experiment D6 (timing side): multi-granularity locking — simulator
//! cost of scan traffic under flat vs hierarchical locking, and the
//! workload-materialization cost of the two-level catalog.
//!
//! The lock-operation *counts* behind the D6 table are deterministic and
//! pinned by `tests/hierarchy.rs` and the `kplock-bench` `--check` gate;
//! this bench tracks the wall-clock side on a smaller catalog so the
//! smoke run stays fast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kplock_model::hierarchy::Granularity;
use kplock_sim::{run_with_arrivals, SimConfig};
use kplock_workload::{hierarchy_system, AccessProfile, HierarchyParams};

fn bench_hierarchy(c: &mut Criterion) {
    let p = HierarchyParams {
        profile: AccessProfile::Scan,
        files: 16,
        records_per_file: 128,
        sites: 4,
        transactions: 8,
        zipf_theta: 0.6,
        arrival_gap: 40,
        seed: 3,
    };
    let arms = [
        ("flat", Granularity::Flat),
        (
            "hier16",
            Granularity::Hierarchical {
                escalation_threshold: 16,
            },
        ),
        (
            "hier2",
            Granularity::Hierarchical {
                escalation_threshold: 2,
            },
        ),
    ];

    let mut group = c.benchmark_group("hierarchy_scan_sim");
    group.sample_size(10);
    for (label, g) in arms {
        let sc = hierarchy_system(&p, g);
        group.bench_with_input(BenchmarkId::new("run", label), &sc, |b, sc| {
            b.iter(|| {
                run_with_arrivals(
                    std::hint::black_box(&sc.system),
                    &SimConfig::default(),
                    &sc.arrivals,
                )
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("hierarchy_materialize");
    group.sample_size(10);
    for (label, g) in arms {
        group.bench_with_input(BenchmarkId::new("build", label), &g, |b, &g| {
            b.iter(|| hierarchy_system(std::hint::black_box(&p), g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hierarchy);
criterion_main!(benches);
