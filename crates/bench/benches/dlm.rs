//! Experiment D1: the lock-manager levers — shard count × lock mode.
//!
//! Three regimes over the standard contended workload suite:
//!
//! * `dlm_threaded_sweep` — end-to-end contended execution on real
//!   threads (`run_threaded`, which parks waiters on per-shard condvars):
//!   1 shard funnels every wakeup through one condvar (thundering herd),
//!   16 shards wake only the waiters of the touched partition. The full
//!   effect — independent entities proceeding in parallel on separate
//!   shard mutexes — needs a multi-core host; on one core only the
//!   wakeup-targeting difference remains, which sits near the noise
//!   floor for the exclusive regime.
//! * `dlm_threaded_rw` — the same workload with 70% reads: read-only
//!   entities get shared locks, so readers overlap instead of queueing
//!   (the regime where the shard sweep separates even on small hosts).
//! * `dlm_table_ops` — raw single-threaded table throughput (sharding
//!   must cost nothing when uncontended) and the batch API.
//!
//! Numbers from this bench are quoted in ARCHITECTURE.md §6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kplock_core::policy::LockStrategy;
use kplock_dlm::ShardedTable;
use kplock_model::{EntityId, LockMode};
use kplock_sim::{run_threaded, ThreadedConfig};
use kplock_workload::{random_system, WorkloadParams};
use std::time::Duration;

/// The contended suite: many transactions funneled through few entities.
fn contended(read_percent: u32) -> kplock_model::TxnSystem {
    random_system(&WorkloadParams {
        seed: 11,
        sites: 2,
        entities_per_site: 2,
        transactions: 48,
        steps_per_txn: 10,
        read_percent,
        strategy: LockStrategy::TwoPhaseSync,
        ..Default::default()
    })
}

fn threaded_cfg(shards: usize) -> ThreadedConfig {
    ThreadedConfig {
        shards,
        // Generous timeout: on an oversubscribed host, presumed-deadlock
        // aborts would otherwise dominate the measurement with noise.
        lock_timeout: Duration::from_millis(400),
        max_attempts: 256,
        ..Default::default()
    }
}

fn bench_dlm(c: &mut Criterion) {
    let mut group = c.benchmark_group("dlm_threaded_sweep");
    group.sample_size(10);
    // Thread scheduling is noisy; a long window keeps run-to-run jitter
    // below the shard effect, especially on small hosts.
    group.measurement_time(Duration::from_secs(2));
    let sys = contended(0);
    for shards in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("exclusive", format!("{shards}shards")),
            &sys,
            |b, sys| {
                b.iter(|| {
                    let r = run_threaded(std::hint::black_box(sys), &threaded_cfg(shards))
                        .expect("valid config");
                    assert!(r.finished);
                    r
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("dlm_threaded_rw");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    let sys = contended(70);
    for shards in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("rw70", format!("{shards}shards")),
            &sys,
            |b, sys| {
                b.iter(|| {
                    let r = run_threaded(std::hint::black_box(sys), &threaded_cfg(shards))
                        .expect("valid config");
                    assert!(r.finished);
                    r
                })
            },
        );
    }
    group.finish();

    // Raw table ops, uncontended: sharding must be (near) free, and the
    // batch API amortizes one shard lock over many entities.
    let mut group = c.benchmark_group("dlm_table_ops");
    for shards in [1usize, 4, 16] {
        group.bench_function(
            BenchmarkId::new("acquire_release", format!("{shards}shards")),
            |b| {
                let t: ShardedTable<u32> = ShardedTable::new(shards);
                let mut i = 0u32;
                b.iter(|| {
                    let e = EntityId(i % 64);
                    i = i.wrapping_add(7);
                    t.acquire(e, 0, LockMode::Exclusive).unwrap();
                    t.release(e, 0).unwrap()
                })
            },
        );
    }
    for shards in [1usize, 16] {
        group.bench_function(
            BenchmarkId::new("batch16", format!("{shards}shards")),
            |b| {
                let t: ShardedTable<u32> = ShardedTable::new(shards);
                let reqs: Vec<(EntityId, LockMode)> = (0..16)
                    .map(|i| (EntityId(i), LockMode::Exclusive))
                    .collect();
                let ents: Vec<EntityId> = reqs.iter().map(|&(e, _)| e).collect();
                b.iter(|| {
                    t.acquire_batch(0, std::hint::black_box(&reqs)).unwrap();
                    t.release_batch(0, &ents).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dlm);
criterion_main!(benches);
