//! Experiment C5 (Proposition 2): scaling of the many-transaction safety
//! analysis in the number of transactions k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kplock_core::policy::LockStrategy;
use kplock_core::{proposition2, Prop2Options};
use kplock_workload::{random_system, WorkloadParams};

fn bench_prop2(c: &mut Criterion) {
    let mut group = c.benchmark_group("proposition2");
    group.sample_size(20);
    for k in [2usize, 3, 4, 5, 6] {
        let sys = random_system(&WorkloadParams {
            seed: 13,
            sites: 2,
            entities_per_site: 3,
            transactions: k,
            steps_per_txn: 5,
            strategy: LockStrategy::TwoPhaseSync,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::new("analyze", k), &sys, |b, sys| {
            b.iter(|| proposition2(std::hint::black_box(sys), &Prop2Options::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prop2);
criterion_main!(benches);
