//! What does pure-literal elimination buy the SAT solver?
//!
//! The rule assigns variables occurring with a single polarity (they can
//! never falsify anything); the solver applies it once at the root,
//! shrinking the formula before the conflict-driven search starts.
//! `Solver::with_pure_literals(false)` exposes the toggle; this bench
//! runs the same formulas both ways:
//!
//! * random 3-CNF below the satisfiability threshold, where many
//!   variables go pure as clauses saturate;
//! * the paper's *restricted* CNF form (≤3 literals, each variable ≤2×
//!   positive ≤1× negative), the Theorem-3 reduction's input class;
//! * an unsatisfiable pigeonhole instance, where the verdict needs the
//!   full search tree.
//!
//! `cargo bench --bench dpll -- --test` is CI's one-iteration smoke that
//! both configurations still agree on every verdict.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kplock_sat::{random_kcnf, random_restricted, Cnf, Lit, SatResult, Solver, Var};

/// Pigeonhole principle: `holes + 1` pigeons into `holes` holes, UNSAT.
fn pigeonhole(holes: usize) -> Cnf {
    let pigeons = holes + 1;
    let var = |p: usize, h: usize| Var((p * holes + h) as u32);
    let mut f = Cnf::new(pigeons * holes);
    for p in 0..pigeons {
        f.add_clause((0..holes).map(|h| Lit::pos(var(p, h))).collect());
    }
    for h in 0..holes {
        for p in 0..pigeons {
            for q in (p + 1)..pigeons {
                f.add_clause(vec![Lit::neg(var(p, h)), Lit::neg(var(q, h))]);
            }
        }
    }
    f
}

fn bench_dpll(c: &mut Criterion) {
    let mut group = c.benchmark_group("dpll");
    group.sample_size(20);

    let instances: Vec<(String, Cnf)> = vec![
        ("3cnf_v40_c120".into(), random_kcnf(7, 40, 120, 3)),
        ("3cnf_v60_c210".into(), random_kcnf(11, 60, 210, 3)),
        ("restricted_v50".into(), random_restricted(13, 50, 60)),
        ("pigeonhole_5".into(), pigeonhole(5)),
    ];

    for (name, f) in &instances {
        let reference = Solver::new(f).solve().is_sat();
        for pure in [true, false] {
            let tag = if pure { "pure-on" } else { "pure-off" };
            group.bench_with_input(BenchmarkId::new(tag, name), f, |b, f| {
                b.iter(|| {
                    let result = Solver::new(std::hint::black_box(f))
                        .with_pure_literals(pure)
                        .solve();
                    assert_eq!(
                        result.is_sat(),
                        reference,
                        "{name}: toggle changed the verdict"
                    );
                    matches!(result, SatResult::Sat(_))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dpll);
criterion_main!(benches);
