//! Experiment D2's wall-clock companion: what does deadlock *prevention*
//! cost to simulate, against detection, on the same rotated-lock-order
//! workloads?
//!
//! Sweeps the full [`kplock_sim::DeadlockResolution`] axis — the Periodic
//! scan and Chandy–Misra–Haas probes on the detection side, Wound-Wait /
//! Wait-Die / No-Wait on the prevention side — across the
//! `resolution_sweep` site counts and two network latencies. The
//! companion table (`cargo run --release --bin experiments`, table D2)
//! reports the *simulated* units (prevention restarts vs probe messages);
//! here the host cost of whole runs is timed — and, like the `detection`
//! bench, `cargo bench --bench prevention -- --test` doubles as CI's
//! smoke proof that every scheme still completes on every topology with
//! zero detected deadlocks on the prevention side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kplock_sim::{run, DeadlockDetection, DeadlockResolution, PreventionScheme, SimConfig};
use kplock_workload::resolution_sweep;

const RESOLUTIONS: [(DeadlockResolution, &str); 5] = [
    (
        DeadlockResolution::Detect(DeadlockDetection::Periodic),
        "periodic",
    ),
    (
        DeadlockResolution::Detect(DeadlockDetection::Probe),
        "probe",
    ),
    (
        DeadlockResolution::Prevent(PreventionScheme::WoundWait),
        "wound-wait",
    ),
    (
        DeadlockResolution::Prevent(PreventionScheme::WaitDie),
        "wait-die",
    ),
    (
        DeadlockResolution::Prevent(PreventionScheme::NoWait),
        "no-wait",
    ),
];

fn bench_prevention(c: &mut Criterion) {
    let mut group = c.benchmark_group("resolution_sites");
    group.sample_size(20);
    for sc in resolution_sweep(6, 4, &[1, 2, 3, 6]) {
        for (resolution, tag) in RESOLUTIONS {
            for latency in [5u64, 20] {
                group.bench_with_input(
                    BenchmarkId::new(tag, format!("{}/lat={latency}", sc.name)),
                    &sc.system,
                    |b, sys| {
                        b.iter(|| {
                            let r = run(
                                std::hint::black_box(sys),
                                &SimConfig {
                                    latency: kplock_sim::LatencyModel::Fixed(latency),
                                    resolution,
                                    ..Default::default()
                                },
                            )
                            .expect("valid config");
                            assert!(r.finished(), "{tag} must complete every run");
                            if matches!(resolution, DeadlockResolution::Prevent(_)) {
                                assert_eq!(
                                    r.metrics.deadlocks_resolved, 0,
                                    "prevention must never let a cycle form"
                                );
                            }
                            r
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_prevention);
criterion_main!(benches);
