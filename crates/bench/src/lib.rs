//! Shared helpers for the benchmark harness.
//!
//! Every table/figure of the paper maps to one Criterion bench target (see
//! `benches/`) plus a row-printing experiment in `src/bin/experiments.rs`;
//! ARCHITECTURE.md §6 is the index.
//!
//! # Example
//!
//! ```
//! use kplock_bench::{centralized_pair, two_site_pair, STEP_SWEEP};
//! use kplock_model::Level;
//!
//! let sys = two_site_pair(7, STEP_SWEEP[1]); // seed 7, 8 steps per txn
//! sys.validate(Level::Strict).unwrap();
//! assert_eq!(sys.len(), 2);
//! assert_eq!(centralized_pair(7, 6).db().site_count(), 1);
//! ```

pub mod record;

use kplock_core::policy::LockStrategy;
use kplock_model::TxnSystem;
use kplock_workload::{random_pair, WorkloadParams};

/// A standard two-site pair workload of roughly `n` steps per transaction.
pub fn two_site_pair(seed: u64, n: usize) -> TxnSystem {
    random_pair(&WorkloadParams {
        seed,
        sites: 2,
        entities_per_site: (n / 4).max(1),
        steps_per_txn: n,
        cross_edge_percent: 30,
        strategy: LockStrategy::Minimal,
        ..Default::default()
    })
}

/// A centralized (one-site) pair workload.
pub fn centralized_pair(seed: u64, n: usize) -> TxnSystem {
    random_pair(&WorkloadParams {
        seed,
        sites: 1,
        entities_per_site: (n / 3).max(2),
        steps_per_txn: n,
        cross_edge_percent: 0,
        strategy: LockStrategy::Minimal,
        ..Default::default()
    })
}

/// Parameter sweep used across scaling experiments.
pub const STEP_SWEEP: &[usize] = &[4, 8, 16, 32, 64];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_helpers_produce_valid_systems() {
        for &n in STEP_SWEEP {
            let sys = two_site_pair(1, n);
            assert_eq!(sys.len(), 2);
            sys.validate(kplock_model::Level::Strict).unwrap();
            let c = centralized_pair(1, n);
            c.validate(kplock_model::Level::Strict).unwrap();
        }
    }
}
